// Events: the alphabet of the paper's computation model (§2, §4.2.1,
// §4.3.1).
//
// A computation is a finite sequence of events. The base alphabet (§2) has
// four kinds: the invocation of an operation on an object by an activity,
// the termination (response) of an invocation, and the commit or abort of
// an activity at an object. The timestamped properties extend the
// alphabet: static atomicity adds initiation events <initiate(t),x,a>
// (§4.2.1); hybrid atomicity uses initiation events for read-only
// activities and timestamped commit events <commit(t),x,a> for updates
// (§4.3.1).
#pragma once

#include <string>

#include "common/ids.h"
#include "common/operation.h"
#include "common/value.h"

namespace argus {

enum class EventKind {
  kInvoke,    // <op(args),x,a>
  kRespond,   // <result,x,a> — termination of a's pending invocation at x
  kCommit,    // <commit,x,a> or <commit(t),x,a>
  kAbort,     // <abort,x,a>
  kInitiate,  // <initiate(t),x,a>
};

[[nodiscard]] std::string to_string(EventKind k);

struct Event {
  EventKind kind{EventKind::kInvoke};
  ObjectId object;
  ActivityId activity;
  Operation operation;                 // meaningful for kInvoke only
  Value result;                        // meaningful for kRespond only
  Timestamp timestamp{kNoTimestamp};   // kInitiate always; kCommit for hybrid updates

  [[nodiscard]] bool has_timestamp() const { return timestamp != kNoTimestamp; }

  friend bool operator==(const Event&, const Event&) = default;
};

/// Factories matching the paper's notation.
Event invoke(ObjectId x, ActivityId a, Operation op);
Event respond(ObjectId x, ActivityId a, Value result);
Event commit(ObjectId x, ActivityId a);
/// Hybrid-atomicity commit with a commit-time timestamp: <commit(t),x,a>.
Event commit_at(ObjectId x, ActivityId a, Timestamp t);
Event abort(ObjectId x, ActivityId a);
Event initiate(ObjectId x, ActivityId a, Timestamp t);

/// Renders the paper's "<insert(3),x,a>" notation.
[[nodiscard]] std::string to_string(const Event& e);

}  // namespace argus
