#include "hist/precedes.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/value.h"

namespace argus {

void PrecedesRelation::add(ActivityId a, ActivityId b) {
  if (a == b) return;  // precedes is irreflexive by construction
  pairs_.insert({a, b});
}

bool PrecedesRelation::contains(ActivityId a, ActivityId b) const {
  return pairs_.contains({a, b});
}

bool PrecedesRelation::consistent_with(
    const std::vector<ActivityId>& order) const {
  std::unordered_map<ActivityId, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& [a, b] : pairs_) {
    auto ia = pos.find(a);
    auto ib = pos.find(b);
    if (ia == pos.end() || ib == pos.end()) continue;
    if (ia->second >= ib->second) return false;
  }
  return true;
}

PrecedesRelation PrecedesRelation::restricted_to(
    const std::vector<ActivityId>& keep) const {
  std::unordered_set<ActivityId> keep_set(keep.begin(), keep.end());
  PrecedesRelation out;
  for (const auto& [a, b] : pairs_) {
    if (keep_set.contains(a) && keep_set.contains(b)) out.add(a, b);
  }
  return out;
}

namespace {

void extend(const std::vector<ActivityId>& activities,
            const std::set<std::pair<ActivityId, ActivityId>>& pairs,
            std::vector<ActivityId>& prefix, std::vector<bool>& used,
            std::vector<std::vector<ActivityId>>& out) {
  if (prefix.size() == activities.size()) {
    out.push_back(prefix);
    return;
  }
  for (std::size_t i = 0; i < activities.size(); ++i) {
    if (used[i]) continue;
    ActivityId cand = activities[i];
    // cand may be placed next iff every predecessor of cand is placed.
    bool ready = true;
    for (std::size_t j = 0; j < activities.size(); ++j) {
      if (used[j] || j == i) continue;
      if (pairs.contains({activities[j], cand})) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;
    used[i] = true;
    prefix.push_back(cand);
    extend(activities, pairs, prefix, used, out);
    prefix.pop_back();
    used[i] = false;
  }
}

}  // namespace

std::vector<std::vector<ActivityId>> PrecedesRelation::linear_extensions(
    const std::vector<ActivityId>& activities) const {
  std::vector<std::vector<ActivityId>> out;
  std::vector<ActivityId> prefix;
  std::vector<bool> used(activities.size(), false);
  prefix.reserve(activities.size());
  extend(activities, pairs_, prefix, used, out);
  return out;
}

bool PrecedesRelation::acyclic(const std::vector<ActivityId>& activities) const {
  // Kahn's algorithm over the restriction.
  std::unordered_map<ActivityId, int> indegree;
  for (ActivityId a : activities) indegree[a] = 0;
  for (const auto& [a, b] : pairs_) {
    if (indegree.contains(a) && indegree.contains(b)) ++indegree[b];
  }
  std::vector<ActivityId> ready;
  for (const auto& [a, d] : indegree) {
    if (d == 0) ready.push_back(a);
  }
  std::size_t removed = 0;
  while (!ready.empty()) {
    ActivityId a = ready.back();
    ready.pop_back();
    ++removed;
    for (const auto& [p, q] : pairs_) {
      if (p == a && indegree.contains(q) && --indegree[q] == 0) {
        ready.push_back(q);
      }
    }
  }
  return removed == indegree.size();
}

std::string PrecedesRelation::to_string() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [a, b] : pairs_) {
    if (!first) out << ", ";
    first = false;
    out << "<" << argus::to_string(a) << "," << argus::to_string(b) << ">";
  }
  out << "}";
  return out.str();
}

}  // namespace argus
