// History: a finite sequence of events (the paper's computations, §2) with
// the derived notions used throughout: projections h|x and h|a, the
// committed projection perm(h) (§3), the update projection updates(h)
// (§4.3.2), the precedes(h) relation (§4.1), equivalence, serial
// sequences, and timestamp extraction.
#pragma once

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "hist/event.h"
#include "hist/precedes.h"

namespace argus {

class History {
 public:
  History() = default;
  explicit History(std::vector<Event> events) : events_(std::move(events)) {}

  void append(Event e) { events_.push_back(std::move(e)); }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const Event& at(std::size_t i) const { return events_.at(i); }

  /// h|x — the subsequence of events in which object x participates.
  [[nodiscard]] History project_object(ObjectId x) const;

  /// h|a — the subsequence of events in which activity a participates.
  [[nodiscard]] History project_activity(ActivityId a) const;

  /// perm(h) — all events of activities that commit in h, and no others
  /// (§3). An activity "commits in h" if h contains a commit event for it
  /// at some object.
  [[nodiscard]] History perm() const;

  /// updates(h) — all events of update activities (§4.3.2); the read-only
  /// partition is supplied by the caller.
  [[nodiscard]] History updates(
      const std::unordered_set<ActivityId>& read_only) const;

  /// Activities in order of first appearance.
  [[nodiscard]] std::vector<ActivityId> activities() const;

  /// Objects in order of first appearance.
  [[nodiscard]] std::vector<ObjectId> objects() const;

  [[nodiscard]] std::unordered_set<ActivityId> committed() const;
  [[nodiscard]] std::unordered_set<ActivityId> aborted() const;

  /// Activities that initiate somewhere in h (used to identify read-only
  /// activities in hybrid histories, where only read-only activities carry
  /// initiation events).
  [[nodiscard]] std::unordered_set<ActivityId> initiated() const;

  /// precedes(h): <a,b> iff some invocation by b terminates after a's
  /// (first) commit (§4.1).
  [[nodiscard]] PrecedesRelation precedes() const;

  /// Equivalence (§3): every activity has the same view, h|a == k|a for
  /// all a, and the two histories involve the same activities.
  [[nodiscard]] bool equivalent(const History& other) const;

  /// A sequence is serial if events for different activities are not
  /// interleaved (§3).
  [[nodiscard]] bool is_serial() const;

  /// The order of activities if serial; nullopt otherwise.
  [[nodiscard]] std::optional<std::vector<ActivityId>> serial_order() const;

  /// The timestamp of an activity, taken from its initiation events or its
  /// timestamped commit events; nullopt if it has neither. (Well-formed
  /// timestamped histories give each activity a single timestamp.)
  [[nodiscard]] std::optional<Timestamp> timestamp_of(ActivityId a) const;

  /// Activities that have timestamps, sorted by timestamp ascending.
  [[nodiscard]] std::vector<ActivityId> timestamp_order() const;

  /// Concatenation (used by checkers to build candidate serial sequences).
  [[nodiscard]] History then(const History& suffix) const;

  /// One event per line, in the paper's notation.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const History&, const History&) = default;

 private:
  std::vector<Event> events_;
};

}  // namespace argus
