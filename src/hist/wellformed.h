// Well-formedness of event sequences.
//
// §2 restricts attention to sequences in which activities behave like
// sequential processes: an activity waits for each invocation to terminate
// before invoking again, never both commits and aborts, cannot commit
// while waiting, and invokes nothing after committing. The timestamped
// alphabets add initiation rules (§4.2.1) and, for hybrid histories,
// timestamp/precedes consistency (§4.3.1 — the paper's second hybrid
// example is rejected as ill-formed precisely because an update's commit
// timestamp contradicts precedes(h)).
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "hist/history.h"

namespace argus {

struct WellFormedness {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// §2 rules (plain alphabet: invoke/respond/commit/abort).
[[nodiscard]] WellFormedness check_well_formed(const History& h);

/// §4.2.1 rules: §2 plus — every activity initiates at an object before
/// invoking there; initiation timestamps are unique per activity and
/// distinct across activities; commit events carry no timestamps.
[[nodiscard]] WellFormedness check_well_formed_static(const History& h);

/// §4.3.1 rules: §2 plus — read-only activities initiate before invoking
/// and commit plainly; update activities never initiate and commit with
/// timestamps; timestamp events are unique per activity and distinct
/// across activities; update commit timestamps are consistent with
/// precedes(h).
[[nodiscard]] WellFormedness check_well_formed_hybrid(
    const History& h, const std::unordered_set<ActivityId>& read_only);

}  // namespace argus
