#include "hist/history.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace argus {

History History::project_object(ObjectId x) const {
  History out;
  for (const Event& e : events_) {
    if (e.object == x) out.append(e);
  }
  return out;
}

History History::project_activity(ActivityId a) const {
  History out;
  for (const Event& e : events_) {
    if (e.activity == a) out.append(e);
  }
  return out;
}

History History::perm() const {
  const auto keep = committed();
  History out;
  for (const Event& e : events_) {
    if (keep.contains(e.activity)) out.append(e);
  }
  return out;
}

History History::updates(
    const std::unordered_set<ActivityId>& read_only) const {
  History out;
  for (const Event& e : events_) {
    if (!read_only.contains(e.activity)) out.append(e);
  }
  return out;
}

std::vector<ActivityId> History::activities() const {
  std::vector<ActivityId> out;
  std::unordered_set<ActivityId> seen;
  for (const Event& e : events_) {
    if (seen.insert(e.activity).second) out.push_back(e.activity);
  }
  return out;
}

std::vector<ObjectId> History::objects() const {
  std::vector<ObjectId> out;
  std::unordered_set<ObjectId> seen;
  for (const Event& e : events_) {
    if (seen.insert(e.object).second) out.push_back(e.object);
  }
  return out;
}

std::unordered_set<ActivityId> History::committed() const {
  std::unordered_set<ActivityId> out;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kCommit) out.insert(e.activity);
  }
  return out;
}

std::unordered_set<ActivityId> History::aborted() const {
  std::unordered_set<ActivityId> out;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kAbort) out.insert(e.activity);
  }
  return out;
}

std::unordered_set<ActivityId> History::initiated() const {
  std::unordered_set<ActivityId> out;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kInitiate) out.insert(e.activity);
  }
  return out;
}

PrecedesRelation History::precedes() const {
  // <a,b> ∈ precedes(h) iff an invocation by b terminates (responds) after
  // a commits. We scan once, maintaining the set of already-committed
  // activities; every later response adds pairs from each of them.
  PrecedesRelation rel;
  std::unordered_set<ActivityId> committed_so_far;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kRespond) {
      for (ActivityId a : committed_so_far) rel.add(a, e.activity);
    } else if (e.kind == EventKind::kCommit) {
      committed_so_far.insert(e.activity);
    }
  }
  return rel;
}

bool History::equivalent(const History& other) const {
  auto mine = activities();
  auto theirs = other.activities();
  std::unordered_set<ActivityId> mine_set(mine.begin(), mine.end());
  std::unordered_set<ActivityId> theirs_set(theirs.begin(), theirs.end());
  if (mine_set != theirs_set) return false;
  return std::all_of(mine.begin(), mine.end(), [&](ActivityId a) {
    return project_activity(a) == other.project_activity(a);
  });
}

bool History::is_serial() const {
  std::unordered_set<ActivityId> finished;
  std::optional<ActivityId> current;
  for (const Event& e : events_) {
    if (current && e.activity == *current) continue;
    if (finished.contains(e.activity)) return false;  // activity resumed
    if (current) finished.insert(*current);
    current = e.activity;
  }
  return true;
}

std::optional<std::vector<ActivityId>> History::serial_order() const {
  if (!is_serial()) return std::nullopt;
  return activities();
}

std::optional<Timestamp> History::timestamp_of(ActivityId a) const {
  for (const Event& e : events_) {
    if (e.activity == a && e.has_timestamp()) return e.timestamp;
  }
  return std::nullopt;
}

std::vector<ActivityId> History::timestamp_order() const {
  std::vector<std::pair<Timestamp, ActivityId>> stamped;
  for (ActivityId a : activities()) {
    if (auto t = timestamp_of(a)) stamped.emplace_back(*t, a);
  }
  std::sort(stamped.begin(), stamped.end());
  std::vector<ActivityId> out;
  out.reserve(stamped.size());
  for (const auto& [t, a] : stamped) out.push_back(a);
  return out;
}

History History::then(const History& suffix) const {
  History out = *this;
  for (const Event& e : suffix.events()) out.append(e);
  return out;
}

std::string History::to_string() const {
  std::ostringstream out;
  for (const Event& e : events_) out << argus::to_string(e) << "\n";
  return out.str();
}

}  // namespace argus
