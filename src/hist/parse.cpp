#include "hist/parse.h"

#include <cctype>
#include <sstream>
#include <vector>

namespace argus {

namespace {

ParseResult fail(const std::string& message) { return {std::nullopt, message}; }

bool parse_int(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i])) == 0) return false;
  }
  out = std::stoll(s);
  return true;
}

Value parse_value(const std::string& s) {
  if (s == "ok") return ok();
  if (s == "true") return Value{true};
  if (s == "false") return Value{false};
  std::int64_t n = 0;
  if (parse_int(s, n)) return Value{n};
  return Value{s};
}

std::optional<ActivityId> parse_activity(const std::string& s) {
  if (s.size() == 1 && s[0] >= 'a' && s[0] <= 'z') {
    return ActivityId{static_cast<std::uint64_t>(s[0] - 'a')};
  }
  if (s.size() > 1 && s[0] == 't') {
    std::int64_t n = 0;
    if (parse_int(s.substr(1), n) && n >= 0) {
      return ActivityId{static_cast<std::uint64_t>(n)};
    }
  }
  return std::nullopt;
}

std::optional<ObjectId> parse_object(const std::string& s) {
  if (s.size() == 1 && s[0] >= 'x' && s[0] <= 'z') {
    return ObjectId{static_cast<std::uint64_t>(s[0] - 'x')};
  }
  if (s.size() > 3 && s.substr(0, 3) == "obj") {
    std::int64_t n = 0;
    if (parse_int(s.substr(3), n) && n >= 0) {
      return ObjectId{static_cast<std::uint64_t>(n)};
    }
  }
  return std::nullopt;
}

/// Splits the event body on top-level commas (arguments inside
/// parentheses are protected).
std::vector<std::string> split_top_level(const std::string& body) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (char c : body) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

}  // namespace

ParseResult parse_event_line(const std::string& raw) {
  std::string line = trim(raw);
  // Multi-site dumps stamp each event with the site that recorded it
  // ("site2: <deposit(5),x,a>"). The stamp is provenance, not part of
  // the event — strip it so cross-site dumps replay through the same
  // offline checkers as single-node ones.
  if (line.size() > 4 && line.compare(0, 4, "site") == 0) {
    std::size_t i = 4;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    if (i > 4 && i < line.size() && line[i] == ':') {
      line = trim(line.substr(i + 1));
    }
  }
  if (line.size() < 2 || line.front() != '<' || line.back() != '>') {
    return fail("event must be enclosed in <...>: " + line);
  }
  const std::string body = line.substr(1, line.size() - 2);
  const auto parts = split_top_level(body);
  if (parts.size() != 3) {
    return fail("event needs three comma-separated fields: " + line);
  }
  const std::string head = trim(parts[0]);
  const auto object = parse_object(trim(parts[1]));
  const auto activity = parse_activity(trim(parts[2]));
  if (!object) return fail("bad object name in: " + line);
  if (!activity) return fail("bad activity name in: " + line);

  History h;
  const auto lparen = head.find('(');
  if (lparen != std::string::npos) {
    if (head.back() != ')') return fail("unbalanced parentheses in: " + line);
    const std::string name = head.substr(0, lparen);
    const std::string args_text =
        head.substr(lparen + 1, head.size() - lparen - 2);
    if (name == "commit" || name == "initiate") {
      std::int64_t ts = 0;
      if (!parse_int(trim(args_text), ts) || ts <= 0) {
        return fail("bad timestamp in: " + line);
      }
      h.append(name == "commit"
                   ? commit_at(*object, *activity,
                               static_cast<Timestamp>(ts))
                   : initiate(*object, *activity, static_cast<Timestamp>(ts)));
      return {h, ""};
    }
    Operation o;
    o.name = name;
    if (!trim(args_text).empty()) {
      for (const std::string& arg : split_top_level(args_text)) {
        o.args.push_back(parse_value(trim(arg)));
      }
    }
    h.append(invoke(*object, *activity, std::move(o)));
    return {h, ""};
  }

  if (head == "commit") {
    h.append(commit(*object, *activity));
    return {h, ""};
  }
  if (head == "abort") {
    h.append(abort(*object, *activity));
    return {h, ""};
  }
  // Bare identifiers that look like results ("ok", "true", numbers,
  // strings) are responses. Argument-less invocations are textually
  // ambiguous with string responses, so the zero-argument operations of
  // the built-in ADTs are recognized by name (matching the paper's
  // "<dequeue,x,c>" notation); an explicit "name()" works for any other.
  static const char* kZeroArgOps[] = {"dequeue", "size",   "balance",
                                      "increment", "remove", "read"};
  for (const char* name : kZeroArgOps) {
    if (head == name) {
      h.append(invoke(*object, *activity, Operation{head, {}}));
      return {h, ""};
    }
  }
  if (head.size() > 2 && head.substr(head.size() - 2) == "()") {
    h.append(invoke(*object, *activity,
                    Operation{head.substr(0, head.size() - 2), {}}));
    return {h, ""};
  }
  h.append(respond(*object, *activity, parse_value(head)));
  return {h, ""};
}

ParseResult parse_history(const std::string& text) {
  History h;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto one = parse_event_line(trimmed);
    if (!one.history) {
      return fail("line " + std::to_string(line_number) + ": " + one.error);
    }
    h.append(one.history->at(0));
  }
  return {h, ""};
}

}  // namespace argus
