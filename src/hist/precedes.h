// The precedes(h) relation of §4.1.
//
// <a,b> ∈ precedes(h) iff some operation invoked by b terminates after a
// commits. For well-formed h this is a partial order on activities; it is
// the information a *dynamic* (locking-style) object can observe online,
// and dynamic atomicity requires serializability in every total order
// consistent with it.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"

namespace argus {

class PrecedesRelation {
 public:
  PrecedesRelation() = default;

  void add(ActivityId a, ActivityId b);

  [[nodiscard]] bool contains(ActivityId a, ActivityId b) const;
  [[nodiscard]] bool empty() const { return pairs_.empty(); }
  [[nodiscard]] std::size_t size() const { return pairs_.size(); }
  [[nodiscard]] const std::set<std::pair<ActivityId, ActivityId>>& pairs() const {
    return pairs_;
  }

  /// True iff the given total order lists every related pair in relation
  /// order. Activities absent from `order` are ignored, so a relation over
  /// a superset of activities can be checked against an order on the
  /// committed subset.
  [[nodiscard]] bool consistent_with(const std::vector<ActivityId>& order) const;

  /// Restricts the relation to the given activities (used to reason about
  /// the committed subset).
  [[nodiscard]] PrecedesRelation restricted_to(
      const std::vector<ActivityId>& keep) const;

  /// All total orders of `activities` consistent with this relation
  /// (linear extensions). Exponential in general; intended for the checker
  /// layer on paper-sized histories. Activities not mentioned by any pair
  /// are unconstrained.
  [[nodiscard]] std::vector<std::vector<ActivityId>> linear_extensions(
      const std::vector<ActivityId>& activities) const;

  /// True iff the relation restricted to `activities` is acyclic.
  [[nodiscard]] bool acyclic(const std::vector<ActivityId>& activities) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const PrecedesRelation&, const PrecedesRelation&) =
      default;

 private:
  std::set<std::pair<ActivityId, ActivityId>> pairs_;
};

}  // namespace argus
