#include "hist/wellformed.h"

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace argus {

namespace {

std::string describe(const Event& e, std::size_t index) {
  return "event #" + std::to_string(index) + " " + to_string(e);
}

/// Tracks the §2 sequential-process discipline for one pass over h.
class BaseRules {
 public:
  explicit BaseRules(std::vector<std::string>& violations)
      : violations_(violations) {}

  void observe(const Event& e, std::size_t i) {
    switch (e.kind) {
      case EventKind::kInvoke:
        if (pending_.contains(e.activity)) {
          violations_.push_back(
              describe(e, i) +
              ": activity invoked while a previous invocation is pending");
        }
        if (committed_.contains(e.activity)) {
          violations_.push_back(describe(e, i) +
                                ": activity invoked after committing");
        }
        pending_[e.activity] = e.object;
        break;
      case EventKind::kRespond: {
        auto it = pending_.find(e.activity);
        if (it == pending_.end()) {
          violations_.push_back(describe(e, i) +
                                ": response with no pending invocation");
        } else {
          if (it->second != e.object) {
            violations_.push_back(
                describe(e, i) +
                ": response at a different object than the pending invocation");
          }
          pending_.erase(it);
        }
        break;
      }
      case EventKind::kCommit:
        if (pending_.contains(e.activity)) {
          violations_.push_back(
              describe(e, i) +
              ": activity committed while waiting for an invocation");
        }
        if (aborted_.contains(e.activity)) {
          violations_.push_back(describe(e, i) +
                                ": activity both commits and aborts");
        }
        committed_.insert(e.activity);
        break;
      case EventKind::kAbort:
        if (committed_.contains(e.activity)) {
          violations_.push_back(describe(e, i) +
                                ": activity both commits and aborts");
        }
        aborted_.insert(e.activity);
        break;
      case EventKind::kInitiate:
        break;  // handled by the timestamped rule sets
    }
  }

 private:
  std::vector<std::string>& violations_;
  std::unordered_map<ActivityId, ObjectId> pending_;
  std::unordered_set<ActivityId> committed_;
  std::unordered_set<ActivityId> aborted_;
};

/// Enforces uniqueness/consistency of timestamps across "timestamp
/// events" (a caller-chosen subset of events that carry timestamps).
class TimestampRules {
 public:
  explicit TimestampRules(std::vector<std::string>& violations)
      : violations_(violations) {}

  void observe_timestamp_event(const Event& e, std::size_t i) {
    auto [it, inserted] = chosen_.insert({e.activity, e.timestamp});
    if (!inserted && it->second != e.timestamp) {
      violations_.push_back(
          describe(e, i) + ": activity uses two different timestamps (" +
          std::to_string(it->second) + " and " + std::to_string(e.timestamp) +
          ")");
      return;
    }
    auto [oit, owner_inserted] = owner_.insert({e.timestamp, e.activity});
    if (!owner_inserted && oit->second != e.activity) {
      violations_.push_back(describe(e, i) + ": timestamp " +
                            std::to_string(e.timestamp) +
                            " already used by activity " +
                            to_string(oit->second));
    }
  }

 private:
  std::vector<std::string>& violations_;
  std::unordered_map<ActivityId, Timestamp> chosen_;
  std::map<Timestamp, ActivityId> owner_;
};

/// Enforces "initiate at an object before invoking any operations there"
/// for the activities a predicate selects.
class InitiationRules {
 public:
  InitiationRules(std::vector<std::string>& violations,
                  std::function<bool(ActivityId)> applies)
      : violations_(violations), applies_(std::move(applies)) {}

  void observe(const Event& e, std::size_t i) {
    if (e.kind == EventKind::kInitiate) {
      initiated_.insert({e.activity, e.object});
    } else if (e.kind == EventKind::kInvoke && applies_(e.activity) &&
               !initiated_.contains({e.activity, e.object})) {
      violations_.push_back(
          describe(e, i) +
          ": activity invoked at an object before initiating there");
    }
  }

 private:
  std::vector<std::string>& violations_;
  std::function<bool(ActivityId)> applies_;
  std::set<std::pair<ActivityId, ObjectId>> initiated_;
};

}  // namespace

std::string WellFormedness::summary() const {
  if (ok()) return "well-formed";
  std::ostringstream out;
  out << violations.size() << " violation(s):\n";
  for (const auto& v : violations) out << "  " << v << "\n";
  return out.str();
}

WellFormedness check_well_formed(const History& h) {
  WellFormedness result;
  BaseRules base(result.violations);
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h.at(i);
    if (e.kind == EventKind::kInitiate) {
      result.violations.push_back(
          describe(e, i) + ": initiation events are not part of the plain alphabet");
      continue;
    }
    if (e.kind == EventKind::kCommit && e.has_timestamp()) {
      result.violations.push_back(
          describe(e, i) +
          ": timestamped commits are not part of the plain alphabet");
    }
    base.observe(e, i);
  }
  return result;
}

WellFormedness check_well_formed_static(const History& h) {
  WellFormedness result;
  BaseRules base(result.violations);
  TimestampRules stamps(result.violations);
  InitiationRules init(result.violations, [](ActivityId) { return true; });
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h.at(i);
    if (e.kind == EventKind::kCommit && e.has_timestamp()) {
      result.violations.push_back(
          describe(e, i) +
          ": static-alphabet commits carry no timestamps (timestamps are "
          "chosen at initiation)");
    }
    if (e.kind == EventKind::kInitiate) stamps.observe_timestamp_event(e, i);
    init.observe(e, i);
    base.observe(e, i);
  }
  return result;
}

WellFormedness check_well_formed_hybrid(
    const History& h, const std::unordered_set<ActivityId>& read_only) {
  WellFormedness result;
  BaseRules base(result.violations);
  TimestampRules stamps(result.violations);
  InitiationRules init(result.violations, [&](ActivityId a) {
    return read_only.contains(a);
  });
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h.at(i);
    const bool ro = read_only.contains(e.activity);
    switch (e.kind) {
      case EventKind::kInitiate:
        if (!ro) {
          result.violations.push_back(
              describe(e, i) +
              ": update activities choose timestamps at commit, not at "
              "initiation");
        } else {
          stamps.observe_timestamp_event(e, i);
        }
        break;
      case EventKind::kCommit:
        if (ro && e.has_timestamp()) {
          result.violations.push_back(
              describe(e, i) +
              ": read-only activities commit without timestamps");
        }
        if (!ro) {
          if (!e.has_timestamp()) {
            result.violations.push_back(
                describe(e, i) + ": update commits must carry a timestamp");
          } else {
            stamps.observe_timestamp_event(e, i);
          }
        }
        break;
      default:
        break;
    }
    init.observe(e, i);
    base.observe(e, i);
  }

  // Update commit timestamps must be consistent with precedes(h): the
  // paper's §4.3.1 counterexample is rejected because <a,b> ∈ precedes(h)
  // while b's timestamp is smaller than a's.
  const PrecedesRelation rel = h.precedes();
  for (const auto& [a, b] : rel.pairs()) {
    if (read_only.contains(a) || read_only.contains(b)) continue;
    auto ta = h.timestamp_of(a);
    auto tb = h.timestamp_of(b);
    if (ta && tb && *ta >= *tb) {
      result.violations.push_back(
          "precedes(h) contains <" + to_string(a) + "," + to_string(b) +
          "> but commit timestamps are " + std::to_string(*ta) + " >= " +
          std::to_string(*tb));
    }
  }
  return result;
}

}  // namespace argus
