// Parsing the paper's event notation.
//
// Round-trips History::to_string(): one event per line in the form
//   <insert(3),x,a>  <ok,x,a>  <commit,x,a>  <commit(5),x,b>
//   <abort,y,c>      <initiate(2),x,r>       <true,x,a>
// Blank lines and lines starting with '#' are ignored. Objects are
// x,y,z/objN; activities a..z/tN (the inverses of to_string(ObjectId) and
// to_string(ActivityId)).
//
// Multi-site dumps (dist/DistRuntime::merged_trace) stamp events with the
// recording site — "site1: <deposit(5),x,a>" — and interleave the sites'
// fault traces as '#'-comment lines (including site fail/recover events).
// The "siteN:" prefix is stripped: a cross-site dump parses to the same
// merged History the online checkers saw.
//
// Used by the check_history example so histories can be written in a
// file, classified, and compared against the paper by hand.
#pragma once

#include <optional>
#include <string>

#include "hist/history.h"

namespace argus {

struct ParseResult {
  std::optional<History> history;  // nullopt on error
  std::string error;               // first problem found
};

/// Parses one "<...>" event. Result values are interpreted as: "ok" ->
/// unit, "true"/"false" -> bool, integers -> int, anything else ->
/// string. A body with parentheses whose name is "commit"/"initiate" is a
/// timestamped commit/initiation; any other name is an invocation; a bare
/// body that is not commit/abort is a response value.
[[nodiscard]] ParseResult parse_event_line(const std::string& line);

/// Parses a whole multi-line history.
[[nodiscard]] ParseResult parse_history(const std::string& text);

}  // namespace argus
