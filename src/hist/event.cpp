#include "hist/event.h"

namespace argus {

std::string to_string(EventKind k) {
  switch (k) {
    case EventKind::kInvoke:
      return "invoke";
    case EventKind::kRespond:
      return "respond";
    case EventKind::kCommit:
      return "commit";
    case EventKind::kAbort:
      return "abort";
    case EventKind::kInitiate:
      return "initiate";
  }
  return "?";
}

Event invoke(ObjectId x, ActivityId a, Operation op) {
  Event e;
  e.kind = EventKind::kInvoke;
  e.object = x;
  e.activity = a;
  e.operation = std::move(op);
  return e;
}

Event respond(ObjectId x, ActivityId a, Value result) {
  Event e;
  e.kind = EventKind::kRespond;
  e.object = x;
  e.activity = a;
  e.result = std::move(result);
  return e;
}

Event commit(ObjectId x, ActivityId a) {
  Event e;
  e.kind = EventKind::kCommit;
  e.object = x;
  e.activity = a;
  return e;
}

Event commit_at(ObjectId x, ActivityId a, Timestamp t) {
  Event e = commit(x, a);
  e.timestamp = t;
  return e;
}

Event abort(ObjectId x, ActivityId a) {
  Event e;
  e.kind = EventKind::kAbort;
  e.object = x;
  e.activity = a;
  return e;
}

Event initiate(ObjectId x, ActivityId a, Timestamp t) {
  Event e;
  e.kind = EventKind::kInitiate;
  e.object = x;
  e.activity = a;
  e.timestamp = t;
  return e;
}

std::string to_string(const Event& e) {
  std::string body;
  switch (e.kind) {
    case EventKind::kInvoke:
      body = to_string(e.operation);
      break;
    case EventKind::kRespond:
      body = to_string(e.result);
      break;
    case EventKind::kCommit:
      body = e.has_timestamp() ? "commit(" + std::to_string(e.timestamp) + ")"
                               : "commit";
      break;
    case EventKind::kAbort:
      body = "abort";
      break;
    case EventKind::kInitiate:
      body = "initiate(" + std::to_string(e.timestamp) + ")";
      break;
  }
  return "<" + body + "," + to_string(e.object) + "," + to_string(e.activity) +
         ">";
}

}  // namespace argus
