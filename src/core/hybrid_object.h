// HybridAtomicObject<Adt>: an online implementation of hybrid atomicity
// (§4.3).
//
// Updates are processed exactly as in DynamicAtomicObject (intentions
// lists + data-dependent admission). At commit the transaction manager's
// pipeline assigns a timestamp from the Lamport clock (the pipeline's
// tiny timestamp stage), so commit timestamps are consistent with
// precedes at every object (§4.3.3's first required property); applies
// run in commit-timestamp order, so the object appends the transaction's
// operations to a committed log that grows timestamp-sorted and records
// the <commit(t),x,a> event.
//
// Read-only activities choose their timestamp at initiation: their begin
// draws a fresh timestamp and waits until the manager's visibility
// watermark covers it, so every commit below the timestamp has fully
// applied before the activity runs. They then evaluate queries against
// the replayed log prefix below their timestamp — they take no locks,
// hold no intentions, never wait and never abort, and are invisible to
// updates. This realizes the paper's answer to Lamport's audit problem
// (§4.3.3): audits see a full serializable snapshot yet "do not
// interfere with any updates".
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/object_base.h"
#include "core/validation.h"
#include "spec/adt_spec.h"

namespace argus {

template <AdtTraits A>
class HybridAtomicObject final : public ObjectBase {
 public:
  HybridAtomicObject(ObjectId oid, std::string name, TransactionManager& tm,
                     EventSink* recorder)
      : ObjectBase(oid, std::move(name), tm, recorder) {}

  Value invoke(Transaction& txn, const Operation& op) override {
    txn.ensure_active();
    txn.touch(this);
    sched_point(op);
    if (txn.read_only()) return invoke_read_only(txn, op);
    return invoke_update(txn, op);
  }

  void prepare(Transaction& txn) override { txn.ensure_active(); }

  void commit(Transaction& txn, Timestamp commit_ts) override {
    const std::scoped_lock lock(mu_);
    if (txn.read_only()) {
      record(argus::commit(id(), txn.id()));
      return;
    }
    auto it = intentions_.find(txn.id());
    if (it != intentions_.end()) {
      auto states = replay_logged<A>({committed_}, it->second.ops);
      if (!states.empty()) committed_ = std::move(states.front());
      for (LoggedOp& logged : it->second.ops) {
        log_.emplace_back(commit_ts, std::move(logged));
      }
      intentions_.erase(it);
    }
    record(commit_at(id(), txn.id(), commit_ts));
    notify_object();
  }

  void abort(Transaction& txn) override {
    const std::scoped_lock lock(mu_);
    intentions_.erase(txn.id());
    record(argus::abort(id(), txn.id()));
    notify_object();
  }

  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override {
    const std::scoped_lock lock(mu_);
    auto it = intentions_.find(txn.id());
    return it == intentions_.end() ? std::vector<LoggedOp>{} : it->second.ops;
  }

  void reset_for_recovery() override {
    const std::scoped_lock lock(mu_);
    committed_ = A::initial();
    log_.clear();
    intentions_.clear();
    initiated_.clear();
    notify_object();
  }

  void replay(const ReplayContext& ctx, const LoggedOp& logged) override {
    const std::scoped_lock lock(mu_);
    auto states = replay_logged<A>({committed_}, {logged});
    if (states.empty()) {
      throw UsageError("recovery replay diverged at " + name() + " for " +
                       to_string(logged.op));
    }
    committed_ = std::move(states.front());
    log_.emplace_back(ctx.commit_ts, logged);
  }

  [[nodiscard]] typename A::State committed_state() const {
    const std::scoped_lock lock(mu_);
    return committed_;
  }

 private:
  struct TxnEntry {
    std::weak_ptr<Transaction> owner;
    std::vector<LoggedOp> ops;
  };

  Value invoke_read_only(Transaction& txn, const Operation& op) {
    if (!A::is_read_only(op)) {
      throw UsageError("read-only transaction invoked mutator " +
                       to_string(op) + " on " + name());
    }
    const Timestamp t = txn.start_ts();
    const std::scoped_lock lock(mu_);
    if (initiated_.insert(txn.id()).second) {
      record(initiate(id(), txn.id(), t));
    }
    record(argus::invoke(id(), txn.id(), op));

    // The view at t: committed operations with timestamps strictly below
    // t. The log is timestamp-ordered (applies run in commit-timestamp
    // order, and recovery replays the timestamp-sorted stable log), and
    // the watermark guaranteed every commit below t had fully applied
    // before this activity's begin returned, so this is a true prefix.
    std::vector<LoggedOp> prefix;
    for (const auto& [ts, logged] : log_) {
      if (ts >= t) break;
      prefix.push_back(logged);
    }
    auto states = replay_logged<A>({A::initial()}, prefix);
    if (states.empty()) {
      throw UsageError("committed log not replayable at " + name());
    }
    const auto outcomes = A::step(states.front(), op);
    if (outcomes.empty()) {
      throw UsageError("read-only operation " + to_string(op) +
                       " not enabled at snapshot of " + name());
    }
    record(respond(id(), txn.id(), outcomes.front().first));
    return outcomes.front().first;
  }

  Value invoke_update(Transaction& txn, const Operation& op) {
    std::unique_lock lock(mu_);
    record(argus::invoke(id(), txn.id(), op));

    std::optional<Value> result;
    await(
        lock, txn, [&] { return (result = try_admit(txn, op)).has_value(); },
        [&] { return blockers(txn); });

    record(respond(id(), txn.id(), *result));
    return *result;
  }

  // Same data-dependent admission as DynamicAtomicObject: hybrid
  // atomicity processes updates using dynamic atomicity (§4.3).
  std::optional<Value> try_admit(Transaction& txn, const Operation& op) {
    auto& mine = intentions_[txn.id()];
    mine.owner = txn.weak_from_this();

    auto view = replay_logged<A>({committed_}, mine.ops);
    if (view.empty()) return std::nullopt;

    std::vector<const std::vector<LoggedOp>*> others;
    bool all_static_commute = true;
    for (const auto& [aid, entry] : intentions_) {
      if (aid == txn.id() || entry.ops.empty()) continue;
      others.push_back(&entry.ops);
      for (const LoggedOp& held : entry.ops) {
        if (!A::static_commutes(op, held.op)) all_static_commute = false;
      }
    }

    for (const auto& [result, next] : A::step(view.front(), op)) {
      bool admit = others.empty() || all_static_commute;
      std::vector<LoggedOp> self = mine.ops;
      self.push_back(LoggedOp{op, result});
      if (!admit && others.size() <= kMaxExactValidation) {
        admit = validate_all_orders<A>(committed_, others, self);
      }
      if (admit) {
        mine.ops = std::move(self);
        return result;
      }
    }
    return std::nullopt;
  }

  std::vector<std::shared_ptr<Transaction>> blockers(const Transaction& txn) {
    std::vector<std::shared_ptr<Transaction>> out;
    for (const auto& [aid, entry] : intentions_) {
      if (aid == txn.id() || entry.ops.empty()) continue;
      if (auto t = entry.owner.lock(); t && t->active()) {
        out.push_back(std::move(t));
      }
    }
    return out;
  }

  typename A::State committed_ = A::initial();        // guarded by mu_
  std::vector<std::pair<Timestamp, LoggedOp>> log_;   // guarded by mu_
  std::map<ActivityId, TxnEntry> intentions_;         // guarded by mu_
  std::set<ActivityId> initiated_;                    // guarded by mu_
};

}  // namespace argus
