// HybridFifoQueue: a type-specific hybrid-atomic FIFO queue exploiting
// commit-time serialization.
//
// This is the object the generic machinery cannot match. Under hybrid
// atomicity the serialization order of updates is the commit order, fixed
// only when transactions commit. The queue exploits that:
//
//   * enqueue never conflicts with anything: tentative enqueues sit in the
//     enqueuing transaction's intentions list and are appended to the
//     committed queue *at commit*, in commit order. Two transactions may
//     interleave enqueues of different values — inadmissible under any
//     conflict-table protocol (enqueue(1) vs enqueue(2) don't commute,
//     §5.1) and not even expressible in the scheduler model of Fig 5-1,
//     because the storage module would fix the interleaved order.
//   * dequeue takes the committed front (beyond the caller's own
//     tentative operations). It must wait while any *other* transaction
//     has tentative dequeues (if that transaction aborted, the front
//     would change) and while the visible queue is empty (the eventual
//     front depends on who commits first).
//
// Benchmark E1 measures the resulting concurrency gap on a
// producer/consumer workload.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/object_base.h"
#include "spec/adts/fifo_queue.h"
#include "txn/stable_log.h"

namespace argus {

class HybridFifoQueue final : public ObjectBase {
 public:
  HybridFifoQueue(ObjectId oid, std::string name, TransactionManager& tm,
                  EventSink* recorder);

  Value invoke(Transaction& txn, const Operation& op) override;
  void prepare(Transaction& txn) override;
  void commit(Transaction& txn, Timestamp commit_ts) override;
  void abort(Transaction& txn) override;
  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override;
  void reset_for_recovery() override;
  void replay(const ReplayContext& ctx, const LoggedOp& logged) override;

  /// Test hook: the committed queue contents.
  [[nodiscard]] std::vector<std::int64_t> committed_items() const;

 private:
  struct TxnEntry {
    std::weak_ptr<Transaction> owner;
    std::vector<LoggedOp> ops;  // enqueue/dequeue in execution order
    std::size_t dequeued{0};    // how many committed items it holds tentatively
  };

  Value invoke_read_only(Transaction& txn, const Operation& op);
  Value invoke_update(Transaction& txn, const Operation& op);

  [[nodiscard]] bool other_has_tentative_dequeue(ActivityId self) const;
  std::vector<std::shared_ptr<Transaction>> dequeue_blockers(ActivityId self);

  std::vector<std::int64_t> committed_;              // guarded by mu_
  std::vector<std::pair<Timestamp, LoggedOp>> log_;  // committed ops by ts
  std::map<ActivityId, TxnEntry> intentions_;        // guarded by mu_
  std::set<ActivityId> initiated_;                   // guarded by mu_
};

}  // namespace argus
