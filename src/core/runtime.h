// Runtime: owns the transaction manager, the observability stack (flight
// recorder, metrics registry, optional atomicity sentinel), the objects,
// and the system specification mirror used to check recorded histories
// against the formal definitions.
//
// Typical use:
//
//   Runtime rt;
//   auto acct = rt.create_dynamic<BankAccountAdt>("checking");
//   auto tx = rt.begin();
//   acct->invoke(*tx, account::deposit(100));
//   rt.commit(tx);
//   auto verdict = check_dynamic_atomic(rt.system(), rt.history());
//
// Observability (see DESIGN.md "Observability"):
//
//   * Events are captured by a sharded FlightRecorder stamped from the
//     manager's Lamport clock (RecorderMode::kFlight, the default); the
//     seed's global-mutex HistoryRecorder remains available as
//     kLegacyMutex for comparison, and kOff disables capture.
//   * metrics() is a MetricsRegistry pre-wired with collectors for the
//     commit pipeline, clock/watermark, per-object counters, recorder
//     and recovery — export with metrics().prometheus_text() / .json().
//   * start_sentinel() attaches an AtomicitySentinel that continuously
//     checks the committed projection of the recorded history
//     (create objects first; the sentinel snapshots the system spec).
//
// crash()/recover() simulate a whole-node failure: crash dooms every
// active transaction (their threads unwind with TransactionAborted) and
// drains the commit pipeline — group-commit records not yet forced are
// discarded and their committers abort, while records already forced
// complete their apply. If a crash-dump path is set, crash() also writes
// the flight-recorder tail in the parse.h notation so the last moments
// before the failure can be replayed through examples/check_history_file.
// After the caller has joined its worker threads, recover() resets every
// object and replays the stable intentions log (forced records only, in
// commit-timestamp order), restoring exactly the committed effects.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/system.h"
#include "core/cc_mode.h"
#include "core/dynamic_object.h"
#include "core/executor_stats.h"
#include "fault/fault.h"
#include "core/hybrid_bag.h"
#include "core/hybrid_object.h"
#include "core/hybrid_queue.h"
#include "core/occ_object.h"
#include "core/static_object.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/sentinel.h"
#include "txn/manager.h"
#include "txn/recorder.h"

namespace argus {

/// How the runtime's blocking points are scheduled. kOs (the default) is
/// byte-identical to the pre-dsched runtime: plain mutexes and condition
/// variables under OS scheduling. kDeterministic routes every blocking
/// point through a WaitPolicy (src/dsched) so a cooperative scheduler
/// owns every context switch and runs replay byte-for-byte.
enum class SchedMode {
  kOs,
  kDeterministic,
};

class Runtime {
 public:
  enum class RecorderMode {
    kOff,          // no capture (objects get a null sink)
    kFlight,       // sharded flight recorder (default)
    kLegacyMutex,  // seed behaviour: one global mutex (HistoryRecorder)
  };

  explicit Runtime(RecorderMode mode,
                   FlightRecorderOptions recorder_options = {})
      : Runtime(mode, SchedMode::kOs, nullptr, std::move(recorder_options)) {}

  /// Deterministic-scheduling construction: every blocking point in this
  /// runtime routes through `policy` (required non-null for
  /// kDeterministic; must outlive the Runtime). Workload threads must be
  /// spawned as lanes of the owning DeterministicScheduler.
  Runtime(RecorderMode mode, SchedMode sched_mode, WaitPolicy* policy,
          FlightRecorderOptions recorder_options = {});

  /// Back-compat: `record_history` false maps to kOff, true to kFlight.
  explicit Runtime(bool record_history = true)
      : Runtime(record_history ? RecorderMode::kFlight : RecorderMode::kOff) {}

  ~Runtime();

  [[nodiscard]] TransactionManager& tm() { return tm_; }

  /// The sink protocol objects record through; nullptr iff capture is
  /// off.
  [[nodiscard]] EventSink* recorder() {
    switch (mode_) {
      case RecorderMode::kOff:
        return nullptr;
      case RecorderMode::kFlight:
        return flight_.get();
      case RecorderMode::kLegacyMutex:
        return legacy_.get();
    }
    return nullptr;
  }

  [[nodiscard]] RecorderMode recorder_mode() const { return mode_; }
  [[nodiscard]] SchedMode sched_mode() const { return sched_mode_; }
  /// The deterministic wait policy (nullptr in SchedMode::kOs).
  [[nodiscard]] WaitPolicy* wait_policy() const { return wait_policy_; }
  [[nodiscard]] bool recording() const { return mode_ != RecorderMode::kOff; }

  /// The flight recorder (nullptr unless the mode is kFlight).
  [[nodiscard]] FlightRecorder* flight_recorder() { return flight_.get(); }

  [[nodiscard]] const SystemSpec& system() const { return system_; }

  /// The recorded global history so far. With recording off this is
  /// explicitly the empty history — check recording() (or recorder() !=
  /// nullptr) to distinguish "no events yet" from "not recording".
  [[nodiscard]] History history() const;

  /// The runtime-wide metrics registry (commit pipeline, clock and
  /// watermark, per-object counters, recorder, recovery, sentinel).
  [[nodiscard]] MetricsRegistry& metrics() { return *metrics_; }

  /// Starts the online atomicity sentinel over the flight recorder.
  /// Requires RecorderMode::kFlight; create objects first (the sentinel
  /// snapshots the system spec). Returns the running sentinel.
  AtomicitySentinel& start_sentinel(SentinelOptions options = {});

  /// Runtime-level sentinel defaults: any SentinelOptions field left at
  /// its built-in default in a later start_sentinel() call is filled
  /// from here, making window, checkpoint_threshold and check mode
  /// first-class runtime configuration (deploy-time policy) instead of
  /// per-call-site arguments.
  void set_sentinel_defaults(SentinelOptions defaults) {
    sentinel_defaults_ = std::move(defaults);
  }
  [[nodiscard]] const SentinelOptions& sentinel_defaults() const {
    return sentinel_defaults_;
  }

  /// Stops and destroys the sentinel, if one is running (its final
  /// window flushes whatever the recorder still holds).
  void stop_sentinel();

  [[nodiscard]] AtomicitySentinel* sentinel() { return sentinel_.get(); }

  /// When set, crash() writes the last `events` flight-recorder events
  /// to `path` in the parse.h notation (replayable by
  /// examples/check_history_file). With a fault injector attached the
  /// dump also carries the fault trace as '#'-comment lines.
  void set_crash_dump(std::string path, std::size_t events = 4096) {
    crash_dump_path_ = std::move(path);
    crash_dump_events_ = events;
  }

  /// Attaches (or, with nullptr, detaches) a deterministic fault
  /// injector: wires it through the stable log, the commit pipeline's
  /// crash points and every object wait path, stamps its trace from the
  /// runtime clock, makes its crash hook this->crash(), and exports
  /// argus_fault_* metrics. See src/fault/fault.h.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// The attached injector (nullptr when fault injection is off).
  [[nodiscard]] FaultInjector* fault_injector() const;

  std::shared_ptr<Transaction> begin() { return tm_.begin(TxnKind::kUpdate); }
  std::shared_ptr<Transaction> begin_read_only() {
    return tm_.begin(TxnKind::kReadOnly);
  }
  void commit(const std::shared_ptr<Transaction>& t) { tm_.commit(t); }
  void abort(const std::shared_ptr<Transaction>& t) { tm_.abort(t); }

  template <AdtTraits A>
  std::shared_ptr<DynamicAtomicObject<A>> create_dynamic(
      const std::string& name) {
    return create_impl<DynamicAtomicObject<A>, A>(name);
  }

  template <AdtTraits A>
  std::shared_ptr<StaticAtomicObject<A>> create_static(
      const std::string& name) {
    return create_impl<StaticAtomicObject<A>, A>(name);
  }

  template <AdtTraits A>
  std::shared_ptr<HybridAtomicObject<A>> create_hybrid(
      const std::string& name) {
    return create_impl<HybridAtomicObject<A>, A>(name);
  }

  template <AdtTraits A>
  std::shared_ptr<OccAtomicObject<A>> create_occ(const std::string& name) {
    return create_occ_impl<A>(name, OccStorage::kSingleVersion);
  }

  template <AdtTraits A>
  std::shared_ptr<OccAtomicObject<A>> create_mvcc(const std::string& name) {
    return create_occ_impl<A>(name, OccStorage::kMultiVersion);
  }

  std::shared_ptr<HybridFifoQueue> create_hybrid_queue(const std::string& name);

  std::shared_ptr<HybridBag> create_hybrid_bag(const std::string& name);

  /// Registers an externally constructed object (used by the
  /// scheduler-model baselines in src/sched). The ObjectId must have been
  /// obtained from allocate_object_id().
  void adopt(std::shared_ptr<ManagedObject> object,
             std::shared_ptr<const SequentialSpec> spec);

  [[nodiscard]] ObjectId allocate_object_id() {
    return ObjectId{next_object_id_++};
  }

  /// Starts object-id allocation at `base` (multi-site deployments give
  /// each Site's runtime a disjoint id range, so the merged cross-site
  /// SystemSpec and history never alias two sites' objects). Call before
  /// creating any object.
  void set_object_id_base(std::uint64_t base) { next_object_id_ = base; }

  [[nodiscard]] std::shared_ptr<ManagedObject> object(ObjectId id) const;
  [[nodiscard]] std::vector<std::shared_ptr<ManagedObject>> objects() const;

  /// Sets the blocking-wait timeout on every object created so far
  /// (benchmarks use short timeouts so pathological waits convert to
  /// aborts+retries instead of stalling the run).
  void set_wait_timeout_all(std::chrono::milliseconds timeout);

  /// The concurrency-control mode this runtime is driven under. Purely
  /// informational for mixed-protocol runtimes (default kDynamic keeps
  /// every metric live); under kOcc/kMvcc the lock-only telemetry —
  /// argus_deadlocks_resolved_total and the argus_object_wait* series —
  /// is suppressed, since those objects never block and the deadlock
  /// detector never runs.
  void set_cc_mode(CCMode mode) {
    cc_mode_.store(mode, std::memory_order_release);
  }
  [[nodiscard]] CCMode cc_mode() const {
    return cc_mode_.load(std::memory_order_acquire);
  }

  /// Publishes a TxnExecutor's stats block to the argus_executor_*
  /// metrics (latest pool wins; nullptr detaches). The runtime keeps the
  /// shared_ptr so scrapes outliving the pool read its final values.
  void set_executor_stats(std::shared_ptr<const ExecutorStatsBlock> stats);

  /// Node failure: dooms all active transactions and discards un-forced
  /// group-commit records; writes the crash dump if configured. Join
  /// your worker threads, then call recover().
  void crash();

  /// Rebuilds every object from the stable intentions log.
  void recover();

 private:
  template <typename Obj, AdtTraits A>
  std::shared_ptr<Obj> create_impl(const std::string& name) {
    const ObjectId oid = allocate_object_id();
    auto obj = std::make_shared<Obj>(oid, name, tm_, recorder());
    objects_[oid] = obj;
    system_.add_object(oid, std::make_shared<AdtSpec<A>>());
    return obj;
  }

  template <AdtTraits A>
  std::shared_ptr<OccAtomicObject<A>> create_occ_impl(const std::string& name,
                                                      OccStorage storage) {
    const ObjectId oid = allocate_object_id();
    auto obj =
        std::make_shared<OccAtomicObject<A>>(oid, name, tm_, recorder(),
                                             storage);
    objects_[oid] = obj;
    system_.add_object(oid, std::make_shared<AdtSpec<A>>());
    return obj;
  }

  void register_collectors();

  RecorderMode mode_;
  SchedMode sched_mode_{SchedMode::kOs};
  WaitPolicy* wait_policy_{nullptr};
  std::atomic<CCMode> cc_mode_{CCMode::kDynamic};
  TransactionManager tm_;
  mutable std::mutex fault_mu_;  // guards fault_injector_ (scrapes race sets)
  std::shared_ptr<FaultInjector> fault_injector_;
  mutable std::mutex executor_mu_;  // guards executor_stats_ vs scrapes
  std::shared_ptr<const ExecutorStatsBlock> executor_stats_;
  std::unique_ptr<FlightRecorder> flight_;   // kFlight mode
  std::unique_ptr<HistoryRecorder> legacy_;  // kLegacyMutex mode
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<AtomicitySentinel> sentinel_;
  SentinelOptions sentinel_defaults_;
  SystemSpec system_;
  std::string crash_dump_path_;
  std::size_t crash_dump_events_{4096};
  std::atomic<std::uint64_t> recovery_replayed_records_{0};
  std::atomic<std::uint64_t> recovery_replayed_ops_{0};
  std::uint64_t next_object_id_{0};
  std::unordered_map<ObjectId, std::shared_ptr<ManagedObject>> objects_;
};

}  // namespace argus
