// Runtime: owns the transaction manager, the (optional) history recorder,
// the objects, and the system specification mirror used to check recorded
// histories against the formal definitions.
//
// Typical use:
//
//   Runtime rt;
//   auto acct = rt.create_dynamic<BankAccountAdt>("checking");
//   auto tx = rt.begin();
//   acct->invoke(*tx, account::deposit(100));
//   rt.commit(tx);
//   auto verdict = check_dynamic_atomic(rt.system(), rt.history());
//
// crash()/recover() simulate a whole-node failure: crash dooms every
// active transaction (their threads unwind with TransactionAborted) and
// drains the commit pipeline — group-commit records not yet forced are
// discarded and their committers abort, while records already forced
// complete their apply. After the caller has joined its worker threads,
// recover() resets every object and replays the stable intentions log
// (forced records only, in commit-timestamp order), restoring exactly
// the committed effects.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/system.h"
#include "core/dynamic_object.h"
#include "core/hybrid_bag.h"
#include "core/hybrid_object.h"
#include "core/hybrid_queue.h"
#include "core/static_object.h"
#include "txn/manager.h"
#include "txn/recorder.h"

namespace argus {

class Runtime {
 public:
  /// `record_history` disables event capture when false (benchmarks).
  explicit Runtime(bool record_history = true);

  [[nodiscard]] TransactionManager& tm() { return tm_; }
  [[nodiscard]] HistoryRecorder* recorder() {
    return recording_ ? &recorder_ : nullptr;
  }
  [[nodiscard]] const SystemSpec& system() const { return system_; }

  /// The recorded global history so far.
  [[nodiscard]] History history() const { return recorder_.snapshot(); }

  std::shared_ptr<Transaction> begin() { return tm_.begin(TxnKind::kUpdate); }
  std::shared_ptr<Transaction> begin_read_only() {
    return tm_.begin(TxnKind::kReadOnly);
  }
  void commit(const std::shared_ptr<Transaction>& t) { tm_.commit(t); }
  void abort(const std::shared_ptr<Transaction>& t) { tm_.abort(t); }

  template <AdtTraits A>
  std::shared_ptr<DynamicAtomicObject<A>> create_dynamic(
      const std::string& name) {
    return create_impl<DynamicAtomicObject<A>, A>(name);
  }

  template <AdtTraits A>
  std::shared_ptr<StaticAtomicObject<A>> create_static(
      const std::string& name) {
    return create_impl<StaticAtomicObject<A>, A>(name);
  }

  template <AdtTraits A>
  std::shared_ptr<HybridAtomicObject<A>> create_hybrid(
      const std::string& name) {
    return create_impl<HybridAtomicObject<A>, A>(name);
  }

  std::shared_ptr<HybridFifoQueue> create_hybrid_queue(const std::string& name);

  std::shared_ptr<HybridBag> create_hybrid_bag(const std::string& name);

  /// Registers an externally constructed object (used by the
  /// scheduler-model baselines in src/sched). The ObjectId must have been
  /// obtained from allocate_object_id().
  void adopt(std::shared_ptr<ManagedObject> object,
             std::shared_ptr<const SequentialSpec> spec);

  [[nodiscard]] ObjectId allocate_object_id() {
    return ObjectId{next_object_id_++};
  }

  [[nodiscard]] std::shared_ptr<ManagedObject> object(ObjectId id) const;
  [[nodiscard]] std::vector<std::shared_ptr<ManagedObject>> objects() const;

  /// Sets the blocking-wait timeout on every object created so far
  /// (benchmarks use short timeouts so pathological waits convert to
  /// aborts+retries instead of stalling the run).
  void set_wait_timeout_all(std::chrono::milliseconds timeout);

  /// Node failure: dooms all active transactions and discards un-forced
  /// group-commit records. Join your worker threads, then call recover().
  void crash();

  /// Rebuilds every object from the stable intentions log.
  void recover();

 private:
  template <typename Obj, AdtTraits A>
  std::shared_ptr<Obj> create_impl(const std::string& name) {
    const ObjectId oid = allocate_object_id();
    auto obj = std::make_shared<Obj>(oid, name, tm_, recorder());
    objects_[oid] = obj;
    system_.add_object(oid, std::make_shared<AdtSpec<A>>());
    return obj;
  }

  bool recording_;
  TransactionManager tm_;
  HistoryRecorder recorder_;
  SystemSpec system_;
  std::uint64_t next_object_id_{0};
  std::unordered_map<ObjectId, std::shared_ptr<ManagedObject>> objects_;
};

}  // namespace argus
