#include "core/hybrid_bag.h"

namespace argus {

HybridBag::HybridBag(ObjectId oid, std::string name, TransactionManager& tm,
                     EventSink* recorder)
    : ObjectBase(oid, std::move(name), tm, recorder) {}

Value HybridBag::invoke(Transaction& txn, const Operation& op) {
  txn.ensure_active();
  txn.touch(this);
  sched_point(op);
  if (txn.read_only()) return invoke_read_only(txn, op);
  return invoke_update(txn, op);
}

Value HybridBag::invoke_read_only(Transaction& txn, const Operation& op) {
  if (!BagAdt::is_read_only(op)) {
    throw UsageError("read-only transaction invoked mutator " + to_string(op) +
                     " on " + name());
  }
  const Timestamp t = txn.start_ts();
  const std::scoped_lock lock(mu_);
  if (initiated_.insert(txn.id()).second) {
    record(initiate(id(), txn.id(), t));
  }
  record(argus::invoke(id(), txn.id(), op));

  // Snapshot below t by replaying the committed op log prefix.
  BagAdt::State state;
  for (const auto& [ts, logged] : log_) {
    if (ts >= t) break;
    for (auto& [result, next] : BagAdt::step(state, logged.op)) {
      if (result == logged.result) {
        state = std::move(next);
        break;
      }
    }
  }
  const auto outcomes = BagAdt::step(state, op);
  if (outcomes.empty()) {
    throw UsageError("read-only operation " + to_string(op) +
                     " not enabled at snapshot of " + name());
  }
  record(respond(id(), txn.id(), outcomes.front().first));
  return outcomes.front().first;
}

Value HybridBag::invoke_update(Transaction& txn, const Operation& op) {
  std::unique_lock lock(mu_);
  record(argus::invoke(id(), txn.id(), op));

  auto& mine = intentions_[txn.id()];
  mine.owner = txn.weak_from_this();

  Value result;
  if (op.name == "insert" && op.args.size() == 1 && op.args[0].is_int()) {
    result = ok();
    mine.ops.push_back(LoggedOp{op, result});
  } else if (op.name == "remove" && op.args.empty()) {
    // Claim any committed unclaimed instance; the nondeterministic
    // specification makes any choice serially acceptable, and claims
    // are disjoint so concurrent removers never conflict.
    std::optional<std::int64_t> pick;
    await(
        lock, txn, [&] { return (pick = unclaimed_element()).has_value(); },
        [&] { return blockers(txn.id()); });
    result = Value{*pick};
    ++mine.claims[*pick];
    mine.ops.push_back(LoggedOp{op, result});
  } else if (op.name == "size" && op.args.empty()) {
    throw UsageError(
        "HybridBag: size is only available to read-only transactions; use "
        "Runtime::begin_read_only");
  } else {
    throw UsageError("unknown bag operation " + to_string(op));
  }

  record(respond(id(), txn.id(), result));
  return result;
}

std::optional<std::int64_t> HybridBag::unclaimed_element() const {
  for (const auto& [elem, count] : committed_) {
    std::int64_t claimed = 0;
    for (const auto& [aid, entry] : intentions_) {
      auto it = entry.claims.find(elem);
      if (it != entry.claims.end()) claimed += it->second;
    }
    if (claimed < count) return elem;
  }
  return std::nullopt;
}

std::vector<std::shared_ptr<Transaction>> HybridBag::blockers(
    ActivityId self) {
  std::vector<std::shared_ptr<Transaction>> out;
  for (const auto& [aid, entry] : intentions_) {
    if (aid == self || entry.ops.empty()) continue;
    if (auto t = entry.owner.lock(); t && t->active()) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

void HybridBag::prepare(Transaction& txn) { txn.ensure_active(); }

void HybridBag::commit(Transaction& txn, Timestamp commit_ts) {
  const std::scoped_lock lock(mu_);
  if (txn.read_only()) {
    record(argus::commit(id(), txn.id()));
    return;
  }
  auto it = intentions_.find(txn.id());
  if (it != intentions_.end()) {
    for (const auto& [elem, count] : it->second.claims) {
      auto cit = committed_.find(elem);
      if (cit != committed_.end()) {
        cit->second -= count;
        if (cit->second <= 0) committed_.erase(cit);
      }
    }
    for (LoggedOp& logged : it->second.ops) {
      if (logged.op.name == "insert") {
        ++committed_[logged.op.args[0].as_int()];
      }
      log_.emplace_back(commit_ts, std::move(logged));
    }
    intentions_.erase(it);
  }
  record(commit_at(id(), txn.id(), commit_ts));
  notify_object();
}

void HybridBag::abort(Transaction& txn) {
  const std::scoped_lock lock(mu_);
  intentions_.erase(txn.id());  // claims released with the entry
  record(argus::abort(id(), txn.id()));
  notify_object();
}

std::vector<LoggedOp> HybridBag::intentions_of(const Transaction& txn) const {
  const std::scoped_lock lock(mu_);
  auto it = intentions_.find(txn.id());
  return it == intentions_.end() ? std::vector<LoggedOp>{} : it->second.ops;
}

void HybridBag::reset_for_recovery() {
  const std::scoped_lock lock(mu_);
  committed_.clear();
  log_.clear();
  intentions_.clear();
  initiated_.clear();
  notify_object();
}

void HybridBag::replay(const ReplayContext& ctx, const LoggedOp& logged) {
  const std::scoped_lock lock(mu_);
  if (logged.op.name == "insert") {
    ++committed_[logged.op.args[0].as_int()];
  } else if (logged.op.name == "remove" && logged.result.is_int()) {
    auto it = committed_.find(logged.result.as_int());
    if (it != committed_.end() && --it->second <= 0) committed_.erase(it);
  }
  log_.emplace_back(ctx.commit_ts, logged);
}

std::map<std::int64_t, std::int64_t> HybridBag::committed_contents() const {
  const std::scoped_lock lock(mu_);
  return committed_;
}

}  // namespace argus
