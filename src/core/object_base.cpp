#include "core/object_base.h"

#include "common/scope_guard.h"
#include "fault/fault.h"

namespace argus {

void ObjectBase::await(
    std::unique_lock<std::mutex>& lock, Transaction& txn,
    const std::function<bool()>& pred,
    const std::function<std::vector<std::shared_ptr<Transaction>>()>&
        blockers) {
  if (pred()) return;

  waits_.fetch_add(1, std::memory_order_relaxed);
  txn.set_waiting_at(this);
  const auto cleanup = on_scope_exit([&] {
    txn.set_waiting_at(nullptr);
    tm_.detector().clear_wait(txn.id());
  });

  // Under a deterministic scheduler the liveness deadline is virtual:
  // it expires when the schedule has advanced virtual time past it, not
  // when the wall clock has — so wait timeouts replay byte-for-byte.
  WaitPolicy* policy = tm_.wait_policy();
  const std::uint64_t timeout_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wait_timeout_)
          .count());
  const std::uint64_t virtual_deadline =
      policy != nullptr ? policy->now_us() + timeout_us : 0;
  const auto deadline = std::chrono::steady_clock::now() + wait_timeout_;
  while (!pred()) {
    if (txn.doomed()) {
      if (txn.doom_reason() == AbortReason::kDeadlock) {
        deadlock_dooms_.fetch_add(1, std::memory_order_relaxed);
      }
      throw TransactionAborted(txn.id(), txn.doom_reason());
    }
    const bool expired = policy != nullptr
                             ? policy->now_us() >= virtual_deadline
                             : std::chrono::steady_clock::now() >= deadline;
    if (expired) {
      wait_timeouts_.fetch_add(1, std::memory_order_relaxed);
      txn.doom(AbortReason::kWaitTimeout);
      continue;  // next iteration throws
    }

    const auto holders = blockers();
    if (!holders.empty()) {
      if (auto victim =
              tm_.detector().add_wait(txn.shared_from_this(), holders)) {
        if (victim->id() == txn.id()) continue;  // we are doomed; loop throws
        if (ManagedObject* at = victim->waiting_at()) at->wake_all();
      }
    }

    // Fault injection on the wait path: a spurious timeout dooms this
    // waiter exactly like a real deadline expiry (the next iteration
    // throws); a delayed wakeup stretches this wait round, modelling a
    // lost notification.
    auto round = std::chrono::microseconds(2000);
    if (FaultInjector* fault = tm_.fault_injector()) {
      const auto decision = fault->on_wait();
      if (decision.spurious_timeout) {
        wait_timeouts_.fetch_add(1, std::memory_order_relaxed);
        txn.doom(AbortReason::kWaitTimeout);
        continue;  // next iteration throws
      }
      round += std::chrono::microseconds(decision.extra_delay_us);
    }

    // Short bound on each wait round: doom and blocker sets can change
    // without a notification reaching this condition variable.
    if (policy == nullptr) {
      cv_.wait_for(lock, round);
    } else {
      LaneHint hint;
      hint.point = WaitPoint::kObjectWait;
      hint.object = id();
      hint.has_object = true;
      policy->wait_round(hint, &cv_, lock, cv_, round);
    }
  }
}

}  // namespace argus
