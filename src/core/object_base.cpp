#include "core/object_base.h"

#include "common/scope_guard.h"

namespace argus {

void ObjectBase::await(
    std::unique_lock<std::mutex>& lock, Transaction& txn,
    const std::function<bool()>& pred,
    const std::function<std::vector<std::shared_ptr<Transaction>>()>&
        blockers) {
  if (pred()) return;

  waits_.fetch_add(1, std::memory_order_relaxed);
  txn.set_waiting_at(this);
  const auto cleanup = on_scope_exit([&] {
    txn.set_waiting_at(nullptr);
    tm_.detector().clear_wait(txn.id());
  });

  const auto deadline = std::chrono::steady_clock::now() + wait_timeout_;
  while (!pred()) {
    if (txn.doomed()) {
      if (txn.doom_reason() == AbortReason::kDeadlock) {
        deadlock_dooms_.fetch_add(1, std::memory_order_relaxed);
      }
      throw TransactionAborted(txn.id(), txn.doom_reason());
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      wait_timeouts_.fetch_add(1, std::memory_order_relaxed);
      txn.doom(AbortReason::kWaitTimeout);
      continue;  // next iteration throws
    }

    const auto holders = blockers();
    if (!holders.empty()) {
      if (auto victim =
              tm_.detector().add_wait(txn.shared_from_this(), holders)) {
        if (victim->id() == txn.id()) continue;  // we are doomed; loop throws
        if (ManagedObject* at = victim->waiting_at()) at->wake_all();
      }
    }

    // Short bound on each wait round: doom and blocker sets can change
    // without a notification reaching this condition variable.
    cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

}  // namespace argus
