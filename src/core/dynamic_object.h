// DynamicAtomicObject<Adt>: an online implementation of dynamic atomicity
// (§4.1) for an arbitrary ADT.
//
// Protocol (intentions lists + data-dependent admission):
//   * Each active transaction's executed operations are buffered in an
//     intentions list; its view is the committed state plus its own
//     intentions. Nothing tentative is ever visible to other
//     transactions, which is what makes aborts free (discard the list) —
//     the [Lampson & Sturgis]-style recovery the paper pairs with locking.
//   * A new operation is admitted only if every recorded result stays
//     reproducible under *every* subset and ordering of the concurrently
//     active transactions (core/validation.h) — the §4.1 requirement that
//     perm(h) be serializable in every precedes-consistent order,
//     restricted to what can still change. Otherwise the caller blocks
//     until conflicting transactions commit or abort (lock-style waiting,
//     with deadlock detection).
//   * Commit folds the intentions into the committed state; the commit
//     event is recorded inside the same critical section, so any response
//     that observed the commit is ordered after it in the history —
//     making the recorded precedes relation faithful.
//
// The admission test subsumes commutativity locking: a fast path admits
// operations that statically commute with everything pending; the exact
// test additionally admits the §5.1 interleavings (concurrent covered
// withdraws, equal-value enqueues) that conflict tables must reject.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/object_base.h"
#include "core/validation.h"
#include "spec/adt_spec.h"

namespace argus {

/// How much data-dependent information the admission test may use — the
/// ablation axis of bench_ablation. kConflictTableOnly reduces the object
/// to classical commutativity locking (the §5.1 comparators) while
/// keeping everything else identical; kExact adds the state-dependent
/// all-orders validation on top of the fast path.
enum class AdmissionMode {
  kExact,
  kConflictTableOnly,
  /// Admits every enabled operation without any validation — a
  /// deliberately broken protocol. Exists only as a seeded regression for
  /// the deterministic-schedule explorer: runs under it must produce
  /// atomicity violations that the checkers catch and the explorer
  /// minimizes to a replayable schedule. Never use outside tests.
  kChaosAdmitAll,
};

template <AdtTraits A>
class DynamicAtomicObject final : public ObjectBase {
 public:
  DynamicAtomicObject(ObjectId oid, std::string name, TransactionManager& tm,
                      EventSink* recorder,
                      AdmissionMode mode = AdmissionMode::kExact)
      : ObjectBase(oid, std::move(name), tm, recorder), mode_(mode) {}

  Value invoke(Transaction& txn, const Operation& op) override {
    txn.ensure_active();
    if (txn.read_only() && !A::is_read_only(op)) {
      throw UsageError("read-only transaction invoked mutator " +
                       to_string(op) + " on " + name());
    }
    txn.touch(this);
    sched_point(op);

    std::unique_lock lock(mu_);
    record(argus::invoke(id(), txn.id(), op));

    std::optional<Value> result;
    await(
        lock, txn, [&] { return (result = try_admit(txn, op)).has_value(); },
        [&] { return blockers(txn); });

    record(respond(id(), txn.id(), *result));
    return *result;
  }

  void prepare(Transaction& txn) override { txn.ensure_active(); }

  void commit(Transaction& txn, Timestamp /*commit_ts*/) override {
    const std::scoped_lock lock(mu_);
    auto it = intentions_.find(txn.id());
    if (it != intentions_.end()) {
      auto states = replay_logged<A>({committed_}, it->second.ops);
      // Admission maintained replayability; an empty set here would mean
      // the invariant was broken.
      if (!states.empty()) committed_ = std::move(states.front());
      intentions_.erase(it);
    }
    record(argus::commit(id(), txn.id()));
    notify_object();
  }

  void abort(Transaction& txn) override {
    const std::scoped_lock lock(mu_);
    intentions_.erase(txn.id());
    record(argus::abort(id(), txn.id()));
    notify_object();
  }

  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override {
    const std::scoped_lock lock(mu_);
    auto it = intentions_.find(txn.id());
    return it == intentions_.end() ? std::vector<LoggedOp>{} : it->second.ops;
  }

  void reset_for_recovery() override {
    const std::scoped_lock lock(mu_);
    committed_ = A::initial();
    intentions_.clear();
    notify_object();
  }

  void replay(const ReplayContext&, const LoggedOp& logged) override {
    const std::scoped_lock lock(mu_);
    auto states = replay_logged<A>({committed_}, {logged});
    if (states.empty()) {
      throw UsageError("recovery replay diverged at " + name() + " for " +
                       to_string(logged.op));
    }
    committed_ = std::move(states.front());
  }

  /// Test hook: the committed state (no tentative effects).
  [[nodiscard]] typename A::State committed_state() const {
    const std::scoped_lock lock(mu_);
    return committed_;
  }

 private:
  struct TxnEntry {
    std::weak_ptr<Transaction> owner;
    std::vector<LoggedOp> ops;
  };

  /// Attempts to admit (op -> result) for txn under the current
  /// intentions. Returns the result on success; nullopt means "block".
  /// Called with mu_ held.
  std::optional<Value> try_admit(Transaction& txn, const Operation& op) {
    auto& mine = intentions_[txn.id()];
    mine.owner = txn.weak_from_this();

    // The transaction's own view: committed state plus own intentions.
    auto view = replay_logged<A>({committed_}, mine.ops);
    if (view.empty()) return std::nullopt;  // cannot happen if admission is sound

    std::vector<const std::vector<LoggedOp>*> others;
    bool all_static_commute = true;
    for (const auto& [aid, entry] : intentions_) {
      if (aid == txn.id() || entry.ops.empty()) continue;
      others.push_back(&entry.ops);
      for (const LoggedOp& held : entry.ops) {
        if (!A::static_commutes(op, held.op)) all_static_commute = false;
      }
    }

    // Candidate results from the view (deterministic ADTs give exactly
    // one; nondeterministic ones are tried in turn). An empty outcome set
    // means the operation is not enabled yet (e.g. dequeue on an empty
    // queue): block until commits change the picture.
    for (const auto& [result, next] : A::step(view.front(), op)) {
      bool admit = others.empty() || all_static_commute;
      std::vector<LoggedOp> self = mine.ops;
      self.push_back(LoggedOp{op, result});
      if (!admit && mode_ == AdmissionMode::kExact &&
          others.size() <= kMaxExactValidation) {
        admit = validate_all_orders<A>(committed_, others, self);
      }
      if (mode_ == AdmissionMode::kChaosAdmitAll) admit = true;
      if (admit) {
        mine.ops = std::move(self);  // mu_ is held
        return result;
      }
    }
    return std::nullopt;
  }

  std::vector<std::shared_ptr<Transaction>> blockers(const Transaction& txn) {
    std::vector<std::shared_ptr<Transaction>> out;
    for (const auto& [aid, entry] : intentions_) {
      if (aid == txn.id() || entry.ops.empty()) continue;
      if (auto t = entry.owner.lock(); t && t->active()) {
        out.push_back(std::move(t));
      }
    }
    return out;
  }

  const AdmissionMode mode_;
  typename A::State committed_ = A::initial();  // guarded by mu_
  std::map<ActivityId, TxnEntry> intentions_;   // guarded by mu_
};

}  // namespace argus
