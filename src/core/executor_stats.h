// Shared counters between a TxnExecutor (src/sched) and the Runtime's
// metrics registry (src/core). The block outlives the executor — the
// runtime keeps a shared_ptr, so a scrape after the pool is gone still
// reads the final values instead of chasing a dangling pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace argus {

struct ExecutorStatsBlock {
  std::atomic<std::uint64_t> submitted{0};   // tasks accepted
  std::atomic<std::uint64_t> completed{0};   // tasks finished (either way)
  std::atomic<std::uint64_t> committed{0};   // tasks that committed
  std::atomic<std::uint64_t> gave_up{0};     // retry budget exhausted
  std::atomic<std::uint64_t> retries{0};     // re-begins after an abort
  std::atomic<std::uint64_t> validation_aborts{0};  // AbortReason::kValidation
  std::atomic<std::int64_t> queue_depth{0};  // tasks waiting for a worker
  std::atomic<std::int64_t> workers{0};      // pool size (0 after shutdown)
};

/// Plain-value copy for result structs and bench reporting.
struct ExecutorStatsSnapshot {
  std::uint64_t submitted{0};
  std::uint64_t completed{0};
  std::uint64_t committed{0};
  std::uint64_t gave_up{0};
  std::uint64_t retries{0};
  std::uint64_t validation_aborts{0};
  std::int64_t queue_depth{0};
  std::int64_t workers{0};
};

[[nodiscard]] inline ExecutorStatsSnapshot snapshot_of(
    const ExecutorStatsBlock& b) {
  ExecutorStatsSnapshot out;
  out.submitted = b.submitted.load(std::memory_order_relaxed);
  out.completed = b.completed.load(std::memory_order_relaxed);
  out.committed = b.committed.load(std::memory_order_relaxed);
  out.gave_up = b.gave_up.load(std::memory_order_relaxed);
  out.retries = b.retries.load(std::memory_order_relaxed);
  out.validation_aborts = b.validation_aborts.load(std::memory_order_relaxed);
  out.queue_depth = b.queue_depth.load(std::memory_order_relaxed);
  out.workers = b.workers.load(std::memory_order_relaxed);
  return out;
}

}  // namespace argus
