#include "core/runtime.h"

#include "common/errors.h"

namespace argus {

Runtime::Runtime(bool record_history) : recording_(record_history) {}

std::shared_ptr<HybridFifoQueue> Runtime::create_hybrid_queue(
    const std::string& name) {
  const ObjectId oid = allocate_object_id();
  auto obj = std::make_shared<HybridFifoQueue>(oid, name, tm_, recorder());
  objects_[oid] = obj;
  system_.add_object(oid, std::make_shared<AdtSpec<FifoQueueAdt>>());
  return obj;
}

std::shared_ptr<HybridBag> Runtime::create_hybrid_bag(
    const std::string& name) {
  const ObjectId oid = allocate_object_id();
  auto obj = std::make_shared<HybridBag>(oid, name, tm_, recorder());
  objects_[oid] = obj;
  system_.add_object(oid, std::make_shared<AdtSpec<BagAdt>>());
  return obj;
}

void Runtime::adopt(std::shared_ptr<ManagedObject> object,
                    std::shared_ptr<const SequentialSpec> spec) {
  const ObjectId oid = object->id();
  if (objects_.contains(oid)) {
    throw UsageError("object id already in use: " + to_string(oid));
  }
  system_.add_object(oid, std::move(spec));
  objects_[oid] = std::move(object);
}

std::shared_ptr<ManagedObject> Runtime::object(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    throw UsageError("unknown object " + to_string(id));
  }
  return it->second;
}

std::vector<std::shared_ptr<ManagedObject>> Runtime::objects() const {
  std::vector<std::shared_ptr<ManagedObject>> out;
  out.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) out.push_back(obj);
  return out;
}

void Runtime::set_wait_timeout_all(std::chrono::milliseconds timeout) {
  for (const auto& [id, obj] : objects_) {
    if (auto base = std::dynamic_pointer_cast<ObjectBase>(obj)) {
      base->set_wait_timeout(timeout);
    }
  }
}

void Runtime::crash() { tm_.doom_all_active(AbortReason::kCrash); }

void Runtime::recover() {
  for (const auto& [id, obj] : objects_) obj->reset_for_recovery();
  for (const CommitLogRecord& record : tm_.log().records()) {
    const ReplayContext ctx{record.txn, record.commit_ts, record.start_ts};
    for (const CommitLogRecord::Entry& entry : record.entries) {
      auto it = objects_.find(entry.object);
      if (it == objects_.end()) continue;  // object not recreated: skip
      for (const LoggedOp& logged : entry.ops) {
        it->second->replay(ctx, logged);
      }
    }
  }
}

}  // namespace argus
