#include "core/runtime.h"

#include <fstream>

#include "common/errors.h"

namespace argus {

Runtime::Runtime(RecorderMode mode, SchedMode sched_mode, WaitPolicy* policy,
                 FlightRecorderOptions recorder_options)
    : mode_(mode), sched_mode_(sched_mode), wait_policy_(policy),
      metrics_(std::make_unique<MetricsRegistry>()) {
  if (sched_mode_ == SchedMode::kDeterministic && wait_policy_ == nullptr) {
    throw UsageError("SchedMode::kDeterministic requires a WaitPolicy");
  }
  if (sched_mode_ == SchedMode::kOs) wait_policy_ = nullptr;
  tm_.set_wait_policy(wait_policy_);
  switch (mode_) {
    case RecorderMode::kOff:
      break;
    case RecorderMode::kFlight:
      flight_ =
          std::make_unique<FlightRecorder>(tm_.clock(), recorder_options);
      break;
    case RecorderMode::kLegacyMutex:
      legacy_ = std::make_unique<HistoryRecorder>();
      break;
  }
  register_collectors();
}

Runtime::~Runtime() {
  stop_sentinel();
  // The manager and log hold raw pointers into fault_injector_; sever
  // them before members start destructing.
  tm_.set_fault_injector(nullptr);
}

void Runtime::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  if (injector) {
    injector->set_sequence_source([this] { return tm_.clock().now(); });
    injector->set_crash_hook([this] { crash(); });
  }
  std::shared_ptr<FaultInjector> previous;
  {
    const std::scoped_lock lock(fault_mu_);
    previous = std::move(fault_injector_);
    fault_injector_ = injector;
  }
  // Publish to the hot paths after the shared_ptr owner is in place (and
  // sever before a previous injector can die).
  tm_.set_fault_injector(injector.get());
}

FaultInjector* Runtime::fault_injector() const {
  const std::scoped_lock lock(fault_mu_);
  return fault_injector_.get();
}

void Runtime::set_executor_stats(
    std::shared_ptr<const ExecutorStatsBlock> stats) {
  const std::scoped_lock lock(executor_mu_);
  executor_stats_ = std::move(stats);
}

History Runtime::history() const {
  switch (mode_) {
    case RecorderMode::kOff:
      return History{};  // explicitly empty: nothing was ever captured
    case RecorderMode::kFlight:
      return flight_->snapshot();
    case RecorderMode::kLegacyMutex:
      return legacy_->snapshot();
  }
  return History{};
}

AtomicitySentinel& Runtime::start_sentinel(SentinelOptions options) {
  if (mode_ != RecorderMode::kFlight) {
    throw UsageError("start_sentinel requires RecorderMode::kFlight");
  }
  if (sentinel_) throw UsageError("sentinel already running");
  // Runtime-level defaults fill any field the caller left at its
  // built-in default.
  const SentinelOptions builtin;
  if (options.window == builtin.window) {
    options.window = sentinel_defaults_.window;
  }
  if (options.checkpoint_threshold == builtin.checkpoint_threshold) {
    options.checkpoint_threshold = sentinel_defaults_.checkpoint_threshold;
  }
  if (options.mode == builtin.mode) options.mode = sentinel_defaults_.mode;
  if (!options.on_violation && sentinel_defaults_.on_violation) {
    options.on_violation = sentinel_defaults_.on_violation;
  }
  if (wait_policy_ != nullptr) options.wait_policy = wait_policy_;
  sentinel_ = std::make_unique<AtomicitySentinel>(
      *flight_, system_, std::move(options), metrics_.get());
  sentinel_->start();
  return *sentinel_;
}

void Runtime::stop_sentinel() {
  if (!sentinel_) return;
  sentinel_->stop();
  sentinel_.reset();
}

void Runtime::register_collectors() {
  // Transaction manager, commit pipeline, clock and recovery: cheap
  // struct reads sampled at scrape time (pull model — the hot paths are
  // never asked to also feed a registry).
  metrics_->describe("argus_txn_begun_total", "Transactions begun",
                     "counter");
  metrics_->describe("argus_txn_committed_total", "Transactions committed",
                     "counter");
  metrics_->describe("argus_txn_aborted_total",
                     "Transactions aborted, by reason", "counter");
  metrics_->describe("argus_commit_pipeline_commits_total",
                     "Commits completed by the staged pipeline", "counter");
  metrics_->describe("argus_commit_pipeline_seconds_total",
                     "Cumulative time in each commit-pipeline stage",
                     "counter");
  metrics_->describe("argus_group_commit_forces_total",
                     "Group-commit log flushes", "counter");
  metrics_->describe("argus_group_commit_records_total",
                     "Commit records forced to the stable log", "counter");
  metrics_->describe("argus_group_commit_max_batch",
                     "Largest single-flush group-commit batch", "gauge");
  metrics_->describe("argus_clock_timestamp",
                     "Current Lamport clock value", "gauge");
  metrics_->describe("argus_commit_watermark",
                     "Commit visibility watermark", "gauge");
  metrics_->describe("argus_watermark_lag",
                     "Clock distance the watermark trails by", "gauge");
  metrics_->describe("argus_inflight_commits",
                     "Commits between timestamp draw and apply", "gauge");
  metrics_->describe("argus_deadlocks_resolved_total",
                     "Deadlock cycles broken by victim selection", "counter");
  metrics_->describe("argus_recovery_replayed_records_total",
                     "Commit records replayed by recover()", "counter");
  metrics_->describe("argus_recovery_replayed_ops_total",
                     "Logged operations replayed by recover()", "counter");
  metrics_->add_collector([this]() {
    std::vector<MetricSample> out;
    const TxnStats txn = tm_.stats();
    out.push_back({"argus_txn_begun_total", {}, double(txn.begun)});
    out.push_back({"argus_txn_committed_total", {}, double(txn.committed)});
    for (const auto& [reason, n] : txn.aborted_by_reason) {
      out.push_back(
          {"argus_txn_aborted_total", {{"reason", to_string(reason)}},
           double(n)});
    }
    const CommitPipelineStats p = tm_.pipeline_stats();
    out.push_back(
        {"argus_commit_pipeline_commits_total", {}, double(p.commits)});
    const std::pair<const char*, std::uint64_t> stages[] = {
        {"validate", p.validate_us},
        {"timestamp", p.timestamp_us},
        {"log", p.log_us},
        {"apply", p.apply_us},
    };
    for (const auto& [stage, us] : stages) {
      out.push_back({"argus_commit_pipeline_seconds_total",
                     {{"stage", stage}},
                     double(us) * 1e-6});
    }
    out.push_back(
        {"argus_group_commit_forces_total", {}, double(p.log_forces)});
    out.push_back(
        {"argus_group_commit_records_total", {}, double(p.log_records)});
    out.push_back({"argus_group_commit_max_batch", {}, double(p.max_batch)});
    out.push_back({"argus_clock_timestamp", {}, double(p.clock_now)});
    out.push_back({"argus_commit_watermark", {}, double(p.watermark)});
    out.push_back({"argus_watermark_lag", {}, double(p.watermark_lag())});
    out.push_back(
        {"argus_inflight_commits", {}, double(tm_.clock().inflight())});
    // Lock-mode machinery: under OCC/MVCC objects never block, the
    // detector never runs, and emitting its zero would read as "deadlock
    // freedom measured" when nothing was measured at all.
    if (uses_blocking_admission(cc_mode())) {
      out.push_back({"argus_deadlocks_resolved_total",
                     {},
                     double(tm_.detector().deadlocks_resolved())});
    }
    out.push_back(
        {"argus_recovery_replayed_records_total",
         {},
         double(recovery_replayed_records_.load(std::memory_order_relaxed))});
    out.push_back(
        {"argus_recovery_replayed_ops_total",
         {},
         double(recovery_replayed_ops_.load(std::memory_order_relaxed))});
    return out;
  });

  // Per-object counters (label sets grow with create_*, so a collector
  // rather than pre-registered handles).
  metrics_->describe("argus_object_invocations_total",
                     "Operations invoked, per object", "counter");
  metrics_->describe("argus_object_commits_total",
                     "Commit events applied, per object", "counter");
  metrics_->describe("argus_object_aborts_total",
                     "Abort events applied, per object", "counter");
  metrics_->describe("argus_object_waits_total",
                     "Invocations that blocked in await(), per object",
                     "counter");
  metrics_->describe("argus_object_wait_timeouts_total",
                     "Waits that doomed their transaction, per object",
                     "counter");
  metrics_->describe("argus_object_deadlock_dooms_total",
                     "Waits doomed as deadlock victims, per object",
                     "counter");
  metrics_->add_collector([this]() {
    std::vector<MetricSample> out;
    const bool blocking = uses_blocking_admission(cc_mode());
    for (const auto& [id, obj] : objects_) {
      auto base = std::dynamic_pointer_cast<ObjectBase>(obj);
      if (!base) continue;
      const ObjectCounters c = base->counters();
      const MetricLabels labels{{"object", base->name()}};
      out.push_back(
          {"argus_object_invocations_total", labels, double(c.invocations)});
      out.push_back({"argus_object_commits_total", labels, double(c.commits)});
      out.push_back({"argus_object_aborts_total", labels, double(c.aborts)});
      if (!blocking) continue;  // wait series is lock-mode-only telemetry
      out.push_back({"argus_object_waits_total", labels, double(c.waits)});
      out.push_back({"argus_object_wait_timeouts_total", labels,
                     double(c.wait_timeouts)});
      out.push_back({"argus_object_deadlock_dooms_total", labels,
                     double(c.deadlock_dooms)});
    }
    return out;
  });

  // Executor pool (empty until a TxnExecutor publishes its stats block).
  metrics_->describe("argus_executor_workers", "Executor pool size", "gauge");
  metrics_->describe("argus_executor_queue_depth",
                     "Tasks waiting for a pool worker", "gauge");
  metrics_->describe("argus_executor_submitted_total",
                     "Tasks submitted to the executor", "counter");
  metrics_->describe("argus_executor_completed_total",
                     "Tasks completed (committed or given up)", "counter");
  metrics_->describe("argus_executor_retries_total",
                     "Transaction re-begins after an abort", "counter");
  metrics_->describe("argus_executor_validation_aborts_total",
                     "Aborts from OCC/MVCC commit validation", "counter");
  metrics_->describe("argus_executor_gave_up_total",
                     "Tasks that exhausted their retry budget", "counter");
  metrics_->add_collector([this]() {
    std::vector<MetricSample> out;
    std::shared_ptr<const ExecutorStatsBlock> stats;
    {
      const std::scoped_lock lock(executor_mu_);
      stats = executor_stats_;
    }
    if (!stats) return out;
    const ExecutorStatsSnapshot s = snapshot_of(*stats);
    out.push_back({"argus_executor_workers", {}, double(s.workers)});
    out.push_back({"argus_executor_queue_depth", {}, double(s.queue_depth)});
    out.push_back({"argus_executor_submitted_total", {}, double(s.submitted)});
    out.push_back({"argus_executor_completed_total", {}, double(s.completed)});
    out.push_back({"argus_executor_retries_total", {}, double(s.retries)});
    out.push_back({"argus_executor_validation_aborts_total",
                   {},
                   double(s.validation_aborts)});
    out.push_back({"argus_executor_gave_up_total", {}, double(s.gave_up)});
    return out;
  });

  // Fault injection (empty until set_fault_injector attaches one).
  metrics_->describe("argus_fault_injected_total",
                     "Faults injected, by site", "counter");
  metrics_->describe("argus_fault_arrivals_total",
                     "Arrivals at fault-injection sites, by site", "counter");
  metrics_->describe("argus_fault_crashes_total",
                     "Pinned whole-node crashes fired by the injector",
                     "counter");
  metrics_->add_collector([this]() {
    std::vector<MetricSample> out;
    std::shared_ptr<FaultInjector> fault;
    {
      const std::scoped_lock lock(fault_mu_);
      fault = fault_injector_;
    }
    if (!fault) return out;
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
      const auto site = static_cast<FaultSite>(i);
      const MetricLabels labels{{"site", to_string(site)}};
      out.push_back({"argus_fault_injected_total", labels,
                     double(fault->injected_at(site))});
      out.push_back({"argus_fault_arrivals_total", labels,
                     double(fault->arrivals_at(site))});
    }
    out.push_back(
        {"argus_fault_crashes_total", {}, double(fault->crashes_fired())});
    return out;
  });

  // Recorder health.
  metrics_->describe("argus_recorder_events_total",
                     "Events ever recorded (including ring-evicted)",
                     "counter");
  metrics_->describe("argus_recorder_dropped_total",
                     "Events evicted by bounded shards", "counter");
  metrics_->describe("argus_recorder_shards",
                     "Flight-recorder shards (distinct recording threads)",
                     "gauge");
  metrics_->add_collector([this]() {
    std::vector<MetricSample> out;
    if (flight_) {
      out.push_back(
          {"argus_recorder_events_total", {}, double(flight_->total_recorded())});
      out.push_back(
          {"argus_recorder_dropped_total", {}, double(flight_->dropped())});
      out.push_back(
          {"argus_recorder_shards", {}, double(flight_->shard_count())});
    } else if (legacy_) {
      out.push_back(
          {"argus_recorder_events_total", {}, double(legacy_->size())});
    }
    return out;
  });
}

std::shared_ptr<HybridFifoQueue> Runtime::create_hybrid_queue(
    const std::string& name) {
  const ObjectId oid = allocate_object_id();
  auto obj = std::make_shared<HybridFifoQueue>(oid, name, tm_, recorder());
  objects_[oid] = obj;
  system_.add_object(oid, std::make_shared<AdtSpec<FifoQueueAdt>>());
  return obj;
}

std::shared_ptr<HybridBag> Runtime::create_hybrid_bag(
    const std::string& name) {
  const ObjectId oid = allocate_object_id();
  auto obj = std::make_shared<HybridBag>(oid, name, tm_, recorder());
  objects_[oid] = obj;
  system_.add_object(oid, std::make_shared<AdtSpec<BagAdt>>());
  return obj;
}

void Runtime::adopt(std::shared_ptr<ManagedObject> object,
                    std::shared_ptr<const SequentialSpec> spec) {
  const ObjectId oid = object->id();
  if (objects_.contains(oid)) {
    throw UsageError("object id already in use: " + to_string(oid));
  }
  system_.add_object(oid, std::move(spec));
  objects_[oid] = std::move(object);
}

std::shared_ptr<ManagedObject> Runtime::object(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    throw UsageError("unknown object " + to_string(id));
  }
  return it->second;
}

std::vector<std::shared_ptr<ManagedObject>> Runtime::objects() const {
  std::vector<std::shared_ptr<ManagedObject>> out;
  out.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) out.push_back(obj);
  return out;
}

void Runtime::set_wait_timeout_all(std::chrono::milliseconds timeout) {
  for (const auto& [id, obj] : objects_) {
    if (auto base = std::dynamic_pointer_cast<ObjectBase>(obj)) {
      base->set_wait_timeout(timeout);
    }
  }
}

void Runtime::crash() {
  tm_.doom_all_active(AbortReason::kCrash);
  if (flight_ && !crash_dump_path_.empty()) {
    // Black-box dump: the recorder tail in the parse.h notation, replayable
    // through examples/check_history_file. The fault trace rides along as
    // '#'-comment lines the parser skips, so a failing seed's dump shows
    // exactly which injected faults led up to the crash.
    std::ofstream out(crash_dump_path_, std::ios::trunc);
    if (out) {
      out << flight_->tail(crash_dump_events_).to_string();
      if (FaultInjector* fault = fault_injector()) {
        out << fault->trace_to_string();
      }
    }
  }
}

void Runtime::recover() {
  for (const auto& [id, obj] : objects_) obj->reset_for_recovery();
  for (const CommitLogRecord& record : tm_.log().records()) {
    recovery_replayed_records_.fetch_add(1, std::memory_order_relaxed);
    const ReplayContext ctx{record.txn, record.commit_ts, record.start_ts};
    for (const CommitLogRecord::Entry& entry : record.entries) {
      auto it = objects_.find(entry.object);
      if (it == objects_.end()) continue;  // object not recreated: skip
      for (const LoggedOp& logged : entry.ops) {
        it->second->replay(ctx, logged);
        recovery_replayed_ops_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace argus
