// EscrowAccount: a type-specific dynamic-atomic bank account.
//
// The generic DynamicAtomicObject decides admission by brute-force
// all-orders validation (factorial in concurrent transactions, capped at
// kMaxExactValidation). For the bank account the same information can be
// tracked in O(1) with escrow bounds — the style of type-specific
// implementation the paper's framework licenses ("In many applications
// … the locking protocols will be more than adequate"; here the
// opposite: the type's algebra admits a *better* protocol):
//
//   low  = committed − Σ pending-successful-withdrawals(others) + own net
//   high = committed + Σ pending-deposits(others)               + own net
//
//   withdraw(n) → ok            admissible iff n ≤ low and no other
//                               transaction holds an exact balance
//                               observation (a balance result our state
//                               change would invalidate);
//   withdraw(n) → insufficient  admissible iff n > high (fails in every
//                               serialization; no state change);
//   deposit(n)                  admissible iff no other transaction holds
//                               an exact observation (balance or
//                               insufficient result — a deposit could
//                               flip either);
//   balance                     admissible iff no other transaction has
//                               pending state changes; pins an exact
//                               observation.
//
// Anything not admissible blocks, with the usual deadlock detection.
// Every admitted result is valid under every subset and ordering of the
// concurrently active transactions, so histories are dynamic atomic —
// the property tests check this against the formal definition.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/object_base.h"
#include "spec/adts/bank_account.h"
#include "txn/stable_log.h"

namespace argus {

class EscrowAccount final : public ObjectBase {
 public:
  EscrowAccount(ObjectId oid, std::string name, TransactionManager& tm,
                EventSink* recorder);

  Value invoke(Transaction& txn, const Operation& op) override;
  void prepare(Transaction& txn) override;
  void commit(Transaction& txn, Timestamp commit_ts) override;
  void abort(Transaction& txn) override;
  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override;
  void reset_for_recovery() override;
  void replay(const ReplayContext& ctx, const LoggedOp& logged) override;

  /// Test hook.
  [[nodiscard]] std::int64_t committed_balance() const;

 private:
  struct TxnEntry {
    std::weak_ptr<Transaction> owner;
    std::vector<LoggedOp> ops;
    std::int64_t in{0};   // pending deposits
    std::int64_t out{0};  // pending successful withdrawals
    bool balance_exact{false};       // holds a balance result
    bool insufficient_exact{false};  // holds an insufficient_funds result
  };

  /// Returns the admitted result, or nullopt to keep waiting. Called
  /// with mu_ held.
  std::optional<Value> try_admit(Transaction& txn, const Operation& op);

  std::vector<std::shared_ptr<Transaction>> blockers(ActivityId self);

  std::int64_t committed_{0};                  // guarded by mu_
  std::map<ActivityId, TxnEntry> intentions_;  // guarded by mu_
};

}  // namespace argus
