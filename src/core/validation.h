// Serialization validation for intentions-list protocols.
//
// A dynamic-atomic object must keep its history serializable in *every*
// total order consistent with precedes (§4.1). Among concurrently active
// transactions no precedes pairs exist, and any of them may still abort;
// so when transaction A asks to perform a new operation, the object checks
// that for every subset S of the other active transactions and every
// ordering of S ∪ {A} (each transaction's operations as a contiguous
// block, A's block including the new operation), replaying from the
// committed state reproduces every recorded result.
//
// This is the data-dependent admission test that static conflict tables
// approximate: it admits the §5.1 bank-account and equal-value-enqueue
// interleavings that commutativity locking rejects. Exponential in the
// number of concurrently active transactions *at this object*; a fast
// path (pairwise static commutativity) covers the common case, and
// kMaxExactValidation bounds the exact search (beyond it the object falls
// back to the conservative fast path only, i.e. blocks).
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "spec/adt_spec.h"
#include "txn/stable_log.h"

namespace argus {

inline constexpr std::size_t kMaxExactValidation = 6;

/// Replays `ops` over every candidate state, pruning by recorded results
/// (subset simulation, as in spec/serial.h but over value states).
/// Returns the surviving candidate set; empty means some recorded result
/// is impossible.
template <AdtTraits A>
[[nodiscard]] std::vector<typename A::State> replay_logged(
    std::vector<typename A::State> candidates,
    const std::vector<LoggedOp>& ops) {
  for (const LoggedOp& logged : ops) {
    std::vector<typename A::State> next;
    for (const auto& s : candidates) {
      for (auto& [result, successor] : A::step(s, logged.op)) {
        if (result == logged.result) next.push_back(std::move(successor));
      }
    }
    // Dedupe: nondeterministic branches often reconverge.
    std::vector<typename A::State> unique;
    for (auto& s : next) {
      bool dup = false;
      for (const auto& u : unique) {
        if (u == s) {
          dup = true;
          break;
        }
      }
      if (!dup) unique.push_back(std::move(s));
    }
    if (unique.empty()) return {};
    candidates = std::move(unique);
  }
  return candidates;
}

/// The final-state set reached by replaying the blocks in order from
/// `start`; empty iff some recorded result cannot be reproduced.
template <AdtTraits A>
[[nodiscard]] std::vector<typename A::State> blocks_final_states(
    const typename A::State& start,
    const std::vector<const std::vector<LoggedOp>*>& blocks) {
  std::vector<typename A::State> candidates{start};
  for (const auto* block : blocks) {
    candidates = replay_logged<A>(std::move(candidates), *block);
    if (candidates.empty()) return {};
  }
  return candidates;
}

template <AdtTraits A>
[[nodiscard]] bool same_state_set(const std::vector<typename A::State>& xs,
                                  const std::vector<typename A::State>& ys) {
  auto subset = [](const auto& as, const auto& bs) {
    for (const auto& a : as) {
      bool found = false;
      for (const auto& b : bs) {
        if (a == b) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  return subset(xs, ys) && subset(ys, xs);
}

/// The full §4.1 admission check: every subset of `others`, every
/// ordering, with `self` in every position. `self` already includes the
/// operation being admitted. Two conditions per subset:
///   1. every ordering reproduces every recorded result, and
///   2. every ordering reaches the same final-state set — without this,
///      two order-insensitive *results* (e.g. two "ok" enqueues of
///      different values) could hide order-dependent *states* that a
///      later observer would expose, retroactively breaking
///      serializability in the other orders.
/// Assumes others.size() <= kMaxExactValidation.
template <AdtTraits A>
[[nodiscard]] bool validate_all_orders(
    const typename A::State& committed,
    const std::vector<const std::vector<LoggedOp>*>& others,
    const std::vector<LoggedOp>& self) {
  const std::size_t n = others.size();
  // Enumerate subsets of others by bitmask, then permutations of the
  // chosen blocks plus the self block.
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<const std::vector<LoggedOp>*> chosen;
    chosen.push_back(&self);
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1U) chosen.push_back(others[i]);
    }
    std::sort(chosen.begin(), chosen.end());
    std::optional<std::vector<typename A::State>> reference;
    do {
      auto finals = blocks_final_states<A>(committed, chosen);
      if (finals.empty()) return false;
      if (!reference) {
        reference = std::move(finals);
      } else if (!same_state_set<A>(*reference, finals)) {
        return false;
      }
    } while (std::next_permutation(chosen.begin(), chosen.end()));
  }
  return true;
}

}  // namespace argus
