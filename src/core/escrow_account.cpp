#include "core/escrow_account.h"

namespace argus {

EscrowAccount::EscrowAccount(ObjectId oid, std::string name,
                             TransactionManager& tm, EventSink* recorder)
    : ObjectBase(oid, std::move(name), tm, recorder) {}

Value EscrowAccount::invoke(Transaction& txn, const Operation& op) {
  txn.ensure_active();
  if (txn.read_only() && !BankAccountAdt::is_read_only(op)) {
    throw UsageError("read-only transaction invoked mutator " + to_string(op) +
                     " on " + name());
  }
  txn.touch(this);
  sched_point(op);

  std::unique_lock lock(mu_);
  record(argus::invoke(id(), txn.id(), op));

  std::optional<Value> result;
  await(
      lock, txn, [&] { return (result = try_admit(txn, op)).has_value(); },
      [&] { return blockers(txn.id()); });

  record(respond(id(), txn.id(), *result));
  return *result;
}

std::optional<Value> EscrowAccount::try_admit(Transaction& txn,
                                              const Operation& op) {
  auto& mine = intentions_[txn.id()];
  mine.owner = txn.weak_from_this();

  // Aggregate the other active transactions' pending effects.
  std::int64_t others_out = 0;
  std::int64_t others_in = 0;
  bool others_balance_exact = false;
  bool others_any_exact = false;
  bool others_state_change = false;
  for (const auto& [aid, entry] : intentions_) {
    if (aid == txn.id()) continue;
    others_out += entry.out;
    others_in += entry.in;
    others_balance_exact |= entry.balance_exact;
    others_any_exact |= entry.balance_exact || entry.insufficient_exact;
    others_state_change |= entry.in > 0 || entry.out > 0;
  }
  const std::int64_t own_net = mine.in - mine.out;

  if (op.name == "balance" && op.args.empty()) {
    // An exact observation: valid in every order only while no other
    // transaction has pending state changes. (Pending *failed*
    // withdrawals don't change state and don't disturb us.)
    if (others_state_change) return std::nullopt;
    mine.balance_exact = true;
    const Value result{committed_ + own_net};
    mine.ops.push_back(LoggedOp{account::balance(), result});
    return result;
  }

  if (op.args.size() != 1 || !op.args[0].is_int()) {
    throw UsageError("unknown account operation " + to_string(op));
  }
  const std::int64_t n = op.args[0].as_int();
  if (n < 0) throw UsageError("negative amount: " + to_string(op));

  if (op.name == "deposit") {
    // A deposit raises the balance: it would invalidate any exact
    // observation held by another active transaction (a balance result,
    // or an insufficient_funds result it could flip to success).
    if (others_any_exact) return std::nullopt;
    mine.in += n;
    mine.ops.push_back(LoggedOp{account::deposit(n), ok()});
    return ok();
  }

  if (op.name == "withdraw") {
    const std::int64_t low = committed_ - others_out + own_net;
    const std::int64_t high = committed_ + others_in + own_net;
    if (n <= low && !others_balance_exact) {
      // Covered in every serialization; lowering the balance cannot flip
      // another's insufficient result, but would invalidate a balance
      // observation.
      mine.out += n;
      mine.ops.push_back(LoggedOp{account::withdraw(n), ok()});
      return ok();
    }
    if (n > high) {
      // Fails in every serialization; no state change, so nothing held
      // by others is disturbed. Pin as an exact observation so later
      // deposits can't invalidate it.
      mine.insufficient_exact = true;
      const Value result{kInsufficientFunds};
      mine.ops.push_back(LoggedOp{account::withdraw(n), result});
      return result;
    }
    return std::nullopt;  // outcome depends on in-flight transactions: wait
  }

  throw UsageError("unknown account operation " + to_string(op));
}

std::vector<std::shared_ptr<Transaction>> EscrowAccount::blockers(
    ActivityId self) {
  std::vector<std::shared_ptr<Transaction>> out;
  for (const auto& [aid, entry] : intentions_) {
    if (aid == self || entry.ops.empty()) continue;
    if (auto t = entry.owner.lock(); t && t->active()) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

void EscrowAccount::prepare(Transaction& txn) { txn.ensure_active(); }

void EscrowAccount::commit(Transaction& txn, Timestamp /*commit_ts*/) {
  const std::scoped_lock lock(mu_);
  auto it = intentions_.find(txn.id());
  if (it != intentions_.end()) {
    committed_ += it->second.in - it->second.out;
    intentions_.erase(it);
  }
  record(argus::commit(id(), txn.id()));
  notify_object();
}

void EscrowAccount::abort(Transaction& txn) {
  const std::scoped_lock lock(mu_);
  intentions_.erase(txn.id());
  record(argus::abort(id(), txn.id()));
  notify_object();
}

std::vector<LoggedOp> EscrowAccount::intentions_of(
    const Transaction& txn) const {
  const std::scoped_lock lock(mu_);
  auto it = intentions_.find(txn.id());
  return it == intentions_.end() ? std::vector<LoggedOp>{} : it->second.ops;
}

void EscrowAccount::reset_for_recovery() {
  const std::scoped_lock lock(mu_);
  committed_ = 0;
  intentions_.clear();
  notify_object();
}

void EscrowAccount::replay(const ReplayContext&, const LoggedOp& logged) {
  const std::scoped_lock lock(mu_);
  if (logged.op.name == "deposit") {
    committed_ += logged.op.args[0].as_int();
  } else if (logged.op.name == "withdraw" && logged.result == ok()) {
    committed_ -= logged.op.args[0].as_int();
  }
  // balance reads and failed withdrawals have no redo effect.
}

std::int64_t EscrowAccount::committed_balance() const {
  const std::scoped_lock lock(mu_);
  return committed_;
}

}  // namespace argus
