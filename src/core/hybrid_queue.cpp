#include "core/hybrid_queue.h"

namespace argus {

HybridFifoQueue::HybridFifoQueue(ObjectId oid, std::string name,
                                 TransactionManager& tm,
                                 EventSink* recorder)
    : ObjectBase(oid, std::move(name), tm, recorder) {}

Value HybridFifoQueue::invoke(Transaction& txn, const Operation& op) {
  txn.ensure_active();
  txn.touch(this);
  sched_point(op);
  if (txn.read_only()) return invoke_read_only(txn, op);
  return invoke_update(txn, op);
}

Value HybridFifoQueue::invoke_read_only(Transaction& txn,
                                        const Operation& op) {
  if (!FifoQueueAdt::is_read_only(op)) {
    throw UsageError("read-only transaction invoked mutator " + to_string(op) +
                     " on " + name());
  }
  const Timestamp t = txn.start_ts();
  const std::scoped_lock lock(mu_);
  if (initiated_.insert(txn.id()).second) {
    record(initiate(id(), txn.id(), t));
  }
  record(argus::invoke(id(), txn.id(), op));

  // Snapshot below t: replay the committed operation log prefix.
  FifoQueueAdt::State state;
  for (const auto& [ts, logged] : log_) {
    if (ts >= t) break;
    auto outcomes = FifoQueueAdt::step(state, logged.op);
    for (auto& [result, next] : outcomes) {
      if (result == logged.result) {
        state = std::move(next);
        break;
      }
    }
  }
  const auto outcomes = FifoQueueAdt::step(state, op);
  if (outcomes.empty()) {
    throw UsageError("read-only operation " + to_string(op) +
                     " not enabled at snapshot of " + name());
  }
  record(respond(id(), txn.id(), outcomes.front().first));
  return outcomes.front().first;
}

Value HybridFifoQueue::invoke_update(Transaction& txn, const Operation& op) {
  std::unique_lock lock(mu_);
  record(argus::invoke(id(), txn.id(), op));

  auto& mine = intentions_[txn.id()];
  mine.owner = txn.weak_from_this();

  Value result;
  if (op.name == "enqueue" && op.args.size() == 1 && op.args[0].is_int()) {
    // Enqueues never conflict: ordering is fixed at commit.
    result = ok();
    mine.ops.push_back(LoggedOp{op, result});
  } else if (op.name == "dequeue" && op.args.empty()) {
    // A dequeue may only consume a *committed* item: the transaction's
    // own tentative enqueues cannot be served, because another
    // transaction's enqueue could commit first and would then precede
    // them in the queue. While the visible committed remainder is empty,
    // or another transaction holds tentative dequeues (its abort would
    // restore the front), wait.
    await(
        lock, txn,
        [&] {
          return !other_has_tentative_dequeue(txn.id()) &&
                 mine.dequeued < committed_.size();
        },
        [&] { return dequeue_blockers(txn.id()); });
    result = Value{committed_[mine.dequeued]};
    mine.ops.push_back(LoggedOp{op, result});
    ++mine.dequeued;
  } else if (op.name == "size" && op.args.empty()) {
    // A size result pins the whole queue contents at this transaction's
    // commit position, which later committers could invalidate; the
    // commit-order queue therefore only offers size to read-only
    // transactions (which evaluate it against a timestamp snapshot).
    throw UsageError(
        "HybridFifoQueue: size is only available to read-only "
        "transactions; use Runtime::begin_read_only");
  } else {
    throw UsageError("unknown queue operation " + to_string(op));
  }

  record(respond(id(), txn.id(), result));
  return result;
}

bool HybridFifoQueue::other_has_tentative_dequeue(ActivityId self) const {
  for (const auto& [aid, entry] : intentions_) {
    if (aid != self && entry.dequeued > 0) return true;
  }
  return false;
}

std::vector<std::shared_ptr<Transaction>> HybridFifoQueue::dequeue_blockers(
    ActivityId self) {
  std::vector<std::shared_ptr<Transaction>> out;
  for (const auto& [aid, entry] : intentions_) {
    if (aid == self || entry.ops.empty()) continue;
    if (auto t = entry.owner.lock(); t && t->active()) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

void HybridFifoQueue::prepare(Transaction& txn) { txn.ensure_active(); }

void HybridFifoQueue::commit(Transaction& txn, Timestamp commit_ts) {
  const std::scoped_lock lock(mu_);
  if (txn.read_only()) {
    record(argus::commit(id(), txn.id()));
    return;
  }
  auto it = intentions_.find(txn.id());
  if (it != intentions_.end()) {
    // Apply: drop the committed items this transaction dequeued, then
    // append its enqueues in its execution order.
    const std::size_t drop = std::min(it->second.dequeued, committed_.size());
    committed_.erase(committed_.begin(),
                     committed_.begin() + static_cast<std::ptrdiff_t>(drop));
    for (LoggedOp& logged : it->second.ops) {
      if (logged.op.name == "enqueue") {
        committed_.push_back(logged.op.args[0].as_int());
      }
      log_.emplace_back(commit_ts, std::move(logged));
    }
    intentions_.erase(it);
  }
  record(commit_at(id(), txn.id(), commit_ts));
  notify_object();
}

void HybridFifoQueue::abort(Transaction& txn) {
  const std::scoped_lock lock(mu_);
  intentions_.erase(txn.id());
  record(argus::abort(id(), txn.id()));
  notify_object();
}

std::vector<LoggedOp> HybridFifoQueue::intentions_of(
    const Transaction& txn) const {
  const std::scoped_lock lock(mu_);
  auto it = intentions_.find(txn.id());
  return it == intentions_.end() ? std::vector<LoggedOp>{} : it->second.ops;
}

void HybridFifoQueue::reset_for_recovery() {
  const std::scoped_lock lock(mu_);
  committed_.clear();
  log_.clear();
  intentions_.clear();
  initiated_.clear();
  notify_object();
}

void HybridFifoQueue::replay(const ReplayContext& ctx, const LoggedOp& logged) {
  const std::scoped_lock lock(mu_);
  if (logged.op.name == "enqueue") {
    committed_.push_back(logged.op.args[0].as_int());
  } else if (logged.op.name == "dequeue" && !committed_.empty()) {
    committed_.erase(committed_.begin());
  }
  log_.emplace_back(ctx.commit_ts, logged);
}

std::vector<std::int64_t> HybridFifoQueue::committed_items() const {
  const std::scoped_lock lock(mu_);
  return committed_;
}

}  // namespace argus
