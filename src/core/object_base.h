// ObjectBase: shared machinery for runtime atomic objects — the object's
// monitor (mutex + condition variable), event recording, and a blocking
// wait primitive integrated with deadlock detection and doom wake-up.
//
// All protocol objects follow the same discipline: take the monitor,
// record the invocation event, await() until the protocol's admission
// predicate holds (registering waits-for edges while blocked), perform the
// operation, record the response inside the monitor. Recording inside the
// critical section guarantees the captured history is a faithful
// observation: any response that depends on a commit is recorded after
// that commit event.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "txn/managed_object.h"
#include "txn/manager.h"
#include "txn/recorder.h"

namespace argus {

class ObjectBase : public ManagedObject {
 public:
  [[nodiscard]] ObjectId id() const override { return id_; }
  [[nodiscard]] std::string name() const override { return name_; }

  void wake_all() override { cv_.notify_all(); }

  /// Maximum time a single invocation may block before the waiter dooms
  /// itself with AbortReason::kWaitTimeout (liveness backstop).
  void set_wait_timeout(std::chrono::milliseconds timeout) {
    wait_timeout_ = timeout;
  }

 protected:
  ObjectBase(ObjectId id, std::string name, TransactionManager& tm,
             HistoryRecorder* recorder)
      : tm_(tm), recorder_(recorder), id_(id), name_(std::move(name)) {}

  void record(Event e) {
    if (recorder_ != nullptr) recorder_->record(std::move(e));
  }

  /// Blocks (releasing `lock`) until pred() holds. While blocked:
  /// registers waits-for edges against blockers() (re-evaluated each
  /// round), wakes deadlock victims, and honours txn dooming and the wait
  /// timeout by throwing TransactionAborted. pred and blockers are called
  /// with the object mutex held.
  void await(std::unique_lock<std::mutex>& lock, Transaction& txn,
             const std::function<bool()>& pred,
             const std::function<std::vector<std::shared_ptr<Transaction>>()>&
                 blockers);

  TransactionManager& tm_;
  HistoryRecorder* recorder_;
  mutable std::mutex mu_;
  std::condition_variable cv_;

 private:
  const ObjectId id_;
  const std::string name_;
  std::chrono::milliseconds wait_timeout_{std::chrono::milliseconds(10000)};
};

}  // namespace argus
