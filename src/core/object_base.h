// ObjectBase: shared machinery for runtime atomic objects — the object's
// monitor (mutex + condition variable), event recording, per-object
// telemetry counters, and a blocking wait primitive integrated with
// deadlock detection and doom wake-up.
//
// All protocol objects follow the same discipline: take the monitor,
// record the invocation event, await() until the protocol's admission
// predicate holds (registering waits-for edges while blocked), perform the
// operation, record the response inside the monitor. Recording inside the
// critical section guarantees the captured history is a faithful
// observation: any response that depends on a commit is recorded after
// that commit event.
//
// Events flow through an EventSink (obs/event_sink.h) — the sharded
// FlightRecorder in production, the global-mutex HistoryRecorder as the
// reference implementation, or nullptr when capture is off. Counters are
// maintained unconditionally (relaxed atomics); the runtime's metrics
// registry scrapes them per object.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dsched/wait_policy.h"
#include "obs/event_sink.h"
#include "txn/managed_object.h"
#include "txn/manager.h"

namespace argus {

/// Per-object telemetry, scraped by the metrics registry
/// (argus_object_* series; see README "Observability").
struct ObjectCounters {
  std::uint64_t invocations{0};
  std::uint64_t commits{0};
  std::uint64_t aborts{0};
  std::uint64_t waits{0};          // invocations that blocked in await()
  std::uint64_t wait_timeouts{0};  // waits that doomed their transaction
  std::uint64_t deadlock_dooms{0};  // waits doomed as deadlock victims
};

class ObjectBase : public ManagedObject {
 public:
  [[nodiscard]] ObjectId id() const override { return id_; }
  [[nodiscard]] std::string name() const override { return name_; }

  void wake_all() override { notify_object(); }

  /// Maximum time a single invocation may block before the waiter dooms
  /// itself with AbortReason::kWaitTimeout (liveness backstop).
  void set_wait_timeout(std::chrono::milliseconds timeout) {
    wait_timeout_ = timeout;
  }

  [[nodiscard]] ObjectCounters counters() const {
    ObjectCounters out;
    out.invocations = invocations_.load(std::memory_order_relaxed);
    out.commits = commits_.load(std::memory_order_relaxed);
    out.aborts = aborts_.load(std::memory_order_relaxed);
    out.waits = waits_.load(std::memory_order_relaxed);
    out.wait_timeouts = wait_timeouts_.load(std::memory_order_relaxed);
    out.deadlock_dooms = deadlock_dooms_.load(std::memory_order_relaxed);
    return out;
  }

 protected:
  ObjectBase(ObjectId id, std::string name, TransactionManager& tm,
             EventSink* sink)
      : tm_(tm), sink_(sink), id_(id), name_(std::move(name)) {}

  /// Wakes every waiter on this object's monitor — the real condition
  /// variable always, plus any parked deterministic lanes.
  void notify_object() {
    cv_.notify_all();
    if (WaitPolicy* policy = tm_.wait_policy()) policy->notify(&cv_);
  }

  /// Scheduling point at an invocation's door: called *before* taking the
  /// object monitor, carrying the operation so DFS sleep sets can prune
  /// commuting invocations. No-op in SchedMode::kOs.
  void sched_point(const Operation& op) {
    if (WaitPolicy* policy = tm_.wait_policy()) {
      LaneHint hint;
      hint.point = WaitPoint::kObjectInvoke;
      hint.object = id_;
      hint.has_object = true;
      hint.op = op;
      hint.has_op = true;
      policy->yield(hint);
    }
  }

  void record(Event e) {
    switch (e.kind) {
      case EventKind::kInvoke:
        invocations_.fetch_add(1, std::memory_order_relaxed);
        break;
      case EventKind::kCommit:
        commits_.fetch_add(1, std::memory_order_relaxed);
        break;
      case EventKind::kAbort:
        aborts_.fetch_add(1, std::memory_order_relaxed);
        break;
      case EventKind::kRespond:
      case EventKind::kInitiate:
        break;
    }
    if (sink_ != nullptr) sink_->record(std::move(e));
  }

  /// Blocks (releasing `lock`) until pred() holds. While blocked:
  /// registers waits-for edges against blockers() (re-evaluated each
  /// round), wakes deadlock victims, and honours txn dooming and the wait
  /// timeout by throwing TransactionAborted. pred and blockers are called
  /// with the object mutex held.
  void await(std::unique_lock<std::mutex>& lock, Transaction& txn,
             const std::function<bool()>& pred,
             const std::function<std::vector<std::shared_ptr<Transaction>>()>&
                 blockers);

  TransactionManager& tm_;
  EventSink* sink_;
  mutable std::mutex mu_;
  std::condition_variable cv_;

 private:
  const ObjectId id_;
  const std::string name_;
  std::chrono::milliseconds wait_timeout_{std::chrono::milliseconds(10000)};

  std::atomic<std::uint64_t> invocations_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> waits_{0};
  std::atomic<std::uint64_t> wait_timeouts_{0};
  std::atomic<std::uint64_t> deadlock_dooms_{0};
};

}  // namespace argus
