// OccAtomicObject<Adt>: optimistic concurrency control over the paper's
// ADT framework, the conflict-based foil for §5.1's comparison.
//
// Invocations never block and never consult other transactions: each
// transaction executes against the committed state plus its own buffered
// operations and receives optimistic results immediately (read/write-set
// capture rides along on the transaction). The admission decision the
// data-dependent protocols make online is deferred wholesale to commit:
// the manager's pipeline takes the transaction's commit turn *before* the
// log force and calls validate_serial(), which replays the buffered
// operations against the now-current committed state. If every recorded
// result reproduces, the transaction serializes at its commit timestamp;
// otherwise an earlier committer won (first-committer-wins) and the
// transaction aborts with AbortReason::kValidation for the executor to
// retry. A fast path skips the replay when the object's committed version
// counter has not moved since the transaction's first access.
//
// kMultiVersion storage (the MVCC/snapshot-read mode) additionally keeps
// the committed operations as a timestamp-keyed version log, exactly like
// HybridAtomicObject's: read-only transactions replay the prefix strictly
// below their initiation timestamp — they take no buffers, never validate
// and never abort, the same audit fast path hybrid atomicity provides
// (§4.3.3), here grafted onto an OCC update path.
//
// Either way the committed history is hybrid atomic by construction:
// updates carry <commit(t),x,a> at their commit timestamp and serialize
// in timestamp order (validation happened at that very point), read-only
// activities carry <initiate(t),x,a> at their begin timestamp — so the
// standard hybrid checkers certify both modes unchanged.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/object_base.h"
#include "core/validation.h"
#include "spec/adt_spec.h"

namespace argus {

enum class OccStorage {
  kSingleVersion,  // OCC proper: one committed state
  kMultiVersion,   // MVCC: + timestamp-keyed version log for snapshot reads
};

template <AdtTraits A>
class OccAtomicObject final : public ObjectBase {
 public:
  OccAtomicObject(ObjectId oid, std::string name, TransactionManager& tm,
                  EventSink* recorder, OccStorage storage)
      : ObjectBase(oid, std::move(name), tm, recorder), storage_(storage) {}

  [[nodiscard]] OccStorage storage() const { return storage_; }

  Value invoke(Transaction& txn, const Operation& op) override {
    txn.ensure_active();
    txn.touch(this);
    sched_point(op);
    if (storage_ == OccStorage::kMultiVersion && txn.read_only()) {
      return invoke_snapshot(txn, op);
    }
    if (txn.read_only() && !A::is_read_only(op)) {
      throw UsageError("read-only transaction invoked mutator " +
                       to_string(op) + " on " + name());
    }
    return invoke_optimistic(txn, op);
  }

  /// Preliminary backward validation: a cheap early reject for
  /// transactions that have already lost, saving them the timestamp draw
  /// and the serial turn. Sound to skip (validate_serial re-checks at the
  /// serialization point), never admits unsoundly (it only aborts).
  void prepare(Transaction& txn) override {
    txn.ensure_active();
    const std::scoped_lock lock(mu_);
    auto it = entries_.find(txn.id());
    if (it == entries_.end() || it->second.base_version == version_) return;
    if (replay_logged<A>({committed_}, it->second.ops).empty()) {
      txn.doom(AbortReason::kValidation);
      throw TransactionAborted(txn.id(), AbortReason::kValidation);
    }
  }

  [[nodiscard]] bool needs_serial_validation(
      const Transaction& txn) const override {
    // Snapshot readers are abort-free by construction; everyone else
    // must survive validate-at-commit.
    return !(storage_ == OccStorage::kMultiVersion && txn.read_only());
  }

  void validate_serial(Transaction& txn) override {
    const std::scoped_lock lock(mu_);
    auto it = entries_.find(txn.id());
    if (it == entries_.end()) return;
    if (it->second.base_version == version_) return;  // nothing moved
    if (replay_logged<A>({committed_}, it->second.ops).empty()) {
      throw TransactionAborted(txn.id(), AbortReason::kValidation);
    }
  }

  void commit(Transaction& txn, Timestamp commit_ts) override {
    const std::scoped_lock lock(mu_);
    if (storage_ == OccStorage::kMultiVersion && txn.read_only()) {
      record(argus::commit(id(), txn.id()));
      return;
    }
    auto it = entries_.find(txn.id());
    if (it != entries_.end()) {
      auto states = replay_logged<A>({committed_}, it->second.ops);
      if (states.empty()) {
        throw UsageError("validated OCC commit diverged at " + name());
      }
      committed_ = std::move(states.front());
      bool wrote = false;
      for (LoggedOp& logged : it->second.ops) {
        if (!A::is_read_only(logged.op)) wrote = true;
        if (storage_ == OccStorage::kMultiVersion) {
          versions_.emplace_back(commit_ts, std::move(logged));
        }
      }
      if (wrote) ++version_;
      entries_.erase(it);
    }
    record(commit_at(id(), txn.id(), commit_ts));
    notify_object();
  }

  void abort(Transaction& txn) override {
    const std::scoped_lock lock(mu_);
    entries_.erase(txn.id());
    record(argus::abort(id(), txn.id()));
    notify_object();
  }

  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override {
    const std::scoped_lock lock(mu_);
    auto it = entries_.find(txn.id());
    return it == entries_.end() ? std::vector<LoggedOp>{} : it->second.ops;
  }

  void reset_for_recovery() override {
    const std::scoped_lock lock(mu_);
    committed_ = A::initial();
    version_ = 0;
    versions_.clear();
    entries_.clear();
    initiated_.clear();
    notify_object();
  }

  void replay(const ReplayContext& ctx, const LoggedOp& logged) override {
    const std::scoped_lock lock(mu_);
    auto states = replay_logged<A>({committed_}, {logged});
    if (states.empty()) {
      throw UsageError("recovery replay diverged at " + name() + " for " +
                       to_string(logged.op));
    }
    committed_ = std::move(states.front());
    if (!A::is_read_only(logged.op)) ++version_;
    if (storage_ == OccStorage::kMultiVersion) {
      versions_.emplace_back(ctx.commit_ts, logged);
    }
  }

  [[nodiscard]] typename A::State committed_state() const {
    const std::scoped_lock lock(mu_);
    return committed_;
  }

  /// Committed mutations so far (the validation fast path's clock).
  [[nodiscard]] std::uint64_t committed_version() const {
    const std::scoped_lock lock(mu_);
    return version_;
  }

 private:
  struct TxnEntry {
    std::vector<LoggedOp> ops;
    std::uint64_t base_version{0};  // version_ at first access
  };

  Value invoke_optimistic(Transaction& txn, const Operation& op) {
    const std::scoped_lock lock(mu_);
    record(argus::invoke(id(), txn.id(), op));

    auto [it, inserted] = entries_.try_emplace(txn.id());
    if (inserted) it->second.base_version = version_;

    // The optimistic view: committed state + this transaction's buffer.
    // Results handed out here are provisional until validate_serial.
    auto view = replay_logged<A>({committed_}, it->second.ops);
    if (view.empty()) {
      // A committed mutation already invalidated the buffer mid-run; no
      // result we hand out can survive validation, so fail fast.
      txn.doom(AbortReason::kValidation);
      throw TransactionAborted(txn.id(), AbortReason::kValidation);
    }
    const auto outcomes = A::step(view.front(), op);
    if (outcomes.empty()) {
      // Not enabled at the optimistic view (e.g. dequeue on empty). OCC
      // cannot block for enabledness the way intentions-list admission
      // does — abort and let the executor retry after someone commits.
      txn.doom(AbortReason::kValidation);
      throw TransactionAborted(txn.id(), AbortReason::kValidation);
    }
    const Value result = outcomes.front().first;
    it->second.ops.push_back(LoggedOp{op, result});
    txn.note_access(id(), !A::is_read_only(op));
    record(respond(id(), txn.id(), result));
    return result;
  }

  // Snapshot read (kMultiVersion): identical to hybrid atomicity's
  // read-only fast path — the version log is timestamp-ordered (applies
  // run in commit-timestamp order) and the watermark guaranteed every
  // commit below the activity's timestamp had fully applied before its
  // begin returned, so the prefix below start_ts is a true snapshot.
  Value invoke_snapshot(Transaction& txn, const Operation& op) {
    if (!A::is_read_only(op)) {
      throw UsageError("read-only transaction invoked mutator " +
                       to_string(op) + " on " + name());
    }
    const Timestamp t = txn.start_ts();
    const std::scoped_lock lock(mu_);
    if (initiated_.insert(txn.id()).second) {
      record(initiate(id(), txn.id(), t));
    }
    record(argus::invoke(id(), txn.id(), op));
    std::vector<LoggedOp> prefix;
    for (const auto& [ts, logged] : versions_) {
      if (ts >= t) break;
      prefix.push_back(logged);
    }
    auto states = replay_logged<A>({A::initial()}, prefix);
    if (states.empty()) {
      throw UsageError("version log not replayable at " + name());
    }
    const auto outcomes = A::step(states.front(), op);
    if (outcomes.empty()) {
      throw UsageError("read-only operation " + to_string(op) +
                       " not enabled at snapshot of " + name());
    }
    txn.note_access(id(), /*write=*/false);
    record(respond(id(), txn.id(), outcomes.front().first));
    return outcomes.front().first;
  }

  const OccStorage storage_;
  typename A::State committed_ = A::initial();  // guarded by mu_
  std::uint64_t version_{0};                    // committed mutations
  std::vector<std::pair<Timestamp, LoggedOp>> versions_;  // kMultiVersion
  std::map<ActivityId, TxnEntry> entries_;      // guarded by mu_
  std::set<ActivityId> initiated_;              // guarded by mu_
};

}  // namespace argus
