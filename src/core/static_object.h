// StaticAtomicObject<Adt>: an online implementation of static atomicity
// (§4.2) — Reed's timestamp-based multi-version protocol generalized from
// read/write registers to arbitrary ADTs.
//
// Every transaction carries the timestamp it chose at initiation. The
// object keeps a single timestamp-ordered log of executed operations
// (tentative until their transaction commits). To execute an operation
// for a transaction with timestamp t:
//
//   1. Wait until no *tentative* operation with timestamp below t remains
//      (the generalization of "reading a tentative version waits"; waits
//      point strictly down the timestamp order, so they cannot deadlock).
//   2. Replay the log prefix below t to obtain the state the operation
//      must observe, and compute its result there.
//   3. Validate the suffix: every already-executed operation above t must
//      still reproduce its recorded result with the new operation
//      inserted. If some later result would change, the *incoming*
//      transaction aborts (AbortReason::kTimestampOrder) — Reed's "write
//      rejected because a later read already happened", generalized.
//
// Consequences the paper states and our benchmarks measure: read-only
// operations never invalidate a suffix, so read-only transactions are
// never aborted by the protocol (§4.2.3); update transactions whose
// timestamps diverge from their execution order abort instead of waiting,
// which is why static atomicity "works poorly for updating activities
// unless timestamps are generated using closely synchronized clocks".
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/object_base.h"
#include "core/validation.h"
#include "spec/adt_spec.h"

namespace argus {

template <AdtTraits A>
class StaticAtomicObject final : public ObjectBase {
 public:
  StaticAtomicObject(ObjectId oid, std::string name, TransactionManager& tm,
                     EventSink* recorder)
      : ObjectBase(oid, std::move(name), tm, recorder) {}

  Value invoke(Transaction& txn, const Operation& op) override {
    txn.ensure_active();
    if (txn.read_only() && !A::is_read_only(op)) {
      throw UsageError("read-only transaction invoked mutator " +
                       to_string(op) + " on " + name());
    }
    txn.touch(this);
    sched_point(op);
    const Timestamp t = txn.start_ts();

    std::unique_lock lock(mu_);
    if (initiated_.insert(txn.id()).second) {
      record(initiate(id(), txn.id(), t));
    }
    record(argus::invoke(id(), txn.id(), op));

    Attempt attempt;

    await(
        lock, txn,
        [&] {
          if (tentative_below(t, txn.id())) return false;  // rule 1: wait
          attempt = admit(txn, op, t);
          return attempt.result.has_value() || attempt.must_abort;
        },
        [&] { return owners_below(t, txn.id()); });

    if (attempt.must_abort) {
      txn.doom(AbortReason::kTimestampOrder);
      throw TransactionAborted(txn.id(), AbortReason::kTimestampOrder);
    }
    record(respond(id(), txn.id(), *attempt.result));
    return *attempt.result;
  }

  void prepare(Transaction& txn) override { txn.ensure_active(); }

  void commit(Transaction& txn, Timestamp /*commit_ts*/) override {
    const std::scoped_lock lock(mu_);
    for (auto& [key, rec] : log_) {
      if (rec.txn == txn.id()) rec.committed = true;
    }
    record(argus::commit(id(), txn.id()));
    notify_object();
  }

  void abort(Transaction& txn) override {
    const std::scoped_lock lock(mu_);
    const auto removed = std::erase_if(
        log_, [&](const auto& kv) { return kv.second.txn == txn.id(); });
    if (removed > 0) cache_valid_ = false;
    seq_.erase(txn.id());
    record(argus::abort(id(), txn.id()));
    notify_object();
  }

  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override {
    const std::scoped_lock lock(mu_);
    std::vector<LoggedOp> out;
    for (const auto& [key, rec] : log_) {
      if (rec.txn == txn.id()) out.push_back(rec.logged);
    }
    return out;
  }

  void reset_for_recovery() override {
    const std::scoped_lock lock(mu_);
    log_.clear();
    seq_.clear();
    initiated_.clear();
    cache_valid_ = false;
    notify_object();
  }

  void replay(const ReplayContext& ctx, const LoggedOp& logged) override {
    const std::scoped_lock lock(mu_);
    cache_valid_ = false;
    // Reinsert at the transaction's *initiation* timestamp: that is the
    // serialization position under static atomicity.
    Record rec;
    rec.txn = ctx.txn;
    rec.logged = logged;
    rec.committed = true;
    log_.emplace(Key{ctx.start_ts, seq_[ctx.txn]++}, std::move(rec));
  }

  /// Test hook: state reached by replaying all committed operations in
  /// timestamp order.
  [[nodiscard]] std::optional<typename A::State> committed_state() const {
    const std::scoped_lock lock(mu_);
    std::vector<LoggedOp> ops;
    for (const auto& [key, rec] : log_) {
      if (rec.committed) ops.push_back(rec.logged);
    }
    auto states = replay_logged<A>({A::initial()}, ops);
    if (states.empty()) return std::nullopt;
    return states.front();
  }

 private:
  using Key = std::pair<Timestamp, std::uint64_t>;  // (timestamp, per-txn seq)

  struct Record {
    ActivityId txn;
    LoggedOp logged;
    bool committed{false};
  };

  [[nodiscard]] bool tentative_below(Timestamp t, ActivityId self) const {
    for (const auto& [key, rec] : log_) {
      if (key.first >= t) break;
      if (!rec.committed && rec.txn != self) return true;
    }
    return false;
  }

  std::vector<std::shared_ptr<Transaction>> owners_below(Timestamp t,
                                                         ActivityId self) {
    std::vector<std::shared_ptr<Transaction>> out;
    std::set<ActivityId> seen;
    for (const auto& [key, rec] : log_) {
      if (key.first >= t) break;
      if (rec.committed || rec.txn == self || !seen.insert(rec.txn).second) {
        continue;
      }
      for (const auto& t_active : tm_.active_transactions()) {
        if (t_active->id() == rec.txn) out.push_back(t_active);
      }
    }
    return out;
  }

  /// Outcome of one admission attempt: a result, "abort yourself", or
  /// neither (keep waiting).
  struct Attempt {
    std::optional<Value> result;
    bool must_abort{false};
  };

  /// Rules 2+3. Called with mu_ held and no tentative records below t.
  Attempt admit(Transaction& txn, const Operation& op, Timestamp t) {
    Attempt out;

    // Prefix: everything strictly below (t, next-seq) — i.e. all records
    // with smaller timestamp plus this transaction's own earlier records
    // at t. Timestamps are unique per transaction, so no other
    // transaction's records sit at t. The prefix state set is cached:
    // timestamps mostly arrive in increasing order, so the common case
    // extends the previous replay instead of starting from initial()
    // (aborts and out-of-order insertions invalidate, see abort()).
    const Key insert_key{t, seq_[txn.id()]};
    std::vector<typename A::State> below;
    typename std::map<Key, Record>::const_iterator it;
    if (cache_valid_ && !(insert_key < cache_key_)) {
      below = cache_states_;
      it = log_.lower_bound(cache_key_);
    } else {
      below = {A::initial()};
      it = log_.begin();
    }
    for (; it != log_.end() && it->first < insert_key; ++it) {
      below = replay_logged<A>(std::move(below), {it->second.logged});
      if (below.empty()) break;
    }
    if (below.empty()) {
      // Should be impossible: insertions preserve replayability.
      out.must_abort = true;
      return out;
    }
    cache_valid_ = true;
    cache_key_ = insert_key;
    cache_states_ = below;

    std::vector<LoggedOp> suffix;
    for (auto sit = log_.lower_bound(insert_key); sit != log_.end(); ++sit) {
      suffix.push_back(sit->second.logged);
    }

    for (const auto& [result, next] : A::step(below.front(), op)) {
      // Suffix validation with (op -> result) inserted at t.
      std::vector<LoggedOp> with_new = {LoggedOp{op, result}};
      auto mid = replay_logged<A>(below, with_new);
      if (mid.empty()) continue;
      if (!replay_logged<A>(mid, suffix).empty()) {
        log_.emplace(insert_key, Record{txn.id(), LoggedOp{op, result}, false});
        ++seq_[txn.id()];
        out.result = result;
        return out;
      }
    }

    if (A::step(below.front(), op).empty()) {
      // Not enabled at its timestamp (e.g. dequeue on an empty prefix):
      // nothing below t can appear without the writer aborting us later,
      // so wait — a smaller-timestamp insert may still arrive.
      return out;  // keep waiting
    }
    // Enabled, but every outcome would invalidate the suffix: the
    // incoming transaction arrived "too late" in timestamp order.
    out.must_abort = true;
    return out;
  }

  std::map<Key, Record> log_;                    // guarded by mu_
  std::map<ActivityId, std::uint64_t> seq_;      // guarded by mu_
  std::set<ActivityId> initiated_;               // guarded by mu_

  // Prefix-replay cache: cache_states_ is the candidate state set after
  // replaying every record with key < cache_key_. All guarded by mu_.
  bool cache_valid_{false};
  Key cache_key_{};
  std::vector<typename A::State> cache_states_;
};

}  // namespace argus
