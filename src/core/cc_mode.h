// CCMode: the concurrency-control mode a runtime (and its TxnExecutor)
// operates under — the knob the §5.1 head-to-head turns. The three
// data-dependent modes are the paper's local atomicity properties; OCC
// and MVCC are the conflict/validation-based foils (see
// core/occ_object.h). Lives in core (not sched) so the Runtime can carry
// the mode and gate lock-only machinery — the deadlock detector and the
// argus_object_wait*/argus_deadlocks_* metrics are meaningless under
// OCC/MVCC, whose objects never block.
#pragma once

#include <string>
#include <vector>

namespace argus {

enum class CCMode {
  kDynamic,  // §4.1 — intentions lists + data-dependent admission
  kStatic,   // §4.2 — generalized multi-version timestamp ordering
  kHybrid,   // §4.3 — dynamic updates + commit-time timestamps
  kOcc,      // validate-at-commit, first-committer-wins, abort-and-retry
  kMvcc,     // OCC updates + timestamp-keyed versions, snapshot reads
};

[[nodiscard]] std::string to_string(CCMode m);

/// Parses the to_string form; returns false (and leaves *out alone) on an
/// unknown name.
[[nodiscard]] bool parse_cc_mode(const std::string& name, CCMode* out);

/// All modes, in enum order (sweep helpers).
[[nodiscard]] const std::vector<CCMode>& all_cc_modes();

/// True when the mode admits operations by blocking (intentions-list or
/// lock-style waits) — i.e. when the deadlock detector and the wait/
/// deadlock metrics are live machinery rather than dead weight.
[[nodiscard]] constexpr bool uses_blocking_admission(CCMode m) {
  return m != CCMode::kOcc && m != CCMode::kMvcc;
}

/// True when read-only transactions get an abort-free timestamp snapshot
/// under this mode.
[[nodiscard]] constexpr bool mode_supports_snapshot_reads(CCMode m) {
  return m == CCMode::kHybrid || m == CCMode::kStatic || m == CCMode::kMvcc;
}

}  // namespace argus
