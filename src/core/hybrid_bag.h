// HybridBag: a type-specific hybrid-atomic bag ("semiqueue") exploiting
// nondeterminism for concurrency.
//
// §1 of the paper (citing [Weihl & Liskov 83]): "non-determinism may be
// needed to achieve a reasonable level of concurrency among actions" —
// and conventional models "require operations to be functions, precluding
// the description of non-deterministic operations". The bag's remove
// returns *some* element, and precisely because the specification does
// not say which, concurrent removers need not conflict: each claims a
// different committed instance. Contrast the FIFO queue, whose
// deterministic dequeue forces concurrent consumers to serialize on the
// front (bench_nondeterminism measures the gap).
//
// Protocol (commit-order, like HybridFifoQueue):
//   insert(v)  — never conflicts; buffered in the intentions list and
//                folded in at commit.
//   remove     — claims any committed instance not claimed by an active
//                transaction; waits only when none is available. The
//                claimed element exists at every possible serialization
//                position (inserts only add, claims are disjoint), so
//                the nondeterministic result is valid in every order.
//   size       — read-only transactions only (timestamp snapshot of the
//                committed operation log).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/object_base.h"
#include "spec/adts/bag.h"
#include "txn/stable_log.h"

namespace argus {

class HybridBag final : public ObjectBase {
 public:
  HybridBag(ObjectId oid, std::string name, TransactionManager& tm,
            EventSink* recorder);

  Value invoke(Transaction& txn, const Operation& op) override;
  void prepare(Transaction& txn) override;
  void commit(Transaction& txn, Timestamp commit_ts) override;
  void abort(Transaction& txn) override;
  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override;
  void reset_for_recovery() override;
  void replay(const ReplayContext& ctx, const LoggedOp& logged) override;

  /// Test hook: committed contents (element -> multiplicity).
  [[nodiscard]] std::map<std::int64_t, std::int64_t> committed_contents()
      const;

 private:
  struct TxnEntry {
    std::weak_ptr<Transaction> owner;
    std::vector<LoggedOp> ops;
    std::map<std::int64_t, std::int64_t> claims;  // committed instances held
  };

  Value invoke_read_only(Transaction& txn, const Operation& op);
  Value invoke_update(Transaction& txn, const Operation& op);

  /// Smallest committed element with an unclaimed instance; nullopt when
  /// every instance is claimed or the bag is empty. Called with mu_ held.
  [[nodiscard]] std::optional<std::int64_t> unclaimed_element() const;

  std::vector<std::shared_ptr<Transaction>> blockers(ActivityId self);

  std::map<std::int64_t, std::int64_t> committed_;   // guarded by mu_
  std::vector<std::pair<Timestamp, LoggedOp>> log_;  // guarded by mu_
  std::map<ActivityId, TxnEntry> intentions_;        // guarded by mu_
  std::set<ActivityId> initiated_;                   // guarded by mu_
};

}  // namespace argus
