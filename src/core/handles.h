// Typed application-facing API.
//
// ManagedObject::invoke is the protocol-level interface (operations as
// data); applications want typed methods and scoped transactions. This
// header provides both:
//
//   TransactionScope tx(rt);                       // aborts unless committed
//   AtomicAccount acct = ...;
//   acct.deposit(tx, 100);
//   if (acct.withdraw(tx, 30)) { ... }
//   tx.commit();
//
// Handles are thin: they hold a shared_ptr<ManagedObject> of *any*
// protocol, so application code is protocol-agnostic — the encapsulation
// argument of §1 (synchronization and recovery live inside the object,
// not in the activities).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/runtime.h"
#include "spec/adts/bag.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/counter.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "spec/adts/kv_store.h"

namespace argus {

/// RAII transaction: aborts on scope exit unless commit() was called.
/// Converts the common try/catch-abort boilerplate into straight-line
/// code; TransactionAborted still propagates to the caller (after the
/// destructor has finished the abort), which is the retry point.
class TransactionScope {
 public:
  explicit TransactionScope(Runtime& rt, TxnKind kind = TxnKind::kUpdate)
      : rt_(rt), txn_(rt.tm().begin(kind)) {}

  TransactionScope(const TransactionScope&) = delete;
  TransactionScope& operator=(const TransactionScope&) = delete;

  ~TransactionScope() {
    if (!finished_) rt_.tm().abort(txn_);
  }

  [[nodiscard]] Transaction& txn() { return *txn_; }
  [[nodiscard]] const std::shared_ptr<Transaction>& handle() const {
    return txn_;
  }

  void commit() {
    finished_ = true;  // even a failed commit finishes the transaction
    rt_.tm().commit(txn_);
  }

  void abort() {
    finished_ = true;
    rt_.tm().abort(txn_);
  }

  [[nodiscard]] bool committed() const {
    return txn_->state() == TxnState::kCommitted;
  }

 private:
  Runtime& rt_;
  std::shared_ptr<Transaction> txn_;
  bool finished_{false};
};

namespace detail {

/// Common plumbing: every typed handle wraps a protocol object.
class HandleBase {
 public:
  explicit HandleBase(std::shared_ptr<ManagedObject> object)
      : object_(std::move(object)) {}

  [[nodiscard]] const std::shared_ptr<ManagedObject>& object() const {
    return object_;
  }

 protected:
  Value call(TransactionScope& tx, const Operation& o) const {
    return object_->invoke(tx.txn(), o);
  }
  Value call(Transaction& txn, const Operation& o) const {
    return object_->invoke(txn, o);
  }

 private:
  std::shared_ptr<ManagedObject> object_;
};

}  // namespace detail

class AtomicAccount : public detail::HandleBase {
 public:
  using HandleBase::HandleBase;

  template <typename Tx>
  void deposit(Tx& tx, std::int64_t amount) const {
    call(tx, account::deposit(amount));
  }
  /// True iff the withdrawal succeeded (false: insufficient funds).
  template <typename Tx>
  [[nodiscard]] bool withdraw(Tx& tx, std::int64_t amount) const {
    return call(tx, account::withdraw(amount)).is_unit();
  }
  template <typename Tx>
  [[nodiscard]] std::int64_t balance(Tx& tx) const {
    return call(tx, account::balance()).as_int();
  }
};

class AtomicIntSet : public detail::HandleBase {
 public:
  using HandleBase::HandleBase;

  template <typename Tx>
  void insert(Tx& tx, std::int64_t n) const {
    call(tx, intset::insert(n));
  }
  template <typename Tx>
  void erase(Tx& tx, std::int64_t n) const {
    call(tx, intset::del(n));
  }
  template <typename Tx>
  [[nodiscard]] bool contains(Tx& tx, std::int64_t n) const {
    return call(tx, intset::member(n)).as_bool();
  }
};

class AtomicCounter : public detail::HandleBase {
 public:
  using HandleBase::HandleBase;

  /// Returns the post-increment value.
  template <typename Tx>
  std::int64_t increment(Tx& tx) const {
    return call(tx, counter::increment()).as_int();
  }
};

class AtomicQueue : public detail::HandleBase {
 public:
  using HandleBase::HandleBase;

  template <typename Tx>
  void enqueue(Tx& tx, std::int64_t v) const {
    call(tx, fifo::enqueue(v));
  }
  /// Blocks until an item is available (per the object's protocol).
  template <typename Tx>
  [[nodiscard]] std::int64_t dequeue(Tx& tx) const {
    return call(tx, fifo::dequeue()).as_int();
  }
  /// Read-only transactions only on the hybrid queue.
  template <typename Tx>
  [[nodiscard]] std::int64_t size(Tx& tx) const {
    return call(tx, fifo::size()).as_int();
  }
};

class AtomicKVStore : public detail::HandleBase {
 public:
  using HandleBase::HandleBase;

  template <typename Tx>
  void put(Tx& tx, std::int64_t key, std::int64_t value) const {
    call(tx, kv::put(key, value));
  }
  template <typename Tx>
  [[nodiscard]] std::optional<std::int64_t> get(Tx& tx,
                                                std::int64_t key) const {
    const Value v = call(tx, kv::get(key));
    if (v.is_int()) return v.as_int();
    return std::nullopt;  // "none"
  }
  template <typename Tx>
  void erase(Tx& tx, std::int64_t key) const {
    call(tx, kv::remove(key));
  }
  template <typename Tx>
  [[nodiscard]] bool contains(Tx& tx, std::int64_t key) const {
    return call(tx, kv::contains(key)).as_bool();
  }
};

class AtomicBag : public detail::HandleBase {
 public:
  using HandleBase::HandleBase;

  template <typename Tx>
  void insert(Tx& tx, std::int64_t v) const {
    call(tx, bag::insert(v));
  }
  /// Removes and returns some element (nondeterministic choice; blocks
  /// while empty under locking protocols).
  template <typename Tx>
  [[nodiscard]] std::int64_t remove_any(Tx& tx) const {
    return call(tx, bag::remove()).as_int();
  }
  template <typename Tx>
  [[nodiscard]] std::int64_t size(Tx& tx) const {
    return call(tx, bag::size()).as_int();
  }
};

}  // namespace argus
