#include "core/cc_mode.h"

namespace argus {

std::string to_string(CCMode m) {
  switch (m) {
    case CCMode::kDynamic:
      return "dynamic";
    case CCMode::kStatic:
      return "static";
    case CCMode::kHybrid:
      return "hybrid";
    case CCMode::kOcc:
      return "occ";
    case CCMode::kMvcc:
      return "mvcc";
  }
  return "?";
}

bool parse_cc_mode(const std::string& name, CCMode* out) {
  for (CCMode m : all_cc_modes()) {
    if (to_string(m) == name) {
      *out = m;
      return true;
    }
  }
  return false;
}

const std::vector<CCMode>& all_cc_modes() {
  static const std::vector<CCMode> modes = {CCMode::kDynamic, CCMode::kStatic,
                                            CCMode::kHybrid, CCMode::kOcc,
                                            CCMode::kMvcc};
  return modes;
}

}  // namespace argus
