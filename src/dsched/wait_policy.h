// WaitPolicy: the pluggable hook every blocking point in the runtime
// routes through, so a deterministic cooperative scheduler can own every
// context switch (SchedMode::kDeterministic) while the default OS mode
// stays byte-identical to the pre-hook code.
//
// The contract, kept deliberately small:
//
//   * yield(hint)    — a pure scheduling point: the caller is runnable and
//                      offers the scheduler a chance to switch lanes. Must
//                      be called with NO runtime mutex held.
//   * wait_round(..) — replaces one bounded condition-variable wait round:
//                      the caller holds exactly `lock` (released while
//                      parked, re-acquired before returning) and loops on
//                      its own predicate, exactly like cv.wait_for. The
//                      timeout is interpreted in *virtual* time by the
//                      deterministic scheduler, so wait timeouts become a
//                      function of the schedule, not the wall clock.
//   * notify(chan)   — reports that `chan` (the address of the condition
//                      variable just notified) was signalled, making lanes
//                      parked on it runnable. Callers must still notify
//                      the real condition variable first: threads that are
//                      not lanes (and lanes after release()) wait on it
//                      for real.
//   * sleep_us(..)   — replaces a plain sleep (e.g. the stable log's
//                      simulated force latency) with a virtual-time block.
//   * adopt_daemon / retire_daemon — lets a background service thread
//                      (the atomicity sentinel) join the lane pool so its
//                      activations are scheduled too; daemons do not keep
//                      the scheduler running and free-run after release.
//
// Every call site in core/, txn/ and obs/ null-checks its policy pointer
// and keeps the existing code path verbatim when it is null — that is the
// SchedMode::kOs guarantee.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/ids.h"
#include "common/operation.h"

namespace argus {

/// Where a lane is (about to be) blocked or yielding. The first entry is
/// the only pure scheduling point; the rest name the runtime's blocking
/// waits.
enum class WaitPoint : int {
  kObjectInvoke = 0,  // about to enter an object's monitor with one op
  kObjectWait,        // blocked in ObjectBase::await (admission/enabledness)
  kTxnBegin,          // TransactionManager::begin
  kTxnCommit,         // TransactionManager::commit entry
  kClockTurn,         // LamportClock::wait_for_turn (apply in ts order)
  kClockCovered,      // LamportClock read-only watermark coverage
  kLogLeader,         // StableLog flush leader held by hold_flushes()
  kLogFollower,       // StableLog committer waiting for its batch's force
  kLogSleep,          // StableLog simulated force latency / retry backoff
  kSentinelWindow,    // AtomicitySentinel between drain windows
  kExecutorQueue,     // TxnExecutor worker waiting for a task (or drain)
};

[[nodiscard]] std::string to_string(WaitPoint point);

/// What a lane would do next — attached to every yield and wait so a
/// schedule source can make informed choices (PCT priorities, DFS
/// sleep-set pruning over commuting invocations).
struct LaneHint {
  WaitPoint point{WaitPoint::kObjectInvoke};
  ObjectId object{};
  bool has_object{false};
  Operation op{};
  bool has_op{false};

  friend bool operator==(const LaneHint&, const LaneHint&) = default;
};

class WaitPolicy {
 public:
  virtual ~WaitPolicy() = default;

  /// Virtual time in microseconds (monotone; advances per scheduling
  /// decision, and jumps when every lane is blocked on a deadline).
  virtual std::uint64_t now_us() = 0;

  /// Pure scheduling point; no-op for non-lane threads.
  virtual void yield(const LaneHint& hint) = 0;

  /// One bounded wait round on `cv`, keyed by `channel` for notify().
  /// Releases `lock` while parked; returns with it re-acquired. timeout
  /// <= 0 means "until notified" (no deadline).
  virtual void wait_round(const LaneHint& hint, const void* channel,
                          std::unique_lock<std::mutex>& lock,
                          std::condition_variable& cv,
                          std::chrono::microseconds timeout) = 0;

  /// Makes lanes parked on `channel` runnable. Safe to call from any
  /// thread, with or without runtime locks held (never blocks).
  virtual void notify(const void* channel) = 0;

  /// Virtual-time sleep (no channel; wakes at the deadline). Must be
  /// called with no runtime mutex held.
  virtual void sleep_us(WaitPoint point, std::uint64_t us) = 0;

  /// Registers the calling (non-spawned) thread as a daemon lane and
  /// parks it until scheduled. Daemons do not keep run() alive.
  virtual void adopt_daemon(std::string name) = 0;

  /// Unregisters the calling daemon thread (it reverts to pass-through).
  virtual void retire_daemon() = 0;
};

}  // namespace argus
