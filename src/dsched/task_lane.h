// DeterministicScheduler: a cooperative scheduler over TaskLanes with
// virtual time — the WaitPolicy implementation behind
// SchedMode::kDeterministic.
//
// Model:
//
//   * Each spawned workload thread and each adopted daemon thread is a
//     TaskLane. At most one lane executes runtime code at any moment; the
//     control thread (run()) picks which, by asking the ScheduleSource at
//     every scheduling decision. All other lanes are parked on the
//     scheduler's own condition variable, holding no runtime mutexes —
//     yield() is only legal lock-free, and wait_round() releases exactly
//     the caller's lock. That single-active-lane invariant is what makes
//     lost wakeups impossible and every execution a pure function of
//     (program, seed, schedule).
//   * Virtual time: now_us() advances by a fixed quantum per decision.
//     When no lane is ready, time jumps to the earliest blocked lane's
//     deadline — discrete-event style — so wait timeouts (including the
//     objects' doom-on-timeout backstop) are decided by the schedule,
//     never the wall clock, and a run with an unbreakable wait terminates
//     deterministically instead of hanging.
//   * Every decision appends the chosen lane id to the schedule trace;
//     to_schedule_string(choices()) is the compact replay string.
//   * release() ends deterministic control: every lane (daemons included)
//     free-runs on OS scheduling from then on, and all policy calls
//     become pass-throughs to the real primitives. run() releases on
//     exit; the destructor releases defensively. A run that exceeds
//     max_steps is released too and flagged overflowed() — the explorer
//     refuses to certify it.
//
// Lock order: a lane may take the scheduler mutex while holding runtime
// mutexes (notify() does), but never the reverse — the scheduler calls
// into nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dsched/schedule_source.h"
#include "dsched/wait_policy.h"

namespace argus {

struct DschedOptions {
  /// Virtual microseconds per scheduling decision.
  std::uint64_t quantum_us{1};
  /// Decisions after which the run is released and flagged overflowed.
  std::uint64_t max_steps{2'000'000};
};

class DeterministicScheduler final : public WaitPolicy {
 public:
  explicit DeterministicScheduler(ScheduleSource& source,
                                  DschedOptions options = {});
  ~DeterministicScheduler() override;

  DeterministicScheduler(const DeterministicScheduler&) = delete;
  DeterministicScheduler& operator=(const DeterministicScheduler&) = delete;

  /// Registers a workload lane (id = registration order, starting at 0)
  /// and starts its thread parked. Call before run().
  std::size_t spawn(std::string name, std::function<void()> body);

  /// Blocks until `count` lanes exist (spawned + adopted daemons). Call
  /// after starting a daemon service and before spawning further lanes /
  /// calling run(), so lane ids — and with them every schedule string —
  /// are independent of OS thread startup timing.
  void await_lanes(std::size_t count);

  /// Drives the schedule until every non-daemon lane finishes (or
  /// max_steps), then releases. Joins the workload threads.
  void run();

  /// Ends deterministic control: wakes every parked lane into free-run
  /// mode. Idempotent; run() calls it on exit.
  void release();

  [[nodiscard]] std::size_t lane_count() const;

  /// The decision trace of the (last) run. Stable once run() returned.
  [[nodiscard]] std::vector<std::uint32_t> choices() const;
  [[nodiscard]] std::string schedule_string() const;
  [[nodiscard]] std::uint64_t steps() const;
  [[nodiscard]] bool overflowed() const;
  /// Uncaught exceptions from lane bodies ("lane <id> <name>: what").
  [[nodiscard]] std::vector<std::string> lane_errors() const;

  // WaitPolicy:
  std::uint64_t now_us() override;
  void yield(const LaneHint& hint) override;
  void wait_round(const LaneHint& hint, const void* channel,
                  std::unique_lock<std::mutex>& lock,
                  std::condition_variable& cv,
                  std::chrono::microseconds timeout) override;
  void notify(const void* channel) override;
  void sleep_us(WaitPoint point, std::uint64_t us) override;
  void adopt_daemon(std::string name) override;
  void retire_daemon() override;

 private:
  static constexpr std::uint64_t kNoDeadline = ~0ULL;
  static constexpr std::size_t kControl = static_cast<std::size_t>(-1);

  struct Lane {
    DeterministicScheduler* owner{nullptr};
    std::size_t id{0};
    std::string name;
    bool daemon{false};
    enum class St { kReady, kRunning, kBlocked, kFinished } state{St::kReady};
    const void* channel{nullptr};
    std::uint64_t deadline{kNoDeadline};
    LaneHint hint{};
    std::string error;
    std::thread thread;  // empty for adopted daemons
  };

  /// The calling thread's lane in *this* scheduler, else nullptr.
  [[nodiscard]] Lane* current_lane() const;
  /// Parks the calling lane and hands control back; returns when the lane
  /// is scheduled again (or the scheduler is released). smu_ held.
  void park(std::unique_lock<std::mutex>& sl, Lane* me);
  void release_locked();

  ScheduleSource& source_;
  const DschedOptions options_;

  mutable std::mutex smu_;
  std::condition_variable scv_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::size_t active_{kControl};
  std::atomic<bool> released_{false};
  std::uint64_t now_us_{0};
  std::uint64_t steps_{0};
  bool overflowed_{false};
  std::vector<std::uint32_t> choices_;
};

}  // namespace argus
