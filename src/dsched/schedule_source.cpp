#include "dsched/schedule_source.h"

#include <algorithm>

namespace argus {

std::string to_string(WaitPoint point) {
  switch (point) {
    case WaitPoint::kObjectInvoke:
      return "object-invoke";
    case WaitPoint::kObjectWait:
      return "object-wait";
    case WaitPoint::kTxnBegin:
      return "txn-begin";
    case WaitPoint::kTxnCommit:
      return "txn-commit";
    case WaitPoint::kClockTurn:
      return "clock-turn";
    case WaitPoint::kClockCovered:
      return "clock-covered";
    case WaitPoint::kLogLeader:
      return "log-leader";
    case WaitPoint::kLogFollower:
      return "log-follower";
    case WaitPoint::kLogSleep:
      return "log-sleep";
    case WaitPoint::kSentinelWindow:
      return "sentinel-window";
    case WaitPoint::kExecutorQueue:
      return "executor-queue";
  }
  return "unknown";
}

PctScheduleSource::PctScheduleSource(std::uint64_t seed,
                                     std::uint32_t change_points,
                                     std::uint64_t horizon)
    : seed_(seed), change_points_(change_points),
      horizon_(horizon == 0 ? 1 : horizon) {}

void PctScheduleSource::begin_run() {
  rng_ = SplitMix64(seed_ ^ 0x94d049bb133111ebULL);
  priorities_.clear();
  change_steps_.clear();
  low_water_ = 0;
  for (std::uint32_t i = 0; i < change_points_; ++i) {
    change_steps_.insert(rng_.below(horizon_));
  }
}

std::size_t PctScheduleSource::pick(const std::vector<LaneChoice>& ready,
                                    std::uint64_t step) {
  // Lanes draw their fixed priority on first appearance. The ready set is
  // sorted by lane id and the execution is deterministic, so the draws
  // are too.
  for (const LaneChoice& c : ready) {
    if (priorities_.find(c.lane) == priorities_.end()) {
      priorities_[c.lane] = static_cast<std::int64_t>(rng_.below(1u << 30)) + 1;
    }
  }
  const auto best = [&] {
    std::size_t arg = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (priorities_[ready[i].lane] > priorities_[ready[arg].lane]) arg = i;
    }
    return arg;
  };
  if (change_steps_.count(step) != 0) {
    // Change point: demote the current leader below every priority ever
    // assigned, forcing a preemption exactly here.
    priorities_[ready[best()].lane] = --low_water_;
  }
  return best();
}

std::size_t ReplayScheduleSource::pick(const std::vector<LaneChoice>& ready,
                                       std::uint64_t /*step*/) {
  if (next_ < choices_.size()) {
    const std::uint32_t want = choices_[next_++];
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (ready[i].lane == want) return i;
    }
    diverged_ = true;
  }
  // Past the recorded prefix (or diverged): deterministic default — the
  // lowest-id ready lane. This is what makes prefix bisection meaningful.
  return 0;
}

bool DfsScheduleSource::in_sleep(const Frame& f, const LaneChoice& c) const {
  const DfsStep step{c.lane, c.hint};
  return std::find(f.sleep.begin(), f.sleep.end(), step) != f.sleep.end();
}

std::size_t DfsScheduleSource::next_open_choice(Frame& f, std::size_t from) {
  std::size_t i = from;
  for (; i < f.ready.size(); ++i) {
    if (!in_sleep(f, f.ready[i])) break;
    ++pruned_;
  }
  return i;
}

std::size_t DfsScheduleSource::pick(const std::vector<LaneChoice>& ready,
                                    std::uint64_t /*step*/) {
  if (depth_ < frames_.size()) {
    // Replaying the committed prefix of the current branch. Execution is
    // deterministic, so the ready set matches the recorded frame.
    Frame& f = frames_[depth_];
    ++depth_;
    return std::min(f.choice, ready.size() - 1);
  }
  if (depth_ >= options_.max_depth) {
    // Beyond the branching bound: deterministic default, no new frame.
    ++depth_;
    return 0;
  }

  Frame f;
  f.ready = ready;
  // Sleep-set inheritance (Godefroid): a step slept at the parent stays
  // asleep here iff it is independent of the step the parent chose.
  if (!frames_.empty() && options_.independent) {
    const Frame& parent = frames_.back();
    const DfsStep chosen{parent.ready[parent.choice].lane,
                         parent.ready[parent.choice].hint};
    for (const DfsStep& s : parent.sleep) {
      if (options_.independent(s, chosen)) f.sleep.push_back(s);
    }
  }
  const std::size_t first = next_open_choice(f, 0);
  if (first >= f.ready.size()) {
    // Every branch slept. That cannot happen at a genuinely new node (the
    // step that put its siblings to sleep is itself explored elsewhere),
    // but a cooperative execution cannot be abandoned mid-run — run the
    // first branch and mark the frame redundant so it never branches.
    f.redundant = true;
    f.choice = 0;
  } else {
    f.choice = first;
  }
  frames_.push_back(std::move(f));
  ++depth_;
  return frames_.back().choice;
}

bool DfsScheduleSource::next_run() {
  ++runs_;
  if (runs_ >= options_.max_runs) return false;  // truncated, not exhausted
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    if (!f.redundant) {
      // The explored branch joins the sleep set: siblings independent of
      // it need not be re-explored from this node.
      f.sleep.push_back(DfsStep{f.ready[f.choice].lane, f.ready[f.choice].hint});
      const std::size_t next = next_open_choice(f, f.choice + 1);
      if (next < f.ready.size()) {
        f.choice = next;
        return true;
      }
    }
    frames_.pop_back();
  }
  exhausted_ = true;
  return false;
}

namespace {

constexpr char kBase36[] = "0123456789abcdefghijklmnopqrstuvwxyz";

}  // namespace

std::string to_schedule_string(const std::vector<std::uint32_t>& choices) {
  bool compact = true;
  for (const std::uint32_t c : choices) {
    if (c >= 36) {
      compact = false;
      break;
    }
  }
  std::string out = compact ? "s1:" : "s2:";
  if (compact) {
    out.reserve(3 + choices.size());
    for (const std::uint32_t c : choices) out.push_back(kBase36[c]);
    return out;
  }
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(choices[i]);
  }
  return out;
}

bool parse_schedule_string(const std::string& text,
                           std::vector<std::uint32_t>* out,
                           std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  out->clear();
  if (text.empty()) return true;
  if (text.rfind("s1:", 0) == 0) {
    for (std::size_t i = 3; i < text.size(); ++i) {
      const char ch = text[i];
      const char* pos = std::char_traits<char>::find(kBase36, 36, ch);
      if (pos == nullptr) {
        return fail("bad schedule digit '" + std::string(1, ch) + "'");
      }
      out->push_back(static_cast<std::uint32_t>(pos - kBase36));
    }
    return true;
  }
  if (text.rfind("s2:", 0) == 0) {
    std::size_t i = 3;
    while (i < text.size()) {
      std::size_t digits = 0;
      std::uint64_t value = 0;
      while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
        ++digits;
        ++i;
        if (value > 0xffffffffULL) return fail("lane id out of range");
      }
      if (digits == 0) return fail("expected lane id in schedule");
      out->push_back(static_cast<std::uint32_t>(value));
      if (i < text.size()) {
        if (text[i] != ',') return fail("expected ',' in schedule");
        ++i;
        if (i == text.size()) return fail("trailing ',' in schedule");
      }
    }
    return true;
  }
  return fail("schedule must start with s1: or s2:");
}

}  // namespace argus
