// ScheduleSource: chooses, at every scheduling decision of the
// deterministic scheduler, which ready lane runs next. Three exploration
// strategies plus exact replay:
//
//   * RandomScheduleSource — uniform over the ready set, seeded. The
//     workhorse of the explorer sweep: cheap, unbiased, reproducible.
//   * PctScheduleSource — PCT-style priority schedules: each lane gets a
//     random fixed priority, the highest-priority ready lane always runs,
//     and k seeded change points demote the running leader. Finds
//     ordering bugs that need a small number of forced preemptions with
//     provable probability (Burckhardt et al.'s PCT).
//   * DfsScheduleSource — stateless exhaustive DFS over small
//     configurations with sleep-set pruning: a branch whose next step
//     commutes with every explored sibling's step is skipped, using the
//     ADTs' state-independent commutativity as the (sound,
//     under-approximating) independence relation.
//   * ReplayScheduleSource — replays a recorded schedule string; past the
//     recorded prefix it defaults to the lowest-id ready lane, which is
//     what makes prefix-length bisection a schedule minimizer (the exact
//     contract FaultPlan::max_faults bisection established for faults).
//
// A schedule is serialized as a compact string ("s1:<base36 digit per
// choice>", or "s2:" comma-separated when a lane id exceeds 35) that
// replays byte-for-byte: same program + same schedule string => same
// trace.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "dsched/wait_policy.h"

namespace argus {

/// One runnable lane offered to the source, with what it would do next.
struct LaneChoice {
  std::uint32_t lane{0};
  LaneHint hint{};

  friend bool operator==(const LaneChoice&, const LaneChoice&) = default;
};

class ScheduleSource {
 public:
  virtual ~ScheduleSource() = default;

  /// Picks an index into `ready` (never empty; sorted by lane id). `step`
  /// is the global decision counter of the current run.
  virtual std::size_t pick(const std::vector<LaneChoice>& ready,
                           std::uint64_t step) = 0;

  /// Resets per-run state. Call before every execution.
  virtual void begin_run() {}

  /// After a run completes: advance to the next schedule. false = the
  /// source has no further schedules (single-schedule sources, exhausted
  /// or truncated DFS).
  virtual bool next_run() { return false; }
};

class RandomScheduleSource final : public ScheduleSource {
 public:
  explicit RandomScheduleSource(std::uint64_t seed)
      : seed_(seed), rng_(seed) {}

  void begin_run() override { rng_ = SplitMix64(seed_); }

  std::size_t pick(const std::vector<LaneChoice>& ready,
                   std::uint64_t /*step*/) override {
    return static_cast<std::size_t>(rng_.below(ready.size()));
  }

 private:
  const std::uint64_t seed_;
  SplitMix64 rng_;
};

class PctScheduleSource final : public ScheduleSource {
 public:
  /// `change_points` priority demotions, placed uniformly in the first
  /// `horizon` decisions.
  explicit PctScheduleSource(std::uint64_t seed,
                             std::uint32_t change_points = 2,
                             std::uint64_t horizon = 512);

  void begin_run() override;
  std::size_t pick(const std::vector<LaneChoice>& ready,
                   std::uint64_t step) override;

 private:
  const std::uint64_t seed_;
  const std::uint32_t change_points_;
  const std::uint64_t horizon_;
  SplitMix64 rng_{0};
  std::unordered_map<std::uint32_t, std::int64_t> priorities_;
  std::set<std::uint64_t> change_steps_;
  std::int64_t low_water_{0};
};

class ReplayScheduleSource final : public ScheduleSource {
 public:
  explicit ReplayScheduleSource(std::vector<std::uint32_t> choices)
      : choices_(std::move(choices)) {}

  void begin_run() override {
    next_ = 0;
    diverged_ = false;
  }

  std::size_t pick(const std::vector<LaneChoice>& ready,
                   std::uint64_t /*step*/) override;

  /// True if a recorded choice named a lane that was not ready — the
  /// program under replay diverged from the recording.
  [[nodiscard]] bool diverged() const { return diverged_; }

 private:
  const std::vector<std::uint32_t> choices_;
  std::size_t next_{0};
  bool diverged_{false};
};

/// One potential transition for the DFS independence relation: a lane
/// together with the hint it carried at the branching node.
struct DfsStep {
  std::uint32_t lane{0};
  LaneHint hint{};

  friend bool operator==(const DfsStep&, const DfsStep&) = default;
};

/// True when the two steps commute (executing them in either order leads
/// to equivalent behavior). Must be sound: when unsure, return false.
using DfsIndependence = std::function<bool(const DfsStep&, const DfsStep&)>;

struct DfsOptions {
  std::uint64_t max_runs{4096};   // truncation bound (not exhaustion)
  std::size_t max_depth{4096};    // branch only in the first max_depth steps
  DfsIndependence independent;    // null = no pruning
};

class DfsScheduleSource final : public ScheduleSource {
 public:
  explicit DfsScheduleSource(DfsOptions options = {})
      : options_(std::move(options)) {}

  void begin_run() override { depth_ = 0; }
  std::size_t pick(const std::vector<LaneChoice>& ready,
                   std::uint64_t step) override;
  bool next_run() override;

  /// Completed runs so far.
  [[nodiscard]] std::uint64_t runs() const { return runs_; }
  /// Branches skipped because their step slept (commuted with an explored
  /// sibling).
  [[nodiscard]] std::uint64_t pruned_branches() const { return pruned_; }
  /// True once next_run() returned false because the tree is fully
  /// explored (as opposed to hitting max_runs).
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 private:
  struct Frame {
    std::vector<LaneChoice> ready;
    std::vector<DfsStep> sleep;  // inherited + explored siblings
    std::size_t choice{0};
    bool redundant{false};  // every branch slept: run ready[0], don't branch
  };

  [[nodiscard]] bool in_sleep(const Frame& f, const LaneChoice& c) const;
  /// First branch index >= from not in f.sleep, counting skips into
  /// pruned_. f.ready.size() when none.
  std::size_t next_open_choice(Frame& f, std::size_t from);

  const DfsOptions options_;
  std::vector<Frame> frames_;
  std::size_t depth_{0};
  std::uint64_t runs_{0};
  std::uint64_t pruned_{0};
  bool exhausted_{false};
};

/// "s1:<base36 per choice>" when every lane id < 36, else
/// "s2:c0,c1,...". Deterministic; "" round-trips as the empty schedule.
[[nodiscard]] std::string to_schedule_string(
    const std::vector<std::uint32_t>& choices);

/// Parses to_schedule_string's output. On failure returns false and sets
/// *error (when non-null).
[[nodiscard]] bool parse_schedule_string(const std::string& text,
                                         std::vector<std::uint32_t>* out,
                                         std::string* error);

}  // namespace argus
