#include "dsched/task_lane.h"

#include <algorithm>

namespace argus {

namespace {

/// The lane owned by this thread, if any. A plain pointer is safe: lane
/// threads are joined (and daemons retired) before their scheduler dies.
thread_local DeterministicScheduler* t_owner = nullptr;
thread_local void* t_lane = nullptr;

}  // namespace

DeterministicScheduler::DeterministicScheduler(ScheduleSource& source,
                                               DschedOptions options)
    : source_(source), options_(options) {}

DeterministicScheduler::~DeterministicScheduler() {
  release();
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

DeterministicScheduler::Lane* DeterministicScheduler::current_lane() const {
  return t_owner == this ? static_cast<Lane*>(t_lane) : nullptr;
}

void DeterministicScheduler::park(std::unique_lock<std::mutex>& sl, Lane* me) {
  active_ = kControl;
  scv_.notify_all();
  scv_.wait(sl, [&] {
    return released_.load(std::memory_order_relaxed) || active_ == me->id;
  });
  me->state = Lane::St::kRunning;
  me->channel = nullptr;
  me->deadline = kNoDeadline;
}

std::size_t DeterministicScheduler::spawn(std::string name,
                                          std::function<void()> body) {
  std::unique_lock sl(smu_);
  auto lane = std::make_unique<Lane>();
  Lane* raw = lane.get();
  raw->owner = this;
  raw->id = lanes_.size();
  raw->name = std::move(name);
  raw->state = Lane::St::kReady;
  lanes_.push_back(std::move(lane));
  const std::size_t id = raw->id;
  scv_.notify_all();  // await_lanes watches lanes_.size()
  raw->thread = std::thread([this, raw, body = std::move(body)] {
    t_owner = this;
    t_lane = raw;
    {
      std::unique_lock lane_lock(smu_);
      scv_.wait(lane_lock, [&] {
        return released_.load(std::memory_order_relaxed) || active_ == raw->id;
      });
      raw->state = Lane::St::kRunning;
    }
    try {
      body();
    } catch (const std::exception& e) {
      const std::unique_lock lane_lock(smu_);
      raw->error = e.what();
    } catch (...) {
      const std::unique_lock lane_lock(smu_);
      raw->error = "unknown exception";
    }
    std::unique_lock lane_lock(smu_);
    raw->state = Lane::St::kFinished;
    if (active_ == raw->id) active_ = kControl;
    scv_.notify_all();
    t_owner = nullptr;
    t_lane = nullptr;
  });
  return id;
}

void DeterministicScheduler::await_lanes(std::size_t count) {
  std::unique_lock sl(smu_);
  scv_.wait(sl, [&] { return lanes_.size() >= count; });
}

void DeterministicScheduler::run() {
  std::unique_lock sl(smu_);
  for (;;) {
    bool workers_left = false;
    for (const auto& lane : lanes_) {
      if (!lane->daemon && lane->state != Lane::St::kFinished) {
        workers_left = true;
        break;
      }
    }
    if (!workers_left) break;
    if (steps_ >= options_.max_steps) {
      overflowed_ = true;
      break;
    }

    // Ready set: runnable lanes plus blocked lanes whose virtual deadline
    // has passed (their wait round times out). Lane-id order.
    std::vector<LaneChoice> ready;
    for (const auto& lane : lanes_) {
      const bool runnable =
          lane->state == Lane::St::kReady ||
          (lane->state == Lane::St::kBlocked && lane->deadline <= now_us_);
      if (runnable) {
        ready.push_back(
            LaneChoice{static_cast<std::uint32_t>(lane->id), lane->hint});
      }
    }
    if (ready.empty()) {
      // Discrete-event jump: advance virtual time to the earliest blocked
      // deadline. With none (untimed waits only), wake everyone — their
      // predicate loops re-decide (a legal spurious wakeup).
      std::uint64_t min_deadline = kNoDeadline;
      for (const auto& lane : lanes_) {
        if (lane->state == Lane::St::kBlocked) {
          min_deadline = std::min(min_deadline, lane->deadline);
        }
      }
      if (min_deadline == kNoDeadline) break;  // nothing can ever run again
      now_us_ = std::max(now_us_, min_deadline);
      continue;
    }

    const std::size_t pick =
        std::min(source_.pick(ready, steps_), ready.size() - 1);
    Lane* chosen = lanes_[ready[pick].lane].get();
    choices_.push_back(ready[pick].lane);
    ++steps_;
    now_us_ += options_.quantum_us;
    active_ = chosen->id;
    scv_.notify_all();
    scv_.wait(sl, [&] { return active_ == kControl; });
  }
  release_locked();
  sl.unlock();
  for (auto& lane : lanes_) {
    if (!lane->daemon && lane->thread.joinable()) lane->thread.join();
  }
}

void DeterministicScheduler::release() {
  const std::unique_lock sl(smu_);
  release_locked();
}

void DeterministicScheduler::release_locked() {
  released_.store(true, std::memory_order_release);
  scv_.notify_all();
}

std::size_t DeterministicScheduler::lane_count() const {
  const std::unique_lock sl(smu_);
  return lanes_.size();
}

std::vector<std::uint32_t> DeterministicScheduler::choices() const {
  const std::unique_lock sl(smu_);
  return choices_;
}

std::string DeterministicScheduler::schedule_string() const {
  return to_schedule_string(choices());
}

std::uint64_t DeterministicScheduler::steps() const {
  const std::unique_lock sl(smu_);
  return steps_;
}

bool DeterministicScheduler::overflowed() const {
  const std::unique_lock sl(smu_);
  return overflowed_;
}

std::vector<std::string> DeterministicScheduler::lane_errors() const {
  const std::unique_lock sl(smu_);
  std::vector<std::string> out;
  for (const auto& lane : lanes_) {
    if (!lane->error.empty()) {
      out.push_back("lane " + std::to_string(lane->id) + " " + lane->name +
                    ": " + lane->error);
    }
  }
  return out;
}

std::uint64_t DeterministicScheduler::now_us() {
  const std::unique_lock sl(smu_);
  return now_us_;
}

void DeterministicScheduler::yield(const LaneHint& hint) {
  Lane* me = current_lane();
  if (me == nullptr || released_.load(std::memory_order_acquire)) return;
  std::unique_lock sl(smu_);
  if (released_.load(std::memory_order_relaxed)) return;
  me->state = Lane::St::kReady;
  me->hint = hint;
  me->deadline = kNoDeadline;
  park(sl, me);
}

void DeterministicScheduler::wait_round(const LaneHint& hint,
                                        const void* channel,
                                        std::unique_lock<std::mutex>& lock,
                                        std::condition_variable& cv,
                                        std::chrono::microseconds timeout) {
  Lane* me = current_lane();
  if (me == nullptr || released_.load(std::memory_order_acquire)) {
    // Pass-through (control-thread probes, or free-run after release):
    // behave like the plain bounded wait this call replaced.
    if (timeout.count() > 0) {
      cv.wait_for(lock, timeout);
    } else {
      cv.wait_for(lock, std::chrono::milliseconds(2));
    }
    return;
  }
  std::unique_lock sl(smu_);
  if (released_.load(std::memory_order_relaxed)) {
    sl.unlock();
    cv.wait_for(lock, timeout.count() > 0 ? timeout
                                          : std::chrono::microseconds(2000));
    return;
  }
  me->state = Lane::St::kBlocked;
  me->channel = channel;
  me->hint = hint;
  me->deadline = timeout.count() > 0
                     ? now_us_ + static_cast<std::uint64_t>(timeout.count())
                     : kNoDeadline;
  // Only one lane runs at a time, so registering blocked state under smu_
  // before dropping the caller's lock leaves no lost-wakeup window.
  lock.unlock();
  park(sl, me);
  sl.unlock();
  lock.lock();
}

void DeterministicScheduler::notify(const void* channel) {
  if (released_.load(std::memory_order_acquire)) return;
  const std::unique_lock sl(smu_);
  for (const auto& lane : lanes_) {
    if (lane->state == Lane::St::kBlocked && lane->channel == channel) {
      lane->state = Lane::St::kReady;
      lane->deadline = kNoDeadline;
    }
  }
}

void DeterministicScheduler::sleep_us(WaitPoint point, std::uint64_t us) {
  Lane* me = current_lane();
  if (me == nullptr || released_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    return;
  }
  std::unique_lock sl(smu_);
  if (released_.load(std::memory_order_relaxed)) {
    sl.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    return;
  }
  me->state = Lane::St::kBlocked;
  me->channel = nullptr;
  me->hint = LaneHint{};
  me->hint.point = point;
  me->deadline = now_us_ + std::max<std::uint64_t>(us, 1);
  park(sl, me);
}

void DeterministicScheduler::adopt_daemon(std::string name) {
  if (released_.load(std::memory_order_acquire)) return;
  std::unique_lock sl(smu_);
  if (released_.load(std::memory_order_relaxed)) return;
  auto lane = std::make_unique<Lane>();
  Lane* raw = lane.get();
  raw->owner = this;
  raw->id = lanes_.size();
  raw->name = std::move(name);
  raw->daemon = true;
  raw->state = Lane::St::kReady;
  lanes_.push_back(std::move(lane));
  t_owner = this;
  t_lane = raw;
  scv_.notify_all();  // await_lanes watches lanes_.size()
  // Park immediately: from registration on, this thread runs only when
  // scheduled, preserving the single-active-lane invariant.
  scv_.wait(sl, [&] {
    return released_.load(std::memory_order_relaxed) || active_ == raw->id;
  });
  raw->state = Lane::St::kRunning;
}

void DeterministicScheduler::retire_daemon() {
  Lane* me = current_lane();
  if (me == nullptr) return;
  const std::unique_lock sl(smu_);
  me->state = Lane::St::kFinished;
  if (active_ == me->id) active_ = kControl;
  scv_.notify_all();
  t_owner = nullptr;
  t_lane = nullptr;
}

}  // namespace argus
