// Admission predicates: would a given protocol have permitted this exact
// interleaving?
//
// The paper's §4.1/§5.1 claims are about *sets of histories*: dynamic
// atomicity (the optimal local property) admits strictly more histories
// than commutativity locking, which admits more than read/write two-phase
// locking. These predicates make the inclusion measurable: given a
// history, each simulates its protocol's blocking rule event by event and
// reports whether the history could have been produced under it
// (bench_admission samples random atomic histories and reports the three
// admission rates).
#pragma once

#include "check/system.h"
#include "hist/history.h"

namespace argus {

/// Strict two-phase locking with read/write locks ([Eswaren 76] as cited
/// in §1): an invocation is admissible iff no *other* active (uncommitted,
/// unaborted) activity holds a lock on the same object in a conflicting
/// mode; locks are held until commit/abort. Reads are the operations the
/// specification marks read-only.
[[nodiscard]] bool admitted_by_two_phase_locking(const SystemSpec& system,
                                                 const History& h);

/// Type-specific locking with *state-independent* commutativity conflict
/// tables ([Schwarz & Spector 82], [Korth 81], [Bernstein 81] — the §5.1
/// comparators): an invocation is admissible iff it statically commutes
/// with every operation executed by every other active activity at the
/// same object.
[[nodiscard]] bool admitted_by_commutativity_locking(const SystemSpec& system,
                                                     const History& h);

/// Dynamic atomicity itself — the declarative upper bound (§4.1).
[[nodiscard]] bool admitted_by_dynamic_atomicity(const SystemSpec& system,
                                                 const History& h);

}  // namespace argus
