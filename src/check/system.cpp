#include "check/system.h"

#include <algorithm>

#include "common/errors.h"
#include "spec/adts/registry.h"

namespace argus {

void SystemSpec::add_object(ObjectId x,
                            std::shared_ptr<const SequentialSpec> spec) {
  specs_[x] = std::move(spec);
}

void SystemSpec::add_object(ObjectId x, const std::string& type_name) {
  specs_[x] = make_spec(type_name);
}

const SequentialSpec& SystemSpec::spec_of(ObjectId x) const {
  auto it = specs_.find(x);
  if (it == specs_.end()) {
    throw UsageError("no specification registered for object " + to_string(x));
  }
  return *it->second;
}

std::vector<ObjectId> SystemSpec::objects() const {
  std::vector<ObjectId> out;
  out.reserve(specs_.size());
  for (const auto& [x, spec] : specs_) out.push_back(x);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace argus
