// Serializability of histories (§3).
//
// A history is *serializable* if it is equivalent to an acceptable serial
// sequence; *serializable in the order T* if that serial sequence lists
// the activities in order T. Given T, the candidate serial sequence is
// determined up to equivalence (concatenate each activity's view in order
// T), so the order-given check is a linear replay per object; the
// existential check enumerates permutations of the committed activities
// and is exponential — fine for paper-scale histories and clearly
// documented as such (the paper's definitions are declarative, not
// algorithmic; see bench_checker for measured scaling).
#pragma once

#include <optional>
#include <vector>

#include "check/system.h"
#include "hist/history.h"

namespace argus {

/// The serial sequence equivalent to h with activities in order T:
/// concatenation of h|a for a in T. Activities of h absent from `order`
/// are appended in first-appearance order (callers normally pass a
/// complete order).
[[nodiscard]] History serialization_of(const History& h,
                                       const std::vector<ActivityId>& order);

/// True iff h is equivalent to an acceptable serial sequence with the
/// activities in order T (every activity of h must appear in T).
[[nodiscard]] bool serializable_in_order(const SystemSpec& system,
                                         const History& h,
                                         const std::vector<ActivityId>& order);

/// Searches all activity orders; returns one that works, or nullopt.
[[nodiscard]] std::optional<std::vector<ActivityId>> find_serialization_order(
    const SystemSpec& system, const History& h);

[[nodiscard]] bool serializable(const SystemSpec& system, const History& h);

/// All orders in which h is serializable (used by tests that reproduce the
/// paper's "serializable in the orders a-b-c and a-c-b" statements).
[[nodiscard]] std::vector<std::vector<ActivityId>> all_serialization_orders(
    const SystemSpec& system, const History& h);

}  // namespace argus
