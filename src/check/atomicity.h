// The four atomicity judgements of the paper, verbatim:
//
//   atomic          (§3)     perm(h) is serializable.
//   dynamic atomic  (§4.1)   perm(h) is serializable in every total order
//                            consistent with precedes(h).
//   static atomic   (§4.2.2) perm(h) is serializable in timestamp order
//                            (timestamps chosen at initiation).
//   hybrid atomic   (§4.3.2) perm(h) is serializable in timestamp order
//                            (updates stamped at commit, read-only
//                            activities at initiation).
//
// Each checker returns an explanation suitable for test failure messages
// and the history_check example — e.g. the serialization order found, or
// the precedes-consistent order in which perm(h) is not serializable.
#pragma once

#include <string>
#include <unordered_set>

#include "check/serializability.h"
#include "check/system.h"
#include "hist/history.h"

namespace argus {

struct CheckResult {
  bool ok{false};
  std::string explanation;
};

[[nodiscard]] CheckResult check_atomic(const SystemSpec& system,
                                       const History& h);

[[nodiscard]] CheckResult check_dynamic_atomic(const SystemSpec& system,
                                               const History& h);

/// Requires every committed activity to carry a timestamp (from its
/// initiation events); fails with an explanation otherwise.
[[nodiscard]] CheckResult check_static_atomic(const SystemSpec& system,
                                              const History& h);

/// Hybrid histories stamp updates at commit and read-only activities at
/// initiation; the judgement itself is serializability in timestamp order.
[[nodiscard]] CheckResult check_hybrid_atomic(const SystemSpec& system,
                                              const History& h);

}  // namespace argus
