#include "check/vc_atomicity.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "spec/serial.h"

namespace argus {

namespace {

/// Deduplicates a candidate set by pairwise equality (same discipline as
/// spec/serial.cpp: candidate sets stay tiny for our ADTs).
void dedupe(std::vector<std::unique_ptr<SpecState>>& states) {
  std::vector<std::unique_ptr<SpecState>> unique;
  for (auto& s : states) {
    bool dup = false;
    for (const auto& u : unique) {
      if (u->equals(*s)) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(std::move(s));
  }
  states = std::move(unique);
}

std::map<ObjectId, std::vector<std::unique_ptr<SpecState>>> clone_states(
    const std::map<ObjectId, std::vector<std::unique_ptr<SpecState>>>& from) {
  std::map<ObjectId, std::vector<std::unique_ptr<SpecState>>> out;
  for (const auto& [x, set] : from) {
    auto& dst = out[x];
    dst.reserve(set.size());
    for (const auto& s : set) dst.push_back(s->clone());
  }
  return out;
}

constexpr std::uint64_t kMaxKey = std::numeric_limits<std::uint64_t>::max();

}  // namespace

const char* to_string(VcVerdict v) {
  switch (v) {
    case VcVerdict::kPass:
      return "PASS";
    case VcVerdict::kSuspicious:
      return "SUSPICIOUS";
    case VcVerdict::kViolation:
      return "VIOLATION";
  }
  return "?";
}

VectorClockChecker::VectorClockChecker(const SystemSpec& system,
                                       VcCheckerOptions options)
    : system_(system), options_(options), conflicts_(system_) {}

void VectorClockChecker::feed(const std::vector<SequencedEvent>& batch) {
  for (const SequencedEvent& se : batch) feed(se);
}

void VectorClockChecker::feed(const SequencedEvent& se) {
  ++stats_.events;
  ActivityState& act = activities_[se.event.activity];
  const bool terminated = act.committed || act.aborted;
  switch (se.event.kind) {
    case EventKind::kInitiate:
      if (act.ts == kNoTimestamp) {
        act.ts = se.event.timestamp;
        if (!terminated) {
          open_initiations_.insert(act.ts);
          act.init_open = true;
        }
      }
      return;
    case EventKind::kCommit:
      if (!act.committed && !act.aborted) {
        act.committed = true;
        act.first_commit_seq = se.seq;
        if (se.event.has_timestamp() && act.ts == kNoTimestamp) {
          act.ts = se.event.timestamp;  // hybrid update commit stamp
        }
        if (act.init_open) {
          open_initiations_.erase(open_initiations_.find(act.ts));
          act.init_open = false;
        }
        handle_commit(se.event.activity, act);
      }
      return;
    case EventKind::kAbort:
      if (!act.committed && !act.aborted) {
        act.aborted = true;
        act.events.clear();  // not part of the committed projection
        act.events.shrink_to_fit();
        if (act.init_open) {
          open_initiations_.erase(open_initiations_.find(act.ts));
          act.init_open = false;
        }
      }
      return;
    case EventKind::kInvoke:
    case EventKind::kRespond:
      if (act.aborted || act.quarantined) return;
      act.events.push_back(se);
      if (act.folded) {
        // The activity was folded from an incomplete buffer (a slow
        // recorder shard published late). The fold is stale; only an
        // exact re-replay with the full buffer can re-judge it.
        ++buffered_events_;
        if (act.certified) {
          act.certified = false;
          --stats_.certified;
        }
        mark_suspicious(se.event.activity, act,
                        "events for " + argus::to_string(se.event.activity) +
                            " arrived after it was folded");
      }
      return;
  }
}

void VectorClockChecker::handle_commit(ActivityId id, ActivityState& act) {
  const std::uint64_t key = act.key();
  if (checkpoint_key_ != 0 && key <= checkpoint_key_) {
    // Straggler: committed below an already-sealed prefix. Its canonical
    // slot is gone, but if every one of its operations always-commutes
    // with everything folded above its key, folding it now is equivalent
    // to folding it in place.
    bool commutes = true;
    for (const SequencedEvent& se : act.events) {
      if (se.event.kind != EventKind::kInvoke) continue;
      const ObjectId x = se.event.object;
      if (!system_.has(x)) continue;
      for (const auto* clock : {&sealed_ops_, &window_ops_}) {
        auto it = clock->find(x);
        if (it == clock->end()) continue;
        for (const auto& [op, op_key] : it->second) {
          if (op_key <= key) continue;
          ++stats_.vc_ops;
          if (conflicts_.conflicts(x, se.event.operation, op)) {
            commutes = false;
            break;
          }
        }
        if (!commutes) break;
      }
      if (!commutes) break;
    }
    if (!commutes) {
      ++stats_.stragglers;
      act.quarantined = true;
      act.events.clear();
      act.events.shrink_to_fit();
      return;
    }
    ++stats_.straggler_resolved;
    // Fall through: fold in observed order, exact by commutation.
  }

  const bool mis = join_clocks(act, key, /*include_sealed=*/true);
  epoch_max_key_ = std::max(epoch_max_key_, key);
  if (mis) {
    std::ostringstream why;
    why << "activity " << argus::to_string(id) << " (key " << key
        << ") committed after a conflicting operation was folded under a "
           "larger key";
    mark_suspicious(id, act, why.str());
    if (act.quarantined) {  // kVectorClock: quarantined unresolved
      act.events.clear();
      act.events.shrink_to_fit();
      return;
    }
    // kEscalating: buffer unfolded; the escalation re-replays it in its
    // exact canonical slot.
    epoch_folded_.push_back(id);
    buffered_events_ += act.events.size();
    return;
  }

  epoch_folded_.push_back(id);
  buffered_events_ += act.events.size();
  ++stats_.folds;
  const bool open_below =
      !open_initiations_.empty() && *open_initiations_.begin() < key;
  const bool clean_context =
      !dirty_ && !epoch_quarantine_ && !open_below && deferred_.empty();
  std::string why;
  if (replay_into(id, act, observed_, &why)) {
    act.folded = true;
    register_fold(act, key);
    if (clean_context) {
      certify(id, act);
    } else {
      deferred_.push_back(id);
    }
  } else if (clean_context && key < frontier_seen_) {
    // The canonical prefix below key is provably complete (no key below
    // the observed frontier can still be drawn), so the failure is a
    // genuine violation right now.
    report_violation(id, act, why);
  } else {
    mark_suspicious(id, act,
                    why + " (canonical prefix unresolved at fold time)");
  }
}

bool VectorClockChecker::join_clocks(ActivityState& act, std::uint64_t key,
                                     bool include_sealed) {
  bool mis = false;
  for (const SequencedEvent& se : act.events) {
    if (se.event.kind != EventKind::kInvoke) continue;
    const ObjectId x = se.event.object;
    if (!system_.has(x)) continue;
    for (const auto* clock : {&window_ops_, &sealed_ops_}) {
      if (clock == &sealed_ops_ && !include_sealed) continue;
      auto it = clock->find(x);
      if (it == clock->end()) continue;
      for (const auto& [op, op_key] : it->second) {
        if (op_key <= key) continue;
        ++stats_.vc_ops;
        if (conflicts_.conflicts(x, se.event.operation, op)) {
          auto [slot, inserted] = act.clock.try_emplace(x, op_key);
          if (!inserted) slot->second = std::max(slot->second, op_key);
          mis = true;
        }
      }
    }
  }
  return mis;
}

bool VectorClockChecker::replay_into(ActivityId id, ActivityState& act,
                                     StateMap& states, std::string* why) {
  std::sort(act.events.begin(), act.events.end(),
            [](const SequencedEvent& a, const SequencedEvent& b) {
              return a.seq < b.seq;
            });
  // h|a split per object, preserving order — the per-object view whose
  // replay is exactly serializability-in-order's acceptance test.
  std::map<ObjectId, History> per_object;
  std::vector<ObjectId> object_order;
  for (const SequencedEvent& se : act.events) {
    auto [it, inserted] = per_object.try_emplace(se.event.object);
    if (inserted) object_order.push_back(se.event.object);
    it->second.append(se.event);
  }
  // Two-phase: compute every object's successor set before mutating any,
  // so a failed fold leaves the chain untouched.
  std::map<ObjectId, StateSet> next_sets;
  for (ObjectId x : object_order) {
    if (!system_.has(x)) continue;  // object created after the snapshot
    StateSet& current = states_for(states, x);
    StateSet next;
    for (const auto& s : current) {
      for (auto& reached : replay_states(*s, per_object.at(x))) {
        next.push_back(std::move(reached));
      }
    }
    dedupe(next);
    if (next.empty()) {
      if (why != nullptr) {
        std::ostringstream out;
        out << "activity " << argus::to_string(id) << " (key " << act.key()
            << ") has no acceptable replay at object " << argus::to_string(x)
            << " (" << system_.spec_of(x).type_name() << "); h|a|x =\n"
            << per_object.at(x).to_string();
        *why = out.str();
      }
      return false;
    }
    next_sets[x] = std::move(next);
  }
  for (auto& [x, next] : next_sets) states[x] = std::move(next);
  return true;
}

void VectorClockChecker::register_fold(const ActivityState& act,
                                       std::uint64_t key) {
  for (const SequencedEvent& se : act.events) {
    if (se.event.kind != EventKind::kInvoke) continue;
    if (!system_.has(se.event.object)) continue;
    auto [it, inserted] =
        window_ops_[se.event.object].try_emplace(se.event.operation, key);
    if (!inserted) it->second = std::max(it->second, key);
  }
}

void VectorClockChecker::certify(ActivityId /*id*/, ActivityState& act) {
  if (!act.certified) {
    act.certified = true;
    act.suspicious = false;
    ++stats_.certified;
  }
}

void VectorClockChecker::mark_suspicious(ActivityId /*id*/,
                                         ActivityState& act,
                                         const std::string& why) {
  if (act.certified) {
    // An eager certificate is provisional until its epoch seals; retract
    // it when the activity comes back under suspicion.
    act.certified = false;
    --stats_.certified;
  }
  if (!act.suspicious) {
    act.suspicious = true;
    ++stats_.suspicious;
  }
  last_suspicion_ = why;
  dirty_ = true;
  if (!options_.escalate && !act.quarantined) {
    act.quarantined = true;
    epoch_quarantine_ = true;
    ++stats_.unresolved;
  }
}

void VectorClockChecker::report_violation(ActivityId id, ActivityState& act,
                                          const std::string& why) {
  if (act.certified) {
    act.certified = false;
    --stats_.certified;
  }
  ++stats_.violations;
  std::string full =
      "atomicity violation: committed projection is not serializable in its "
      "canonical order — " +
      why;
  last_violation_ = full;
  pending_reports_.push_back(std::move(full));
  act.quarantined = true;
  act.suspicious = false;
  act.events.clear();
  act.events.shrink_to_fit();
  (void)id;
}

VectorClockChecker::StateSet& VectorClockChecker::states_for(StateMap& states,
                                                             ObjectId x) {
  auto it = states.find(x);
  if (it == states.end()) {
    StateSet initial;
    initial.push_back(system_.spec_of(x).initial_state());
    it = states.emplace(x, std::move(initial)).first;
  }
  return it->second;
}

void VectorClockChecker::advance_frontier(std::uint64_t clock_hint) {
  ++stats_.windows;
  std::uint64_t frontier = clock_hint;
  if (!open_initiations_.empty()) {
    frontier = std::min(frontier, *open_initiations_.begin());
  }
  frontier_seen_ = std::max(frontier_seen_, frontier);
  if (dirty_ && options_.escalate) {
    ++stats_.escalations;
    reseal_epoch(frontier, /*exact_verdicts=*/true);
  } else {
    ++stats_.fastpath_windows;
    maybe_checkpoint(frontier);
  }
}

void VectorClockChecker::maybe_checkpoint(std::uint64_t frontier) {
  if (buffered_events_ < options_.checkpoint_threshold) return;
  if (!dirty_ && epoch_max_key_ < frontier) {
    seal_clean_epoch(frontier);
  } else {
    reseal_epoch(frontier, options_.escalate || !epoch_quarantine_);
  }
}

void VectorClockChecker::seal_clean_epoch(std::uint64_t /*frontier*/) {
  // Monotone clean epoch: every folded key is below the frontier and the
  // observed chain is the canonical chain — seal by cloning, no replay.
  ++stats_.checkpoints;
  checkpoint_ = clone_states(observed_);
  checkpoint_key_ = std::max(checkpoint_key_, epoch_max_key_);
  for (ActivityId id : deferred_) {
    auto it = activities_.find(id);
    if (it != activities_.end() && !it->second.quarantined) {
      certify(id, it->second);
    }
  }
  deferred_.clear();
  for (auto& [x, ops] : window_ops_) {
    OpClock& sealed = sealed_ops_[x];
    for (const auto& [op, key] : ops) {
      auto [it, inserted] = sealed.try_emplace(op, key);
      if (!inserted) it->second = std::max(it->second, key);
    }
  }
  window_ops_.clear();
  drop_sealed(epoch_folded_);
  epoch_folded_.clear();
  buffered_events_ = 0;
  epoch_quarantine_ = false;
}

void VectorClockChecker::reseal_epoch(std::uint64_t frontier,
                                      bool exact_verdicts) {
  // Exact canonical re-replay of the epoch buffer from the checkpoint:
  // the incremental check the suspicious path escalates to, and the seal
  // for epochs whose observed order cannot be trusted wholesale.
  ++stats_.checkpoints;
  std::vector<std::pair<std::uint64_t, ActivityId>> order;
  for (ActivityId id : epoch_folded_) {
    auto it = activities_.find(id);
    if (it == activities_.end()) continue;
    const ActivityState& act = it->second;
    if (!act.committed || act.quarantined || act.aborted) continue;
    order.emplace_back(act.key(), id);
  }
  std::sort(order.begin(), order.end());
  order.erase(std::unique(order.begin(), order.end()), order.end());

  StateMap states = clone_states(checkpoint_);
  std::vector<ActivityId> sealed;
  std::vector<ActivityId> remaining;
  std::uint64_t max_sealed_key = checkpoint_key_;
  bool crossed = false;
  bool still_dirty = false;
  for (const auto& [key, id] : order) {
    if (!crossed && key >= frontier) {
      checkpoint_ = clone_states(states);
      crossed = true;
    }
    ActivityState& act = activities_.at(id);
    std::string why;
    const bool ok = replay_into(id, act, states, &why);
    if (!crossed) {
      if (ok) {
        act.folded = true;
        certify(id, act);
      } else if (exact_verdicts) {
        report_violation(id, act, why);
      } else {
        // Quarantined activities were excluded from this chain, so a
        // failure here could be an artifact of the exclusion: stay
        // honest and report suspicion, not violation.
        if (act.certified) {
          act.certified = false;
          --stats_.certified;
        }
        if (!act.suspicious) {
          act.suspicious = true;
          ++stats_.suspicious;
        }
        act.quarantined = true;
        ++stats_.unresolved;
        last_suspicion_ = why;
      }
      max_sealed_key = std::max(max_sealed_key, key);
      sealed.push_back(id);
    } else {
      // Above the frontier: a smaller key can still appear, so the
      // verdict stays pending; the fold into the rebuilt chain stands.
      act.folded = ok;
      if (!ok) {
        still_dirty = true;
        if (act.certified) {
          act.certified = false;
          --stats_.certified;
        }
        if (!act.suspicious) {
          act.suspicious = true;
          ++stats_.suspicious;
        }
        last_suspicion_ = why;
      } else {
        act.suspicious = false;
      }
      remaining.push_back(id);
    }
  }
  if (!crossed) checkpoint_ = clone_states(states);
  checkpoint_key_ = max_sealed_key;
  observed_ = std::move(states);

  // Rebuild the epoch-local op clocks from what stays buffered; the
  // sealed prefix moves into the all-time summary.
  std::map<ObjectId, OpClock> sealed_merge = std::move(window_ops_);
  window_ops_.clear();
  for (ActivityId id : remaining) {
    ActivityState& act = activities_.at(id);
    if (act.folded) register_fold(act, act.key());
  }
  for (auto& [x, ops] : sealed_merge) {
    OpClock& dst = sealed_ops_[x];
    for (const auto& [op, key] : ops) {
      // Only keys at or below the new checkpoint are truly sealed, but a
      // max-key summary is a sound over-approximation either way.
      auto [it, inserted] = dst.try_emplace(op, key);
      if (!inserted) it->second = std::max(it->second, key);
    }
  }

  drop_sealed(sealed);
  epoch_folded_ = std::move(remaining);
  buffered_events_ = 0;
  for (ActivityId id : epoch_folded_) {
    buffered_events_ += activities_.at(id).events.size();
  }
  deferred_.clear();
  for (ActivityId id : epoch_folded_) {
    if (activities_.at(id).folded) deferred_.push_back(id);
  }
  epoch_max_key_ = checkpoint_key_;
  for (ActivityId id : epoch_folded_) {
    epoch_max_key_ = std::max(epoch_max_key_, activities_.at(id).key());
  }
  dirty_ = still_dirty;
  epoch_quarantine_ = false;
}

void VectorClockChecker::drop_sealed(const std::vector<ActivityId>& sealed) {
  for (ActivityId id : sealed) activities_.erase(id);
  // Drop terminated tombstones (aborted or quarantined activities) whose
  // events can no longer matter.
  for (auto it = activities_.begin(); it != activities_.end();) {
    if (it->second.aborted || it->second.quarantined) {
      it = activities_.erase(it);
    } else {
      ++it;
    }
  }
}

void VectorClockChecker::finish() {
  // Open initiations of activities that never commit impose no
  // constraint on the committed projection: flush everything.
  frontier_seen_ = kMaxKey;
  if (dirty_ && options_.escalate) {
    ++stats_.escalations;
    reseal_epoch(kMaxKey, /*exact_verdicts=*/true);
  } else if (dirty_) {
    reseal_epoch(kMaxKey, /*exact_verdicts=*/!epoch_quarantine_);
  } else if (!epoch_folded_.empty() || !deferred_.empty()) {
    seal_clean_epoch(kMaxKey);
  }
}

VcVerdict VectorClockChecker::verdict() const {
  if (stats_.violations > 0) return VcVerdict::kViolation;
  if (stats_.unresolved > 0 || stats_.stragglers > 0 || dirty_) {
    return VcVerdict::kSuspicious;
  }
  return VcVerdict::kPass;
}

std::vector<std::string> VectorClockChecker::drain_reports() {
  std::vector<std::string> out;
  out.swap(pending_reports_);
  return out;
}

std::vector<ActivityId> canonical_order(const History& h) {
  const auto committed = h.committed();
  std::map<ActivityId, std::uint64_t> first_commit;
  std::uint64_t seq = 0;
  for (const Event& e : h.events()) {
    ++seq;
    if (e.kind == EventKind::kCommit && committed.count(e.activity) != 0) {
      first_commit.try_emplace(e.activity, seq);
    }
  }
  std::vector<std::pair<std::uint64_t, ActivityId>> order;
  order.reserve(first_commit.size());
  for (const auto& [a, commit_seq] : first_commit) {
    const auto ts = h.timestamp_of(a);
    order.emplace_back(ts.has_value() ? *ts : commit_seq, a);
  }
  std::sort(order.begin(), order.end());
  std::vector<ActivityId> result;
  result.reserve(order.size());
  for (const auto& [key, a] : order) result.push_back(a);
  return result;
}

CheckResult check_canonical_atomic(const SystemSpec& system,
                                   const History& h) {
  const std::vector<ActivityId> order = canonical_order(h);
  if (serializable_in_order(system, h.perm(), order)) {
    return {true, "committed projection serializable in canonical order"};
  }
  std::ostringstream out;
  out << "committed projection not serializable in canonical order:";
  for (ActivityId a : order) out << " " << argus::to_string(a);
  return {false, out.str()};
}

VcReport check_vc_atomic(const SystemSpec& system, const History& h,
                         VcCheckerOptions options, std::size_t window) {
  VectorClockChecker checker(system, options);
  // Honest frontier hints: the minimum serialization key any *future*
  // event can still introduce (timestamps may have been drawn well
  // before their first commit arrives; an online feed gets the same
  // guarantee from the recorder's Lamport clock plus open initiations).
  const std::vector<Event>& events = h.events();
  std::vector<std::uint64_t> future_min(events.size() + 1, kMaxKey);
  for (std::size_t i = events.size(); i > 0; --i) {
    const Event& e = events[i - 1];
    std::uint64_t key = kMaxKey;
    if (e.kind == EventKind::kInitiate && e.has_timestamp()) {
      key = e.timestamp;
    } else if (e.kind == EventKind::kCommit) {
      key = e.has_timestamp() ? e.timestamp : i;
    }
    future_min[i - 1] = std::min(future_min[i], key);
  }
  std::uint64_t seq = 0;
  for (const Event& e : events) {
    ++seq;
    checker.feed(SequencedEvent{seq, e});
    if (window != 0 && seq % window == 0 && seq < events.size()) {
      checker.advance_frontier(future_min[seq]);
    }
  }
  checker.finish();
  VcReport report;
  report.verdict = checker.verdict();
  report.stats = checker.stats();
  report.reports = checker.drain_reports();
  return report;
}

}  // namespace argus
