// Random atomic histories.
//
// Generator for the admission-rate experiment (E5) and for property tests
// of the checkers: it produces well-formed histories that are atomic *by
// construction* (committed activities' results are computed by a real
// serial execution in a randomly chosen order), then randomly interleaved.
// Whether a given interleaving is dynamic atomic / admitted by a locking
// protocol is then a non-trivial property of the interleaving — exactly
// the gap the paper's §4.1 optimality theorem is about.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/system.h"
#include "common/rng.h"
#include "hist/history.h"

namespace argus {

/// How generated histories carry serialization timestamps — one shape
/// per family of CC protocols, so checker tests can sweep the modes:
///
///   kNone        dynamic / 2PL: no timestamps; activities serialize at
///                their first commit position.
///   kInitiation  static atomicity: every activity carries an initiation
///                event stamped with its serial rank.
///   kHybrid      hybrid atomicity: read-only activities initiate with a
///                stamp, update activities get timestamped commits.
///   kCommit      OCC / MVCC certification stamps: every committed
///                activity's commit events carry its serial rank.
///
/// Stamps encode the generator's ground-truth serial order, so a clean
/// stamped history is serializable in its canonical order by
/// construction.
enum class StampDiscipline {
  kNone,
  kInitiation,
  kHybrid,
  kCommit,
};

struct RandomHistoryOptions {
  int activities{3};
  int ops_per_activity{3};
  /// Each activity independently aborts with this probability (as
  /// percent, 0..100); aborted activities run against a fork of the state
  /// so the committed chain stays serially consistent.
  int abort_percent{0};
  /// Interleaving intensity: when emitting the next event, the current
  /// activity is kept with probability contiguity_percent. 0 = uniform
  /// random interleaving (maximally concurrent); 100 = fully serial. The
  /// admission-rate experiment sweeps this to show how the protocol gaps
  /// open as concurrency rises.
  int contiguity_percent{0};
  std::uint64_t seed{1};
  /// Timestamp decoration applied to the generated history.
  StampDiscipline stamps{StampDiscipline::kNone};
};

/// Draws a random operation suitable for the named ADT. Arguments are
/// drawn from a small domain so that operations collide often enough to
/// make conflicts interesting. Throws UsageError for unknown ADTs.
[[nodiscard]] Operation random_operation(const std::string& type_name,
                                         SplitMix64& rng);

/// Generates a well-formed, atomic-by-construction history over the
/// objects of `system` (all registered objects are used).
[[nodiscard]] History random_atomic_history(const SystemSpec& system,
                                            const RandomHistoryOptions& options);

}  // namespace argus
