// Random atomic histories.
//
// Generator for the admission-rate experiment (E5) and for property tests
// of the checkers: it produces well-formed histories that are atomic *by
// construction* (committed activities' results are computed by a real
// serial execution in a randomly chosen order), then randomly interleaved.
// Whether a given interleaving is dynamic atomic / admitted by a locking
// protocol is then a non-trivial property of the interleaving — exactly
// the gap the paper's §4.1 optimality theorem is about.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/system.h"
#include "common/rng.h"
#include "hist/history.h"

namespace argus {

struct RandomHistoryOptions {
  int activities{3};
  int ops_per_activity{3};
  /// Each activity independently aborts with this probability (as
  /// percent, 0..100); aborted activities run against a fork of the state
  /// so the committed chain stays serially consistent.
  int abort_percent{0};
  /// Interleaving intensity: when emitting the next event, the current
  /// activity is kept with probability contiguity_percent. 0 = uniform
  /// random interleaving (maximally concurrent); 100 = fully serial. The
  /// admission-rate experiment sweeps this to show how the protocol gaps
  /// open as concurrency rises.
  int contiguity_percent{0};
  std::uint64_t seed{1};
};

/// Draws a random operation suitable for the named ADT. Arguments are
/// drawn from a small domain so that operations collide often enough to
/// make conflicts interesting. Throws UsageError for unknown ADTs.
[[nodiscard]] Operation random_operation(const std::string& type_name,
                                         SplitMix64& rng);

/// Generates a well-formed, atomic-by-construction history over the
/// objects of `system` (all registered objects are used).
[[nodiscard]] History random_atomic_history(const SystemSpec& system,
                                            const RandomHistoryOptions& options);

}  // namespace argus
