#include "check/random_history.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/errors.h"
#include "spec/spec.h"

namespace argus {

Operation random_operation(const std::string& type_name, SplitMix64& rng) {
  if (type_name == "int_set") {
    const std::int64_t n = rng.range(0, 3);
    switch (rng.below(3)) {
      case 0:
        return op("insert", n);
      case 1:
        return op("delete", n);
      default:
        return op("member", n);
    }
  }
  if (type_name == "counter") {
    return op("increment");
  }
  if (type_name == "bank_account") {
    switch (rng.below(3)) {
      case 0:
        return op("deposit", rng.range(1, 10));
      case 1:
        return op("withdraw", rng.range(1, 10));
      default:
        return op("balance");
    }
  }
  if (type_name == "fifo_queue") {
    switch (rng.below(3)) {
      case 0:
      case 1:
        return op("enqueue", rng.range(1, 3));
      default:
        return op("dequeue");
    }
  }
  if (type_name == "kv_store") {
    const std::int64_t k = rng.range(0, 2);
    switch (rng.below(4)) {
      case 0:
        return op("put", k, rng.range(0, 5));
      case 1:
        return op("get", k);
      case 2:
        return op("remove", k);
      default:
        return op("contains", k);
    }
  }
  if (type_name == "bag") {
    switch (rng.below(3)) {
      case 0:
      case 1:
        return op("insert", rng.range(1, 3));
      default:
        return op("remove");
    }
  }
  if (type_name == "rw_register") {
    if (rng.chance(1, 2)) return op("read");
    return op("write", rng.range(0, 9));
  }
  throw UsageError("no random operation generator for ADT: " + type_name);
}

History random_atomic_history(const SystemSpec& system,
                              const RandomHistoryOptions& options) {
  SplitMix64 rng(options.seed);
  const std::vector<ObjectId> objects = system.objects();
  if (objects.empty()) throw UsageError("system has no objects");

  // Choose a random serial order of activities.
  std::vector<ActivityId> order;
  order.reserve(static_cast<std::size_t>(options.activities));
  for (int i = 0; i < options.activities; ++i) {
    order.push_back(ActivityId{static_cast<std::uint64_t>(i)});
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  // Execute each activity serially against per-object oracle states,
  // recording its event list. Aborting activities run on forks.
  std::unordered_map<ObjectId, std::unique_ptr<SpecState>> states;
  for (ObjectId x : objects) {
    states[x] = system.spec_of(x).initial_state();
  }

  std::unordered_map<ActivityId, std::vector<Event>> script;
  for (ActivityId a : order) {
    const bool aborts = rng.chance(static_cast<std::uint64_t>(
                                       options.abort_percent),
                                   100);
    std::unordered_map<ObjectId, std::unique_ptr<SpecState>> fork;
    if (aborts) {
      for (const auto& [x, s] : states) fork[x] = s->clone();
    }
    auto& chain = aborts ? fork : states;
    std::vector<Event>& events = script[a];
    std::vector<ObjectId> touched;
    for (int k = 0; k < options.ops_per_activity; ++k) {
      const ObjectId x = objects[rng.below(objects.size())];
      const std::string type = system.spec_of(x).type_name();
      // Redraw until the operation is enabled (e.g. dequeue needs a
      // non-empty queue); fall back to skipping after a few tries.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Operation o = random_operation(type, rng);
        auto outcomes = chain[x]->step(o);
        if (outcomes.empty()) continue;
        auto& pick = outcomes[rng.below(outcomes.size())];
        events.push_back(invoke(x, a, o));
        events.push_back(respond(x, a, pick.result));
        chain[x] = std::move(pick.state);
        if (std::find(touched.begin(), touched.end(), x) == touched.end()) {
          touched.push_back(x);
        }
        break;
      }
    }
    if (touched.empty()) touched.push_back(objects[0]);
    for (ObjectId x : touched) {
      events.push_back(aborts ? abort(x, a) : commit(x, a));
    }
  }

  // Timestamp decoration: stamps encode the ground-truth serial order
  // (rank in `order`), so the canonical serialization order of a clean
  // stamped history is exactly the order the results were computed in.
  if (options.stamps != StampDiscipline::kNone) {
    Timestamp rank = 0;
    for (ActivityId a : order) {
      ++rank;
      std::vector<Event>& events = script[a];
      if (events.empty()) continue;
      bool read_only = true;
      for (const Event& e : events) {
        if (e.kind == EventKind::kInvoke &&
            !system.spec_of(e.object).is_read_only(e.operation)) {
          read_only = false;
          break;
        }
      }
      const bool stamp_initiation =
          options.stamps == StampDiscipline::kInitiation ||
          (options.stamps == StampDiscipline::kHybrid && read_only);
      if (stamp_initiation) {
        events.insert(events.begin(),
                      initiate(events.front().object, a, rank));
      } else {
        for (Event& e : events) {
          if (e.kind == EventKind::kCommit) e.timestamp = rank;
        }
      }
    }
  }

  // Random interleaving preserving each activity's event order. This
  // keeps the history well-formed: invocations stay before their
  // responses and commits stay last per activity. contiguity_percent
  // biases toward staying with the current activity.
  History h;
  std::vector<ActivityId> live;
  std::unordered_map<ActivityId, std::size_t> cursor;
  for (ActivityId a : order) {
    if (!script[a].empty()) {
      live.push_back(a);
      cursor[a] = 0;
    }
  }
  std::size_t current = 0;
  while (!live.empty()) {
    std::size_t i;
    if (current < live.size() &&
        rng.chance(static_cast<std::uint64_t>(options.contiguity_percent),
                   100)) {
      i = current;
    } else {
      i = rng.below(live.size());
    }
    const ActivityId a = live[i];
    h.append(script[a][cursor[a]++]);
    if (cursor[a] == script[a].size()) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      current = live.empty() ? 0 : rng.below(live.size());
    } else {
      current = i;
    }
  }
  return h;
}

}  // namespace argus
