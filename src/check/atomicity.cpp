#include "check/atomicity.h"

#include <sstream>

namespace argus {

namespace {

std::string order_string(const std::vector<ActivityId>& order) {
  if (order.empty()) return "(empty)";
  std::string out;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += "-";
    out += to_string(order[i]);
  }
  return out;
}

CheckResult timestamp_order_check(const SystemSpec& system, const History& h,
                                  const char* property) {
  const History permed = h.perm();
  const auto committed = permed.activities();
  for (ActivityId a : committed) {
    if (!h.timestamp_of(a).has_value()) {
      return {false, std::string(property) + ": committed activity " +
                         to_string(a) + " has no timestamp"};
    }
  }
  // Timestamps live on initiate/commit events which perm() preserves for
  // committed activities, so the order can be read off permed directly.
  const auto order = permed.timestamp_order();
  if (serializable_in_order(system, permed, order)) {
    return {true, std::string(property) + ": perm(h) serializable in " +
                      "timestamp order " + order_string(order)};
  }
  return {false, std::string(property) +
                     ": perm(h) not serializable in timestamp order " +
                     order_string(order)};
}

}  // namespace

CheckResult check_atomic(const SystemSpec& system, const History& h) {
  const History permed = h.perm();
  if (auto order = find_serialization_order(system, permed)) {
    return {true, "atomic: perm(h) serializable in order " +
                      order_string(*order)};
  }
  return {false, "not atomic: perm(h) is not serializable in any order"};
}

CheckResult check_dynamic_atomic(const SystemSpec& system, const History& h) {
  const History permed = h.perm();
  const auto committed = permed.activities();
  const PrecedesRelation rel = h.precedes().restricted_to(committed);
  const auto orders = rel.linear_extensions(committed);
  for (const auto& order : orders) {
    if (!serializable_in_order(system, permed, order)) {
      return {false,
              "not dynamic atomic: perm(h) not serializable in the "
              "precedes-consistent order " +
                  order_string(order) + " (precedes = " + rel.to_string() +
                  ")"};
    }
  }
  std::ostringstream why;
  why << "dynamic atomic: perm(h) serializable in all " << orders.size()
      << " order(s) consistent with precedes = " << rel.to_string();
  return {true, why.str()};
}

CheckResult check_static_atomic(const SystemSpec& system, const History& h) {
  return timestamp_order_check(system, h, "static");
}

CheckResult check_hybrid_atomic(const SystemSpec& system, const History& h) {
  return timestamp_order_check(system, h, "hybrid");
}

}  // namespace argus
