#include "check/serializability.h"

#include <algorithm>
#include <unordered_set>

#include "spec/serial.h"

namespace argus {

History serialization_of(const History& h,
                         const std::vector<ActivityId>& order) {
  History out;
  std::unordered_set<ActivityId> placed;
  for (ActivityId a : order) {
    if (!placed.insert(a).second) continue;
    out = out.then(h.project_activity(a));
  }
  for (ActivityId a : h.activities()) {
    if (!placed.contains(a)) out = out.then(h.project_activity(a));
  }
  return out;
}

bool serializable_in_order(const SystemSpec& system, const History& h,
                           const std::vector<ActivityId>& order) {
  const History serial = serialization_of(h, order);
  // The candidate is equivalent to h by construction; it remains to check
  // acceptability: Lemma 3 reduces this to per-object serial replay.
  for (ObjectId x : serial.objects()) {
    if (!serial_acceptable(system.spec_of(x), serial.project_object(x))) {
      return false;
    }
  }
  return true;
}

std::optional<std::vector<ActivityId>> find_serialization_order(
    const SystemSpec& system, const History& h) {
  std::vector<ActivityId> order = h.activities();
  std::sort(order.begin(), order.end());
  do {
    if (serializable_in_order(system, h, order)) return order;
  } while (std::next_permutation(order.begin(), order.end()));
  return std::nullopt;
}

bool serializable(const SystemSpec& system, const History& h) {
  return find_serialization_order(system, h).has_value();
}

std::vector<std::vector<ActivityId>> all_serialization_orders(
    const SystemSpec& system, const History& h) {
  std::vector<std::vector<ActivityId>> out;
  std::vector<ActivityId> order = h.activities();
  std::sort(order.begin(), order.end());
  if (order.empty()) {
    out.push_back({});
    return out;
  }
  do {
    if (serializable_in_order(system, h, order)) out.push_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

}  // namespace argus
