// VectorClockChecker: a linear-time fast path for atomicity
// certification, in the spirit of Mathur & Viswanathan's "Atomicity
// Checking in Linear Time using Vector Clocks" (PAPERS.md) generalized
// from read/write conflicts to the specification commutativity the
// paper's data-dependent protocols are built on.
//
// The exact online checker (obs/sentinel.h, CheckMode::kExact) re-replays
// every unfolded committed activity each window — robust, but the work
// per window grows with the buffered suffix. This checker processes the
// committed projection in a single pass:
//
//   * Events stream in sequence order. When an activity commits it is
//     *folded* immediately: its per-object event subsequences replay into
//     the running observed chain (one NFA state-set per object, exactly
//     spec/serial.h's acceptance machine), so each operation is replayed
//     once, as it arrives.
//
//   * Per object the checker maintains a compressed vector clock: for
//     every distinct operation folded since the last checkpoint (and, in
//     summary form, ever sealed), the maximum serialization key it was
//     folded under. Folding an activity joins these clocks into the
//     activity's own clock, restricted to *conflicting* pairs — pairs
//     that do not commute in every state, per the same commutativity
//     relation (ConflictRelation) the admission controllers consult.
//
//   * An activity whose clock stays below its own key folded in an order
//     that agrees with the canonical serialization order on every
//     conflict; the commuting-swap argument then makes the observed fold
//     equivalent to the canonical one, so a successful fold certifies the
//     activity (PASS) and a failed fold in a clean context is a genuine
//     VIOLATION — the same judgement the exact checker computes, in
//     linear time.
//
//   * Everything else is SUSPICIOUS: a conflict folded against canonical
//     order (commonly an operation pair whose conflict behaviour is
//     data-dependent — hybrid_bag removes, escrow-style withdraws — and
//     so not expressible as a static relation), a fold failure while the
//     canonical prefix is still open, or late events for an activity
//     already folded. With `escalate` set (CheckMode::kEscalating) a
//     suspicious window re-replays the epoch's buffered activities from
//     the last checkpoint in exact canonical order — the existing exact
//     incremental check, confined to the window's buffer — resolving
//     each suspect to PASS or VIOLATION. Without it
//     (CheckMode::kVectorClock) suspects are quarantined and reported as
//     SUSPICIOUS, and the checker never claims a verdict it cannot
//     prove cheaply.
//
// Canonical serialization keys are the sentinel's: an activity's
// timestamp when it has one (static initiations, hybrid commit stamps,
// hybrid read-only initiations), otherwise its first commit event's
// sequence number; both are drawn from the same Lamport clock.
//
// Memory is bounded by checkpointing, as in the exact sentinel: when the
// buffered committed events exceed `checkpoint_threshold` the epoch is
// sealed — clean monotone epochs seal by cloning the observed chain
// (no re-replay at all); epochs that saw suspicion or out-of-order keys
// seal through the exact canonical re-replay. Activities that commit
// with a key below an already-sealed checkpoint are stragglers: folded
// anyway when they commute with everything sealed above their key,
// quarantined and counted otherwise (never reported as violations),
// matching the exact sentinel's behaviour.
//
// Not thread-safe; the owner (AtomicitySentinel, tests, the offline
// wrapper below) serializes access.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/atomicity.h"
#include "check/conflict.h"
#include "check/system.h"
#include "hist/history.h"
#include "obs/flight_recorder.h"
#include "spec/spec.h"

namespace argus {

enum class VcVerdict {
  kPass,        // every committed activity certified atomic
  kSuspicious,  // unresolved suspicion (only without escalation)
  kViolation,   // at least one proven atomicity violation
};

[[nodiscard]] const char* to_string(VcVerdict v);

struct VcCheckerOptions {
  /// Resolve suspicious windows by exact canonical re-replay of the
  /// epoch buffer (CheckMode::kEscalating). When false, suspects are
  /// quarantined and reported as SUSPICIOUS (CheckMode::kVectorClock).
  bool escalate{true};
  /// Buffered committed events above which the epoch is sealed into the
  /// checkpoint. Default: seal only when asked (finish()).
  std::size_t checkpoint_threshold{static_cast<std::size_t>(-1)};
};

struct VcStats {
  std::uint64_t events{0};
  std::uint64_t folds{0};              // observed-order activity folds
  std::uint64_t certified{0};          // activities certified atomic
  std::uint64_t violations{0};
  std::uint64_t suspicious{0};         // activities ever flagged suspicious
  std::uint64_t unresolved{0};         // suspects quarantined unresolved
  std::uint64_t escalations{0};        // exact re-replays of an epoch buffer
  std::uint64_t windows{0};
  std::uint64_t fastpath_windows{0};   // windows closed without escalation
  std::uint64_t vc_ops{0};             // conflict consults + clock joins
  std::uint64_t stragglers{0};
  std::uint64_t straggler_resolved{0}; // stragglers folded by commutation
  std::uint64_t checkpoints{0};
};

class VectorClockChecker {
 public:
  /// Snapshots `system` (register objects first; events of unknown
  /// objects are counted, not checked).
  VectorClockChecker(const SystemSpec& system, VcCheckerOptions options = {});

  /// Ingests one event (sequence-stamped, arrival order).
  void feed(const SequencedEvent& se);
  void feed(const std::vector<SequencedEvent>& batch);

  /// Closes a window: `clock_hint` is a sequence value below which no new
  /// serialization key can be drawn (the recorder clock before the
  /// previous batch); the effective frontier also respects open
  /// initiations. Runs escalation if the window went suspicious and seals
  /// the epoch when the checkpoint threshold is exceeded.
  void advance_frontier(std::uint64_t clock_hint);

  /// Final flush: folds, resolves and seals everything buffered
  /// (activities that never committed impose no constraint).
  void finish();

  [[nodiscard]] VcVerdict verdict() const;
  [[nodiscard]] const VcStats& stats() const { return stats_; }
  [[nodiscard]] std::string last_violation() const { return last_violation_; }
  [[nodiscard]] std::string last_suspicion() const { return last_suspicion_; }
  /// Violation explanations accumulated since the previous drain (the
  /// sentinel forwards these to its on_violation hook).
  [[nodiscard]] std::vector<std::string> drain_reports();

  [[nodiscard]] const ConflictRelation& conflicts() const {
    return conflicts_;
  }

  /// Adjusts the seal threshold (takes effect at the next window).
  void set_checkpoint_threshold(std::size_t threshold) {
    options_.checkpoint_threshold = threshold;
  }

 private:
  using StateSet = std::vector<std::unique_ptr<SpecState>>;
  using StateMap = std::map<ObjectId, StateSet>;
  /// Compressed per-object clock: distinct operation -> max key folded.
  using OpClock = std::map<Operation, std::uint64_t>;

  struct ActivityState {
    std::vector<SequencedEvent> events;  // invoke/respond only
    Timestamp ts{kNoTimestamp};
    std::uint64_t first_commit_seq{0};
    bool committed{false};
    bool aborted{false};
    bool quarantined{false};
    bool folded{false};      // replayed into the observed chain
    bool certified{false};
    bool suspicious{false};
    bool init_open{false};
    /// The activity's vector clock: per object, the largest key of a
    /// folded conflicting predecessor (joined at fold time).
    std::map<ObjectId, std::uint64_t> clock;
    [[nodiscard]] std::uint64_t key() const {
      return ts != kNoTimestamp ? ts : first_commit_seq;
    }
  };

  void handle_commit(ActivityId id, ActivityState& act);
  /// Joins the per-object op clocks into act.clock on conflicting pairs;
  /// returns true iff some conflict was folded above `key` (mis-order).
  bool join_clocks(ActivityState& act, std::uint64_t key,
                   bool include_sealed);
  /// Replays act's per-object subsequences into `states`; true on
  /// success (states advanced), false on failure (states unchanged, an
  /// explanation in *why).
  bool replay_into(ActivityId id, ActivityState& act, StateMap& states,
                   std::string* why);
  void register_fold(const ActivityState& act, std::uint64_t key);
  void certify(ActivityId id, ActivityState& act);
  void mark_suspicious(ActivityId id, ActivityState& act,
                       const std::string& why);
  void report_violation(ActivityId id, ActivityState& act,
                        const std::string& why);
  StateSet& states_for(StateMap& states, ObjectId x);
  /// Exact canonical re-replay of the epoch buffer from the checkpoint;
  /// seals activities below `frontier`. `exact_verdicts` distinguishes
  /// escalation (kEscalating: failures are violations) from the
  /// vector-clock mode's quarantining seal.
  void reseal_epoch(std::uint64_t frontier, bool exact_verdicts);
  /// Clean monotone epochs seal by cloning the observed chain.
  void seal_clean_epoch(std::uint64_t frontier);
  void maybe_checkpoint(std::uint64_t frontier);
  void drop_sealed(const std::vector<ActivityId>& sealed);

  const SystemSpec system_;
  VcCheckerOptions options_;
  ConflictRelation conflicts_;

  std::map<ActivityId, ActivityState> activities_;
  std::multiset<Timestamp> open_initiations_;

  StateMap observed_;    // fast-path chain: folds land here as they arrive
  StateMap checkpoint_;  // exact canonical states at the last seal
  std::uint64_t checkpoint_key_{0};
  std::uint64_t epoch_max_key_{0};
  /// Highest frontier observed: no key below it can still be drawn.
  /// Immediate (pre-escalation) violation verdicts are gated on it.
  std::uint64_t frontier_seen_{0};

  std::map<ObjectId, OpClock> window_ops_;  // folded since the checkpoint
  std::map<ObjectId, OpClock> sealed_ops_;  // max-key summary, all time

  std::vector<ActivityId> epoch_folded_;  // commit order, for resealing
  std::vector<ActivityId> deferred_;      // folded ok, certificate pending
  std::size_t buffered_events_{0};
  bool dirty_{false};            // suspicion since the last seal
  bool epoch_quarantine_{false}; // a quarantine happened this epoch

  VcStats stats_;
  std::string last_violation_;
  std::string last_suspicion_;
  std::vector<std::string> pending_reports_;
};

/// Canonical serialization order of h's committed activities (timestamp
/// where present, else first-commit position — the sentinel's key), ties
/// broken by activity id.
[[nodiscard]] std::vector<ActivityId> canonical_order(const History& h);

/// The exact judgement the fast path approximates: perm(h) serializable
/// in canonical order. This is what the online sentinel certifies, and
/// the reference the differential tier compares the fast path against.
[[nodiscard]] CheckResult check_canonical_atomic(const SystemSpec& system,
                                                 const History& h);

struct VcReport {
  VcVerdict verdict{VcVerdict::kPass};
  VcStats stats;
  std::vector<std::string> reports;
};

/// Offline wrapper: streams h through a VectorClockChecker (events get
/// sequence numbers 1..n), advancing the frontier every `window` events
/// (0 = single final flush), and returns the verdict.
[[nodiscard]] VcReport check_vc_atomic(const SystemSpec& system,
                                       const History& h,
                                       VcCheckerOptions options = {},
                                       std::size_t window = 0);

}  // namespace argus
