// SystemSpec: the specification side of a system (§2) — a mapping from
// object ids to sequential specifications. Together with a history it is
// everything the checkers need: "the possible computations of the system
// are determined by the specifications of the components".
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "spec/spec.h"

namespace argus {

class SystemSpec {
 public:
  SystemSpec() = default;

  /// Registers an object with its specification; replaces any previous
  /// registration of the same id.
  void add_object(ObjectId x, std::shared_ptr<const SequentialSpec> spec);

  /// Convenience: registers by ADT name via the registry.
  void add_object(ObjectId x, const std::string& type_name);

  [[nodiscard]] bool has(ObjectId x) const { return specs_.contains(x); }

  /// Throws UsageError for unregistered objects.
  [[nodiscard]] const SequentialSpec& spec_of(ObjectId x) const;

  [[nodiscard]] std::vector<ObjectId> objects() const;

 private:
  std::unordered_map<ObjectId, std::shared_ptr<const SequentialSpec>> specs_;
};

}  // namespace argus
