#include "check/admission.h"

#include <functional>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/atomicity.h"

namespace argus {

namespace {

/// Single-version storage simulation for one object (the scheduler
/// model's storage module, Fig 5-1): operations apply in response order
/// against one current state; recorded results must match what that
/// state produces. Aborts remove the activity's operations and re-derive
/// the state (sound under the conflict rules, which is the point).
class StorageSim {
 public:
  explicit StorageSim(const SequentialSpec& spec) : spec_(spec) {
    candidates_.push_back(spec.initial_state());
  }

  /// Applies (op -> result); false iff the storage could not have
  /// produced `result` here.
  bool respond(ActivityId a, const Operation& op, const Value& result) {
    std::vector<std::unique_ptr<SpecState>> next;
    for (const auto& s : candidates_) {
      for (auto& outcome : s->step(op)) {
        if (outcome.result == result) next.push_back(std::move(outcome.state));
      }
    }
    if (next.empty()) return false;
    candidates_ = std::move(next);
    applied_.push_back(Applied{a, op, result});
    return true;
  }

  /// Removes an aborted activity's operations; false iff the remaining
  /// recorded results are no longer reproducible (so no scheduler-model
  /// execution matches this history).
  bool abort(ActivityId a) {
    std::erase_if(applied_,
                  [&](const Applied& entry) { return entry.txn == a; });
    candidates_.clear();
    candidates_.push_back(spec_.initial_state());
    for (const Applied& entry : applied_) {
      std::vector<std::unique_ptr<SpecState>> next;
      for (const auto& s : candidates_) {
        for (auto& outcome : s->step(entry.op)) {
          if (outcome.result == entry.result) {
            next.push_back(std::move(outcome.state));
          }
        }
      }
      if (next.empty()) return false;
      candidates_ = std::move(next);
    }
    return true;
  }

 private:
  struct Applied {
    ActivityId txn;
    Operation op;
    Value result;
  };

  const SequentialSpec& spec_;
  std::vector<std::unique_ptr<SpecState>> candidates_;
  std::vector<Applied> applied_;
};

/// Generic scheduler-model protocol simulation. `conflicts(x, p, q)`
/// decides whether a new operation p at object x conflicts with an
/// operation q already held by another active activity at x. A history
/// is admitted iff (a) no invocation ever overlaps a conflicting held
/// operation, and (b) every recorded result matches single-version
/// storage executed in response order — both halves of Fig 5-1.
bool admitted_by_locking(
    const SystemSpec& system, const History& h,
    const std::function<bool(ObjectId, const Operation&, const Operation&)>&
        conflicts) {
  // (object, activity) -> operations whose locks are held.
  std::map<std::pair<ObjectId, ActivityId>, std::vector<Operation>> held;
  std::unordered_set<ActivityId> finished;
  std::map<ObjectId, StorageSim> storage;
  std::unordered_map<ActivityId, std::pair<ObjectId, Operation>> pending;

  auto storage_for = [&](ObjectId x) -> StorageSim& {
    auto it = storage.find(x);
    if (it == storage.end()) {
      it = storage.emplace(x, StorageSim(system.spec_of(x))).first;
    }
    return it->second;
  };

  for (const Event& e : h.events()) {
    switch (e.kind) {
      case EventKind::kInvoke: {
        for (const auto& [key, ops] : held) {
          const auto& [x, holder] = key;
          if (x != e.object || holder == e.activity ||
              finished.contains(holder)) {
            continue;
          }
          for (const Operation& q : ops) {
            if (conflicts(x, e.operation, q)) return false;
          }
        }
        held[{e.object, e.activity}].push_back(e.operation);
        pending.insert_or_assign(e.activity, std::pair{e.object, e.operation});
        break;
      }
      case EventKind::kRespond: {
        auto it = pending.find(e.activity);
        if (it == pending.end()) return false;
        if (!storage_for(it->second.first)
                 .respond(e.activity, it->second.second, e.result)) {
          return false;
        }
        pending.erase(it);
        break;
      }
      case EventKind::kCommit:
        finished.insert(e.activity);
        break;
      case EventKind::kAbort:
        if (!finished.contains(e.activity)) {
          for (ObjectId x : h.objects()) {
            auto sit = storage.find(x);
            if (sit != storage.end() && !sit->second.abort(e.activity)) {
              return false;
            }
          }
        }
        finished.insert(e.activity);
        break;
      default:
        break;
    }
  }
  return true;
}

}  // namespace

bool admitted_by_two_phase_locking(const SystemSpec& system,
                                   const History& h) {
  return admitted_by_locking(
      system, h, [&](ObjectId x, const Operation& p, const Operation& q) {
        const SequentialSpec& spec = system.spec_of(x);
        // Read locks are shared; anything else is exclusive.
        return !(spec.is_read_only(p) && spec.is_read_only(q));
      });
}

bool admitted_by_commutativity_locking(const SystemSpec& system,
                                       const History& h) {
  return admitted_by_locking(
      system, h, [&](ObjectId x, const Operation& p, const Operation& q) {
        return !system.spec_of(x).static_commutes(p, q);
      });
}

bool admitted_by_dynamic_atomicity(const SystemSpec& system,
                                   const History& h) {
  return check_dynamic_atomic(system, h).ok;
}

}  // namespace argus
