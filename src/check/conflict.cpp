#include "check/conflict.h"

namespace argus {

const char* to_string(PairCommutativity c) {
  switch (c) {
    case PairCommutativity::kAlways:
      return "always";
    case PairCommutativity::kStateDependent:
      return "state-dependent";
    case PairCommutativity::kNever:
      return "never";
  }
  return "?";
}

PairCommutativity ConflictRelation::classify(ObjectId x, const Operation& p,
                                             const Operation& q) const {
  const PairKey key = q < p ? PairKey{q, p} : PairKey{p, q};
  {
    const std::scoped_lock lock(mu_);
    ++queries_;
    auto obj_it = memo_.find(x);
    if (obj_it != memo_.end()) {
      auto it = obj_it->second.find(key);
      if (it != obj_it->second.end()) return it->second;
    }
  }
  // Probe outside the lock: the spec probe clones states and can recurse
  // through forward_commutes; concurrent probes of the same pair are
  // benign (both compute the same answer).
  const SequentialSpec& spec = system_.spec_of(x);
  PairCommutativity result;
  if (spec.static_commutes(p, q)) {
    result = PairCommutativity::kAlways;
  } else if (spec.state_dependent_commutes(p, q)) {
    result = PairCommutativity::kStateDependent;
  } else {
    result = PairCommutativity::kNever;
  }
  const std::scoped_lock lock(mu_);
  ++probes_;
  memo_[x].emplace(key, result);
  return result;
}

std::uint64_t ConflictRelation::probes() const {
  const std::scoped_lock lock(mu_);
  return probes_;
}

std::uint64_t ConflictRelation::queries() const {
  const std::scoped_lock lock(mu_);
  return queries_;
}

}  // namespace argus
