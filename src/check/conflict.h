// ConflictRelation: the per-object commutativity of a system surfaced as
// a queryable, memoized conflict relation.
//
// The admission controllers consult commutativity operation pair by
// operation pair (static_commutes for the scheduler-model baselines,
// forward_commutes for the data-dependent protocols). The vector-clock
// fast path (vc_atomicity.h) needs the same information as a relation it
// can query millions of times per second, so this wrapper classifies each
// pair once per object type and caches the answer:
//
//   kAlways         p and q commute in every state — reordering them can
//                   never change any result or final state, so the fast
//                   path may fold them out of canonical order.
//   kStateDependent p and q commute in some states only — the paper's
//                   data-dependent fragment (§5.1: two withdraws, bag
//                   removes, ...). Not expressible as a static conflict
//                   relation; a mis-ordered occurrence is SUSPICIOUS, not
//                   a proven violation.
//   kNever          p and q commute in no sampled state — a mis-ordered
//                   occurrence can only be certified or refuted by exact
//                   replay, like kStateDependent, but the distinction is
//                   kept for diagnostics and metrics.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "check/system.h"
#include "common/operation.h"

namespace argus {

enum class PairCommutativity {
  kAlways,
  kStateDependent,
  kNever,
};

[[nodiscard]] const char* to_string(PairCommutativity c);

class ConflictRelation {
 public:
  /// Snapshots `system` (the specs are shared, so this is cheap).
  explicit ConflictRelation(const SystemSpec& system) : system_(system) {}

  /// Classifies the pair at object x. Memoized; thread-safe.
  [[nodiscard]] PairCommutativity classify(ObjectId x, const Operation& p,
                                           const Operation& q) const;

  /// True iff p and q do not commute in every state (the conflict edge the
  /// vector clocks track).
  [[nodiscard]] bool conflicts(ObjectId x, const Operation& p,
                               const Operation& q) const {
    return classify(x, p, q) != PairCommutativity::kAlways;
  }

  /// True iff the pair's conflict behaviour is data-dependent.
  [[nodiscard]] bool data_dependent(ObjectId x, const Operation& p,
                                    const Operation& q) const {
    return classify(x, p, q) == PairCommutativity::kStateDependent;
  }

  [[nodiscard]] const SystemSpec& system() const { return system_; }

  /// Pairs classified the slow way (spec probe) vs answered from cache.
  [[nodiscard]] std::uint64_t probes() const;
  [[nodiscard]] std::uint64_t queries() const;

 private:
  // Cache key: operations ordered so (p,q) and (q,p) share an entry —
  // both static and state-dependent commutativity are symmetric.
  using PairKey = std::pair<Operation, Operation>;

  SystemSpec system_;
  mutable std::mutex mu_;
  mutable std::map<ObjectId, std::map<PairKey, PairCommutativity>> memo_;
  mutable std::uint64_t probes_{0};
  mutable std::uint64_t queries_{0};
};

}  // namespace argus
