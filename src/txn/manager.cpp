#include "txn/manager.h"

#include <chrono>

#include "common/scope_guard.h"
#include "dsched/wait_policy.h"
#include "fault/fault.h"

namespace argus {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t micros_between(SteadyClock::time_point from,
                             SteadyClock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

std::shared_ptr<Transaction> TransactionManager::begin(TxnKind kind) {
  // Scheduling point: a deterministic run decides here who begins next.
  if (WaitPolicy* policy = wait_policy()) {
    policy->yield(LaneHint{WaitPoint::kTxnBegin});
  }
  Timestamp ts;
  if (commit_mode() == CommitMode::kSingleMutex) {
    const std::scoped_lock lock(commit_mu_);
    ts = clock_.next();
  } else if (kind == TxnKind::kReadOnly) {
    // Pin the snapshot to the watermark: the begin returns only once
    // every commit below the drawn timestamp has fully applied.
    ts = clock_.read_only_begin();
  } else {
    ts = clock_.next();
  }
  const ActivityId id{next_id_.fetch_add(1, std::memory_order_relaxed)};
  auto t = std::make_shared<Transaction>(id, kind, ts);
  {
    const std::scoped_lock lock(mu_);
    active_[id] = t;
    ++stats_.begun;
  }
  return t;
}

std::shared_ptr<Transaction> TransactionManager::begin_with_timestamp(
    TxnKind kind, Timestamp start_ts) {
  if (commit_mode() == CommitMode::kSingleMutex) {
    const std::scoped_lock lock(commit_mu_);
    clock_.observe(start_ts);
  } else {
    clock_.observe(start_ts);
    if (kind == TxnKind::kReadOnly) clock_.wait_covered(start_ts);
  }
  const ActivityId id{next_id_.fetch_add(1, std::memory_order_relaxed)};
  auto t = std::make_shared<Transaction>(id, kind, start_ts);
  {
    const std::scoped_lock lock(mu_);
    active_[id] = t;
    ++stats_.begun;
  }
  return t;
}

std::shared_ptr<Transaction> TransactionManager::begin_as(
    ActivityId id, TxnKind kind, std::optional<Timestamp> start_ts) {
  Timestamp ts;
  if (start_ts.has_value()) {
    clock_.observe(*start_ts);
    if (kind == TxnKind::kReadOnly) clock_.wait_covered(*start_ts);
    ts = *start_ts;
  } else if (kind == TxnKind::kReadOnly) {
    ts = clock_.read_only_begin();
  } else {
    ts = clock_.next();
  }
  auto t = std::make_shared<Transaction>(id, kind, ts);
  {
    const std::scoped_lock lock(mu_);
    auto [it, inserted] = active_.emplace(id, t);
    if (!inserted) {
      if (it->second.lock() != nullptr) {
        throw UsageError("begin_as: activity " + to_string(id) +
                         " already active");
      }
      it->second = t;
    }
    ++stats_.begun;
  }
  return t;
}

std::optional<Timestamp> TransactionManager::prepare_2pc(
    const std::shared_ptr<Transaction>& t) {
  if (t->state() != TxnState::kActive) return std::nullopt;
  if (t->doomed()) {
    finish_abort(t, t->doom_reason());
    return std::nullopt;
  }
  const std::vector<ManagedObject*> objects = t->touched();
  for (ManagedObject* o : objects) {
    if (o->needs_serial_validation(*t)) {
      // Validate-at-commit needs the apply turn held across validation,
      // which a participant cannot do while the decision is pending.
      throw UsageError(
          "prepare_2pc: validate-at-commit protocols (OCC/MVCC) are not "
          "supported as 2PC participants");
    }
  }
  try {
    for (ManagedObject* o : objects) o->prepare(*t);
  } catch (const TransactionAborted& e) {
    finish_abort(t, e.reason());
    return std::nullopt;
  }
  // Proposed commit timestamp: held in flight until the decision, so no
  // later local commit can apply past it (the re-stamp in
  // commit_prepared stays an order-preserving move).
  const Timestamp ts = clock_.begin_commit();
  FaultInjector* fault = fault_injector();
  if (fault != nullptr) fault->maybe_crash(FaultSite::kPreForce);
  if (t->doomed()) {
    clock_.finish_commit(ts);
    finish_abort(t, t->doom_reason());
    return std::nullopt;
  }
  t->set_commit_ts(ts);
  const AppendResult forced =
      log_.force_prepared(build_record(*t, objects, ts));
  if (forced != AppendResult::kForced) {
    clock_.finish_commit(ts);
    finish_abort(t, AbortReason::kIoError);
    return std::nullopt;
  }
  return ts;
}

void TransactionManager::commit_prepared(const std::shared_ptr<Transaction>& t,
                                         Timestamp global_ts) {
  const Timestamp local_ts = t->commit_ts();
  const std::vector<ManagedObject*> objects = t->touched();
  if (local_ts != global_ts) {
    clock_.restamp_commit(local_ts, global_ts);
    t->set_commit_ts(global_ts);
  }
  log_.promote_prepared(t->id(), global_ts);
  clock_.wait_for_turn(global_ts);
  FaultInjector* fault = fault_injector();
  bool first_apply = true;
  for (ManagedObject* o : objects) {
    // Same torn-apply crash window as the local pipeline; the promoted
    // record is already stable, so recovery makes the apply whole.
    if (!first_apply && fault != nullptr) {
      fault->maybe_crash(FaultSite::kMidApply);
    }
    first_apply = false;
    o->commit(*t, global_ts);
  }
  if (fault != nullptr) fault->maybe_crash(FaultSite::kPostApplyPreWatermark);
  t->set_state(TxnState::kCommitted);
  clock_.finish_commit(global_ts);
  pipelined_commits_.fetch_add(1, std::memory_order_relaxed);
  finish_commit_bookkeeping(t, objects);
}

void TransactionManager::abort_prepared(const std::shared_ptr<Transaction>& t,
                                        AbortReason reason) {
  log_.drop_prepared(t->id());
  const Timestamp ts = t->commit_ts();
  if (ts != kNoTimestamp) clock_.finish_commit(ts);
  if (t->state() == TxnState::kActive) finish_abort(t, reason);
}

void TransactionManager::detach_prepared(
    const std::shared_ptr<Transaction>& t) {
  const Timestamp ts = t->commit_ts();
  if (ts != kNoTimestamp) clock_.finish_commit(ts);
  // Retire the volatile incarnation *silently* — no abort events. The
  // global outcome is still open (or is a commit the coordinator will
  // re-deliver through recovery), so recording <abort,x,a> here could
  // contradict commit events recorded elsewhere and make the merged
  // history ill-formed. The crash already reset the objects' volatile
  // state; the prepared record carries everything recovery needs.
  if (t->state() == TxnState::kActive) {
    t->set_state(TxnState::kAborted);
    detector_.remove(t->id());
    const std::scoped_lock lock(mu_);
    active_.erase(t->id());
  }
}

void TransactionManager::commit(const std::shared_ptr<Transaction>& t) {
  // Scheduling point: commit order is a schedule choice, not an accident
  // of OS thread timing.
  if (WaitPolicy* policy = wait_policy()) {
    policy->yield(LaneHint{WaitPoint::kTxnCommit});
  }
  if (t->state() != TxnState::kActive) {
    throw UsageError("commit of finished transaction " + to_string(t->id()));
  }
  if (t->doomed()) {
    const AbortReason reason = t->doom_reason();
    finish_abort(t, reason);
    throw TransactionAborted(t->id(), reason);
  }

  const std::vector<ManagedObject*> objects = t->touched();

  // Stage 1: validate. An object may veto by throwing. Runs without any
  // global lock in both modes.
  const auto validate_start = SteadyClock::now();
  try {
    for (ManagedObject* o : objects) o->prepare(*t);
  } catch (const TransactionAborted& e) {
    finish_abort(t, e.reason());
    throw;
  }
  validate_us_.fetch_add(
      micros_between(validate_start, SteadyClock::now()),
      std::memory_order_relaxed);

  if (commit_mode() == CommitMode::kSingleMutex) {
    commit_single_mutex(t, objects);
  } else {
    commit_pipelined(t, objects);
  }

  finish_commit_bookkeeping(t, objects);
}

void TransactionManager::commit_read_only(
    const std::shared_ptr<Transaction>& t) {
  if (!t->read_only()) {
    throw UsageError("commit_read_only on update transaction " +
                     to_string(t->id()));
  }
  if (t->state() != TxnState::kActive) {
    throw UsageError("commit of finished transaction " + to_string(t->id()));
  }
  if (t->doomed()) {
    const AbortReason reason = t->doom_reason();
    finish_abort(t, reason);
    throw TransactionAborted(t->id(), reason);
  }
  // Past this point nothing can fail: a read-only commit installs no
  // intentions, forces no log record, and carries no timestamp — each
  // object just records its plain commit event. No validation either: a
  // read-only transaction reads a watermark-covered snapshot, so there
  // is nothing left to veto.
  const std::vector<ManagedObject*> objects = t->touched();
  for (ManagedObject* o : objects) o->commit(*t, kNoTimestamp);
  t->set_state(TxnState::kCommitted);
  finish_commit_bookkeeping(t, objects);
}

CommitLogRecord TransactionManager::build_record(
    const Transaction& t, const std::vector<ManagedObject*>& objects,
    Timestamp ts) const {
  CommitLogRecord record;
  record.txn = t.id();
  record.commit_ts = ts;
  record.start_ts = t.start_ts();
  for (ManagedObject* o : objects) {
    CommitLogRecord::Entry entry;
    entry.object = o->id();
    entry.ops = o->intentions_of(t);
    record.entries.push_back(std::move(entry));
  }
  return record;
}

void TransactionManager::commit_single_mutex(
    const std::shared_ptr<Transaction>& t,
    const std::vector<ManagedObject*>& objects) {
  // Seed behaviour: timestamp draw, log force, and apply all inside one
  // global critical section.
  const std::scoped_lock lock(commit_mu_);
  if (t->doomed()) {
    const AbortReason reason = t->doom_reason();
    finish_abort(t, reason);
    throw TransactionAborted(t->id(), reason);
  }
  // Serial validation (OCC/MVCC): commit_mu_ is the serialization point
  // in this mode — no other commit is in flight, so validate-at-commit
  // runs race-free here. Default objects no-op.
  try {
    for (ManagedObject* o : objects) o->validate_serial(*t);
  } catch (const TransactionAborted& e) {
    finish_abort(t, e.reason());
    throw;
  }
  const Timestamp ts = clock_.next();
  t->set_commit_ts(ts);
  log_.append(build_record(*t, objects, ts));  // write-ahead
  for (ManagedObject* o : objects) o->commit(*t, ts);
  t->set_state(TxnState::kCommitted);
}

void TransactionManager::commit_pipelined(
    const std::shared_ptr<Transaction>& t,
    const std::vector<ManagedObject*>& objects) {
  // Stage 2: timestamp — the only global critical section left.
  const auto stamp_start = SteadyClock::now();
  const Timestamp ts = clock_.begin_commit();
  timestamp_us_.fetch_add(micros_between(stamp_start, SteadyClock::now()),
                          std::memory_order_relaxed);

  // Whatever happens below, the in-flight table entry must be retired, or
  // the watermark (and every later committer's apply turn) stalls.
  bool retired = false;
  const auto retire = on_scope_exit([&] {
    if (!retired) clock_.finish_commit(ts);
  });

  // Crash point: timestamp drawn, nothing forced. A crash fired here
  // dooms this transaction too, so the check below unwinds it before the
  // record could reach the log.
  FaultInjector* fault = fault_injector();
  if (fault != nullptr) fault->maybe_crash(FaultSite::kPreForce);

  if (t->doomed()) {
    const AbortReason reason = t->doom_reason();
    finish_abort(t, reason);
    throw TransactionAborted(t->id(), reason);
  }
  t->set_commit_ts(ts);

  // Stage 2.5: serial validation (OCC/MVCC only). The parallel prepare()
  // stage cannot soundly decide validate-at-commit — another committer's
  // apply may still be in flight — so objects that need it get their
  // final check at the pipeline's serialization point: take the commit
  // turn *before* the log force (every earlier commit has fully applied,
  // no later one can apply first) and let each touched object veto.
  // A veto aborts before anything was forced, so the write-ahead
  // invariant is untouched; the scope guard above retires the in-flight
  // entry. Modes without serial validation keep the force-then-turn
  // order below and its group-commit batching.
  bool serial_validation = false;
  for (ManagedObject* o : objects) {
    if (o->needs_serial_validation(*t)) {
      serial_validation = true;
      break;
    }
  }
  if (serial_validation) {
    const auto serial_start = SteadyClock::now();
    clock_.wait_for_turn(ts);
    try {
      for (ManagedObject* o : objects) o->validate_serial(*t);
    } catch (const TransactionAborted& e) {
      finish_abort(t, e.reason());
      throw;
    }
    validate_us_.fetch_add(micros_between(serial_start, SteadyClock::now()),
                           std::memory_order_relaxed);
  }

  // Stage 3: group-commit log force. Write-ahead: the record is stable
  // before anything applies. Concurrent committers coalesce into one
  // force; a crash discards un-forced records and fails the append, and
  // an exhausted-retries force failure fails them as an I/O error.
  const auto log_start = SteadyClock::now();
  const AppendResult forced = log_.append_group(build_record(*t, objects, ts));
  log_us_.fetch_add(micros_between(log_start, SteadyClock::now()),
                    std::memory_order_relaxed);
  if (forced != AppendResult::kForced) {
    const AbortReason reason = forced == AppendResult::kIoError
                                   ? AbortReason::kIoError
                                   : AbortReason::kCrash;
    finish_abort(t, reason);
    throw TransactionAborted(t->id(), reason);
  }

  // Crash point: the record is stable but nothing has applied. The apply
  // below still completes — a forced record is committed by definition,
  // and recovery replays it — which is exactly the window this crash
  // point exists to exercise.
  if (fault != nullptr) fault->maybe_crash(FaultSite::kPostForcePreApply);

  // Stage 4: apply + publish. Objects apply in commit-timestamp order —
  // each committer waits for every earlier in-flight commit to retire, so
  // per-object committed logs stay timestamp-sorted and queue-style
  // applies see the same order the single-mutex path produced. Retiring
  // advances the visibility watermark, which publishes the commit to
  // read-only begins.
  const auto apply_start = SteadyClock::now();
  if (!serial_validation) clock_.wait_for_turn(ts);  // else turn already held
  bool first_apply = true;
  for (ManagedObject* o : objects) {
    // Crash point: some of this transaction's objects applied, some not
    // — the torn-apply window recovery must make whole.
    if (!first_apply && fault != nullptr) {
      fault->maybe_crash(FaultSite::kMidApply);
    }
    first_apply = false;
    o->commit(*t, ts);
  }
  // Crash point: fully applied, watermark not yet advanced — read-only
  // begins must not observe this commit as covered yet.
  if (fault != nullptr) fault->maybe_crash(FaultSite::kPostApplyPreWatermark);
  t->set_state(TxnState::kCommitted);
  retired = true;
  clock_.finish_commit(ts);
  apply_us_.fetch_add(micros_between(apply_start, SteadyClock::now()),
                      std::memory_order_relaxed);
  pipelined_commits_.fetch_add(1, std::memory_order_relaxed);
}

void TransactionManager::finish_commit_bookkeeping(
    const std::shared_ptr<Transaction>& t,
    const std::vector<ManagedObject*>& objects) {
  detector_.remove(t->id());
  {
    const std::scoped_lock lock(mu_);
    active_.erase(t->id());
    ++stats_.committed;
  }
  // Effects became visible: blocked transactions may now proceed.
  for (ManagedObject* o : objects) o->wake_all();
}

void TransactionManager::abort(const std::shared_ptr<Transaction>& t,
                               AbortReason reason) {
  if (t->state() != TxnState::kActive) return;
  finish_abort(t, reason);
}

void TransactionManager::finish_abort(const std::shared_ptr<Transaction>& t,
                                      AbortReason reason) {
  const std::vector<ManagedObject*> objects = t->touched();
  for (ManagedObject* o : objects) o->abort(*t);
  t->set_state(TxnState::kAborted);
  detector_.remove(t->id());
  {
    const std::scoped_lock lock(mu_);
    active_.erase(t->id());
    ++stats_.aborted;
    ++stats_.aborted_by_reason[reason];
  }
  for (ManagedObject* o : objects) o->wake_all();
}

TxnStats TransactionManager::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

CommitPipelineStats TransactionManager::pipeline_stats() const {
  CommitPipelineStats out;
  out.commits = pipelined_commits_.load(std::memory_order_relaxed);
  out.validate_us = validate_us_.load(std::memory_order_relaxed);
  out.timestamp_us = timestamp_us_.load(std::memory_order_relaxed);
  out.log_us = log_us_.load(std::memory_order_relaxed);
  out.apply_us = apply_us_.load(std::memory_order_relaxed);
  const StableLog::GroupStats log_stats = log_.group_stats();
  out.log_forces = log_stats.forces;
  out.log_records = log_stats.records_forced;
  out.max_batch = log_stats.max_batch;
  out.watermark = clock_.watermark();
  out.clock_now = clock_.now();
  return out;
}

void TransactionManager::doom_all_active(AbortReason reason) {
  std::vector<std::shared_ptr<Transaction>> doomed;
  if (commit_mode() == CommitMode::kSingleMutex) {
    // Seed semantics: serialize against in-flight commits, so each
    // transaction either committed fully or is doomed.
    const std::scoped_lock commit_lock(commit_mu_);
    const std::scoped_lock lock(mu_);
    for (auto& [id, weak] : active_) {
      if (auto t = weak.lock()) doomed.push_back(std::move(t));
    }
  } else {
    const std::scoped_lock lock(mu_);
    for (auto& [id, weak] : active_) {
      if (auto t = weak.lock()) doomed.push_back(std::move(t));
    }
  }
  for (const auto& t : doomed) {
    t->doom(reason);
    if (ManagedObject* o = t->waiting_at()) o->wake_all();
  }
  // Drain the pipeline: any record not yet forced is lost, and its
  // committer unwinds with an abort. Records already forced complete
  // their apply, so recovery replays exactly the forced prefix.
  log_.drop_pending();
}

std::vector<std::shared_ptr<Transaction>>
TransactionManager::active_transactions() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::shared_ptr<Transaction>> out;
  for (const auto& [id, weak] : active_) {
    if (auto t = weak.lock()) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace argus
