#include "txn/manager.h"

namespace argus {

std::shared_ptr<Transaction> TransactionManager::begin(TxnKind kind) {
  Timestamp ts;
  {
    const std::scoped_lock lock(commit_mu_);
    ts = clock_.next();
  }
  const ActivityId id{next_id_.fetch_add(1, std::memory_order_relaxed)};
  auto t = std::make_shared<Transaction>(id, kind, ts);
  {
    const std::scoped_lock lock(mu_);
    active_[id] = t;
    ++stats_.begun;
  }
  return t;
}

std::shared_ptr<Transaction> TransactionManager::begin_with_timestamp(
    TxnKind kind, Timestamp start_ts) {
  {
    const std::scoped_lock lock(commit_mu_);
    clock_.observe(start_ts);
  }
  const ActivityId id{next_id_.fetch_add(1, std::memory_order_relaxed)};
  auto t = std::make_shared<Transaction>(id, kind, start_ts);
  {
    const std::scoped_lock lock(mu_);
    active_[id] = t;
    ++stats_.begun;
  }
  return t;
}

void TransactionManager::commit(const std::shared_ptr<Transaction>& t) {
  if (t->state() != TxnState::kActive) {
    throw UsageError("commit of finished transaction " + to_string(t->id()));
  }
  if (t->doomed()) {
    const AbortReason reason = t->doom_reason();
    finish_abort(t, reason);
    throw TransactionAborted(t->id(), reason);
  }

  const std::vector<ManagedObject*> objects = t->touched();

  // Phase 1: validation. An object may veto by throwing.
  try {
    for (ManagedObject* o : objects) o->prepare(*t);
  } catch (const TransactionAborted& e) {
    finish_abort(t, e.reason());
    throw;
  }

  // Phase 2: assign the commit timestamp, force the intentions log, and
  // apply — all inside the commit critical section.
  {
    const std::scoped_lock lock(commit_mu_);
    if (t->doomed()) {
      const AbortReason reason = t->doom_reason();
      finish_abort(t, reason);
      throw TransactionAborted(t->id(), reason);
    }
    const Timestamp ts = clock_.next();
    t->set_commit_ts(ts);

    CommitLogRecord record;
    record.txn = t->id();
    record.commit_ts = ts;
    record.start_ts = t->start_ts();
    for (ManagedObject* o : objects) {
      CommitLogRecord::Entry entry;
      entry.object = o->id();
      entry.ops = o->intentions_of(*t);
      record.entries.push_back(std::move(entry));
    }
    log_.append(std::move(record));  // write-ahead: forced before applying

    for (ManagedObject* o : objects) o->commit(*t, ts);
    t->set_state(TxnState::kCommitted);
  }

  detector_.remove(t->id());
  {
    const std::scoped_lock lock(mu_);
    active_.erase(t->id());
    ++stats_.committed;
  }
  // Effects became visible: blocked transactions may now proceed.
  for (ManagedObject* o : objects) o->wake_all();
}

void TransactionManager::abort(const std::shared_ptr<Transaction>& t,
                               AbortReason reason) {
  if (t->state() != TxnState::kActive) return;
  finish_abort(t, reason);
}

void TransactionManager::finish_abort(const std::shared_ptr<Transaction>& t,
                                      AbortReason reason) {
  const std::vector<ManagedObject*> objects = t->touched();
  for (ManagedObject* o : objects) o->abort(*t);
  t->set_state(TxnState::kAborted);
  detector_.remove(t->id());
  {
    const std::scoped_lock lock(mu_);
    active_.erase(t->id());
    ++stats_.aborted;
    ++stats_.aborted_by_reason[reason];
  }
  for (ManagedObject* o : objects) o->wake_all();
}

TxnStats TransactionManager::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

void TransactionManager::doom_all_active(AbortReason reason) {
  const std::scoped_lock commit_lock(commit_mu_);
  std::vector<std::shared_ptr<Transaction>> doomed;
  {
    const std::scoped_lock lock(mu_);
    for (auto& [id, weak] : active_) {
      if (auto t = weak.lock()) doomed.push_back(std::move(t));
    }
  }
  for (const auto& t : doomed) {
    t->doom(reason);
    if (ManagedObject* o = t->waiting_at()) o->wake_all();
  }
}

std::vector<std::shared_ptr<Transaction>>
TransactionManager::active_transactions() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::shared_ptr<Transaction>> out;
  for (const auto& [id, weak] : active_) {
    if (auto t = weak.lock()) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace argus
