// HistoryRecorder: thread-safe capture of the global event sequence
// behind one mutex.
//
// This is the seed's bridge between the runtime and the formal model:
// every protocol object records its invoke/respond/commit/abort/initiate
// events here (inside the critical section where the event takes effect,
// so the recorded order is a faithful observation of the computation),
// and tests feed the snapshot to the checkers of src/check.
//
// It is kept as the reference EventSink implementation — strict
// arrival-order capture, trivially correct — and as the baseline the
// sharded FlightRecorder (obs/flight_recorder.h) is benchmarked against:
// this global mutex is a second commit lock at high thread counts, which
// is why the Runtime's production path now records through the flight
// recorder instead (Runtime::RecorderMode).
#pragma once

#include <mutex>

#include "hist/history.h"
#include "obs/event_sink.h"

namespace argus {

class HistoryRecorder final : public EventSink {
 public:
  HistoryRecorder() = default;

  void record(Event e) override {
    const std::scoped_lock lock(mu_);
    history_.append(std::move(e));
  }

  [[nodiscard]] History snapshot() const {
    const std::scoped_lock lock(mu_);
    return history_;
  }

  void clear() {
    const std::scoped_lock lock(mu_);
    history_ = History{};
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return history_.size();
  }

 private:
  mutable std::mutex mu_;
  History history_;
};

}  // namespace argus
