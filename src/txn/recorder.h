// HistoryRecorder: thread-safe capture of the global event sequence.
//
// This is the bridge between the runtime and the formal model: every
// protocol object records its invoke/respond/commit/abort/initiate events
// here (inside the critical section where the event takes effect, so the
// recorded order is a faithful observation of the computation), and tests
// feed the snapshot to the checkers of src/check. Recording is optional —
// pass nullptr to objects in benchmarks where capture overhead matters.
#pragma once

#include <mutex>

#include "hist/history.h"

namespace argus {

class HistoryRecorder {
 public:
  HistoryRecorder() = default;

  void record(Event e) {
    const std::scoped_lock lock(mu_);
    history_.append(std::move(e));
  }

  [[nodiscard]] History snapshot() const {
    const std::scoped_lock lock(mu_);
    return history_;
  }

  void clear() {
    const std::scoped_lock lock(mu_);
    history_ = History{};
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return history_.size();
  }

 private:
  mutable std::mutex mu_;
  History history_;
};

}  // namespace argus
