// Simulated stable storage: a write-ahead intentions log with group
// commit.
//
// The paper integrates recoverability into the model rather than fixing a
// recovery technique; our runtime realizes recoverability with intentions
// lists in the style of [Lampson & Sturgis] (cited in §4.1): a
// transaction's operations are buffered per object and forced to the log
// *before* being applied to the committed state. crash() drops all
// volatile state; recover() replays the log, so exactly the committed
// transactions' effects survive — the all-or-nothing property, testable.
//
// Forcing is batched (group commit): concurrent committers enqueue their
// records and one of them — the flush leader — forces the whole pending
// batch in a single simulated storage round trip, instead of serializing
// one force per record. A record is stable exactly when append_group()
// returns true; drop_pending() (the crash path) discards every record
// that has not been forced yet and fails its waiting committer, so
// recovery replays exactly the forced prefix.
//
// "Stable" here is process-lifetime memory that crash() deliberately
// spares; substituting a file-backed log would not change any interface.
// set_force_delay() models the latency of a real force (fsync); the
// leader pays it once per batch.
//
// Failure semantics under fault injection (set_fault_injector): a force
// attempt may fail transiently — the leader retries with linear backoff
// and, once retries are exhausted, the whole batch fails as an I/O error
// (AppendResult::kIoError; nothing was applied, the committers abort). A
// force may also be torn: exactly a prefix of the batch stabilizes and
// the tail is requeued at the head of the pending queue, so the tail
// committers keep waiting and either stabilize under a later leader or
// are failed by drop_pending() — a crash after a torn force therefore
// loses exactly the unstabilized suffix, never a stabilized record.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/operation.h"
#include "common/value.h"

namespace argus {

class FaultInjector;
class WaitPolicy;

/// One executed operation together with the result it returned. The
/// result is logged because nondeterministic operations (Bag::remove)
/// cannot be replayed faithfully from the operation alone.
struct LoggedOp {
  Operation op;
  Value result;

  friend bool operator==(const LoggedOp&, const LoggedOp&) = default;
};

struct CommitLogRecord {
  struct Entry {
    ObjectId object;
    std::vector<LoggedOp> ops;  // redo intentions, in execution order
  };

  ActivityId txn;
  Timestamp commit_ts{kNoTimestamp};
  /// The transaction's initiation timestamp. Static-atomic objects
  /// serialize by initiation timestamp, so recovery must reinsert their
  /// operations at this position, not at the commit position.
  Timestamp start_ts{kNoTimestamp};
  std::vector<Entry> entries;
};

/// Per-record metadata handed to ManagedObject::replay during recovery.
struct ReplayContext {
  ActivityId txn;
  Timestamp commit_ts{kNoTimestamp};
  Timestamp start_ts{kNoTimestamp};
};

/// How one append_group() call ended.
enum class AppendResult {
  kForced,   // the record is stable and survives crash()
  kDropped,  // drop_pending() (a crash) discarded it — abort the txn
  kIoError,  // the force failed after exhausting retries — abort the txn
};

class StableLog {
 public:
  StableLog() = default;

  /// Forces a single commit record to stable storage (a group of one).
  /// Once append returns, the record survives crash().
  void append(CommitLogRecord record);

  /// Group commit: enqueues the record and blocks until a flush leader
  /// forces the batch containing it. kForced means the record is stable;
  /// on kDropped / kIoError nothing was applied and the caller must
  /// abort its transaction.
  [[nodiscard]] AppendResult append_group(CommitLogRecord record);

  /// Crash path: discards every record not yet forced and fails its
  /// waiting append_group() call. Records already forced are untouched —
  /// including prepared records (force_prepared), which is the point of
  /// 2PC: a prepared participant that crashes can still learn the
  /// outcome after recovery.
  void drop_pending();

  // --- 2PC participant records ------------------------------------------
  //
  // Prepare forces the record under the participant's *proposed* local
  // timestamp, but the record is not yet committed: it sits in a separate
  // prepared set until the coordinator's decision arrives. promote moves
  // it into the committed log re-stamped with the global decision
  // timestamp; drop discards it (abort, or presumed abort on recovery).
  // Both survive crash() / drop_pending(), exactly like forced records.

  /// Forces a prepared record to stable storage. Pays the force latency
  /// and consults the fault injector (a prepare force can fail like any
  /// other force — the participant then vetoes). kDropped is never
  /// returned: the prepare force is its own storage round trip, not part
  /// of a group batch.
  [[nodiscard]] AppendResult force_prepared(CommitLogRecord record);

  /// Commits a prepared record: moves it into the committed log with
  /// commit_ts replaced by the coordinator's decision timestamp. Returns
  /// false if no prepared record for `txn` exists (already resolved).
  bool promote_prepared(ActivityId txn, Timestamp commit_ts);

  /// Discards a prepared record (coordinator abort / presumed abort).
  /// Returns false if no prepared record for `txn` exists.
  bool drop_prepared(ActivityId txn);

  /// Snapshot of prepared (undecided) records — what recovery must
  /// resolve against the coordinator before replaying the log.
  [[nodiscard]] std::vector<CommitLogRecord> prepared_records() const;

  /// Inserts an already-decided record directly into the committed log
  /// (the recovery catch-up copier replicating missed writes from a live
  /// peer's log).
  void adopt_record(CommitLogRecord record);

  /// Simulated per-force storage latency (fsync cost). The flush leader
  /// pays it once for the whole batch. Default: zero.
  void set_force_delay(std::chrono::microseconds delay);

  /// Test hooks: while held, flush leaders block before completing their
  /// force, so records pile up un-stable (used to aim a crash at an
  /// in-flight batch).
  void hold_flushes();
  void release_flushes();

  /// Fault injection hook: the injector decides force failures, torn
  /// tails and leader latency per force attempt. nullptr (default) = no
  /// injection. The pointer must outlive the log or be cleared first.
  void set_fault_injector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
  }

  /// Routes the log's blocking waits and simulated latencies through
  /// `policy` (nullptr resets to plain waits/sleeps). Set before
  /// concurrent use.
  void set_wait_policy(WaitPolicy* policy) {
    policy_.store(policy, std::memory_order_release);
  }

  struct GroupStats {
    std::uint64_t forces{0};         // flush round trips
    std::uint64_t records_forced{0};
    std::uint64_t max_batch{0};      // largest single-force batch
    std::uint64_t force_failures{0}; // injected transient force failures
    std::uint64_t torn_forces{0};    // forces that stabilized a strict prefix
    std::uint64_t records_requeued{0};  // tail records sent back to the queue
    std::uint64_t prepared_forces{0};   // 2PC prepare records forced
    std::uint64_t prepared_promoted{0};
    std::uint64_t prepared_dropped{0};
    std::uint64_t records_adopted{0};   // catch-up records copied from a peer
  };
  [[nodiscard]] GroupStats group_stats() const;

  /// Snapshot of all forced records, ordered by commit timestamp.
  [[nodiscard]] std::vector<CommitLogRecord> records() const;

  /// The commit timestamp of `txn`'s forced record, if one exists — how
  /// a surviving peer answers "did this gid commit here?" during the
  /// cooperative termination protocol, and how coordinator recovery
  /// re-syncs its volatile ack table from participants' stable state.
  [[nodiscard]] std::optional<Timestamp> committed_ts(ActivityId txn) const;

  /// Removes one forced record by activity id (decision-log
  /// checkpointing: a decision every participant has acknowledged can be
  /// truncated). Returns false if no record for `txn` exists.
  bool remove_record(ActivityId txn);

  [[nodiscard]] std::size_t size() const;

  /// Administrative truncation (checkpointing is out of scope; tests use
  /// this to reset between scenarios).
  void clear();

 private:
  enum class SlotState { kQueued, kForced, kDropped, kFailed };

  struct Slot {
    CommitLogRecord record;
    SlotState state{SlotState::kQueued};
  };

  /// Inserts a forced record keeping records_ sorted by commit_ts.
  /// Batches can force out of timestamp order (a later-stamped committer
  /// may reach the log first), and recovery replays records_ in order.
  void insert_forced_locked(CommitLogRecord record);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<CommitLogRecord> records_;       // forced, commit_ts-sorted
  std::vector<CommitLogRecord> prepared_;      // forced, awaiting 2PC decision
  std::vector<std::shared_ptr<Slot>> queue_;   // awaiting force
  bool flush_active_{false};
  bool hold_flushes_{false};
  std::uint64_t generation_{0};  // bumped by drop_pending
  std::chrono::microseconds force_delay_{0};
  std::atomic<FaultInjector*> fault_{nullptr};
  std::atomic<WaitPolicy*> policy_{nullptr};
  GroupStats stats_;
};

}  // namespace argus
