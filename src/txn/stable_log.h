// Simulated stable storage: a write-ahead intentions log.
//
// The paper integrates recoverability into the model rather than fixing a
// recovery technique; our runtime realizes recoverability with intentions
// lists in the style of [Lampson & Sturgis] (cited in §4.1): a
// transaction's operations are buffered per object and forced to the log
// *before* being applied to the committed state. crash() drops all
// volatile state; recover() replays the log, so exactly the committed
// transactions' effects survive — the all-or-nothing property, testable.
//
// "Stable" here is process-lifetime memory that crash() deliberately
// spares; substituting a file-backed log would not change any interface.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "common/operation.h"
#include "common/value.h"

namespace argus {

/// One executed operation together with the result it returned. The
/// result is logged because nondeterministic operations (Bag::remove)
/// cannot be replayed faithfully from the operation alone.
struct LoggedOp {
  Operation op;
  Value result;

  friend bool operator==(const LoggedOp&, const LoggedOp&) = default;
};

struct CommitLogRecord {
  struct Entry {
    ObjectId object;
    std::vector<LoggedOp> ops;  // redo intentions, in execution order
  };

  ActivityId txn;
  Timestamp commit_ts{kNoTimestamp};
  /// The transaction's initiation timestamp. Static-atomic objects
  /// serialize by initiation timestamp, so recovery must reinsert their
  /// operations at this position, not at the commit position.
  Timestamp start_ts{kNoTimestamp};
  std::vector<Entry> entries;
};

/// Per-record metadata handed to ManagedObject::replay during recovery.
struct ReplayContext {
  ActivityId txn;
  Timestamp commit_ts{kNoTimestamp};
  Timestamp start_ts{kNoTimestamp};
};

class StableLog {
 public:
  StableLog() = default;

  /// Forces a commit record to stable storage. Once append returns, the
  /// record survives crash().
  void append(CommitLogRecord record);

  /// Snapshot of all records in commit order.
  [[nodiscard]] std::vector<CommitLogRecord> records() const;

  [[nodiscard]] std::size_t size() const;

  /// Administrative truncation (checkpointing is out of scope; tests use
  /// this to reset between scenarios).
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<CommitLogRecord> records_;
};

}  // namespace argus
