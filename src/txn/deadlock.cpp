#include "txn/deadlock.h"

#include <algorithm>

namespace argus {

bool DeadlockDetector::reachable_locked(ActivityId from, ActivityId to) const {
  std::vector<ActivityId> stack{from};
  std::unordered_set<ActivityId> seen{from};
  while (!stack.empty()) {
    const ActivityId cur = stack.back();
    stack.pop_back();
    if (cur == to) return true;
    auto it = edges_.find(cur);
    if (it == edges_.end()) continue;
    for (ActivityId next : it->second) {
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

std::shared_ptr<Transaction> DeadlockDetector::add_wait(
    const std::shared_ptr<Transaction>& waiter,
    const std::vector<std::shared_ptr<Transaction>>& holders) {
  const std::scoped_lock lock(mu_);
  txns_[waiter->id()] = waiter;
  auto& out = edges_[waiter->id()];
  for (const auto& h : holders) {
    if (h->id() == waiter->id()) continue;
    txns_[h->id()] = h;
    out.insert(h->id());
  }

  // A cycle through the new edges exists iff waiter is reachable from one
  // of its holders.
  std::vector<ActivityId> cycle_entry;
  for (const auto& h : holders) {
    if (h->id() != waiter->id() && reachable_locked(h->id(), waiter->id())) {
      cycle_entry.push_back(h->id());
    }
  }
  if (cycle_entry.empty()) return nullptr;

  // Collect cycle members: waiter plus everything on a holder->waiter
  // path. For victim selection it is enough to consider nodes reachable
  // from waiter that can reach waiter.
  std::shared_ptr<Transaction> victim;
  auto consider = [&](ActivityId id) {
    auto it = txns_.find(id);
    if (it == txns_.end()) return;
    auto t = it->second.lock();
    if (!t || !t->active() || t->doomed()) return;
    if (!victim || t->id() > victim->id()) victim = std::move(t);
  };
  consider(waiter->id());
  for (const auto& [id, edges] : edges_) {
    if (reachable_locked(waiter->id(), id) &&
        reachable_locked(id, waiter->id())) {
      consider(id);
    }
  }
  if (!victim) return nullptr;  // cycle already being torn down

  ++resolved_;
  victim->doom(AbortReason::kDeadlock);
  // Break the cycle in the graph immediately so concurrent add_wait calls
  // do not re-detect and doom further victims.
  edges_.erase(victim->id());
  return victim;
}

void DeadlockDetector::clear_wait(ActivityId waiter) {
  const std::scoped_lock lock(mu_);
  edges_.erase(waiter);
}

void DeadlockDetector::remove(ActivityId txn) {
  const std::scoped_lock lock(mu_);
  edges_.erase(txn);
  txns_.erase(txn);
  for (auto& [id, out] : edges_) out.erase(txn);
}

std::uint64_t DeadlockDetector::deadlocks_resolved() const {
  const std::scoped_lock lock(mu_);
  return resolved_;
}

}  // namespace argus
