// Transaction: the runtime realization of the paper's "activity".
//
// Carries identity, the update/read-only classification of §4.3 (supplied
// by the application, as the paper prescribes: "this information will
// probably be supplied by the programmer"), lifecycle state, the
// timestamps used by the static/hybrid properties, and the doomed flag by
// which deadlock victims and crash recovery interrupt a running activity.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/errors.h"
#include "common/ids.h"

namespace argus {

class ManagedObject;

enum class TxnKind {
  kUpdate,
  kReadOnly,  // promises to invoke only read-only operations (checked by objects)
};

enum class TxnState { kActive, kCommitted, kAborted };

class Transaction : public std::enable_shared_from_this<Transaction> {
 public:
  Transaction(ActivityId id, TxnKind kind, Timestamp start_ts);

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  [[nodiscard]] ActivityId id() const { return id_; }
  [[nodiscard]] TxnKind kind() const { return kind_; }
  [[nodiscard]] bool read_only() const { return kind_ == TxnKind::kReadOnly; }

  /// Timestamp chosen at initiation. Used as the serialization timestamp
  /// by static-atomic objects (all transactions) and by hybrid-atomic
  /// objects (read-only transactions only). Under the pipelined commit
  /// path, a read-only transaction's begin returns only after the
  /// manager's visibility watermark covers this timestamp: every commit
  /// below it has fully applied (§4.3.3's invariant by construction).
  [[nodiscard]] Timestamp start_ts() const { return start_ts_; }

  /// Timestamp assigned at commit (hybrid updates); kNoTimestamp before.
  [[nodiscard]] Timestamp commit_ts() const {
    return commit_ts_.load(std::memory_order_acquire);
  }
  void set_commit_ts(Timestamp t) {
    commit_ts_.store(t, std::memory_order_release);
  }

  [[nodiscard]] TxnState state() const {
    return state_.load(std::memory_order_acquire);
  }
  void set_state(TxnState s) { state_.store(s, std::memory_order_release); }
  [[nodiscard]] bool active() const { return state() == TxnState::kActive; }

  /// Marks the transaction for abort (deadlock victim, crash, timeout).
  /// The owning thread notices at its next ensure_active() and unwinds.
  void doom(AbortReason reason);
  [[nodiscard]] bool doomed() const {
    return doomed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] AbortReason doom_reason() const;

  /// Throws TransactionAborted if the transaction is doomed or no longer
  /// active. Objects call this before and during every blocking wait.
  void ensure_active() const;

  /// The object this transaction is currently blocked at, if any; used to
  /// wake a doomed victim out of its wait.
  void set_waiting_at(ManagedObject* o) {
    waiting_at_.store(o, std::memory_order_release);
  }
  [[nodiscard]] ManagedObject* waiting_at() const {
    return waiting_at_.load(std::memory_order_acquire);
  }

  /// Objects touched, in first-touch order (the commit/abort fan-out
  /// order). Insertion is idempotent.
  void touch(ManagedObject* o);
  [[nodiscard]] std::vector<ManagedObject*> touched() const;

  /// Read/write-set capture (OCC/MVCC bookkeeping, validation metrics).
  /// Objects report each operation as a read or a write of themselves;
  /// the per-object sets are idempotent, the counters are per operation.
  void note_access(ObjectId object, bool write);
  [[nodiscard]] std::vector<ObjectId> read_set() const;
  [[nodiscard]] std::vector<ObjectId> write_set() const;
  [[nodiscard]] std::uint64_t reads() const {
    return reads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }

 private:
  const ActivityId id_;
  const TxnKind kind_;
  const Timestamp start_ts_;
  std::atomic<Timestamp> commit_ts_{kNoTimestamp};
  std::atomic<TxnState> state_{TxnState::kActive};
  std::atomic<bool> doomed_{false};
  std::atomic<ManagedObject*> waiting_at_{nullptr};

  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};

  mutable std::mutex mu_;
  AbortReason doom_reason_{AbortReason::kUser};  // guarded by mu_
  std::vector<ManagedObject*> touched_;          // guarded by mu_
  std::vector<ObjectId> read_set_;               // guarded by mu_
  std::vector<ObjectId> write_set_;              // guarded by mu_
};

}  // namespace argus
