// Lamport clock ([Lamport 78], cited in §4.3.3) used to generate the
// timestamps of the static and hybrid properties, extended with the
// commit-pipeline machinery: an in-flight commit table and a visibility
// watermark.
//
// Hybrid atomicity needs commit timestamps consistent with precedes at
// every object (§4.3.3: "this can be achieved ... by using a Lamport
// clock"). The seed implementation obtained that by drawing every
// timestamp inside one global commit mutex; this clock instead makes the
// timestamp draw itself the only critical section:
//
//   * begin_commit() atomically allocates the next timestamp and
//     registers it in the in-flight table — the pipeline's "timestamp"
//     stage, a few instructions under a leaf mutex.
//   * wait_for_turn(ts) blocks until every earlier in-flight commit has
//     finished, so the "apply" stage runs in timestamp order without any
//     global lock held across logging or object work.
//   * finish_commit(ts) retires a commit (applied or aborted) and
//     advances the watermark: the largest timestamp W such that every
//     commit with timestamp <= W has fully applied (or aborted). The
//     watermark is monotone and read lock-free.
//   * read_only_begin() draws a start timestamp for a read-only activity
//     and waits until the watermark covers it, i.e. until no in-flight
//     commit below the drawn timestamp remains. This preserves §4.3.3's
//     invariant — a read-only activity at t observes exactly the
//     committed updates below t — by construction: at return, every
//     commit below t has applied, and every future commit draws a larger
//     timestamp. (We draw a fresh timestamp rather than reusing the
//     watermark value itself because the model requires timestamps to be
//     unique across activities; see TimestampRules in hist/wellformed.)
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>

#include "common/ids.h"

namespace argus {

class WaitPolicy;

class LamportClock {
 public:
  LamportClock() = default;

  /// Next strictly increasing timestamp (starts at 1; 0 is reserved).
  /// With a domain installed (set_domain), the result is additionally the
  /// smallest timestamp above the current counter that is congruent to
  /// `offset` mod `stride` — per-site clocks in the multi-site runtime
  /// draw from disjoint residue classes, so timestamps are globally
  /// unique without coordination (Lamport's site-id tiebreaker folded
  /// into the numeric value).
  Timestamp next() {
    const std::uint64_t stride = stride_.load(std::memory_order_relaxed);
    if (stride == 1) {
      return counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    const std::uint64_t offset = offset_.load(std::memory_order_relaxed);
    Timestamp cur = counter_.load(std::memory_order_relaxed);
    for (;;) {
      Timestamp t = (cur / stride) * stride + offset;
      if (t <= cur) t += stride;
      if (counter_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
        return t;
      }
    }
  }

  /// Restricts this clock's timestamps to the residue class
  /// `offset` mod `stride` (offset < stride). Site i of an N-site
  /// deployment uses (i, N). The default (0, 1) is the seed behaviour:
  /// every timestamp, byte for byte. Set before concurrent use.
  void set_domain(std::uint64_t offset, std::uint64_t stride) {
    offset_.store(offset, std::memory_order_relaxed);
    stride_.store(stride == 0 ? 1 : stride, std::memory_order_relaxed);
  }

  /// Advances the clock so future timestamps exceed `observed` (message
  /// receipt in Lamport's scheme; timestamp-skew injection in ours).
  void observe(Timestamp observed) {
    Timestamp cur = counter_.load(std::memory_order_relaxed);
    while (cur < observed && !counter_.compare_exchange_weak(
                                 cur, observed, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] Timestamp now() const {
    return counter_.load(std::memory_order_relaxed);
  }

  /// Allocates a commit timestamp and registers it in the in-flight
  /// table. Every begin_commit must be balanced by exactly one
  /// finish_commit (whether the commit applied or aborted).
  Timestamp begin_commit();

  /// Blocks until `ts` is the smallest in-flight commit timestamp, i.e.
  /// every earlier commit has retired. `ts` must be in flight.
  void wait_for_turn(Timestamp ts);

  /// Retires an in-flight commit and advances the watermark past every
  /// timestamp with no in-flight commit at or below it.
  void finish_commit(Timestamp ts);

  /// Re-stamps an in-flight commit from `from` to `to` (the 2PC decision:
  /// a participant's proposed local timestamp is replaced by the
  /// coordinator's global maximum). Safe because `from` is still in
  /// flight — no commit between `from` and `to` can have applied — so the
  /// apply order stays a timestamp order. Wakes turn-waiters whose
  /// timestamp may have become the minimum.
  void restamp_commit(Timestamp from, Timestamp to);

  /// Records an externally decided commit timestamp (2PC outcome resolved
  /// during site recovery): advances the clock past `ts` and, when no
  /// in-flight commit at or below `ts` remains, the watermark too — so
  /// read-only begins at a recovered site cover replayed commits.
  void observe_committed(Timestamp ts);

  /// Draws a start timestamp for a read-only activity: a fresh timestamp
  /// t such that, on return, every commit with timestamp below t has
  /// fully applied. Blocks while in-flight commits below t drain.
  Timestamp read_only_begin();

  /// Waits until every in-flight commit with timestamp below `ts` has
  /// retired (used when the caller supplies its own start timestamp).
  void wait_covered(Timestamp ts);

  /// Largest timestamp W such that every commit <= W has fully applied.
  [[nodiscard]] Timestamp watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  /// In-flight commit count (metrics).
  [[nodiscard]] std::size_t inflight() const;

  /// Routes this clock's blocking waits through `policy` (nullptr resets
  /// to plain condition-variable waits). Set before concurrent use.
  void set_wait_policy(WaitPolicy* policy) {
    policy_.store(policy, std::memory_order_release);
  }

 private:
  [[nodiscard]] bool covered_locked(Timestamp ts) const {
    return inflight_.empty() || *inflight_.begin() > ts;
  }

  std::atomic<Timestamp> counter_{0};
  std::atomic<std::uint64_t> offset_{0};
  std::atomic<std::uint64_t> stride_{1};
  std::atomic<Timestamp> watermark_{0};
  std::atomic<WaitPolicy*> policy_{nullptr};

  mutable std::mutex mu_;          // guards inflight_, last_commit_
  std::condition_variable cv_;     // signalled on finish_commit
  std::set<Timestamp> inflight_;   // allocated, not yet retired commit ts
  Timestamp last_commit_{0};       // largest commit ts ever allocated
};

}  // namespace argus
