// Lamport clock ([Lamport 78], cited in §4.3.3) used to generate the
// timestamps of the static and hybrid properties. Hybrid atomicity needs
// commit timestamps consistent with precedes at every object; assigning
// them from a monotone clock inside the commit critical section achieves
// that (§4.3.3: "this can be achieved ... by using a Lamport clock").
#pragma once

#include <atomic>

#include "common/ids.h"

namespace argus {

class LamportClock {
 public:
  LamportClock() = default;

  /// Next strictly increasing timestamp (starts at 1; 0 is reserved).
  Timestamp next() { return counter_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Advances the clock so future timestamps exceed `observed` (message
  /// receipt in Lamport's scheme; timestamp-skew injection in ours).
  void observe(Timestamp observed) {
    Timestamp cur = counter_.load(std::memory_order_relaxed);
    while (cur < observed && !counter_.compare_exchange_weak(
                                 cur, observed, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] Timestamp now() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<Timestamp> counter_{0};
};

}  // namespace argus
