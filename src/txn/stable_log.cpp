#include "txn/stable_log.h"

namespace argus {

void StableLog::append(CommitLogRecord record) {
  const std::scoped_lock lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<CommitLogRecord> StableLog::records() const {
  const std::scoped_lock lock(mu_);
  return records_;
}

std::size_t StableLog::size() const {
  const std::scoped_lock lock(mu_);
  return records_.size();
}

void StableLog::clear() {
  const std::scoped_lock lock(mu_);
  records_.clear();
}

}  // namespace argus
