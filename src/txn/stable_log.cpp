#include "txn/stable_log.h"

#include <algorithm>
#include <thread>

namespace argus {

void StableLog::insert_forced_locked(CommitLogRecord record) {
  // Committers almost always force in near-timestamp order, so the scan
  // from the back is O(1) amortized.
  auto pos = records_.end();
  while (pos != records_.begin() &&
         std::prev(pos)->commit_ts > record.commit_ts) {
    --pos;
  }
  records_.insert(pos, std::move(record));
}

void StableLog::append(CommitLogRecord record) {
  // A group of one still pays a full storage round trip — the same
  // simulated force latency the group-commit leader pays per batch.
  std::chrono::microseconds delay;
  {
    const std::scoped_lock lock(mu_);
    delay = force_delay_;
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  const std::scoped_lock lock(mu_);
  insert_forced_locked(std::move(record));
  ++stats_.forces;
  ++stats_.records_forced;
  stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, 1);
}

bool StableLog::append_group(CommitLogRecord record) {
  auto slot = std::make_shared<Slot>();
  slot->record = std::move(record);

  std::unique_lock lock(mu_);
  queue_.push_back(slot);

  while (slot->state == SlotState::kQueued) {
    if (!flush_active_) {
      // Become the flush leader: claim the entire pending queue and force
      // it as one batch.
      flush_active_ = true;
      std::vector<std::shared_ptr<Slot>> batch = std::move(queue_);
      queue_.clear();
      const std::uint64_t generation = generation_;

      if (force_delay_.count() > 0) {
        lock.unlock();
        std::this_thread::sleep_for(force_delay_);
        lock.lock();
      }
      cv_.wait(lock, [&] { return !hold_flushes_ || generation_ != generation; });

      flush_active_ = false;
      if (generation_ == generation) {
        // The force completed: the whole batch is stable at once.
        ++stats_.forces;
        stats_.records_forced += batch.size();
        stats_.max_batch = std::max(stats_.max_batch,
                                    static_cast<std::uint64_t>(batch.size()));
        for (auto& s : batch) {
          insert_forced_locked(std::move(s->record));
          s->state = SlotState::kForced;
        }
      } else {
        // drop_pending() hit mid-force: the batch never reached stable
        // storage.
        for (auto& s : batch) s->state = SlotState::kDropped;
      }
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  return slot->state == SlotState::kForced;
}

void StableLog::drop_pending() {
  {
    const std::scoped_lock lock(mu_);
    ++generation_;
    for (auto& slot : queue_) slot->state = SlotState::kDropped;
    queue_.clear();
  }
  cv_.notify_all();
}

void StableLog::set_force_delay(std::chrono::microseconds delay) {
  const std::scoped_lock lock(mu_);
  force_delay_ = delay;
}

void StableLog::hold_flushes() {
  const std::scoped_lock lock(mu_);
  hold_flushes_ = true;
}

void StableLog::release_flushes() {
  {
    const std::scoped_lock lock(mu_);
    hold_flushes_ = false;
  }
  cv_.notify_all();
}

StableLog::GroupStats StableLog::group_stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

std::vector<CommitLogRecord> StableLog::records() const {
  const std::scoped_lock lock(mu_);
  return records_;
}

std::size_t StableLog::size() const {
  const std::scoped_lock lock(mu_);
  return records_.size();
}

void StableLog::clear() {
  const std::scoped_lock lock(mu_);
  records_.clear();
}

}  // namespace argus
