#include "txn/stable_log.h"

#include <algorithm>
#include <thread>

#include "dsched/wait_policy.h"
#include "fault/fault.h"

namespace argus {

namespace {

/// Simulated storage latency: virtual time under a wait policy, wall
/// clock otherwise. Call with no lock held.
void sleep_for_us(WaitPolicy* policy, std::int64_t us) {
  if (us <= 0) return;
  if (policy != nullptr) {
    policy->sleep_us(WaitPoint::kLogSleep, static_cast<std::uint64_t>(us));
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

}  // namespace

void StableLog::insert_forced_locked(CommitLogRecord record) {
  // Committers almost always force in near-timestamp order, so the scan
  // from the back is O(1) amortized.
  auto pos = records_.end();
  while (pos != records_.begin() &&
         std::prev(pos)->commit_ts > record.commit_ts) {
    --pos;
  }
  records_.insert(pos, std::move(record));
}

void StableLog::append(CommitLogRecord record) {
  // A group of one still pays a full storage round trip — the same
  // simulated force latency the group-commit leader pays per batch.
  std::chrono::microseconds delay;
  {
    const std::scoped_lock lock(mu_);
    delay = force_delay_;
  }
  sleep_for_us(policy_.load(std::memory_order_acquire), delay.count());
  const std::scoped_lock lock(mu_);
  insert_forced_locked(std::move(record));
  ++stats_.forces;
  ++stats_.records_forced;
  stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, 1);
}

AppendResult StableLog::append_group(CommitLogRecord record) {
  auto slot = std::make_shared<Slot>();
  slot->record = std::move(record);

  std::unique_lock lock(mu_);
  queue_.push_back(slot);
  WaitPolicy* policy = policy_.load(std::memory_order_acquire);

  while (slot->state == SlotState::kQueued) {
    if (!flush_active_) {
      // Become the flush leader: claim the entire pending queue and force
      // it as one batch.
      flush_active_ = true;
      std::vector<std::shared_ptr<Slot>> batch = std::move(queue_);
      queue_.clear();
      const std::uint64_t generation = generation_;
      FaultInjector* fault = fault_.load(std::memory_order_acquire);

      // Attempt the force; fault injection may fail it transiently (we
      // retry with linear backoff), tear it (only a prefix stabilizes),
      // or stretch it (latency spike). A drop_pending() at any point
      // (generation bump) turns the whole attempt into a drop.
      bool dropped = false;
      bool give_up = false;
      std::size_t stable_prefix = batch.size();
      std::uint32_t attempts = 0;
      for (;;) {
        FaultInjector::ForceDecision decision;
        if (fault != nullptr) decision = fault->on_force(batch.size());
        const auto delay =
            force_delay_ + std::chrono::microseconds(decision.latency_us);
        if (delay.count() > 0) {
          lock.unlock();
          sleep_for_us(policy, delay.count());
          lock.lock();
        }
        if (policy == nullptr) {
          cv_.wait(lock,
                   [&] { return !hold_flushes_ || generation_ != generation; });
        } else {
          while (hold_flushes_ && generation_ == generation) {
            policy->wait_round(LaneHint{WaitPoint::kLogLeader}, &cv_, lock,
                               cv_, std::chrono::microseconds(1000));
          }
        }
        if (generation_ != generation) {
          dropped = true;
          break;
        }
        if (decision.fail) {
          ++stats_.force_failures;
          if (attempts >= decision.max_retries) {
            give_up = true;
            break;
          }
          ++attempts;
          const auto backoff =
              std::chrono::microseconds(decision.retry_backoff_us) * attempts;
          if (backoff.count() > 0) {
            lock.unlock();
            sleep_for_us(policy, backoff.count());
            lock.lock();
          }
          if (generation_ != generation) {
            dropped = true;
            break;
          }
          continue;
        }
        if (decision.torn && decision.stable_prefix < batch.size()) {
          stable_prefix = decision.stable_prefix;
        }
        break;
      }

      flush_active_ = false;
      if (dropped) {
        // drop_pending() hit mid-force: the batch never reached stable
        // storage.
        for (auto& s : batch) s->state = SlotState::kDropped;
      } else if (give_up) {
        // Retries exhausted: the force failed for good. Nothing in the
        // batch is stable; every committer aborts with an I/O error.
        for (auto& s : batch) s->state = SlotState::kFailed;
      } else {
        // The force completed, possibly torn: exactly records
        // [0, stable_prefix) are stable. The unstabilized tail goes back
        // to the head of the queue, still kQueued — the next leader
        // retries it, or drop_pending() fails it.
        ++stats_.forces;
        stats_.records_forced += stable_prefix;
        stats_.max_batch = std::max(stats_.max_batch,
                                    static_cast<std::uint64_t>(stable_prefix));
        for (std::size_t i = 0; i < stable_prefix; ++i) {
          insert_forced_locked(std::move(batch[i]->record));
          batch[i]->state = SlotState::kForced;
        }
        if (stable_prefix < batch.size()) {
          ++stats_.torn_forces;
          stats_.records_requeued += batch.size() - stable_prefix;
          queue_.insert(queue_.begin(),
                        batch.begin() + static_cast<std::ptrdiff_t>(stable_prefix),
                        batch.end());
        }
      }
      cv_.notify_all();
      if (policy != nullptr) policy->notify(&cv_);
    } else if (policy == nullptr) {
      cv_.wait(lock);
    } else {
      policy->wait_round(LaneHint{WaitPoint::kLogFollower}, &cv_, lock, cv_,
                         std::chrono::microseconds(1000));
    }
  }
  switch (slot->state) {
    case SlotState::kForced:
      return AppendResult::kForced;
    case SlotState::kFailed:
      return AppendResult::kIoError;
    default:
      return AppendResult::kDropped;
  }
}

AppendResult StableLog::force_prepared(CommitLogRecord record) {
  WaitPolicy* policy = policy_.load(std::memory_order_acquire);
  FaultInjector* fault = fault_.load(std::memory_order_acquire);
  std::chrono::microseconds base_delay;
  {
    const std::scoped_lock lock(mu_);
    base_delay = force_delay_;
  }
  std::uint32_t attempts = 0;
  for (;;) {
    FaultInjector::ForceDecision decision;
    if (fault != nullptr) decision = fault->on_force(1);
    const auto delay =
        base_delay + std::chrono::microseconds(decision.latency_us);
    sleep_for_us(policy, delay.count());
    if (decision.fail) {
      {
        const std::scoped_lock lock(mu_);
        ++stats_.force_failures;
      }
      if (attempts >= decision.max_retries) return AppendResult::kIoError;
      ++attempts;
      const auto backoff =
          std::chrono::microseconds(decision.retry_backoff_us) * attempts;
      sleep_for_us(policy, backoff.count());
      continue;
    }
    break;
  }
  const std::scoped_lock lock(mu_);
  ++stats_.forces;
  ++stats_.prepared_forces;
  prepared_.push_back(std::move(record));
  return AppendResult::kForced;
}

bool StableLog::promote_prepared(ActivityId txn, Timestamp commit_ts) {
  const std::scoped_lock lock(mu_);
  for (auto it = prepared_.begin(); it != prepared_.end(); ++it) {
    if (it->txn == txn) {
      CommitLogRecord record = std::move(*it);
      prepared_.erase(it);
      record.commit_ts = commit_ts;
      insert_forced_locked(std::move(record));
      ++stats_.records_forced;
      ++stats_.prepared_promoted;
      return true;
    }
  }
  return false;
}

bool StableLog::drop_prepared(ActivityId txn) {
  const std::scoped_lock lock(mu_);
  for (auto it = prepared_.begin(); it != prepared_.end(); ++it) {
    if (it->txn == txn) {
      prepared_.erase(it);
      ++stats_.prepared_dropped;
      return true;
    }
  }
  return false;
}

std::vector<CommitLogRecord> StableLog::prepared_records() const {
  const std::scoped_lock lock(mu_);
  return prepared_;
}

void StableLog::adopt_record(CommitLogRecord record) {
  const std::scoped_lock lock(mu_);
  insert_forced_locked(std::move(record));
  ++stats_.records_forced;
  ++stats_.records_adopted;
}

void StableLog::drop_pending() {
  {
    const std::scoped_lock lock(mu_);
    ++generation_;
    for (auto& slot : queue_) slot->state = SlotState::kDropped;
    queue_.clear();
  }
  cv_.notify_all();
  if (WaitPolicy* policy = policy_.load(std::memory_order_acquire)) {
    policy->notify(&cv_);
  }
}

void StableLog::set_force_delay(std::chrono::microseconds delay) {
  const std::scoped_lock lock(mu_);
  force_delay_ = delay;
}

void StableLog::hold_flushes() {
  const std::scoped_lock lock(mu_);
  hold_flushes_ = true;
}

void StableLog::release_flushes() {
  {
    const std::scoped_lock lock(mu_);
    hold_flushes_ = false;
  }
  cv_.notify_all();
  if (WaitPolicy* policy = policy_.load(std::memory_order_acquire)) {
    policy->notify(&cv_);
  }
}

StableLog::GroupStats StableLog::group_stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

std::vector<CommitLogRecord> StableLog::records() const {
  const std::scoped_lock lock(mu_);
  return records_;
}

std::optional<Timestamp> StableLog::committed_ts(ActivityId txn) const {
  const std::scoped_lock lock(mu_);
  for (const CommitLogRecord& r : records_) {
    if (r.txn == txn) return r.commit_ts;
  }
  return std::nullopt;
}

bool StableLog::remove_record(ActivityId txn) {
  const std::scoped_lock lock(mu_);
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->txn == txn) {
      records_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t StableLog::size() const {
  const std::scoped_lock lock(mu_);
  return records_.size();
}

void StableLog::clear() {
  const std::scoped_lock lock(mu_);
  records_.clear();
  prepared_.clear();
}

}  // namespace argus
