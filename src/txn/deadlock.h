// Waits-for-graph deadlock detection.
//
// Locking implementations of dynamic atomicity block, so they deadlock —
// the paper calls this out for long read-only activities (§4.2.3):
// "Because of the need to wait for locks, long read-only activities can be
// quite prone to deadlock." We detect cycles eagerly on each new wait
// edge and abort the youngest transaction in the cycle, which is what
// makes the E3/E4 abort-rate comparisons measurable.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "txn/transaction.h"

namespace argus {

class DeadlockDetector {
 public:
  DeadlockDetector() = default;

  /// Declares that `waiter` is blocked on each of `holders`. If that
  /// closes a cycle, picks the youngest (largest-id) transaction in the
  /// cycle, dooms it with AbortReason::kDeadlock, and returns it so the
  /// caller can wake it; returns nullptr when no deadlock arises.
  std::shared_ptr<Transaction> add_wait(
      const std::shared_ptr<Transaction>& waiter,
      const std::vector<std::shared_ptr<Transaction>>& holders);

  /// Removes all wait edges out of `waiter` (call when the wait ends,
  /// whatever the outcome).
  void clear_wait(ActivityId waiter);

  /// Removes a finished transaction entirely.
  void remove(ActivityId txn);

  /// Number of deadlocks resolved so far (for metrics).
  [[nodiscard]] std::uint64_t deadlocks_resolved() const;

 private:
  [[nodiscard]] bool reachable_locked(ActivityId from, ActivityId to) const;

  mutable std::mutex mu_;
  std::unordered_map<ActivityId, std::unordered_set<ActivityId>> edges_;
  std::unordered_map<ActivityId, std::weak_ptr<Transaction>> txns_;
  std::uint64_t resolved_{0};
};

}  // namespace argus
