#include "txn/transaction.h"

#include <algorithm>

namespace argus {

Transaction::Transaction(ActivityId id, TxnKind kind, Timestamp start_ts)
    : id_(id), kind_(kind), start_ts_(start_ts) {}

void Transaction::doom(AbortReason reason) {
  {
    const std::scoped_lock lock(mu_);
    if (doomed_.load(std::memory_order_relaxed)) return;  // first reason wins
    doom_reason_ = reason;
  }
  doomed_.store(true, std::memory_order_release);
}

AbortReason Transaction::doom_reason() const {
  const std::scoped_lock lock(mu_);
  return doom_reason_;
}

void Transaction::ensure_active() const {
  if (doomed()) throw TransactionAborted(id_, doom_reason());
  if (state() != TxnState::kActive) {
    throw UsageError("operation on finished transaction " + to_string(id_));
  }
}

void Transaction::touch(ManagedObject* o) {
  const std::scoped_lock lock(mu_);
  if (std::find(touched_.begin(), touched_.end(), o) == touched_.end()) {
    touched_.push_back(o);
  }
}

std::vector<ManagedObject*> Transaction::touched() const {
  const std::scoped_lock lock(mu_);
  return touched_;
}

void Transaction::note_access(ObjectId object, bool write) {
  (write ? writes_ : reads_).fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(mu_);
  auto& set = write ? write_set_ : read_set_;
  if (std::find(set.begin(), set.end(), object) == set.end()) {
    set.push_back(object);
  }
}

std::vector<ObjectId> Transaction::read_set() const {
  const std::scoped_lock lock(mu_);
  return read_set_;
}

std::vector<ObjectId> Transaction::write_set() const {
  const std::scoped_lock lock(mu_);
  return write_set_;
}

}  // namespace argus
