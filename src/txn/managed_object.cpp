#include "txn/managed_object.h"

// Interface anchor.

namespace argus {}  // namespace argus
