// TransactionManager: begins transactions, assigns timestamps, and drives
// two-phase commit and abort across the objects a transaction touched.
//
// Timestamps are drawn from a single Lamport clock *inside the commit
// critical section*; begin() draws start timestamps under the same mutex.
// This gives the two properties §4.3.3's online implementation needs:
// commit timestamps are consistent with precedes at every object, and a
// read-only activity with start timestamp t observes exactly the
// committed updates with timestamps below t (every such commit has fully
// applied before t was issued).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "txn/clock.h"
#include "txn/deadlock.h"
#include "txn/managed_object.h"
#include "txn/stable_log.h"
#include "txn/transaction.h"

namespace argus {

struct TxnStats {
  std::uint64_t begun{0};
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::map<AbortReason, std::uint64_t> aborted_by_reason;
};

class TransactionManager {
 public:
  TransactionManager() = default;
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Starts a transaction. The start timestamp is drawn under the commit
  /// mutex (see file comment).
  std::shared_ptr<Transaction> begin(TxnKind kind = TxnKind::kUpdate);

  /// Starts a transaction with a caller-chosen start timestamp (used by
  /// tests and the timestamp-skew experiments; the caller is responsible
  /// for uniqueness). Advances the clock past `start_ts`.
  std::shared_ptr<Transaction> begin_with_timestamp(TxnKind kind,
                                                    Timestamp start_ts);

  /// Two-phase commit across all touched objects. Throws
  /// TransactionAborted (after performing the abort) if the transaction
  /// was doomed or an object vetoed in prepare.
  void commit(const std::shared_ptr<Transaction>& t);

  /// Aborts at every touched object. Idempotent on finished transactions.
  void abort(const std::shared_ptr<Transaction>& t,
             AbortReason reason = AbortReason::kUser);

  [[nodiscard]] LamportClock& clock() { return clock_; }
  [[nodiscard]] DeadlockDetector& detector() { return detector_; }
  [[nodiscard]] StableLog& log() { return log_; }

  [[nodiscard]] TxnStats stats() const;

  /// Dooms every active transaction (crash path). Serialized against
  /// commits, so each transaction either committed fully or is doomed.
  void doom_all_active(AbortReason reason);

  [[nodiscard]] std::vector<std::shared_ptr<Transaction>>
  active_transactions() const;

 private:
  void finish_abort(const std::shared_ptr<Transaction>& t, AbortReason reason);

  std::atomic<std::uint64_t> next_id_{0};
  LamportClock clock_;
  DeadlockDetector detector_;
  StableLog log_;
  std::mutex commit_mu_;

  mutable std::mutex mu_;  // guards active_ and stats_
  std::unordered_map<ActivityId, std::weak_ptr<Transaction>> active_;
  TxnStats stats_;
};

}  // namespace argus
