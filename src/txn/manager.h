// TransactionManager: begins transactions, assigns timestamps, and drives
// commit and abort across the objects a transaction touched.
//
// The commit path is a staged pipeline (CommitMode::kPipelined, the
// default):
//
//   1. validate   — prepare() at every touched object; runs fully in
//                   parallel with other committers.
//   2. timestamp  — LamportClock::begin_commit(), a tiny critical section
//                   that allocates the commit timestamp and registers it
//                   in the clock's in-flight commit table.
//   3. group log  — StableLog::append_group(): concurrent committers
//                   coalesce into a single log force (write-ahead: the
//                   record is stable before anything applies).
//   4. apply+publish — objects apply in commit-timestamp order (the
//                   clock hands each committer its turn), then the commit
//                   publishes by retiring its table entry, which advances
//                   the monotone visibility watermark.
//
// §4.3.3's two invariants survive the loss of the seed's single global
// commit mutex: commit timestamps are consistent with precedes because
// they still come from one monotone clock drawn at commit; and a
// read-only activity with start timestamp t observes exactly the
// committed updates below t because begin(kReadOnly) waits until the
// watermark covers its (fresh, unique) timestamp — every commit below t
// has fully applied before the begin returns, and every later commit
// draws a larger timestamp. Update begins draw from the clock without
// any lock at all.
//
// CommitMode::kSingleMutex preserves the seed behaviour — every commit
// (and every begin) serialized under one mutex — as a baseline for
// bench_commit_pipeline and as a reference implementation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "txn/clock.h"
#include "txn/deadlock.h"
#include "txn/managed_object.h"
#include "txn/stable_log.h"
#include "txn/transaction.h"

namespace argus {

class FaultInjector;
class WaitPolicy;

struct TxnStats {
  std::uint64_t begun{0};
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::map<AbortReason, std::uint64_t> aborted_by_reason;
};

enum class CommitMode {
  kSingleMutex,  // seed behaviour: one global mutex around phase 2
  kPipelined,    // staged pipeline (default)
};

/// Cumulative commit-pipeline observability: per-stage time, group-commit
/// batch shape, and the watermark's lag behind the clock.
struct CommitPipelineStats {
  std::uint64_t commits{0};       // pipelined commits completed
  std::uint64_t validate_us{0};   // cumulative time in each stage
  std::uint64_t timestamp_us{0};
  std::uint64_t log_us{0};
  std::uint64_t apply_us{0};
  std::uint64_t log_forces{0};    // group-commit flushes
  std::uint64_t log_records{0};   // records forced
  std::uint64_t max_batch{0};     // largest single-flush batch
  Timestamp watermark{0};         // snapshot at collection time
  Timestamp clock_now{0};

  [[nodiscard]] double avg_batch() const {
    return log_forces == 0
               ? 0.0
               : static_cast<double>(log_records) /
                     static_cast<double>(log_forces);
  }
  [[nodiscard]] std::uint64_t watermark_lag() const {
    return clock_now >= watermark ? clock_now - watermark : 0;
  }
};

class TransactionManager {
 public:
  TransactionManager() = default;
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Starts a transaction. Update transactions draw their start timestamp
  /// from the clock lock-free; read-only transactions additionally wait
  /// until the visibility watermark covers the drawn timestamp (see file
  /// comment). In kSingleMutex mode every begin serializes with commits.
  std::shared_ptr<Transaction> begin(TxnKind kind = TxnKind::kUpdate);

  /// Starts a transaction with a caller-chosen start timestamp (used by
  /// tests and the timestamp-skew experiments; the caller is responsible
  /// for uniqueness). Advances the clock past `start_ts`. Read-only
  /// transactions wait for watermark coverage of `start_ts`.
  std::shared_ptr<Transaction> begin_with_timestamp(TxnKind kind,
                                                    Timestamp start_ts);

  /// Starts a transaction under a caller-assigned activity id — the
  /// multi-site coordinator gives every per-site participant of one
  /// global transaction the *same* id, so the merged cross-site history
  /// has one activity per global transaction with no remapping. With
  /// `start_ts`, the clock observes it (and read-only participants wait
  /// for watermark coverage, preserving §4.3.3's snapshot invariant at
  /// every site); without, a fresh local timestamp is drawn. Throws
  /// UsageError if `id` is already active here.
  std::shared_ptr<Transaction> begin_as(
      ActivityId id, TxnKind kind,
      std::optional<Timestamp> start_ts = std::nullopt);

  // --- 2PC participant role ---------------------------------------------
  //
  // The multi-site coordinator (dist/DistRuntime) drives one local
  // transaction per participating site through:
  //
  //   prepare_2pc      — validate at every touched object, register a
  //                      *proposed* commit timestamp in the clock's
  //                      in-flight table, and force a prepared record
  //                      (write-ahead). Returns the proposal, or nullopt
  //                      on a veto (the local transaction is then already
  //                      aborted — the coordinator must abort globally).
  //   commit_prepared  — the decision arrived: re-stamp the in-flight
  //                      entry to the coordinator's global timestamp
  //                      (max of all proposals), promote the prepared
  //                      record, and apply behind this site's watermark
  //                      exactly like a local commit.
  //   abort_prepared   — the decision was abort: discard the prepared
  //                      record and unwind.
  //   detach_prepared  — the site crashed while prepared: retire the
  //                      volatile state but leave the prepared record in
  //                      the (stable) log for recovery-time resolution.

  /// Phase 1. On success the transaction stays active, holding an
  /// in-flight clock entry at the returned proposed timestamp and a
  /// prepared log record; the caller must follow with exactly one of
  /// commit_prepared / abort_prepared / detach_prepared.
  std::optional<Timestamp> prepare_2pc(const std::shared_ptr<Transaction>& t);

  /// Phase 2, commit. `global_ts` is the coordinator's decision
  /// timestamp (>= the local proposal; equal for single-participant
  /// groups). Applies in timestamp order behind this site's watermark.
  void commit_prepared(const std::shared_ptr<Transaction>& t,
                       Timestamp global_ts);

  /// Phase 2, abort.
  void abort_prepared(const std::shared_ptr<Transaction>& t,
                      AbortReason reason = AbortReason::kUser);

  /// The participant site failed between prepare and decision delivery:
  /// release the clock entry and volatile state, keep the prepared
  /// record. Site recovery resolves it against the coordinator.
  void detach_prepared(const std::shared_ptr<Transaction>& t);

  /// Commits across all touched objects via the staged pipeline (or the
  /// single-mutex path, per commit_mode). Throws TransactionAborted
  /// (after performing the abort) if the transaction was doomed, an
  /// object vetoed in prepare, or a crash discarded its log record.
  void commit(const std::shared_ptr<Transaction>& t);

  /// Commits a read-only transaction without the pipeline: a hybrid
  /// read-only commit is pure event recording — no intentions to apply,
  /// no log record, no commit timestamp — so once the transaction is
  /// known not to be doomed this cannot fail. Cross-site coordinators
  /// rely on that: commit/abort events are tracked per activity across
  /// the merged history, so a read-only transaction spanning sites must
  /// commit everywhere or nowhere, with no participant able to fail
  /// between the first commit event and the last. Throws UsageError if
  /// the transaction is not read-only, TransactionAborted (after
  /// aborting) if it was doomed.
  void commit_read_only(const std::shared_ptr<Transaction>& t);

  /// Aborts at every touched object. Idempotent on finished transactions.
  void abort(const std::shared_ptr<Transaction>& t,
             AbortReason reason = AbortReason::kUser);

  void set_commit_mode(CommitMode mode) {
    mode_.store(mode, std::memory_order_release);
  }
  [[nodiscard]] CommitMode commit_mode() const {
    return mode_.load(std::memory_order_acquire);
  }

  [[nodiscard]] LamportClock& clock() { return clock_; }
  [[nodiscard]] DeadlockDetector& detector() { return detector_; }
  [[nodiscard]] StableLog& log() { return log_; }

  /// Wires (or clears, with nullptr) deterministic fault injection
  /// through the commit pipeline's named crash points, the stable log's
  /// force path, and the objects' blocking waits (which consult this via
  /// their TransactionManager). The injector must outlive the manager or
  /// be cleared first. Normally called through
  /// Runtime::set_fault_injector().
  void set_fault_injector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
    log_.set_fault_injector(injector);
  }
  [[nodiscard]] FaultInjector* fault_injector() const {
    return fault_.load(std::memory_order_acquire);
  }

  /// Wires (or clears, with nullptr) the deterministic-scheduling hook
  /// through the manager's scheduling points, the clock's turn/coverage
  /// waits, and the stable log's leader/follower handoff. Objects consult
  /// it via their TransactionManager. Normally set once by a Runtime
  /// constructed in SchedMode::kDeterministic, before any activity runs.
  void set_wait_policy(WaitPolicy* policy) {
    wait_policy_.store(policy, std::memory_order_release);
    clock_.set_wait_policy(policy);
    log_.set_wait_policy(policy);
  }
  [[nodiscard]] WaitPolicy* wait_policy() const {
    return wait_policy_.load(std::memory_order_acquire);
  }

  [[nodiscard]] TxnStats stats() const;
  [[nodiscard]] CommitPipelineStats pipeline_stats() const;

  /// Dooms every active transaction and discards un-forced group-commit
  /// records (crash path): each transaction either committed fully — its
  /// record was forced, so its apply completes and recovery replays it —
  /// or is doomed and unwinds.
  void doom_all_active(AbortReason reason);

  [[nodiscard]] std::vector<std::shared_ptr<Transaction>>
  active_transactions() const;

 private:
  void commit_single_mutex(const std::shared_ptr<Transaction>& t,
                           const std::vector<ManagedObject*>& objects);
  void commit_pipelined(const std::shared_ptr<Transaction>& t,
                        const std::vector<ManagedObject*>& objects);
  CommitLogRecord build_record(const Transaction& t,
                               const std::vector<ManagedObject*>& objects,
                               Timestamp ts) const;
  void finish_commit_bookkeeping(const std::shared_ptr<Transaction>& t,
                                 const std::vector<ManagedObject*>& objects);
  void finish_abort(const std::shared_ptr<Transaction>& t, AbortReason reason);

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<CommitMode> mode_{CommitMode::kPipelined};
  std::atomic<FaultInjector*> fault_{nullptr};
  std::atomic<WaitPolicy*> wait_policy_{nullptr};
  LamportClock clock_;
  DeadlockDetector detector_;
  StableLog log_;
  std::mutex commit_mu_;  // kSingleMutex mode only

  // Pipeline stage counters (cumulative microseconds).
  std::atomic<std::uint64_t> pipelined_commits_{0};
  std::atomic<std::uint64_t> validate_us_{0};
  std::atomic<std::uint64_t> timestamp_us_{0};
  std::atomic<std::uint64_t> log_us_{0};
  std::atomic<std::uint64_t> apply_us_{0};

  mutable std::mutex mu_;  // guards active_ and stats_
  std::unordered_map<ActivityId, std::weak_ptr<Transaction>> active_;
  TxnStats stats_;
};

}  // namespace argus
