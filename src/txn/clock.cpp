#include "txn/clock.h"

// LamportClock is header-only; this translation unit exists to give the
// target a consistent one-cpp-per-header layout.

namespace argus {}  // namespace argus
