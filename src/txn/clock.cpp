#include "txn/clock.h"

#include "dsched/wait_policy.h"

namespace argus {

Timestamp LamportClock::begin_commit() {
  const std::scoped_lock lock(mu_);
  const Timestamp ts = next();
  inflight_.insert(ts);
  if (ts > last_commit_) last_commit_ = ts;
  return ts;
}

void LamportClock::wait_for_turn(Timestamp ts) {
  std::unique_lock lock(mu_);
  WaitPolicy* policy = policy_.load(std::memory_order_acquire);
  if (policy == nullptr) {
    cv_.wait(lock, [&] {
      return !inflight_.empty() && *inflight_.begin() == ts;
    });
    return;
  }
  while (!(!inflight_.empty() && *inflight_.begin() == ts)) {
    policy->wait_round(LaneHint{WaitPoint::kClockTurn}, &cv_, lock, cv_,
                       std::chrono::microseconds(1000));
  }
}

void LamportClock::finish_commit(Timestamp ts) {
  {
    const std::scoped_lock lock(mu_);
    inflight_.erase(ts);
    // Everything below the smallest remaining in-flight commit (or below
    // the largest timestamp ever handed to a committer, when none remain)
    // has fully applied or aborted.
    const Timestamp candidate =
        inflight_.empty() ? last_commit_ : *inflight_.begin() - 1;
    if (candidate > watermark_.load(std::memory_order_relaxed)) {
      watermark_.store(candidate, std::memory_order_release);
    }
  }
  cv_.notify_all();
  if (WaitPolicy* policy = policy_.load(std::memory_order_acquire)) {
    policy->notify(&cv_);
  }
}

void LamportClock::restamp_commit(Timestamp from, Timestamp to) {
  {
    const std::scoped_lock lock(mu_);
    inflight_.erase(from);
    inflight_.insert(to);
    if (to > last_commit_) last_commit_ = to;
  }
  observe(to);
  // Erasing `from` may have made another in-flight timestamp the minimum.
  cv_.notify_all();
  if (WaitPolicy* policy = policy_.load(std::memory_order_acquire)) {
    policy->notify(&cv_);
  }
}

void LamportClock::observe_committed(Timestamp ts) {
  observe(ts);
  {
    const std::scoped_lock lock(mu_);
    if (ts > last_commit_) last_commit_ = ts;
    if (covered_locked(ts) && ts > watermark_.load(std::memory_order_relaxed)) {
      watermark_.store(ts, std::memory_order_release);
    }
  }
  cv_.notify_all();
  if (WaitPolicy* policy = policy_.load(std::memory_order_acquire)) {
    policy->notify(&cv_);
  }
}

Timestamp LamportClock::read_only_begin() {
  std::unique_lock lock(mu_);
  const Timestamp ts = next();
  WaitPolicy* policy = policy_.load(std::memory_order_acquire);
  if (policy == nullptr) {
    cv_.wait(lock, [&] { return covered_locked(ts); });
    return ts;
  }
  while (!covered_locked(ts)) {
    policy->wait_round(LaneHint{WaitPoint::kClockCovered}, &cv_, lock, cv_,
                       std::chrono::microseconds(1000));
  }
  return ts;
}

void LamportClock::wait_covered(Timestamp ts) {
  std::unique_lock lock(mu_);
  WaitPolicy* policy = policy_.load(std::memory_order_acquire);
  if (policy == nullptr) {
    cv_.wait(lock, [&] { return covered_locked(ts); });
    return;
  }
  while (!covered_locked(ts)) {
    policy->wait_round(LaneHint{WaitPoint::kClockCovered}, &cv_, lock, cv_,
                       std::chrono::microseconds(1000));
  }
}

std::size_t LamportClock::inflight() const {
  const std::scoped_lock lock(mu_);
  return inflight_.size();
}

}  // namespace argus
