// ManagedObject: the interface every runtime atomic object implements.
//
// This is the dotted-line interface of Figure 5-1 as the paper redraws it:
// there is no scheduler between transactions and storage — each object
// receives invocations directly, decides online whether/when to respond
// (blocking, or aborting the caller), and participates in commit, abort
// and recovery. Synchronization and recovery code is thereby encapsulated
// within each data object, the modularity the paper argues for (§1).
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/operation.h"
#include "common/value.h"
#include "txn/stable_log.h"
#include "txn/transaction.h"

namespace argus {

class ManagedObject {
 public:
  virtual ~ManagedObject() = default;

  [[nodiscard]] virtual ObjectId id() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Executes `op` on behalf of `txn`. May block until the operation can
  /// be performed consistently with the object's local atomicity
  /// property; throws TransactionAborted if the transaction is doomed
  /// while waiting or must be aborted by the protocol (e.g. static
  /// atomicity's timestamp-order aborts).
  virtual Value invoke(Transaction& txn, const Operation& op) = 0;

  /// Commit pipeline, validate stage: check that txn can commit here.
  /// Runs concurrently with other transactions' validate/log/apply
  /// stages — no global lock is held.
  virtual void prepare(Transaction& txn) = 0;

  /// True when committing `txn` here requires a final validation at the
  /// pipeline's serialization point (OCC/MVCC validate-at-commit). When
  /// any touched object answers true the manager takes the commit turn
  /// *before* forcing the log record, so validate_serial runs with no
  /// concurrent apply anywhere — commit order, validation order and
  /// serialization order coincide.
  [[nodiscard]] virtual bool needs_serial_validation(
      const Transaction& txn) const {
    (void)txn;
    return false;
  }

  /// Called with txn's commit turn held (every earlier commit fully
  /// applied, record not yet forced): the object's last chance to veto by
  /// throwing TransactionAborted (first-committer-wins). Must not block.
  virtual void validate_serial(Transaction& txn) { (void)txn; }

  /// Apply stage: make txn's effects permanent. `commit_ts` is the commit
  /// timestamp assigned by the manager (hybrid atomicity's timestamp
  /// event); plain protocols may ignore it. The manager calls applies in
  /// commit-timestamp order (its record already forced to the stable
  /// log), so an object's committed log grows timestamp-sorted; the
  /// object must not block here.
  virtual void commit(Transaction& txn, Timestamp commit_ts) = 0;

  /// Discards txn's effects (recoverability: the all-or-nothing half of
  /// atomicity, handled online via intentions lists).
  virtual void abort(Transaction& txn) = 0;

  /// The redo intentions txn would commit here, for write-ahead logging.
  [[nodiscard]] virtual std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const = 0;

  /// Crash simulation: drop all volatile state (committed state included —
  /// it will be rebuilt from the stable log via replay()).
  virtual void reset_for_recovery() = 0;

  /// Recovery: re-apply one committed operation, in stable-log order,
  /// with its original timestamps.
  virtual void replay(const ReplayContext& ctx, const LoggedOp& logged) = 0;

  /// Wakes every transaction blocked at this object (used when a waiter
  /// elsewhere is doomed, or after crash()).
  virtual void wake_all() = 0;
};

}  // namespace argus
