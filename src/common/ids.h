// Strong identifier types used throughout the library.
//
// The paper's model names two kinds of participants: *activities* (the
// paper's word for transactions) and *objects*. We use strong typedefs so
// the two id spaces cannot be confused, and a Timestamp type for the
// initiation/commit timestamps of the static and hybrid properties.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace argus {

/// Identifies an activity (transaction). Ids are assigned by the runtime
/// (or chosen by hand when constructing histories in tests) and are unique
/// within a history.
struct ActivityId {
  std::uint64_t value{0};

  friend constexpr auto operator<=>(ActivityId, ActivityId) = default;
};

/// Identifies an object (an instance of an abstract data type).
struct ObjectId {
  std::uint64_t value{0};

  friend constexpr auto operator<=>(ObjectId, ObjectId) = default;
};

/// Timestamps are drawn from a countable well-ordered set; the paper uses
/// the natural numbers and so do we. Zero is reserved for "no timestamp".
using Timestamp = std::uint64_t;

inline constexpr Timestamp kNoTimestamp = 0;

/// Renders "a3"-style names used in the paper's traces (a, b, c, ...).
std::string to_string(ActivityId id);
std::string to_string(ObjectId id);

}  // namespace argus

template <>
struct std::hash<argus::ActivityId> {
  std::size_t operator()(argus::ActivityId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<argus::ObjectId> {
  std::size_t operator()(argus::ObjectId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
