// Deterministic pseudo-random number generation for tests and workloads.
//
// We avoid std::mt19937's size and seed-sensitivity; SplitMix64 is tiny,
// fast, passes BigCrush when used as below, and makes every property test
// reproducible from a single printed seed.
#pragma once

#include <cstdint>

namespace argus {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace argus
