// Value: the result/argument domain for operations in the model.
//
// The paper writes events like <insert(3),x,a> and <true,x,a>; arguments
// and results are drawn from an uninterpreted value domain. We use a small
// closed variant: unit (for "ok"-style results that carry no data),
// booleans, 64-bit integers and strings. This is enough for every ADT in
// the paper and keeps histories cheap to copy and compare.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace argus {

/// Unit type for results that carry no data; prints as "ok" which matches
/// the paper's <ok,x,a> termination events.
struct Unit {
  friend constexpr auto operator<=>(const Unit&, const Unit&) = default;
};

class Value {
 public:
  using Rep = std::variant<Unit, bool, std::int64_t, std::string>;

  Value() : rep_(Unit{}) {}
  Value(Unit u) : rep_(u) {}                          // NOLINT(runtime/explicit)
  Value(bool b) : rep_(b) {}                          // NOLINT(runtime/explicit)
  Value(std::int64_t i) : rep_(i) {}                  // NOLINT(runtime/explicit)
  Value(int i) : rep_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::string s) : rep_(std::move(s)) {}        // NOLINT(runtime/explicit)
  Value(const char* s) : rep_(std::string(s)) {}      // NOLINT(runtime/explicit)

  [[nodiscard]] bool is_unit() const { return std::holds_alternative<Unit>(rep_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(rep_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(rep_);
  }

  /// Accessors throw std::bad_variant_access on kind mismatch; use the
  /// is_* predicates first when the kind is not statically known.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(rep_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(rep_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(rep_);
  }

  [[nodiscard]] const Rep& rep() const { return rep_; }

  friend bool operator==(const Value&, const Value&) = default;
  friend auto operator<=>(const Value& a, const Value& b) {
    return a.rep_ <=> b.rep_;
  }

 private:
  Rep rep_;
};

/// Canonical "ok" result used by mutators that return nothing.
inline Value ok() { return Value{Unit{}}; }

/// Renders a value the way the paper prints it: ok, true, false, 3, "s".
std::string to_string(const Value& v);

std::string to_string(const std::vector<Value>& vs);

}  // namespace argus
