#include "common/errors.h"

namespace argus {

std::string to_string(AbortReason r) {
  switch (r) {
    case AbortReason::kUser:
      return "user";
    case AbortReason::kDeadlock:
      return "deadlock";
    case AbortReason::kTimestampOrder:
      return "timestamp-order";
    case AbortReason::kWaitTimeout:
      return "wait-timeout";
    case AbortReason::kValidation:
      return "validation";
    case AbortReason::kCrash:
      return "crash";
    case AbortReason::kIoError:
      return "io-error";
    case AbortReason::kUnavailable:
      return "unavailable";
    case AbortReason::kSystem:
      return "system";
  }
  return "unknown";
}

TransactionAborted::TransactionAborted(ActivityId activity, AbortReason reason)
    : std::runtime_error("transaction " + to_string(activity) +
                         " aborted: " + to_string(reason)),
      activity_(activity),
      reason_(reason) {}

}  // namespace argus
