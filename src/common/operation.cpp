#include "common/operation.h"

namespace argus {

Operation op(std::string name) { return Operation{std::move(name), {}}; }

Operation op(std::string name, Value a0) {
  return Operation{std::move(name), {std::move(a0)}};
}

Operation op(std::string name, Value a0, Value a1) {
  return Operation{std::move(name), {std::move(a0), std::move(a1)}};
}

Operation op(std::string name, Value a0, Value a1, Value a2) {
  return Operation{std::move(name), {std::move(a0), std::move(a1), std::move(a2)}};
}

std::string to_string(const Operation& o) {
  if (o.args.empty()) return o.name;
  return o.name + "(" + to_string(o.args) + ")";
}

}  // namespace argus
