#include "common/value.h"

#include <sstream>

#include "common/ids.h"

namespace argus {

std::string to_string(const Value& v) {
  struct Visitor {
    std::string operator()(Unit) const { return "ok"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, v.rep());
}

std::string to_string(const std::vector<Value>& vs) {
  std::ostringstream out;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) out << ",";
    out << to_string(vs[i]);
  }
  return out.str();
}

std::string to_string(ActivityId id) {
  // Small ids print as the paper's activity letters a, b, c, ...; larger
  // ones fall back to a numbered form.
  if (id.value < 26) return std::string(1, static_cast<char>('a' + id.value));
  return "t" + std::to_string(id.value);
}

std::string to_string(ObjectId id) {
  // Objects print as x, y, z, then numbered.
  if (id.value < 3) return std::string(1, static_cast<char>('x' + id.value));
  return "obj" + std::to_string(id.value);
}

}  // namespace argus
