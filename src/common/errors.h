// Error types shared across the runtime protocols.
//
// Aborts are part of the model (they are events, not failures of the
// implementation), but from the point of view of application code running
// inside a transaction an abort is an exceptional exit: the transaction's
// stack must unwind past arbitrary user code. We model that with the
// TransactionAborted exception; the runtime guarantees that once it is
// thrown the transaction's effects are discarded at every object.
#pragma once

#include <stdexcept>
#include <string>

#include "common/ids.h"

namespace argus {

/// Why a transaction was aborted. Benchmarks report these per-reason so we
/// can reproduce the paper's qualitative claims (e.g. "readers never abort
/// under static atomicity", "long audits are deadlock-prone under
/// locking").
enum class AbortReason {
  kUser,               // application called abort()
  kDeadlock,           // chosen as deadlock victim
  kTimestampOrder,     // static atomicity: op would invalidate a later-ts op
  kWaitTimeout,        // gave up waiting for a lock / version
  kValidation,         // OCC/MVCC: commit-time validation lost to an
                       // earlier committer (first-committer-wins)
  kCrash,              // runtime crash discarded the active transaction
  kIoError,            // stable-log force failed after exhausting retries
  kUnavailable,        // multi-site: no live replica to read, or a
                       // participant site failed before the 2PC decision
  kSystem,             // internal shutdown
};

[[nodiscard]] std::string to_string(AbortReason r);

class TransactionAborted : public std::runtime_error {
 public:
  TransactionAborted(ActivityId activity, AbortReason reason);

  [[nodiscard]] ActivityId activity() const { return activity_; }
  [[nodiscard]] AbortReason reason() const { return reason_; }

 private:
  ActivityId activity_;
  AbortReason reason_;
};

/// Thrown on API misuse (operating on a finished transaction, committing a
/// transaction that is waiting, unknown object, ...). These indicate bugs
/// in the caller, not conditions a correct program should handle.
class UsageError : public std::logic_error {
 public:
  explicit UsageError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace argus
