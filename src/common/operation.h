// Operation: the invocation half of the paper's events.
//
// An operation is a named procedure plus argument values, e.g.
// insert(3), member(7), withdraw(4), enqueue(1), dequeue. The meaning of
// an operation is given entirely by the sequential specification of the
// object it is invoked on (src/spec); the history layer treats operations
// as uninterpreted symbols.
#pragma once

#include <compare>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"

namespace argus {

struct Operation {
  std::string name;
  std::vector<Value> args;

  friend bool operator==(const Operation&, const Operation&) = default;
  friend auto operator<=>(const Operation&, const Operation&) = default;
};

/// Convenience factory: op("insert", 3), op("dequeue").
Operation op(std::string name);
Operation op(std::string name, Value a0);
Operation op(std::string name, Value a0, Value a1);
Operation op(std::string name, Value a0, Value a1, Value a2);

/// Renders "insert(3)" / "dequeue" as in the paper.
std::string to_string(const Operation& o);

}  // namespace argus
