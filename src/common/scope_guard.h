// Minimal scope guard (run a callable on scope exit), used to keep
// cleanup paths exception-safe without try/catch boilerplate.
#pragma once

#include <utility>

namespace argus {

template <typename F>
class ScopeGuard {
 public:
  explicit ScopeGuard(F f) : f_(std::move(f)) {}
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;
  ~ScopeGuard() { f_(); }

 private:
  F f_;
};

template <typename F>
[[nodiscard]] ScopeGuard<F> on_scope_exit(F f) {
  return ScopeGuard<F>(std::move(f));
}

}  // namespace argus
