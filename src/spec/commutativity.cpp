#include "spec/commutativity.h"

#include <tuple>
#include <vector>

namespace argus {

namespace {

struct Triple {
  Value rp;
  Value rq;
  std::unique_ptr<SpecState> final_state;
};

std::vector<Triple> run(const SpecState& s, const Operation& first,
                        const Operation& second, bool swap_results) {
  std::vector<Triple> out;
  for (auto& o1 : s.step(first)) {
    for (auto& o2 : o1.state->step(second)) {
      if (swap_results) {
        out.push_back(Triple{o2.result, o1.result, std::move(o2.state)});
      } else {
        out.push_back(Triple{o1.result, o2.result, std::move(o2.state)});
      }
    }
  }
  return out;
}

bool subset(const std::vector<Triple>& xs, const std::vector<Triple>& ys) {
  for (const auto& x : xs) {
    bool found = false;
    for (const auto& y : ys) {
      if (x.rp == y.rp && x.rq == y.rq &&
          x.final_state->equals(*y.final_state)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool forward_commutes(const SpecState& s, const Operation& p,
                      const Operation& q) {
  const auto pq = run(s, p, q, /*swap_results=*/false);
  const auto qp = run(s, q, p, /*swap_results=*/true);
  if (pq.empty() || qp.empty()) return false;
  return subset(pq, qp) && subset(qp, pq);
}

}  // namespace argus
