#include "spec/spec.h"

// SpecState and SequentialSpec are pure interfaces; this translation unit
// anchors their vtables.

namespace argus {}  // namespace argus
