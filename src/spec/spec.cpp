#include "spec/spec.h"

#include <memory>
#include <vector>

#include "spec/commutativity.h"

namespace argus {

namespace {

bool known(const std::vector<std::unique_ptr<SpecState>>& states,
           const SpecState& s) {
  for (const auto& known_state : states) {
    if (known_state->equals(s)) return true;
  }
  return false;
}

}  // namespace

bool SequentialSpec::state_dependent_commutes(const Operation& p,
                                              const Operation& q) const {
  if (static_commutes(p, q)) return false;
  // Breadth-first sample of states reachable from the initial state by
  // applying p and q, probing forward commutativity at each. Bounded so a
  // prolific nondeterministic spec cannot blow the probe up; results are
  // memoized by ConflictRelation (check/conflict.h), so the cost is paid
  // once per distinct operation pair.
  constexpr std::size_t kMaxStates = 32;
  std::vector<std::unique_ptr<SpecState>> sampled;
  sampled.push_back(initial_state());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    if (forward_commutes(*sampled[i], p, q)) return true;
    for (const Operation* o : {&p, &q}) {
      for (auto& next : sampled[i]->step(*o)) {
        if (sampled.size() >= kMaxStates) break;
        if (!known(sampled, *next.state)) {
          sampled.push_back(std::move(next.state));
        }
      }
    }
  }
  return false;
}

}  // namespace argus
