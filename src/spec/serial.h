// Serial acceptability: does an object's specification permit a given
// serial event sequence?
//
// This implements the paper's "acceptable" judgement (§3) for a single
// object: a serial history at x is acceptable iff the recorded
// (operation, result) pairs can be replayed through the sequential
// specification from its initial state. Nondeterministic specifications
// are handled by NFA-style subset simulation: we carry the set of states
// the object could be in; a response prunes it to the successors matching
// the recorded result, and acceptance fails when the set empties.
#pragma once

#include <memory>
#include <vector>

#include "hist/history.h"
#include "spec/spec.h"

namespace argus {

/// Replays h (a history at one object; commit/abort/initiate events are
/// ignored) through `spec`. Returns true iff every recorded response is
/// permitted. Pending invocations without a response impose no
/// constraint. h need not be serial in the multi-activity sense — this
/// checks the *object order* of responses, which is exactly what is needed
/// to test a candidate serial sequence.
[[nodiscard]] bool serial_acceptable(const SequentialSpec& spec,
                                     const History& h);

/// As above but starting from an explicit state (used by checkers that
/// replay suffixes).
[[nodiscard]] bool serial_acceptable_from(const SpecState& initial,
                                          const History& h);

/// The set of states reachable by replaying h; empty iff unacceptable.
[[nodiscard]] std::vector<std::unique_ptr<SpecState>> replay_states(
    const SpecState& initial, const History& h);

}  // namespace argus
