// Sequential specifications of objects.
//
// The paper assumes "an explicit description of the acceptable sequences
// for each object" (§3) and stresses that specifications must admit
// *nondeterministic* operations (§1). We represent a specification as a
// state machine whose step function returns the set of possible
// (result, successor-state) outcomes for an operation:
//
//   * one outcome   — deterministic operation,
//   * many outcomes — nondeterministic operation (e.g. Bag::remove),
//   * no outcomes   — the operation is not enabled in this state (a serial
//                     sequence performing it there is unacceptable).
//
// The set of acceptable serial event sequences of the paper is exactly the
// set of sequences replayable through this machine (see serial.h).
//
// Two layers are provided: a virtual interface (SpecState/SequentialSpec)
// used by the generic checkers, and a compile-time Adt concept
// (adt_spec.h) used by the runtime protocol templates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/operation.h"
#include "common/value.h"

namespace argus {

class SpecState {
 public:
  struct Next {
    Value result;
    std::unique_ptr<SpecState> state;
  };

  virtual ~SpecState() = default;

  [[nodiscard]] virtual std::unique_ptr<SpecState> clone() const = 0;

  /// All permitted outcomes of `op` in this state; empty means the
  /// operation is not enabled here.
  [[nodiscard]] virtual std::vector<Next> step(const Operation& op) const = 0;

  [[nodiscard]] virtual bool equals(const SpecState& other) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

class SequentialSpec {
 public:
  virtual ~SequentialSpec() = default;

  [[nodiscard]] virtual std::unique_ptr<SpecState> initial_state() const = 0;

  [[nodiscard]] virtual std::string type_name() const = 0;

  /// True iff `op` can never change the state (in any state). Used to
  /// classify read-only activities (§4.3) and for read/write baselines.
  [[nodiscard]] virtual bool is_read_only(const Operation& op) const = 0;

  /// The *scheduler-model* conflict relation: true iff p and q commute in
  /// every state. This is the state-independent information available to
  /// the locking protocols of [Bernstein 81], [Korth 81] and
  /// [Schwarz & Spector 82]; the expressiveness gap between this and the
  /// state-dependent test (commutativity.h) is the subject of §5.1.
  [[nodiscard]] virtual bool static_commutes(const Operation& p,
                                             const Operation& q) const = 0;

  /// True iff p and q do not commute in every state but do forward-commute
  /// in *some* state — the data-dependent fragment (§5.1) that a static
  /// conflict table cannot express (two withdraws when the balance covers
  /// both, two bag removes claiming distinct instances, ...). The
  /// vector-clock fast path (check/vc_atomicity.h) treats such pairs as
  /// conflicts but classifies the suspicion they raise as escalatable
  /// rather than a definite violation.
  ///
  /// The default implementation probes forward_commutes over a bounded
  /// sample of states reachable from the initial state via p and q. The
  /// probe can under-approximate (states neither p nor q can build are
  /// never sampled); ADTs whose data-dependence lives in such states
  /// override it (e.g. the bag). Under-approximation is safe for the fast
  /// path — it only shifts a pair from SUSPICIOUS to the conservative
  /// conflict class, never the other way.
  [[nodiscard]] virtual bool state_dependent_commutes(const Operation& p,
                                                      const Operation& q) const;
};

}  // namespace argus
