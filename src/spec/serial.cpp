#include "spec/serial.h"

#include <unordered_map>

#include "common/errors.h"

namespace argus {

namespace {

/// Deduplicates a candidate set by pairwise equality; candidate sets stay
/// tiny for our ADTs (nondeterminism fans out by at most the bag size) but
/// duplicates would otherwise accumulate across steps.
void dedupe(std::vector<std::unique_ptr<SpecState>>& states) {
  std::vector<std::unique_ptr<SpecState>> unique;
  for (auto& s : states) {
    bool dup = false;
    for (const auto& u : unique) {
      if (u->equals(*s)) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(std::move(s));
  }
  states = std::move(unique);
}

}  // namespace

std::vector<std::unique_ptr<SpecState>> replay_states(const SpecState& initial,
                                                      const History& h) {
  std::vector<std::unique_ptr<SpecState>> candidates;
  candidates.push_back(initial.clone());

  // Each activity has at most one pending invocation (well-formedness);
  // the transition happens at the response, which carries the result that
  // prunes nondeterminism.
  std::unordered_map<ActivityId, Operation> pending;

  for (const Event& e : h.events()) {
    switch (e.kind) {
      case EventKind::kInvoke:
        pending[e.activity] = e.operation;
        break;
      case EventKind::kRespond: {
        auto it = pending.find(e.activity);
        if (it == pending.end()) {
          // A response with no pending invocation cannot be replayed.
          return {};
        }
        const Operation op = it->second;
        pending.erase(it);
        std::vector<std::unique_ptr<SpecState>> next;
        for (const auto& s : candidates) {
          for (auto& outcome : s->step(op)) {
            if (outcome.result == e.result) {
              next.push_back(std::move(outcome.state));
            }
          }
        }
        dedupe(next);
        if (next.empty()) return {};
        candidates = std::move(next);
        break;
      }
      case EventKind::kCommit:
      case EventKind::kAbort:
      case EventKind::kInitiate:
        break;  // no effect on the sequential state
    }
  }
  return candidates;
}

bool serial_acceptable_from(const SpecState& initial, const History& h) {
  return !replay_states(initial, h).empty();
}

bool serial_acceptable(const SequentialSpec& spec, const History& h) {
  const auto init = spec.initial_state();
  return serial_acceptable_from(*init, h);
}

}  // namespace argus
