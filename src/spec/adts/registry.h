// Name-based registry over the ADT library, for generic tooling (random
// history generation, benchmarks, the history-checker example).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "spec/spec.h"

namespace argus {

/// Creates a fresh specification by ADT name ("int_set", "counter",
/// "bank_account", "fifo_queue", "kv_store", "bag", "rw_register").
/// Throws UsageError for unknown names.
[[nodiscard]] std::unique_ptr<SequentialSpec> make_spec(
    const std::string& type_name);

/// All registered ADT names.
[[nodiscard]] std::vector<std::string> known_specs();

}  // namespace argus
