#include "spec/adts/counter.h"

namespace argus {

Outcomes<CounterAdt::State> CounterAdt::step(const State& s,
                                             const Operation& operation) {
  if (operation.name == "increment" && operation.args.empty()) {
    return {{Value{s + 1}, s + 1}};
  }
  return {};
}

bool CounterAdt::is_read_only(const Operation&) { return false; }

bool CounterAdt::static_commutes(const Operation&, const Operation&) {
  // Two increments never commute: each returns its serial position.
  return false;
}

}  // namespace argus
