// Counter — the object used in the paper's optimality proof (§4.1).
//
// A single operation, increment, which increments the state and returns
// the resulting value; the serial sequences are thus exactly
// <increment,y,a1> <1,y,a1> <increment,y,a2> <2,y,a2> ... as printed in
// the paper. Because the returned value exposes the exact position of the
// increment in the serial order, a counter history is serializable in at
// most one order of its committed activities — which is what the
// optimality construction exploits.
#pragma once

#include <cstdint>
#include <string>

#include "spec/adt_spec.h"

namespace argus {

struct CounterAdt {
  using State = std::int64_t;

  static State initial() { return 0; }
  static Outcomes<State> step(const State& s, const Operation& op);
  static bool is_read_only(const Operation& op);
  static bool static_commutes(const Operation& p, const Operation& q);
  static std::string type_name() { return "counter"; }
  static std::string describe(const State& s) { return std::to_string(s); }
};

namespace counter {
inline Operation increment() { return op("increment"); }
}  // namespace counter

}  // namespace argus
