#include "spec/adts/bag.h"

#include <numeric>
#include <sstream>

namespace argus {

Outcomes<BagAdt::State> BagAdt::step(const State& s,
                                     const Operation& operation) {
  if (operation.name == "insert" && operation.args.size() == 1 &&
      operation.args[0].is_int()) {
    State next = s;
    ++next[operation.args[0].as_int()];
    return {{ok(), std::move(next)}};
  }
  if (operation.name == "remove" && operation.args.empty()) {
    // One outcome per distinct element: the essence of nondeterminism.
    Outcomes<State> out;
    for (const auto& [elem, count] : s) {
      State next = s;
      if (count == 1) {
        next.erase(elem);
      } else {
        --next[elem];
      }
      out.push_back({Value{elem}, std::move(next)});
    }
    return out;  // empty bag => disabled
  }
  if (operation.name == "size" && operation.args.empty()) {
    const std::int64_t n = std::accumulate(
        s.begin(), s.end(), std::int64_t{0},
        [](std::int64_t acc, const auto& kv) { return acc + kv.second; });
    return {{Value{n}, s}};
  }
  return {};
}

bool BagAdt::is_read_only(const Operation& op) { return op.name == "size"; }

bool BagAdt::static_commutes(const Operation& p, const Operation& q) {
  // Inserts always commute (multiset union is commutative and both return
  // ok). Everything involving remove or size conflicts in some state.
  if (p.name == "insert" && q.name == "insert") return true;
  return p.name == "size" && q.name == "size";
}

bool BagAdt::state_dependent_commutes(const Operation& p,
                                      const Operation& q) {
  if (static_commutes(p, q)) return false;
  // size observes the exact multiset, so nothing that changes it ever
  // commutes with it; every other non-static pair involves remove, whose
  // nondeterminism makes the pair commute in sufficiently full states.
  return p.name != "size" && q.name != "size";
}

std::string BagAdt::describe(const State& s) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [elem, count] : s) {
    for (std::int64_t i = 0; i < count; ++i) {
      if (!first) out << ",";
      first = false;
      out << elem;
    }
  }
  out << "}";
  return out.str();
}

}  // namespace argus
