// Bank account — the §5.1 example separating data-dependent concurrency
// control from the scheduler model.
//
// Operations: deposit(n) -> ok, withdraw(n) -> ok | "insufficient_funds",
// balance -> n. Withdraw is total: it terminates abnormally (result
// "insufficient_funds") rather than being disabled when the balance is too
// small. Two withdraws commute exactly when the balance covers both — a
// state-dependent fact invisible to static conflict tables.
#pragma once

#include <cstdint>
#include <string>

#include "spec/adt_spec.h"

namespace argus {

struct BankAccountAdt {
  using State = std::int64_t;  // current balance; never negative

  static State initial() { return 0; }
  static Outcomes<State> step(const State& s, const Operation& op);
  static bool is_read_only(const Operation& op);
  static bool static_commutes(const Operation& p, const Operation& q);
  static std::string type_name() { return "bank_account"; }
  static std::string describe(const State& s) {
    return "balance=" + std::to_string(s);
  }
};

inline const char* kInsufficientFunds = "insufficient_funds";

namespace account {
inline Operation deposit(std::int64_t n) { return op("deposit", n); }
inline Operation withdraw(std::int64_t n) { return op("withdraw", n); }
inline Operation balance() { return op("balance"); }
}  // namespace account

}  // namespace argus
