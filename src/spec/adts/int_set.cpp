#include "spec/adts/int_set.h"

#include <sstream>

namespace argus {

namespace {

bool unary_int(const Operation& op) {
  return op.args.size() == 1 && op.args[0].is_int();
}

}  // namespace

Outcomes<IntSetAdt::State> IntSetAdt::step(const State& s,
                                           const Operation& operation) {
  if (!unary_int(operation)) return {};
  const std::int64_t n = operation.args[0].as_int();
  if (operation.name == "insert") {
    State next = s;
    next.insert(n);
    return {{ok(), std::move(next)}};
  }
  if (operation.name == "delete") {
    State next = s;
    next.erase(n);
    return {{ok(), std::move(next)}};
  }
  if (operation.name == "member") {
    return {{Value{s.contains(n)}, s}};
  }
  return {};
}

bool IntSetAdt::is_read_only(const Operation& op) {
  return op.name == "member";
}

bool IntSetAdt::static_commutes(const Operation& p, const Operation& q) {
  if (!unary_int(p) || !unary_int(q)) return false;
  const std::int64_t np = p.args[0].as_int();
  const std::int64_t nq = q.args[0].as_int();
  // Operations on distinct elements always commute.
  if (np != nq) return true;
  // Same element: idempotent pairs commute; observation vs. mutation and
  // insert vs. delete do not (there is a state where results or final
  // states differ).
  if (p.name == q.name && (p.name == "insert" || p.name == "delete")) {
    return true;
  }
  return p.name == "member" && q.name == "member";
}

std::string IntSetAdt::describe(const State& s) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (std::int64_t n : s) {
    if (!first) out << ",";
    first = false;
    out << n;
  }
  out << "}";
  return out.str();
}

}  // namespace argus
