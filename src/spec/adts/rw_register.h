// Read/write register — the degenerate ADT underlying classical
// concurrency control. With only read and write, data-dependent protocols
// collapse onto read/write locking and timestamp ordering; the register is
// the baseline that shows where the paper's generality pays off.
//
// Operations: read -> v, write(v) -> ok.
#pragma once

#include <cstdint>
#include <string>

#include "spec/adt_spec.h"

namespace argus {

struct RWRegisterAdt {
  using State = std::int64_t;

  static State initial() { return 0; }
  static Outcomes<State> step(const State& s, const Operation& op);
  static bool is_read_only(const Operation& op);
  static bool static_commutes(const Operation& p, const Operation& q);
  static std::string type_name() { return "rw_register"; }
  static std::string describe(const State& s) { return std::to_string(s); }
};

namespace rwreg {
inline Operation read() { return op("read"); }
inline Operation write(std::int64_t v) { return op("write", v); }
}  // namespace rwreg

}  // namespace argus
