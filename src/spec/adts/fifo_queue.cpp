#include "spec/adts/fifo_queue.h"

#include <sstream>

namespace argus {

Outcomes<FifoQueueAdt::State> FifoQueueAdt::step(const State& s,
                                                 const Operation& operation) {
  if (operation.name == "enqueue" && operation.args.size() == 1 &&
      operation.args[0].is_int()) {
    State next = s;
    next.push_back(operation.args[0].as_int());
    return {{ok(), std::move(next)}};
  }
  if (operation.name == "dequeue" && operation.args.empty()) {
    if (s.empty()) return {};  // disabled: a serial dequeue on empty is unacceptable
    State next(s.begin() + 1, s.end());
    return {{Value{s.front()}, std::move(next)}};
  }
  if (operation.name == "size" && operation.args.empty()) {
    return {{Value{static_cast<std::int64_t>(s.size())}, s}};
  }
  return {};
}

bool FifoQueueAdt::is_read_only(const Operation& op) {
  return op.name == "size";
}

bool FifoQueueAdt::static_commutes(const Operation& p, const Operation& q) {
  if (p.name == "enqueue" && q.name == "enqueue") {
    // Equal values leave the queue in the same state either way; distinct
    // values fix an observable order (§5.1's "enqueue(1) does not commute
    // with enqueue(2)").
    return p.args == q.args;
  }
  return p.name == "size" && q.name == "size";
}

std::string FifoQueueAdt::describe(const State& s) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out << ",";
    out << s[i];
  }
  out << "]";
  return out.str();
}

}  // namespace argus
