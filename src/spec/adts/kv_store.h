// Key-value store — the workhorse substrate ADT for multi-object
// workloads (directories, bank databases keyed by account id, ...).
//
// Operations: put(k,v) -> ok, get(k) -> v | "none", remove(k) -> ok,
// contains(k) -> bool. Keys and values are 64-bit integers.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "spec/adt_spec.h"

namespace argus {

struct KVStoreAdt {
  using State = std::map<std::int64_t, std::int64_t>;

  static State initial() { return {}; }
  static Outcomes<State> step(const State& s, const Operation& op);
  static bool is_read_only(const Operation& op);
  static bool static_commutes(const Operation& p, const Operation& q);
  static std::string type_name() { return "kv_store"; }
  static std::string describe(const State& s);
};

namespace kv {
inline Operation put(std::int64_t k, std::int64_t v) { return op("put", k, v); }
inline Operation get(std::int64_t k) { return op("get", k); }
inline Operation remove(std::int64_t k) { return op("remove", k); }
inline Operation contains(std::int64_t k) { return op("contains", k); }
}  // namespace kv

}  // namespace argus
