// First-in-first-out queue — the §5.1 example showing that the scheduler
// model rules out intuitively atomic executions.
//
// Operations: enqueue(n) -> ok, dequeue -> n (disabled on an empty queue),
// size -> n (a read-only extension used by the workloads; the paper's
// queue has only enqueue and dequeue).
//
// enqueue(1) does not commute with enqueue(2), but enqueue(1) *does*
// commute with enqueue(1) — an argument-sensitive fact the generic
// forward-commutativity oracle discovers and that makes the paper's §5.1
// interleaved-producers history dynamic atomic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/adt_spec.h"

namespace argus {

struct FifoQueueAdt {
  using State = std::vector<std::int64_t>;  // front is index 0

  static State initial() { return {}; }
  static Outcomes<State> step(const State& s, const Operation& op);
  static bool is_read_only(const Operation& op);
  static bool static_commutes(const Operation& p, const Operation& q);
  static std::string type_name() { return "fifo_queue"; }
  static std::string describe(const State& s);
};

namespace fifo {
inline Operation enqueue(std::int64_t n) { return op("enqueue", n); }
inline Operation dequeue() { return op("dequeue"); }
inline Operation size() { return op("size"); }
}  // namespace fifo

}  // namespace argus
