#include "spec/adts/rw_register.h"

namespace argus {

Outcomes<RWRegisterAdt::State> RWRegisterAdt::step(const State& s,
                                                   const Operation& operation) {
  if (operation.name == "read" && operation.args.empty()) {
    return {{Value{s}, s}};
  }
  if (operation.name == "write" && operation.args.size() == 1 &&
      operation.args[0].is_int()) {
    return {{ok(), operation.args[0].as_int()}};
  }
  return {};
}

bool RWRegisterAdt::is_read_only(const Operation& op) {
  return op.name == "read";
}

bool RWRegisterAdt::static_commutes(const Operation& p, const Operation& q) {
  if (p.name == "read" && q.name == "read") return true;
  if (p.name == "write" && q.name == "write") return p.args == q.args;
  return false;
}

}  // namespace argus
