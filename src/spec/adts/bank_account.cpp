#include "spec/adts/bank_account.h"

namespace argus {

Outcomes<BankAccountAdt::State> BankAccountAdt::step(
    const State& s, const Operation& operation) {
  if (operation.name == "balance" && operation.args.empty()) {
    return {{Value{s}, s}};
  }
  if (operation.args.size() != 1 || !operation.args[0].is_int()) return {};
  const std::int64_t n = operation.args[0].as_int();
  if (n < 0) return {};  // negative amounts are not meaningful
  if (operation.name == "deposit") {
    return {{ok(), s + n}};
  }
  if (operation.name == "withdraw") {
    if (s >= n) return {{ok(), s - n}};
    return {{Value{kInsufficientFunds}, s}};
  }
  return {};
}

bool BankAccountAdt::is_read_only(const Operation& op) {
  return op.name == "balance";
}

bool BankAccountAdt::static_commutes(const Operation& p, const Operation& q) {
  // The state-independent truth (what a scheduler-model conflict table can
  // say): deposits commute with deposits, balance reads commute with each
  // other, and nothing else commutes in *every* state — two withdraws
  // conflict (the balance may cover one but not both), and deposits
  // conflict with withdraws (a deposit may tip a withdraw from abnormal to
  // normal termination). §5.1 spells out both cases.
  if (p.name == "deposit" && q.name == "deposit") return true;
  return p.name == "balance" && q.name == "balance";
}

}  // namespace argus
