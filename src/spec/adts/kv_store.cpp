#include "spec/adts/kv_store.h"

#include <sstream>

namespace argus {

namespace {

bool has_int_key(const Operation& op, std::size_t arity) {
  if (op.args.size() != arity) return false;
  for (const Value& v : op.args) {
    if (!v.is_int()) return false;
  }
  return true;
}

}  // namespace

Outcomes<KVStoreAdt::State> KVStoreAdt::step(const State& s,
                                             const Operation& operation) {
  if (operation.name == "put" && has_int_key(operation, 2)) {
    State next = s;
    next[operation.args[0].as_int()] = operation.args[1].as_int();
    return {{ok(), std::move(next)}};
  }
  if (!has_int_key(operation, 1)) return {};
  const std::int64_t k = operation.args[0].as_int();
  if (operation.name == "get") {
    auto it = s.find(k);
    if (it == s.end()) return {{Value{"none"}, s}};
    return {{Value{it->second}, s}};
  }
  if (operation.name == "remove") {
    State next = s;
    next.erase(k);
    return {{ok(), std::move(next)}};
  }
  if (operation.name == "contains") {
    return {{Value{s.contains(k)}, s}};
  }
  return {};
}

bool KVStoreAdt::is_read_only(const Operation& op) {
  return op.name == "get" || op.name == "contains";
}

bool KVStoreAdt::static_commutes(const Operation& p, const Operation& q) {
  if (p.args.empty() || q.args.empty() || !p.args[0].is_int() ||
      !q.args[0].is_int()) {
    return false;
  }
  // Distinct keys never interact.
  if (p.args[0].as_int() != q.args[0].as_int()) return true;
  // Same key: reads commute with reads; remove/remove and identical
  // put/put are idempotent pairs.
  if (is_read_only(p) && is_read_only(q)) return true;
  if (p.name == "remove" && q.name == "remove") return true;
  if (p.name == "put" && q.name == "put") return p.args == q.args;
  return false;
}

std::string KVStoreAdt::describe(const State& s) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [k, v] : s) {
    if (!first) out << ",";
    first = false;
    out << k << ":" << v;
  }
  out << "}";
  return out.str();
}

}  // namespace argus
