#include "spec/adts/registry.h"

#include "common/errors.h"
#include "spec/adts/bag.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/counter.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "spec/adts/kv_store.h"
#include "spec/adts/rw_register.h"

namespace argus {

std::unique_ptr<SequentialSpec> make_spec(const std::string& type_name) {
  if (type_name == IntSetAdt::type_name()) {
    return std::make_unique<AdtSpec<IntSetAdt>>();
  }
  if (type_name == CounterAdt::type_name()) {
    return std::make_unique<AdtSpec<CounterAdt>>();
  }
  if (type_name == BankAccountAdt::type_name()) {
    return std::make_unique<AdtSpec<BankAccountAdt>>();
  }
  if (type_name == FifoQueueAdt::type_name()) {
    return std::make_unique<AdtSpec<FifoQueueAdt>>();
  }
  if (type_name == KVStoreAdt::type_name()) {
    return std::make_unique<AdtSpec<KVStoreAdt>>();
  }
  if (type_name == BagAdt::type_name()) {
    return std::make_unique<AdtSpec<BagAdt>>();
  }
  if (type_name == RWRegisterAdt::type_name()) {
    return std::make_unique<AdtSpec<RWRegisterAdt>>();
  }
  throw UsageError("unknown ADT: " + type_name);
}

std::vector<std::string> known_specs() {
  return {IntSetAdt::type_name(),    CounterAdt::type_name(),
          BankAccountAdt::type_name(), FifoQueueAdt::type_name(),
          KVStoreAdt::type_name(),   BagAdt::type_name(),
          RWRegisterAdt::type_name()};
}

}  // namespace argus
