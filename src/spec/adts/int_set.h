// Integer set — the paper's running example (§2, §3, §4).
//
// Operations: insert(n) -> ok, delete(n) -> ok, member(n) -> bool.
// Insert and delete are idempotent set operations, which is what makes
// insert/insert and delete/delete commute even on equal arguments.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "spec/adt_spec.h"

namespace argus {

struct IntSetAdt {
  using State = std::set<std::int64_t>;

  static State initial() { return {}; }
  static Outcomes<State> step(const State& s, const Operation& op);
  static bool is_read_only(const Operation& op);
  static bool static_commutes(const Operation& p, const Operation& q);
  static std::string type_name() { return "int_set"; }
  static std::string describe(const State& s);
};

/// Operation factories matching the paper's notation.
namespace intset {
inline Operation insert(std::int64_t n) { return op("insert", n); }
inline Operation del(std::int64_t n) { return op("delete", n); }
inline Operation member(std::int64_t n) { return op("member", n); }
}  // namespace intset

}  // namespace argus
