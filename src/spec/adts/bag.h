// Bag (multiset) with a nondeterministic remove — exercising the paper's
// requirement that specifications admit nondeterministic operations (§1:
// "their specifications require operations to be functions, precluding the
// description of non-deterministic operations").
//
// Operations: insert(n) -> ok, remove -> n for *any* n currently in the
// bag (disabled when empty), size -> n (read-only).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "spec/adt_spec.h"

namespace argus {

struct BagAdt {
  // Element -> multiplicity; a map keeps State ordered and comparable.
  using State = std::map<std::int64_t, std::int64_t>;

  static State initial() { return {}; }
  static Outcomes<State> step(const State& s, const Operation& op);
  static bool is_read_only(const Operation& op);
  static bool static_commutes(const Operation& p, const Operation& q);
  /// The generic reachability probe cannot discover the bag's
  /// data-dependent pairs (remove alone cannot build a populated bag), so
  /// the fragment is pinned here: remove/remove commutes at multiplicity
  /// >= 2, insert(n)/remove at states holding an n.
  static bool state_dependent_commutes(const Operation& p,
                                       const Operation& q);
  static std::string type_name() { return "bag"; }
  static std::string describe(const State& s);
};

namespace bag {
inline Operation insert(std::int64_t n) { return op("insert", n); }
inline Operation remove() { return op("remove"); }
inline Operation size() { return op("size"); }
}  // namespace bag

}  // namespace argus
