// State-dependent forward commutativity.
//
// This is the information a *data-dependent* protocol exploits and a
// scheduler-model protocol cannot (§5.1): whether two operations commute
// may depend on the state in which they run. Two withdraws commute when
// the balance covers both; two enqueues commute when they enqueue equal
// values; and so on.
//
// Definition used here (forward commutativity at state s): both operations
// are enabled at s, and the set of observable triples
// (result-of-p, result-of-q, final state) reachable by running p then q
// equals the set reachable by running q then p. For deterministic
// specifications this reduces to "same two results and same final state in
// either order" — exactly the informal test the paper applies to the bank
// account in §5.1.
#pragma once

#include <tuple>
#include <vector>

#include "common/operation.h"
#include "spec/adt_spec.h"
#include "spec/spec.h"

namespace argus {

/// Virtual-interface version, used by generic tooling.
[[nodiscard]] bool forward_commutes(const SpecState& s, const Operation& p,
                                    const Operation& q);

/// Compile-time version used by the runtime protocols. If the ADT
/// provides an exact predicate
///     static bool state_commutes(const State&, const Operation&, const Operation&);
/// it is used directly; otherwise commutativity is decided by brute-force
/// replay of both orders through Adt::step.
template <AdtTraits A>
[[nodiscard]] bool forward_commutes(const typename A::State& s,
                                    const Operation& p, const Operation& q) {
  if constexpr (requires(const typename A::State& st) {
                  { A::state_commutes(st, p, q) } -> std::same_as<bool>;
                }) {
    return A::state_commutes(s, p, q);
  } else {
    // Collect (rp, rq, final) triples for both interleavings.
    using Triple = std::tuple<Value, Value, typename A::State>;
    auto run = [&](const Operation& first, const Operation& second,
                   bool swap_results) {
      std::vector<Triple> out;
      for (const auto& [r1, s1] : A::step(s, first)) {
        for (const auto& [r2, s2] : A::step(s1, second)) {
          if (swap_results) {
            out.emplace_back(r2, r1, s2);
          } else {
            out.emplace_back(r1, r2, s2);
          }
        }
      }
      return out;
    };
    auto pq = run(p, q, /*swap_results=*/false);
    auto qp = run(q, p, /*swap_results=*/true);
    if (pq.empty() || qp.empty()) return false;
    auto subset = [](const std::vector<Triple>& xs,
                     const std::vector<Triple>& ys) {
      for (const auto& x : xs) {
        bool found = false;
        for (const auto& y : ys) {
          if (std::get<0>(x) == std::get<0>(y) &&
              std::get<1>(x) == std::get<1>(y) &&
              std::get<2>(x) == std::get<2>(y)) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    };
    return subset(pq, qp) && subset(qp, pq);
  }
}

}  // namespace argus
