// Compile-time ADT definitions and the adapter onto the virtual spec
// interface.
//
// An Adt is a stateless trait struct describing one abstract data type:
//
//   struct MyAdt {
//     using State = ...;                       // regular value type
//     static State initial();
//     static Outcomes<State> step(const State&, const Operation&);
//     static bool is_read_only(const Operation&);
//     static bool static_commutes(const Operation&, const Operation&);
//     static std::string type_name();
//     static std::string describe(const State&);
//   };
//
// The runtime protocol templates (src/core) operate directly on Adt to
// avoid virtual dispatch and state cloning through pointers; the checker
// layer uses AdtSpec<Adt> to reach the same semantics through the virtual
// interface.
#pragma once

#include <concepts>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "spec/spec.h"

namespace argus {

template <typename State>
using Outcomes = std::vector<std::pair<Value, State>>;

template <typename A>
concept AdtTraits = requires(const typename A::State& s, const Operation& o) {
  { A::initial() } -> std::same_as<typename A::State>;
  { A::step(s, o) } -> std::same_as<Outcomes<typename A::State>>;
  { A::is_read_only(o) } -> std::same_as<bool>;
  { A::static_commutes(o, o) } -> std::same_as<bool>;
  { A::type_name() } -> std::same_as<std::string>;
  { A::describe(s) } -> std::same_as<std::string>;
  requires std::equality_comparable<typename A::State>;
};

template <AdtTraits A>
class AdtState final : public SpecState {
 public:
  explicit AdtState(typename A::State s) : state_(std::move(s)) {}

  [[nodiscard]] std::unique_ptr<SpecState> clone() const override {
    return std::make_unique<AdtState>(state_);
  }

  [[nodiscard]] std::vector<Next> step(const Operation& op) const override {
    std::vector<Next> out;
    for (auto& [result, next] : A::step(state_, op)) {
      out.push_back(Next{result, std::make_unique<AdtState>(std::move(next))});
    }
    return out;
  }

  [[nodiscard]] bool equals(const SpecState& other) const override {
    const auto* o = dynamic_cast<const AdtState*>(&other);
    return o != nullptr && o->state_ == state_;
  }

  [[nodiscard]] std::string describe() const override {
    return A::describe(state_);
  }

  [[nodiscard]] const typename A::State& state() const { return state_; }

 private:
  typename A::State state_;
};

template <AdtTraits A>
class AdtSpec final : public SequentialSpec {
 public:
  [[nodiscard]] std::unique_ptr<SpecState> initial_state() const override {
    return std::make_unique<AdtState<A>>(A::initial());
  }

  [[nodiscard]] std::string type_name() const override {
    return A::type_name();
  }

  [[nodiscard]] bool is_read_only(const Operation& op) const override {
    return A::is_read_only(op);
  }

  [[nodiscard]] bool static_commutes(const Operation& p,
                                     const Operation& q) const override {
    return A::static_commutes(p, q);
  }

  /// ADTs may pin the data-dependent fragment exactly with
  ///     static bool state_dependent_commutes(const Operation&,
  ///                                          const Operation&);
  /// otherwise the base class probes forward_commutes over sampled
  /// reachable states (see spec.cpp).
  [[nodiscard]] bool state_dependent_commutes(
      const Operation& p, const Operation& q) const override {
    if constexpr (requires {
                    { A::state_dependent_commutes(p, q) } ->
                        std::same_as<bool>;
                  }) {
      return A::state_dependent_commutes(p, q);
    } else {
      return SequentialSpec::state_dependent_commutes(p, q);
    }
  }
};

}  // namespace argus
