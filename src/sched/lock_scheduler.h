// LockSchedulerObject<Adt>: the locking protocols of the scheduler model.
//
// Two conflict rules, selectable at construction:
//
//   kReadWrite           — strict two-phase locking with read/write locks
//                          ([Eswaren 76]): two operations conflict unless
//                          both are read-only.
//   kStaticCommutativity — type-specific locking ([Schwarz & Spector 82],
//                          [Korth 81], [Bernstein 81]): two operations
//                          conflict unless they commute in *every* state
//                          (the state-independent tables of
//                          Adt::static_commutes).
//
// An invocation waits until it conflicts with no uncommitted operation of
// another transaction (locks are held to end-of-transaction: strictness
// gives recoverability), then executes against the single-version storage.
// These are the §5.1 comparators: correct, but strictly less concurrent
// than the dynamic-atomic objects of src/core — bench_account and
// bench_queue measure the gap, and tests/paper_traces_test.cpp checks the
// paper's specific interleavings are rejected here and admitted there.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/object_base.h"
#include "sched/storage.h"
#include "spec/adt_spec.h"

namespace argus {

enum class LockRule {
  kReadWrite,
  kStaticCommutativity,
};

template <AdtTraits A>
class LockSchedulerObject final : public ObjectBase {
 public:
  LockSchedulerObject(ObjectId oid, std::string name, TransactionManager& tm,
                      EventSink* recorder, LockRule rule)
      : ObjectBase(oid, std::move(name), tm, recorder), rule_(rule) {}

  Value invoke(Transaction& txn, const Operation& op) override {
    txn.ensure_active();
    if (txn.read_only() && !A::is_read_only(op)) {
      throw UsageError("read-only transaction invoked mutator " +
                       to_string(op) + " on " + name());
    }
    txn.touch(this);
    sched_point(op);

    std::unique_lock lock(mu_);
    record(argus::invoke(id(), txn.id(), op));

    owners_[txn.id()] = txn.weak_from_this();

    std::optional<Value> result;
    await(
        lock, txn,
        [&] {
          if (conflicts_with_held(txn.id(), op)) return false;
          // Lock granted: submit to the storage module. A disabled
          // operation (dequeue on empty) keeps waiting.
          result = storage_.apply(txn.id(), op);
          return result.has_value();
        },
        [&] { return blockers(txn.id(), op); });

    record(respond(id(), txn.id(), *result));
    return *result;
  }

  void prepare(Transaction& txn) override { txn.ensure_active(); }

  void commit(Transaction& txn, Timestamp /*commit_ts*/) override {
    const std::scoped_lock lock(mu_);
    storage_.commit(txn.id());
    owners_.erase(txn.id());
    record(argus::commit(id(), txn.id()));
    notify_object();
  }

  void abort(Transaction& txn) override {
    const std::scoped_lock lock(mu_);
    storage_.abort(txn.id());
    owners_.erase(txn.id());
    record(argus::abort(id(), txn.id()));
    notify_object();
  }

  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override {
    const std::scoped_lock lock(mu_);
    return storage_.ops_of(txn.id());
  }

  void reset_for_recovery() override {
    const std::scoped_lock lock(mu_);
    storage_.reset();
    owners_.clear();
    notify_object();
  }

  void replay(const ReplayContext&, const LoggedOp& logged) override {
    const std::scoped_lock lock(mu_);
    storage_.replay(logged);
  }

  [[nodiscard]] typename A::State committed_state() const {
    const std::scoped_lock lock(mu_);
    return storage_.current();
  }

 private:
  [[nodiscard]] bool conflict(const Operation& p, const Operation& q) const {
    if (rule_ == LockRule::kReadWrite) {
      return !(A::is_read_only(p) && A::is_read_only(q));
    }
    return !A::static_commutes(p, q);
  }

  [[nodiscard]] bool conflicts_with_held(ActivityId self,
                                         const Operation& op) const {
    for (const auto& [holder, held] : storage_.held_by_others(self)) {
      if (conflict(op, held)) return true;
    }
    return false;
  }

  std::vector<std::shared_ptr<Transaction>> blockers(ActivityId self,
                                                     const Operation& op) {
    std::vector<std::shared_ptr<Transaction>> out;
    for (const auto& [holder, held] : storage_.held_by_others(self)) {
      if (!conflict(op, held)) continue;
      auto it = owners_.find(holder);
      if (it == owners_.end()) continue;
      if (auto t = it->second.lock(); t && t->active()) {
        out.push_back(std::move(t));
      }
    }
    return out;
  }

  const LockRule rule_;
  SingleVersionStorage<A> storage_;                        // guarded by mu_
  std::map<ActivityId, std::weak_ptr<Transaction>> owners_;  // guarded by mu_
};

}  // namespace argus
