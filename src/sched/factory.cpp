#include "sched/factory.h"

namespace argus {

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kDynamic:
      return "dynamic";
    case Protocol::kStatic:
      return "static";
    case Protocol::kHybrid:
      return "hybrid";
    case Protocol::kTwoPhase:
      return "2pl";
    case Protocol::kCommutativity:
      return "comm-lock";
    case Protocol::kTimestamp:
      return "timestamp";
    case Protocol::kOcc:
      return "occ";
    case Protocol::kMvcc:
      return "mvcc";
  }
  return "?";
}

Protocol to_protocol(CCMode mode) {
  switch (mode) {
    case CCMode::kDynamic:
      return Protocol::kDynamic;
    case CCMode::kStatic:
      return Protocol::kStatic;
    case CCMode::kHybrid:
      return Protocol::kHybrid;
    case CCMode::kOcc:
      return Protocol::kOcc;
    case CCMode::kMvcc:
      return Protocol::kMvcc;
  }
  throw UsageError("unknown cc mode");
}

bool supports_snapshot_reads(Protocol p) {
  return p == Protocol::kHybrid || p == Protocol::kStatic ||
         p == Protocol::kMvcc;
}

}  // namespace argus
