#include "sched/factory.h"

namespace argus {

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kDynamic:
      return "dynamic";
    case Protocol::kStatic:
      return "static";
    case Protocol::kHybrid:
      return "hybrid";
    case Protocol::kTwoPhase:
      return "2pl";
    case Protocol::kCommutativity:
      return "comm-lock";
    case Protocol::kTimestamp:
      return "timestamp";
  }
  return "?";
}

bool supports_snapshot_reads(Protocol p) {
  return p == Protocol::kHybrid || p == Protocol::kStatic;
}

}  // namespace argus
