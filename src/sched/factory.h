// Uniform object construction across all six protocols, so workloads and
// benchmarks can sweep "same ADT, same workload, different concurrency
// control" — the comparison structure of every experiment in
// EXPERIMENTS.md.
#pragma once

#include <memory>
#include <string>

#include "core/runtime.h"
#include "sched/lock_scheduler.h"
#include "sched/timestamp_scheduler.h"

namespace argus {

enum class Protocol {
  kDynamic,         // §4.1 — intentions lists + data-dependent admission
  kStatic,          // §4.2 — generalized multi-version timestamp ordering
  kHybrid,          // §4.3 — dynamic updates + commit-time timestamps
  kTwoPhase,        // baseline: strict 2PL, read/write locks
  kCommutativity,   // baseline: static commutativity locking
  kTimestamp,       // baseline: strict single-version timestamp ordering
  kOcc,             // foil: validate-at-commit, first-committer-wins
  kMvcc,            // foil: OCC updates + version log, snapshot reads
};

[[nodiscard]] std::string to_string(Protocol p);

/// The protocol a CCMode drives objects under (the executor's dispatch).
[[nodiscard]] Protocol to_protocol(CCMode mode);

/// Creates an object of the given ADT under the given protocol, registers
/// it (and its spec) with the runtime, and returns it.
template <AdtTraits A>
std::shared_ptr<ManagedObject> make_object(Runtime& rt, Protocol protocol,
                                           const std::string& name) {
  switch (protocol) {
    case Protocol::kDynamic:
      return rt.create_dynamic<A>(name);
    case Protocol::kStatic:
      return rt.create_static<A>(name);
    case Protocol::kHybrid:
      return rt.create_hybrid<A>(name);
    case Protocol::kTwoPhase:
    case Protocol::kCommutativity: {
      const LockRule rule = protocol == Protocol::kTwoPhase
                                ? LockRule::kReadWrite
                                : LockRule::kStaticCommutativity;
      auto obj = std::make_shared<LockSchedulerObject<A>>(
          rt.allocate_object_id(), name, rt.tm(), rt.recorder(), rule);
      rt.adopt(obj, std::make_shared<AdtSpec<A>>());
      return obj;
    }
    case Protocol::kTimestamp: {
      auto obj = std::make_shared<TimestampSchedulerObject<A>>(
          rt.allocate_object_id(), name, rt.tm(), rt.recorder());
      rt.adopt(obj, std::make_shared<AdtSpec<A>>());
      return obj;
    }
    case Protocol::kOcc:
      return rt.create_occ<A>(name);
    case Protocol::kMvcc:
      return rt.create_mvcc<A>(name);
  }
  throw UsageError("unknown protocol");
}

/// Mode-parameterized construction for the TxnExecutor's CC-mode sweep:
/// creates the object under to_protocol(mode) and stamps the runtime
/// with the mode (gating the lock-only telemetry under OCC/MVCC).
template <AdtTraits A>
std::shared_ptr<ManagedObject> make_mode_object(Runtime& rt, CCMode mode,
                                                const std::string& name) {
  rt.set_cc_mode(mode);
  return make_object<A>(rt, to_protocol(mode), name);
}

/// Does this protocol give read-only transactions a timestamp snapshot
/// (i.e. should workloads open audits with begin_read_only)? All
/// protocols accept read-only transactions; under hybrid this unlocks the
/// non-interference fast path.
[[nodiscard]] bool supports_snapshot_reads(Protocol p);

}  // namespace argus
