// TimestampSchedulerObject<Adt>: strict timestamp ordering in the
// scheduler model — the conventional single-version comparator for the
// static-atomicity family.
//
// Operations are classified read (Adt::is_read_only) or write (everything
// else; a general mutator both reads and writes). Classic TO rules on the
// transaction's initiation timestamp t:
//
//   read:  reject (abort the caller) if t < write_ts;
//   write: reject if t < read_ts or t < write_ts;
//
// otherwise wait until no other transaction's uncommitted operation is
// applied here (strictness — gives recoverability with single-version
// storage), execute against the current state, and advance
// read_ts/write_ts. Compared with StaticAtomicObject (multi-version,
// data-dependent) this aborts far more: it cannot serve a reader below a
// writer's timestamp from an older version, nor recognize that two
// mutators' effects are order-independent. bench_dynamic_vs_static
// includes it as the single-version baseline.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/object_base.h"
#include "sched/storage.h"
#include "spec/adt_spec.h"

namespace argus {

template <AdtTraits A>
class TimestampSchedulerObject final : public ObjectBase {
 public:
  TimestampSchedulerObject(ObjectId oid, std::string name,
                           TransactionManager& tm, EventSink* recorder)
      : ObjectBase(oid, std::move(name), tm, recorder) {}

  Value invoke(Transaction& txn, const Operation& op) override {
    txn.ensure_active();
    if (txn.read_only() && !A::is_read_only(op)) {
      throw UsageError("read-only transaction invoked mutator " +
                       to_string(op) + " on " + name());
    }
    txn.touch(this);
    sched_point(op);
    const Timestamp t = txn.start_ts();
    const bool is_read = A::is_read_only(op);

    std::unique_lock lock(mu_);
    if (initiated_.insert(txn.id()).second) {
      record(initiate(id(), txn.id(), t));
    }
    record(argus::invoke(id(), txn.id(), op));
    owners_[txn.id()] = txn.weak_from_this();

    // Timestamp admission (checked before and after waiting: the marks
    // move while we wait). A transaction never conflicts with its own
    // marks.
    auto too_late = [&] {
      if (is_read) return t < max_other(writes_, txn.id());
      return t < max_other(writes_, txn.id()) ||
             t < max_other(reads_, txn.id());
    };

    std::optional<Value> result;
    await(
        lock, txn,
        [&] {
          if (too_late()) {
            txn.doom(AbortReason::kTimestampOrder);
            return true;  // exit the wait; doomed check below throws
          }
          if (storage_.other_uncommitted(txn.id())) return false;  // strict
          result = storage_.apply(txn.id(), op);
          return result.has_value();
        },
        [&] { return blockers(txn.id()); });
    if (txn.doomed()) {
      throw TransactionAborted(txn.id(), txn.doom_reason());
    }

    if (is_read) {
      reads_.emplace(t, txn.id());
    } else {
      reads_.emplace(t, txn.id());  // a mutator also reads
      writes_.emplace(t, txn.id());
    }

    record(respond(id(), txn.id(), *result));
    return *result;
  }

  void prepare(Transaction& txn) override { txn.ensure_active(); }

  void commit(Transaction& txn, Timestamp /*commit_ts*/) override {
    const std::scoped_lock lock(mu_);
    storage_.commit(txn.id());
    owners_.erase(txn.id());
    record(argus::commit(id(), txn.id()));
    notify_object();
  }

  void abort(Transaction& txn) override {
    const std::scoped_lock lock(mu_);
    storage_.abort(txn.id());
    owners_.erase(txn.id());
    // The ts marks deliberately stay: classic TO never lowers them.
    record(argus::abort(id(), txn.id()));
    notify_object();
  }

  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override {
    const std::scoped_lock lock(mu_);
    return storage_.ops_of(txn.id());
  }

  void reset_for_recovery() override {
    const std::scoped_lock lock(mu_);
    storage_.reset();
    owners_.clear();
    initiated_.clear();
    reads_.clear();
    writes_.clear();
    notify_object();
  }

  void replay(const ReplayContext&, const LoggedOp& logged) override {
    const std::scoped_lock lock(mu_);
    storage_.replay(logged);
  }

  [[nodiscard]] typename A::State committed_state() const {
    const std::scoped_lock lock(mu_);
    return storage_.current();
  }

 private:
  /// Largest timestamp mark left by a transaction other than `self`.
  [[nodiscard]] static Timestamp max_other(
      const std::multimap<Timestamp, ActivityId>& marks, ActivityId self) {
    for (auto it = marks.rbegin(); it != marks.rend(); ++it) {
      if (it->second != self) return it->first;
    }
    return 0;
  }

  std::vector<std::shared_ptr<Transaction>> blockers(ActivityId self) {
    std::vector<std::shared_ptr<Transaction>> out;
    for (const auto& [holder, held] : storage_.held_by_others(self)) {
      auto it = owners_.find(holder);
      if (it == owners_.end()) continue;
      if (auto t = it->second.lock(); t && t->active()) {
        out.push_back(std::move(t));
      }
    }
    return out;
  }

  SingleVersionStorage<A> storage_;                          // guarded by mu_
  std::map<ActivityId, std::weak_ptr<Transaction>> owners_;  // guarded by mu_
  std::set<ActivityId> initiated_;                           // guarded by mu_
  std::multimap<Timestamp, ActivityId> reads_;               // guarded by mu_
  std::multimap<Timestamp, ActivityId> writes_;              // guarded by mu_
};

}  // namespace argus
