#include "sched/storage.h"

// Template header anchor.

namespace argus {}  // namespace argus
