#include "sched/executor.h"

#include <chrono>
#include <utility>

#include "dsched/wait_policy.h"

namespace argus {

namespace {

using SteadyClock = std::chrono::steady_clock;

double micros_since(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - start)
      .count();
}

}  // namespace

TxnExecutor::TxnExecutor(Runtime& rt, ExecutorOptions options,
                         CompletionFn on_complete)
    : rt_(rt),
      options_(std::move(options)),
      on_complete_(std::move(on_complete)),
      stats_(std::make_shared<ExecutorStatsBlock>()) {
  if (options_.workers <= 0) throw UsageError("executor needs >= 1 worker");
  stats_->workers.store(options_.workers, std::memory_order_relaxed);
  rt_.set_executor_stats(stats_);
  workers_running_ = options_.workers;
  for (int i = 0; i < options_.workers; ++i) {
    const std::string name = "executor-" + std::to_string(i);
    if (options_.thread_factory) {
      options_.thread_factory(name, [this] { worker_loop(); });
    } else {
      owned_workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

TxnExecutor::~TxnExecutor() { shutdown(); }

void TxnExecutor::submit(Task task) {
  {
    const std::scoped_lock lock(mu_);
    if (stop_) throw UsageError("submit after executor shutdown");
    queue_.push_back(std::move(task));
    ++submitted_;
    stats_->submitted.fetch_add(1, std::memory_order_relaxed);
    stats_->queue_depth.store(static_cast<std::int64_t>(queue_.size()),
                              std::memory_order_relaxed);
  }
  notify(work_cv_);
}

void TxnExecutor::drain() {
  std::unique_lock lock(mu_);
  while (completed_ < submitted_) wait_round(&idle_cv_, lock, idle_cv_);
}

void TxnExecutor::shutdown() {
  {
    std::unique_lock lock(mu_);
    while (completed_ < submitted_) wait_round(&idle_cv_, lock, idle_cv_);
    if (stop_ && owned_workers_.empty()) return;
    stop_ = true;
  }
  notify(work_cv_);
  for (std::thread& w : owned_workers_) w.join();
  owned_workers_.clear();
  stats_->workers.store(0, std::memory_order_relaxed);
}

void TxnExecutor::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      while (!stop_ && queue_.empty()) wait_round(&work_cv_, lock, work_cv_);
      if (queue_.empty()) break;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      stats_->queue_depth.store(static_cast<std::int64_t>(queue_.size()),
                                std::memory_order_relaxed);
    }
    run_task(task);
    {
      const std::scoped_lock lock(mu_);
      ++completed_;
    }
    stats_->completed.fetch_add(1, std::memory_order_relaxed);
    notify(idle_cv_);
  }
  const std::scoped_lock lock(mu_);
  --workers_running_;
}

void TxnExecutor::run_task(const Task& task) {
  // The rng persists across retries: a retried transaction continues the
  // task's random stream, as the old per-thread driver loop did.
  SplitMix64 rng(task.seed);
  Outcome out;
  out.label = task.label;
  const auto t0 = SteadyClock::now();
  for (int attempt = 0; attempt <= options_.max_retries && !out.committed;
       ++attempt) {
    if (attempt > 0) stats_->retries.fetch_add(1, std::memory_order_relaxed);
    ++out.attempts;
    auto txn = rt_.tm().begin(task.kind);
    if (options_.timestamp_skew_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(rng.below(
          static_cast<std::uint64_t>(options_.timestamp_skew_us) + 1)));
    }
    try {
      task.body(*txn, rng);
      rt_.tm().commit(txn);
      out.committed = true;
      stats_->committed.fetch_add(1, std::memory_order_relaxed);
    } catch (const TransactionAborted& e) {
      rt_.tm().abort(txn, e.reason());
      ++out.aborts[e.reason()];
      if (e.reason() == AbortReason::kValidation) {
        stats_->validation_aborts.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!out.committed) stats_->gave_up.fetch_add(1, std::memory_order_relaxed);
  out.latency_us = micros_since(t0);
  if (on_complete_) on_complete_(out);
}

void TxnExecutor::wait_round(const void* channel,
                             std::unique_lock<std::mutex>& lock,
                             std::condition_variable& cv) {
  if (WaitPolicy* policy = rt_.tm().wait_policy()) {
    policy->wait_round(LaneHint{WaitPoint::kExecutorQueue}, channel, lock, cv,
                       std::chrono::microseconds(2000));
  } else {
    cv.wait_for(lock, std::chrono::milliseconds(2));
  }
}

void TxnExecutor::notify(std::condition_variable& cv) {
  cv.notify_all();
  if (WaitPolicy* policy = rt_.tm().wait_policy()) policy->notify(&cv);
}

}  // namespace argus
