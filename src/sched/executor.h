// TxnExecutor: a fixed worker pool that executes transactional tasks with
// retry-on-abort, replacing the per-transaction thread spawning the
// workload driver used to do. One pool, N workers, a FIFO task queue:
// concurrency is the pool size, not the task count, which is what lets
// any CC mode push far past a few dozen concurrent transactions.
//
// Each task is one logical transaction (label + kind + body + seed). A
// worker begins it against the runtime, runs the body, commits, and on
// TransactionAborted aborts and re-begins up to max_retries times —
// deadlock victims, timestamp-order losers and OCC/MVCC validation
// losers all funnel through the same loop, so abort-and-retry costs are
// measured uniformly across modes (bench_cc_modes, E15).
//
// Scheduling integration: the queue handoff (worker waiting for a task,
// drain() waiting for completion) routes through the runtime's
// WaitPolicy at WaitPoint::kExecutorQueue, so a deterministic run owns
// the pool's context switches too. Deterministic tests inject a
// thread_factory that spawns workers as scheduler lanes; in that case
// the scheduler — not the executor — owns and joins the worker threads.
//
// Telemetry: the pool publishes an ExecutorStatsBlock to the runtime
// (argus_executor_* gauges/counters: pool size, queue depth, retries,
// validation aborts). The block is shared so scrapes after the pool is
// gone still read its final values.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/executor_stats.h"
#include "core/runtime.h"

namespace argus {

struct ExecutorOptions {
  int workers{4};
  int max_retries{100};
  /// Injected delay (microseconds, uniform in [0, skew]) between begin()
  /// and the first operation — the §4.2.3 timestamp-skew experiments.
  int timestamp_skew_us{0};
  /// When set, workers are spawned through this hook instead of
  /// std::thread (deterministic tests pass DeterministicScheduler::spawn,
  /// making workers lanes). The hook's owner joins those threads; the
  /// executor only flags shutdown.
  std::function<void(const std::string&, std::function<void()>)>
      thread_factory;
};

class TxnExecutor {
 public:
  /// One logical transaction. `seed` derives the task's private rng so
  /// results are a function of the task, not of which worker ran it.
  struct Task {
    std::string label;
    TxnKind kind{TxnKind::kUpdate};
    std::function<void(Transaction&, SplitMix64&)> body;
    std::uint64_t seed{0};
  };

  /// What became of one task, delivered on the worker thread via the
  /// completion callback (the callee synchronizes).
  struct Outcome {
    std::string label;
    bool committed{false};
    std::uint64_t attempts{0};
    double latency_us{0.0};  // first begin to final commit/give-up
    std::map<AbortReason, std::uint64_t> aborts;
  };
  using CompletionFn = std::function<void(const Outcome&)>;

  TxnExecutor(Runtime& rt, ExecutorOptions options,
              CompletionFn on_complete = nullptr);
  ~TxnExecutor();

  TxnExecutor(const TxnExecutor&) = delete;
  TxnExecutor& operator=(const TxnExecutor&) = delete;

  /// Enqueues a task. Throws UsageError after shutdown().
  void submit(Task task);

  /// Blocks until every submitted task has completed.
  void drain();

  /// Drains, stops the workers and (unless a thread_factory owns them)
  /// joins them. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ExecutorStatsSnapshot stats() const {
    return snapshot_of(*stats_);
  }

 private:
  void worker_loop();
  void run_task(const Task& task);
  void wait_round(const void* channel, std::unique_lock<std::mutex>& lock,
                  std::condition_variable& cv);
  void notify(std::condition_variable& cv);

  Runtime& rt_;
  const ExecutorOptions options_;
  const CompletionFn on_complete_;
  std::shared_ptr<ExecutorStatsBlock> stats_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stop
  std::condition_variable idle_cv_;  // drain(): completed caught up
  std::deque<Task> queue_;           // guarded by mu_
  std::uint64_t submitted_{0};       // guarded by mu_
  std::uint64_t completed_{0};       // guarded by mu_
  bool stop_{false};                 // guarded by mu_
  int workers_running_{0};           // guarded by mu_
  std::vector<std::thread> owned_workers_;
};

}  // namespace argus
