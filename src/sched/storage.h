// SingleVersionStorage<Adt>: the storage module of the scheduler model
// (Fig 5-1).
//
// The defining property the paper criticizes: "the semantics of the
// operations are determined by the interface between the scheduler and
// the storage module. The order in which operations are scheduled
// determines the state of the storage module, and hence the results of
// subsequent operations." Accordingly, this storage applies operations
// immediately, in scheduler (arrival) order, against a single current
// state — there are no per-transaction views. Abort is implemented by
// removing the transaction's operations and re-deriving the state (the
// replay-based equivalent of before-image undo; the scheduler's conflict
// rule is what makes this sound, since admitted operations commute with
// whatever uncommitted operations they overtook).
#pragma once

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/errors.h"
#include "common/ids.h"
#include "spec/adt_spec.h"
#include "txn/stable_log.h"

namespace argus {

template <AdtTraits A>
class SingleVersionStorage {
 public:
  struct Applied {
    ActivityId txn;
    LoggedOp logged;
    bool committed{false};
  };

  /// The current single-version state (committed base plus every applied
  /// operation in arrival order).
  [[nodiscard]] const typename A::State& current() const { return current_; }

  /// Applies `op` for `txn` against the current state. Returns the set of
  /// possible results; the first is chosen and recorded. Empty means the
  /// operation is not enabled (the scheduler decides whether to wait).
  std::optional<Value> apply(ActivityId txn, const Operation& op) {
    auto outcomes = A::step(current_, op);
    if (outcomes.empty()) return std::nullopt;
    auto& [result, next] = outcomes.front();
    applied_.push_back(Applied{txn, LoggedOp{op, result}, false});
    current_ = std::move(next);
    return result;
  }

  /// Marks txn's operations permanent and folds the committed prefix into
  /// the base state.
  void commit(ActivityId txn) {
    for (Applied& a : applied_) {
      if (a.txn == txn) a.committed = true;
    }
    std::size_t folded = 0;
    while (folded < applied_.size() && applied_[folded].committed) {
      base_ = step_checked(base_, applied_[folded].logged);
      ++folded;
    }
    applied_.erase(applied_.begin(),
                   applied_.begin() + static_cast<std::ptrdiff_t>(folded));
  }

  /// Removes txn's operations and re-derives the current state.
  void abort(ActivityId txn) {
    std::erase_if(applied_, [&](const Applied& a) { return a.txn == txn; });
    rebuild();
  }

  /// True iff another active transaction has an uncommitted operation.
  [[nodiscard]] bool other_uncommitted(ActivityId self) const {
    return std::any_of(applied_.begin(), applied_.end(), [&](const Applied& a) {
      return !a.committed && a.txn != self;
    });
  }

  /// Uncommitted operations held by transactions other than `self`.
  [[nodiscard]] std::vector<std::pair<ActivityId, Operation>> held_by_others(
      ActivityId self) const {
    std::vector<std::pair<ActivityId, Operation>> out;
    for (const Applied& a : applied_) {
      if (!a.committed && a.txn != self) out.emplace_back(a.txn, a.logged.op);
    }
    return out;
  }

  [[nodiscard]] std::vector<LoggedOp> ops_of(ActivityId txn) const {
    std::vector<LoggedOp> out;
    for (const Applied& a : applied_) {
      if (a.txn == txn) out.push_back(a.logged);
    }
    return out;
  }

  void reset() {
    base_ = A::initial();
    current_ = A::initial();
    applied_.clear();
  }

  /// Recovery replay of one committed operation onto the base state.
  void replay(const LoggedOp& logged) {
    base_ = step_checked(base_, logged);
    current_ = base_;
  }

 private:
  void rebuild() {
    current_ = base_;
    for (Applied& a : applied_) {
      // Re-derivation keeps recorded results when possible (they are
      // guaranteed reproducible when the conflict rule is sound); if the
      // result is no longer reachable the first outcome is taken — the
      // single-version storage has no better answer, which is precisely
      // the recovery bias of the scheduler model.
      auto outcomes = A::step(current_, a.logged.op);
      if (outcomes.empty()) continue;
      bool matched = false;
      for (auto& [result, next] : outcomes) {
        if (result == a.logged.result) {
          current_ = std::move(next);
          matched = true;
          break;
        }
      }
      if (!matched) {
        a.logged.result = outcomes.front().first;
        current_ = outcomes.front().second;
      }
    }
  }

  static typename A::State step_checked(const typename A::State& s,
                                        const LoggedOp& logged) {
    auto outcomes = A::step(s, logged.op);
    for (auto& [result, next] : outcomes) {
      if (result == logged.result) return std::move(next);
    }
    if (!outcomes.empty()) return std::move(outcomes.front().second);
    return s;
  }

  typename A::State base_ = A::initial();
  typename A::State current_ = A::initial();
  std::vector<Applied> applied_;
};

}  // namespace argus
