// Prebuilt workload scenarios shared by benchmarks, examples and
// integration tests. Each scenario corresponds to a setting the paper
// argues about:
//
//   Bank     — §4.3.3 / [Lamport 76]: transfer updates + audit read-only
//              activities over a set of accounts.
//   Queue    — §5.1: producer/consumer transactions over a FIFO queue.
//   Accounts — §5.1: concurrent withdraw/deposit pressure on a single
//              account with tunable headroom.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/factory.h"
#include "sim/workload.h"

namespace argus {

/// A bank of `n` accounts under the given protocol, each seeded (via a
/// setup transaction) with `initial_balance`.
struct BankScenario {
  std::vector<std::shared_ptr<ManagedObject>> accounts;

  static BankScenario create(Runtime& rt, Protocol protocol, int n,
                             std::int64_t initial_balance);

  /// Transfer: withdraw `amount` from one random account, deposit into
  /// another, with `hold_us` of simulated work in between. Skips
  /// gracefully (no-op deposit) on insufficient funds.
  [[nodiscard]] MixItem transfer_mix(std::int64_t amount, int weight,
                                     int hold_us = 0) const;

  /// Audit: read every account's balance, spending `hold_us` of work per
  /// account (the paper's "long read-only activities"). `read_only`
  /// selects TxnKind::kReadOnly (hybrid/static snapshot path) vs. running
  /// the audit as an ordinary update transaction (what dynamic locking
  /// forces).
  [[nodiscard]] MixItem audit_mix(bool read_only, int weight,
                                  int hold_us = 0) const;

  /// Sum of all committed balances, read in one read-only transaction
  /// where supported, else an update transaction.
  [[nodiscard]] std::int64_t total_balance(Runtime& rt, bool read_only) const;
};

/// A FIFO queue under the given protocol; Protocol::kHybrid uses the
/// type-specific commit-order HybridFifoQueue.
struct QueueScenario {
  std::shared_ptr<ManagedObject> queue;

  static QueueScenario create(Runtime& rt, Protocol protocol,
                              const std::string& name = "queue");

  /// Producer: enqueue `burst` values.
  [[nodiscard]] MixItem producer_mix(int burst, int weight) const;
  /// Consumer: dequeue `burst` values (waits for data).
  [[nodiscard]] MixItem consumer_mix(int burst, int weight) const;
};

/// A single account with concurrent withdraw pressure (§5.1). Headroom is
/// controlled by the initial balance.
struct AccountScenario {
  std::shared_ptr<ManagedObject> account;

  static AccountScenario create(Runtime& rt, Protocol protocol,
                                std::int64_t initial_balance);

  [[nodiscard]] MixItem withdraw_mix(std::int64_t amount, int weight) const;
  [[nodiscard]] MixItem deposit_mix(std::int64_t amount, int weight) const;

  /// Burst variants: `count` operations per transaction with `hold_us`
  /// microseconds of simulated application work between them — the
  /// transaction holds its locks/intentions across the burst, which is
  /// what makes protocol-level concurrency differences measurable.
  [[nodiscard]] MixItem withdraw_burst_mix(std::int64_t amount, int count,
                                           int hold_us, int weight) const;
  [[nodiscard]] MixItem deposit_burst_mix(std::int64_t amount, int count,
                                          int hold_us, int weight) const;
};

}  // namespace argus
