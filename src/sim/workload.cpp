#include "sim/workload.h"

#include <chrono>
#include <mutex>
#include <numeric>

#include "sched/executor.h"

namespace argus {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

WorkloadResult WorkloadDriver::run(const std::vector<MixItem>& mix) {
  if (mix.empty()) throw UsageError("empty workload mix");
  const int total_weight = std::accumulate(
      mix.begin(), mix.end(), 0,
      [](int acc, const MixItem& item) { return acc + item.weight; });
  if (total_weight <= 0) throw UsageError("workload mix has no weight");

  WorkloadResult result;
  std::mutex result_mu;
  const auto t0 = Clock::now();

  ExecutorOptions eo;
  eo.workers = options_.threads;
  eo.max_retries = options_.max_retries;
  eo.timestamp_skew_us = options_.timestamp_skew_us;

  const auto on_complete = [&](const TxnExecutor::Outcome& out) {
    const std::scoped_lock lock(result_mu);
    auto& stats = result.by_label[out.label];
    if (out.committed) {
      ++result.committed;
      ++stats.committed;
      stats.latency.add(out.latency_us);
    } else {
      ++result.gave_up;
    }
    for (const auto& [reason, n] : out.aborts) {
      result.aborted += n;
      result.aborts_by_reason[reason] += n;
      stats.aborted += n;
      stats.aborts_by_reason[reason] += n;
    }
  };

  {
    TxnExecutor pool(rt_, eo, on_complete);

    // The mix draw happens at submission, from one driver-owned rng: the
    // task list is a pure function of (seed, mix), independent of worker
    // scheduling. Each task then owns a seed-derived rng of its own.
    SplitMix64 pick_rng(options_.seed * 0x9e3779b9ULL);
    const std::uint64_t total = static_cast<std::uint64_t>(options_.threads) *
                                static_cast<std::uint64_t>(
                                    options_.transactions_per_thread);
    for (std::uint64_t i = 0; i < total; ++i) {
      std::int64_t roll = pick_rng.range(0, total_weight - 1);
      const MixItem* item = &mix.front();
      for (const MixItem& candidate : mix) {
        roll -= candidate.weight;
        if (roll < 0) {
          item = &candidate;
          break;
        }
      }
      pool.submit({item->label, item->kind, item->body,
                   options_.seed * 0x9e3779b97f4a7c15ULL + i});
    }
    pool.drain();
    result.executor = pool.stats();
  }  // pool shutdown + worker join

  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.deadlocks = rt_.tm().detector().deadlocks_resolved();
  result.pipeline = rt_.tm().pipeline_stats();
  return result;
}

}  // namespace argus
