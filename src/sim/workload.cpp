#include "sim/workload.h"

#include <chrono>
#include <mutex>
#include <numeric>
#include <thread>

namespace argus {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

WorkloadResult WorkloadDriver::run(const std::vector<MixItem>& mix) {
  if (mix.empty()) throw UsageError("empty workload mix");
  const int total_weight = std::accumulate(
      mix.begin(), mix.end(), 0,
      [](int acc, const MixItem& item) { return acc + item.weight; });
  if (total_weight <= 0) throw UsageError("workload mix has no weight");

  WorkloadResult result;
  std::mutex result_mu;
  const auto t0 = Clock::now();

  auto worker = [&](int thread_index) {
    SplitMix64 rng(options_.seed * 0x9e3779b9ULL +
                   static_cast<std::uint64_t>(thread_index));
    WorkloadResult local;

    for (int i = 0; i < options_.transactions_per_thread; ++i) {
      // Weighted pick.
      std::int64_t roll = rng.range(0, total_weight - 1);
      const MixItem* item = &mix.front();
      for (const MixItem& candidate : mix) {
        roll -= candidate.weight;
        if (roll < 0) {
          item = &candidate;
          break;
        }
      }

      const auto begin_time = Clock::now();
      bool done = false;
      for (int attempt = 0; attempt <= options_.max_retries && !done;
           ++attempt) {
        auto txn = rt_.tm().begin(item->kind);
        if (options_.timestamp_skew_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              rng.below(static_cast<std::uint64_t>(options_.timestamp_skew_us) +
                        1)));
        }
        try {
          item->body(*txn, rng);
          rt_.tm().commit(txn);
          done = true;
          ++local.committed;
          auto& stats = local.by_label[item->label];
          ++stats.committed;
          stats.latency.add(micros_since(begin_time));
        } catch (const TransactionAborted& e) {
          rt_.tm().abort(txn, e.reason());
          ++local.aborted;
          ++local.aborts_by_reason[e.reason()];
          auto& stats = local.by_label[item->label];
          ++stats.aborted;
          ++stats.aborts_by_reason[e.reason()];
        }
      }
      if (!done) ++local.gave_up;
    }

    const std::scoped_lock lock(result_mu);
    result.committed += local.committed;
    result.aborted += local.aborted;
    result.gave_up += local.gave_up;
    for (const auto& [reason, n] : local.aborts_by_reason) {
      result.aborts_by_reason[reason] += n;
    }
    for (auto& [label, stats] : local.by_label) {
      auto& global = result.by_label[label];
      global.committed += stats.committed;
      global.aborted += stats.aborted;
      for (const auto& [reason, n] : stats.aborts_by_reason) {
        global.aborts_by_reason[reason] += n;
      }
      global.latency.merge(stats.latency);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  result.seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.deadlocks = rt_.tm().detector().deadlocks_resolved();
  result.pipeline = rt_.tm().pipeline_stats();
  return result;
}

}  // namespace argus
