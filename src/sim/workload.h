// WorkloadDriver: runs a weighted mix of transaction bodies against a
// Runtime on a fixed TxnExecutor worker pool (pool size = threads), with
// retry-on-abort, and aggregates metrics. All experiment binaries
// (bench/) and the integration tests drive protocols through this. The
// weighted mix is drawn at submission from the driver's seed, so the
// task list is deterministic regardless of pool scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/runtime.h"
#include "sim/metrics.h"

namespace argus {

/// One transaction's application logic. Invoked with an active
/// transaction; throws TransactionAborted when the protocol aborts it
/// (the driver catches and retries).
using TxnBody = std::function<void(Transaction&, SplitMix64&)>;

struct MixItem {
  std::string label;
  TxnKind kind{TxnKind::kUpdate};
  int weight{1};
  TxnBody body;
};

struct WorkloadOptions {
  int threads{4};  // executor pool size (the run's concurrency level)
  int transactions_per_thread{200};
  int max_retries{100};
  std::uint64_t seed{1};
  /// Injected delay (microseconds, uniform in [0, skew]) between begin()
  /// — where the initiation timestamp is drawn — and the first operation.
  /// Models poorly synchronized timestamp generation for the static
  /// protocol experiments (§4.2.3).
  int timestamp_skew_us{0};
};

class WorkloadDriver {
 public:
  WorkloadDriver(Runtime& rt, WorkloadOptions options)
      : rt_(rt), options_(options) {}

  /// Runs the mix to completion and returns aggregated metrics.
  [[nodiscard]] WorkloadResult run(const std::vector<MixItem>& mix);

 private:
  Runtime& rt_;
  WorkloadOptions options_;
};

}  // namespace argus
