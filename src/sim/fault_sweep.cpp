#include "sim/fault_sweep.h"

#include <memory>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "check/atomicity.h"
#include "common/rng.h"
#include "core/runtime.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"

namespace argus {

namespace {

std::optional<Protocol> protocol_from_string(const std::string& name) {
  for (Protocol p : {Protocol::kDynamic, Protocol::kStatic, Protocol::kHybrid,
                     Protocol::kTwoPhase, Protocol::kCommutativity,
                     Protocol::kTimestamp, Protocol::kOcc, Protocol::kMvcc}) {
    if (to_string(p) == name) return p;
  }
  return std::nullopt;
}

}  // namespace

std::string to_config_string(const FaultSweepCase& c) {
  std::ostringstream out;
  out << "# fault-sweep case (replay: examples/fault_replay <file>)\n";
  out << "protocol " << to_string(c.protocol) << "\n";
  out << "accounts " << c.accounts << "\n";
  out << "transactions " << c.transactions << "\n";
  out << "initial_balance " << c.initial_balance << "\n";
  out << "seed " << c.plan.seed << "\n";
  out << "force_fail_permille " << c.plan.force_fail_permille << "\n";
  out << "force_max_retries " << c.plan.force_max_retries << "\n";
  out << "force_retry_backoff_us " << c.plan.force_retry_backoff_us << "\n";
  out << "torn_batch_permille " << c.plan.torn_batch_permille << "\n";
  out << "leader_latency_permille " << c.plan.leader_latency_permille << "\n";
  out << "leader_latency_us " << c.plan.leader_latency_us << "\n";
  out << "crash_point " << to_string(c.plan.crash_point) << "\n";
  out << "crash_at " << c.plan.crash_at_arrival << "\n";
  out << "spurious_timeout_permille " << c.plan.spurious_timeout_permille
      << "\n";
  out << "delayed_wakeup_permille " << c.plan.delayed_wakeup_permille << "\n";
  out << "delayed_wakeup_us " << c.plan.delayed_wakeup_us << "\n";
  out << "max_faults " << c.plan.max_faults << "\n";
  return out.str();
}

bool parse_fault_case(const std::string& text, FaultSweepCase* out,
                      std::string* error) {
  FaultSweepCase c;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    // Trim; skip blanks and '#' comments (same lexical rules as parse.h).
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    if (line[0] == '#') continue;

    std::istringstream fields(line);
    std::string key, value, extra;
    if (!(fields >> key >> value) || (fields >> extra)) {
      return fail("expected `key value`: " + line);
    }

    if (key == "protocol") {
      const auto p = protocol_from_string(value);
      if (!p) return fail("unknown protocol: " + value);
      c.protocol = *p;
      continue;
    }
    if (key == "crash_point") {
      const auto site = fault_site_from_string(value);
      if (!site) return fail("unknown crash point: " + value);
      c.plan.crash_point = *site;
      continue;
    }

    std::uint64_t n = 0;
    try {
      n = std::stoull(value);
    } catch (const std::exception&) {
      return fail("not a number: " + value);
    }
    if (key == "accounts") {
      if (n == 0) return fail("accounts must be > 0");
      c.accounts = static_cast<int>(n);
    } else if (key == "transactions") {
      c.transactions = static_cast<int>(n);
    } else if (key == "initial_balance") {
      c.initial_balance = static_cast<std::int64_t>(n);
    } else if (key == "seed") {
      c.plan.seed = n;
    } else if (key == "force_fail_permille") {
      c.plan.force_fail_permille = static_cast<std::uint32_t>(n);
    } else if (key == "force_max_retries") {
      c.plan.force_max_retries = static_cast<std::uint32_t>(n);
    } else if (key == "force_retry_backoff_us") {
      c.plan.force_retry_backoff_us = static_cast<std::uint32_t>(n);
    } else if (key == "torn_batch_permille") {
      c.plan.torn_batch_permille = static_cast<std::uint32_t>(n);
    } else if (key == "leader_latency_permille") {
      c.plan.leader_latency_permille = static_cast<std::uint32_t>(n);
    } else if (key == "leader_latency_us") {
      c.plan.leader_latency_us = static_cast<std::uint32_t>(n);
    } else if (key == "crash_at") {
      c.plan.crash_at_arrival = n;
    } else if (key == "spurious_timeout_permille") {
      c.plan.spurious_timeout_permille = static_cast<std::uint32_t>(n);
    } else if (key == "delayed_wakeup_permille") {
      c.plan.delayed_wakeup_permille = static_cast<std::uint32_t>(n);
    } else if (key == "delayed_wakeup_us") {
      c.plan.delayed_wakeup_us = static_cast<std::uint32_t>(n);
    } else if (key == "max_faults") {
      c.plan.max_faults = n;
    } else {
      return fail("unknown key: " + key);
    }
  }
  *out = c;
  return true;
}

FaultCaseResult run_fault_case(const FaultSweepCase& c) {
  FaultCaseResult result;
  std::vector<std::string> failures;
  auto probe = [&](bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  };

  Runtime rt(Runtime::RecorderMode::kFlight);
  std::vector<std::shared_ptr<ManagedObject>> accounts;
  accounts.reserve(static_cast<std::size_t>(c.accounts));
  for (int i = 0; i < c.accounts; ++i) {
    accounts.push_back(make_object<BankAccountAdt>(
        rt, c.protocol, "a" + std::to_string(i)));
  }
  rt.set_wait_timeout_all(std::chrono::milliseconds(200));
  SentinelOptions sentinel_options;
  sentinel_options.window = std::chrono::milliseconds(2);
  auto& sentinel = rt.start_sentinel(sentinel_options);

  // Seed the bank before faults are live: the conservation probe needs a
  // known starting total, and the paper's fault model starts from a
  // quiescent committed state anyway.
  {
    auto setup = rt.begin();
    for (auto& a : accounts) {
      a->invoke(*setup, account::deposit(c.initial_balance));
    }
    rt.commit(setup);
  }

  auto injector = std::make_shared<FaultInjector>(c.plan);
  rt.set_fault_injector(injector);

  // Deterministic single-threaded workload: transfers plus (under
  // snapshot protocols) read-only audits. Stop early if the pinned crash
  // fires — the node is "down" from that point.
  std::unordered_set<ActivityId> read_only;
  SplitMix64 rng(c.plan.seed * 0x9e3779b97f4a7c15ULL + 1);
  for (int i = 0; i < c.transactions; ++i) {
    if (injector->crashes_fired() > 0) break;
    const bool audit =
        supports_snapshot_reads(c.protocol) && rng.chance(1, 4);
    auto t = audit ? rt.begin_read_only() : rt.begin();
    if (audit) read_only.insert(t->id());
    try {
      if (audit) {
        for (auto& a : accounts) a->invoke(*t, account::balance());
      } else {
        const std::size_t n = accounts.size();
        const std::size_t from = rng.below(n);
        const std::size_t to =
            n > 1 ? (from + 1 + rng.below(n - 1)) % n : from;
        const std::int64_t amount = rng.range(1, 5);
        const Value got = accounts[from]->invoke(*t, account::withdraw(amount));
        if (got.is_unit()) {
          accounts[to]->invoke(*t, account::deposit(amount));
        }
      }
      rt.commit(t);
    } catch (const TransactionAborted&) {
      rt.abort(t);
    }
  }
  result.crashed_mid_run = injector->crashes_fired() > 0;

  // Whole-node failure, then recovery. If the pinned crash already fired
  // mid-workload the node is down; otherwise fail it now so every case
  // exercises crash -> recover.
  if (!result.crashed_mid_run) rt.crash();
  rt.set_fault_injector(nullptr);  // recovery and verification run fault-free
  rt.recover();

  // Probe: conservation. Transfers move money or do nothing, so any
  // recovered total other than the seeded one means a partial commit
  // survived (or a committed one was lost).
  {
    auto check = rt.begin();
    std::int64_t total = 0;
    for (auto& a : accounts) {
      total += a->invoke(*check, account::balance()).as_int();
    }
    rt.commit(check);
    const std::int64_t expected =
        static_cast<std::int64_t>(c.accounts) * c.initial_balance;
    probe(total == expected,
          "conservation: recovered total " + std::to_string(total) +
              " != " + std::to_string(expected));
  }

  // Probes over the stable log: replay order and watermark coverage.
  {
    const auto records = rt.tm().log().records();
    result.log_records = records.size();
    probe(!records.empty(), "log: no record survived (setup must)");
    const Timestamp watermark = rt.tm().clock().watermark();
    Timestamp prev = 0;
    for (const auto& record : records) {
      probe(record.commit_ts >= prev,
            "log order: record ts " + std::to_string(record.commit_ts) +
                " after ts " + std::to_string(prev));
      prev = record.commit_ts;
      probe(record.commit_ts <= watermark,
            "watermark: forced ts " + std::to_string(record.commit_ts) +
                " above watermark " + std::to_string(watermark));
    }
  }

  // Formal certification: well-formedness plus the protocol's local
  // atomicity property over the full recorded history (crash dooms and
  // all — aborted activities are part of h; perm(h) is what must
  // serialize).
  const History h = rt.history();
  switch (c.protocol) {
    case Protocol::kDynamic:
    case Protocol::kTwoPhase:
    case Protocol::kCommutativity: {
      const auto wf = check_well_formed(h);
      probe(wf.ok(), "well-formed: " + wf.summary());
      const auto verdict = check_dynamic_atomic(rt.system(), h);
      probe(verdict.ok, "dynamic atomic: " + verdict.explanation);
      break;
    }
    case Protocol::kStatic:
    case Protocol::kTimestamp: {
      const auto wf = check_well_formed_static(h);
      probe(wf.ok(), "well-formed(static): " + wf.summary());
      const auto verdict = check_static_atomic(rt.system(), h);
      probe(verdict.ok, "static atomic: " + verdict.explanation);
      break;
    }
    case Protocol::kHybrid:
    case Protocol::kOcc:
    case Protocol::kMvcc: {
      // OCC/MVCC updates serialize at their commit timestamp (serial
      // validation at the pipeline turn), so their histories satisfy the
      // same hybrid-atomicity property.
      const auto wf = check_well_formed_hybrid(h, read_only);
      probe(wf.ok(), "well-formed(hybrid): " + wf.summary());
      const auto verdict = check_hybrid_atomic(rt.system(), h);
      probe(verdict.ok, "hybrid atomic: " + verdict.explanation);
      break;
    }
  }

  // The online sentinel watched the same run, including the crash window.
  sentinel.stop();
  probe(sentinel.violations() == 0,
        "sentinel: " + sentinel.last_violation());
  rt.stop_sentinel();

  const TxnStats stats = rt.tm().stats();
  result.committed = stats.committed;
  result.aborted = stats.aborted;
  result.faults_injected = injector->faults_injected();
  result.trace = h.to_string() + injector->trace_to_string();
  result.ok = failures.empty();
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) result.failure += "\n";
    result.failure += failures[i];
  }
  return result;
}

std::vector<FaultSweepCase> enumerate_fault_cases(
    const FaultSweepOptions& options) {
  // Crash placements: no pinned crash, then each named pipeline stage.
  struct CrashCell {
    FaultSite point;
    bool enabled;
  };
  const CrashCell crash_cells[] = {
      {FaultSite::kPreForce, false},
      {FaultSite::kPreForce, true},
      {FaultSite::kPostForcePreApply, true},
      {FaultSite::kMidApply, true},
      {FaultSite::kPostApplyPreWatermark, true},
  };

  // Fault mixes: clean, each family alone, then everything at once.
  struct Mix {
    const char* name;
    FaultPlan plan;  // seed/crash fields overwritten per cell
  };
  std::vector<Mix> mixes;
  {
    Mix clean{"clean", {}};
    mixes.push_back(clean);
    Mix force_fail{"force-fail", {}};
    force_fail.plan.force_fail_permille = 250;
    force_fail.plan.force_max_retries = 2;
    force_fail.plan.force_retry_backoff_us = 10;
    mixes.push_back(force_fail);
    Mix torn{"torn-tail", {}};
    torn.plan.torn_batch_permille = 350;
    mixes.push_back(torn);
    Mix latency{"leader-latency", {}};
    latency.plan.leader_latency_permille = 300;
    latency.plan.leader_latency_us = 100;
    mixes.push_back(latency);
    Mix chaos{"chaos", {}};
    chaos.plan.force_fail_permille = 120;
    chaos.plan.force_max_retries = 2;
    chaos.plan.force_retry_backoff_us = 10;
    chaos.plan.torn_batch_permille = 150;
    chaos.plan.leader_latency_permille = 100;
    chaos.plan.leader_latency_us = 50;
    chaos.plan.spurious_timeout_permille = 50;
    chaos.plan.delayed_wakeup_permille = 80;
    chaos.plan.delayed_wakeup_us = 100;
    mixes.push_back(chaos);
  }

  std::vector<FaultSweepCase> out;
  for (const CrashCell& crash : crash_cells) {
    const auto crash_index =
        static_cast<std::uint64_t>(&crash - crash_cells);
    for (const Mix& mix : mixes) {
      for (Protocol protocol : options.protocols) {
        for (std::uint64_t s = 1; s <= options.seeds_per_cell; ++s) {
          FaultSweepCase c;
          c.plan = mix.plan;
          c.protocol = protocol;
          c.accounts = options.accounts;
          c.transactions = options.transactions;
          c.initial_balance = options.initial_balance;
          // Seed identifies the cell too, so no two cells share a
          // decision stream.
          c.plan.seed = s * 1000003ULL + crash_index * 7919ULL +
                        static_cast<std::uint64_t>(&mix - mixes.data()) * 101ULL +
                        static_cast<std::uint64_t>(protocol);
          c.plan.crash_point = crash.point;
          // Vary which arrival dies so early and late crashes both occur.
          c.plan.crash_at_arrival = crash.enabled ? 1 + (s % 6) : 0;
          out.push_back(c);
        }
      }
    }
  }
  return out;
}

FaultSweepSummary run_fault_sweep(const FaultSweepOptions& options) {
  FaultSweepSummary summary;
  for (const FaultSweepCase& c : enumerate_fault_cases(options)) {
    const FaultCaseResult result = run_fault_case(c);
    ++summary.cases;
    if (result.crashed_mid_run) ++summary.crashed_mid_run;
    summary.faults_injected += result.faults_injected;
    summary.committed += result.committed;
    if (!result.ok) summary.failures.push_back({c, result.failure});
  }
  return summary;
}

FaultSweepCase minimize_fault_budget(
    const FaultSweepCase& failing,
    const std::function<bool(const FaultSweepCase&)>& still_fails) {
  // Upper bound: the fault count of the full failing run (its budget may
  // be unlimited; any fault past the last injected one is irrelevant).
  FaultSweepCase probe = failing;
  std::uint64_t hi = run_fault_case(failing).faults_injected;
  probe.plan.max_faults = 0;
  if (still_fails(probe)) return probe;  // needs no probabilistic faults

  // Invariant: fails at budget hi (the original failure), passes at lo.
  std::uint64_t lo = 0;
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    probe.plan.max_faults = mid;
    if (still_fails(probe)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  probe.plan.max_faults = hi;
  return probe;
}

}  // namespace argus
