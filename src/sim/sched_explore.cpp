#include "sim/sched_explore.h"

#include <memory>
#include <optional>
#include <sstream>

#include "check/atomicity.h"
#include "common/rng.h"
#include "common/scope_guard.h"
#include "core/dynamic_object.h"
#include "core/runtime.h"
#include "dsched/task_lane.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/fifo_queue.h"

namespace argus {

namespace {

std::optional<Protocol> protocol_from_string(const std::string& name) {
  for (Protocol p : {Protocol::kDynamic, Protocol::kStatic, Protocol::kHybrid,
                     Protocol::kTwoPhase, Protocol::kCommutativity,
                     Protocol::kTimestamp, Protocol::kOcc, Protocol::kMvcc}) {
    if (to_string(p) == name) return p;
  }
  return std::nullopt;
}

std::optional<ScheduleKind> kind_from_string(const std::string& name) {
  for (ScheduleKind k : {ScheduleKind::kRandom, ScheduleKind::kPct,
                         ScheduleKind::kDfs, ScheduleKind::kReplay}) {
    if (to_string(k) == name) return k;
  }
  return std::nullopt;
}

/// Per-lane decision stream, derived from the case seed so the whole
/// workload is a pure function of (case, schedule).
SplitMix64 lane_rng(const SchedCase& c, int lane) {
  return SplitMix64(c.seed * 0x9e3779b97f4a7c15ULL + 101ULL +
                    static_cast<std::uint64_t>(lane));
}

/// One lane's bank workload: transfers that read back the debited
/// account inside the same transaction. The balance read is the
/// regression tripwire — a chaos-admitted stale view records a balance
/// that cannot replay in canonical commit order, which is exactly what
/// the dynamic-atomicity checker rejects.
void bank_lane(Runtime& rt, const SchedCase& c,
               const std::vector<std::shared_ptr<ManagedObject>>& objects,
               FaultInjector* injector, int lane) {
  SplitMix64 rng = lane_rng(c, lane);
  const std::size_t n = objects.size();
  for (int i = 0; i < c.txns_per_lane; ++i) {
    if (injector != nullptr && injector->crashes_fired() > 0) break;
    auto t = rt.begin();
    try {
      const std::size_t from = rng.below(n);
      const std::size_t to = n > 1 ? (from + 1 + rng.below(n - 1)) % n : from;
      const std::int64_t amount = rng.range(1, 3);
      const Value got = objects[from]->invoke(*t, account::withdraw(amount));
      if (got.is_unit()) objects[to]->invoke(*t, account::deposit(amount));
      objects[from]->invoke(*t, account::balance());
      rt.commit(t);
    } catch (const TransactionAborted&) {
      rt.abort(t);
    }
  }
}

/// One lane's queue workload: enqueue a lane-unique value, sometimes
/// dequeue (always enabled: the own enqueue is already in this
/// transaction's view).
void queue_lane(Runtime& rt, const SchedCase& c,
                const std::vector<std::shared_ptr<ManagedObject>>& objects,
                FaultInjector* injector, int lane) {
  SplitMix64 rng = lane_rng(c, lane);
  const std::size_t n = objects.size();
  for (int i = 0; i < c.txns_per_lane; ++i) {
    if (injector != nullptr && injector->crashes_fired() > 0) break;
    auto t = rt.begin();
    try {
      const std::size_t at = rng.below(n);
      objects[at]->invoke(
          *t, fifo::enqueue(static_cast<std::int64_t>(lane) * 1000 + i));
      if (rng.chance(1, 2)) objects[at]->invoke(*t, fifo::dequeue());
      rt.commit(t);
    } catch (const TransactionAborted&) {
      rt.abort(t);
    }
  }
}

/// Runs one case under an externally owned schedule source (external so
/// run_dfs_explore can drive many runs through one DFS source).
SchedCaseResult run_with_source(const SchedCase& c, ScheduleSource& source) {
  SchedCaseResult result;
  std::vector<std::string> failures;
  auto probe = [&](bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  };

  source.begin_run();
  DschedOptions sched_options;
  sched_options.max_steps = 200'000;
  DeterministicScheduler sched(source, sched_options);
  Runtime rt(Runtime::RecorderMode::kFlight, SchedMode::kDeterministic,
             &sched);
  // Whatever unwinds below, the scheduler must be released before the
  // Runtime (and its sentinel thread) is torn down, or teardown would
  // wait on lanes that are never scheduled again.
  const auto release_guard = on_scope_exit([&] { sched.release(); });

  const bool bank = c.weaken_admission || c.adt != "queue";
  std::vector<std::shared_ptr<ManagedObject>> objects;
  objects.reserve(static_cast<std::size_t>(c.objects));
  for (int i = 0; i < c.objects; ++i) {
    const std::string name = "x" + std::to_string(i);
    if (c.weaken_admission) {
      // The seeded regression: a dynamic object that admits everything.
      auto obj = std::make_shared<DynamicAtomicObject<BankAccountAdt>>(
          rt.allocate_object_id(), name, rt.tm(), rt.recorder(),
          AdmissionMode::kChaosAdmitAll);
      rt.adopt(obj, std::make_shared<AdtSpec<BankAccountAdt>>());
      objects.push_back(std::move(obj));
    } else if (bank) {
      objects.push_back(make_object<BankAccountAdt>(rt, c.protocol, name));
    } else {
      objects.push_back(make_object<FifoQueueAdt>(rt, c.protocol, name));
    }
  }
  // 50ms of *virtual* time: generous against real blocking, but advanced
  // only by schedule decisions, so timeouts replay byte-for-byte.
  rt.set_wait_timeout_all(std::chrono::milliseconds(50));

  // Setup runs on the control thread (a pass-through, not a lane) before
  // any lane exists, so it is trivially deterministic.
  if (bank) {
    auto setup = rt.begin();
    for (auto& o : objects) {
      o->invoke(*setup, account::deposit(c.initial_balance));
    }
    rt.commit(setup);
  }

  FaultPlan plan = c.fault;
  plan.seed = c.seed;  // one seed drives schedule and faults alike
  auto injector = std::make_shared<FaultInjector>(plan);
  rt.set_fault_injector(injector);

  if (c.live_sentinel) {
    SentinelOptions sentinel_options;
    sentinel_options.window = std::chrono::milliseconds(1);
    rt.start_sentinel(sentinel_options);
    // The sentinel daemon must be lane 0 in every run, or lane ids — and
    // with them every schedule string — would depend on OS thread
    // startup timing.
    sched.await_lanes(1);
  }

  const std::size_t daemon_lanes = sched.lane_count();
  for (int lane = 0; lane < c.lanes; ++lane) {
    sched.spawn("lane" + std::to_string(lane), [&rt, &c, &objects, injector,
                                                bank, lane] {
      if (bank) {
        bank_lane(rt, c, objects, injector.get(), lane);
      } else {
        queue_lane(rt, c, objects, injector.get(), lane);
      }
    });
  }
  sched.await_lanes(daemon_lanes + static_cast<std::size_t>(c.lanes));
  sched.run();

  result.schedule = sched.schedule_string();
  result.steps = sched.steps();
  result.overflowed = sched.overflowed();
  result.crashed_mid_run = injector->crashes_fired() > 0;
  probe(!result.overflowed,
        "scheduler: run exceeded max_steps (not certifiable)");
  for (const std::string& e : sched.lane_errors()) {
    failures.push_back("lane error: " + e);
  }

  // Whole-node failure then recovery, exactly like the fault sweep, so
  // every explored interleaving also exercises crash -> recover.
  if (!result.crashed_mid_run) rt.crash();
  rt.set_fault_injector(nullptr);  // recovery and verification fault-free
  bool recovered = false;
  try {
    rt.recover();
    recovered = true;
  } catch (const std::exception& e) {
    // A log that does not replay is itself a certification failure (the
    // expected symptom of chaos admission: recorded results that no
    // serial order reproduces).
    failures.push_back(std::string("recovery: ") + e.what());
  }

  // Probe: conservation (meaningless under chaos admission, where lost
  // and duplicated money is the expected symptom).
  if (recovered && bank && !c.weaken_admission) {
    auto check = rt.begin();
    std::int64_t total = 0;
    for (auto& o : objects) {
      total += o->invoke(*check, account::balance()).as_int();
    }
    rt.commit(check);
    const std::int64_t expected =
        static_cast<std::int64_t>(c.objects) * c.initial_balance;
    probe(total == expected,
          "conservation: recovered total " + std::to_string(total) +
              " != " + std::to_string(expected));
  }

  // Probes over the stable log: replay order and watermark coverage.
  {
    const auto records = rt.tm().log().records();
    const Timestamp watermark = rt.tm().clock().watermark();
    Timestamp prev = 0;
    for (const auto& record : records) {
      probe(record.commit_ts >= prev,
            "log order: record ts " + std::to_string(record.commit_ts) +
                " after ts " + std::to_string(prev));
      prev = record.commit_ts;
      probe(record.commit_ts <= watermark,
            "watermark: forced ts " + std::to_string(record.commit_ts) +
                " above watermark " + std::to_string(watermark));
    }
  }

  // Formal certification over the full recorded history (this workload
  // has no read-only activities).
  const History h = rt.history();
  switch (c.weaken_admission ? Protocol::kDynamic : c.protocol) {
    case Protocol::kDynamic:
    case Protocol::kTwoPhase:
    case Protocol::kCommutativity: {
      const auto wf = check_well_formed(h);
      probe(wf.ok(), "well-formed: " + wf.summary());
      const auto verdict = check_dynamic_atomic(rt.system(), h);
      probe(verdict.ok, "dynamic atomic: " + verdict.explanation);
      break;
    }
    case Protocol::kStatic:
    case Protocol::kTimestamp: {
      const auto wf = check_well_formed_static(h);
      probe(wf.ok(), "well-formed(static): " + wf.summary());
      const auto verdict = check_static_atomic(rt.system(), h);
      probe(verdict.ok, "static atomic: " + verdict.explanation);
      break;
    }
    case Protocol::kHybrid:
    case Protocol::kOcc:
    case Protocol::kMvcc: {
      // OCC/MVCC serialize updates at their commit timestamp (validation
      // runs at the pipeline's turn), so their histories are certified
      // against the same hybrid-atomicity property.
      const auto wf = check_well_formed_hybrid(h, {});
      probe(wf.ok(), "well-formed(hybrid): " + wf.summary());
      const auto verdict = check_hybrid_atomic(rt.system(), h);
      probe(verdict.ok, "hybrid atomic: " + verdict.explanation);
      break;
    }
  }

  if (AtomicitySentinel* sentinel = rt.sentinel()) {
    sentinel->stop();
    result.sentinel_violations = sentinel->violations();
    probe(result.sentinel_violations == 0,
          "sentinel: " + sentinel->last_violation());
    rt.stop_sentinel();
  }

  const TxnStats stats = rt.tm().stats();
  result.committed = stats.committed;
  result.aborted = stats.aborted;
  result.faults_injected = injector->faults_injected();
  result.trace = h.to_string() + injector->trace_to_string();
  result.ok = failures.empty();
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) result.failure += "\n";
    result.failure += failures[i];
  }
  return result;
}

}  // namespace

std::string to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kRandom:
      return "random";
    case ScheduleKind::kPct:
      return "pct";
    case ScheduleKind::kDfs:
      return "dfs";
    case ScheduleKind::kReplay:
      return "replay";
  }
  return "unknown";
}

std::string to_config_string(const SchedCase& c) {
  std::ostringstream out;
  out << "# dsched case (replay: sched_corpus_test <file>)\n";
  out << "kind " << to_string(c.kind) << "\n";
  out << "seed " << c.seed << "\n";
  out << "pct_change_points " << c.pct_change_points << "\n";
  out << "protocol " << to_string(c.protocol) << "\n";
  out << "adt " << c.adt << "\n";
  out << "objects " << c.objects << "\n";
  out << "lanes " << c.lanes << "\n";
  out << "txns_per_lane " << c.txns_per_lane << "\n";
  out << "initial_balance " << c.initial_balance << "\n";
  out << "live_sentinel " << (c.live_sentinel ? 1 : 0) << "\n";
  out << "weaken_admission " << (c.weaken_admission ? 1 : 0) << "\n";
  out << "force_fail_permille " << c.fault.force_fail_permille << "\n";
  out << "force_max_retries " << c.fault.force_max_retries << "\n";
  out << "force_retry_backoff_us " << c.fault.force_retry_backoff_us << "\n";
  out << "torn_batch_permille " << c.fault.torn_batch_permille << "\n";
  out << "leader_latency_permille " << c.fault.leader_latency_permille
      << "\n";
  out << "leader_latency_us " << c.fault.leader_latency_us << "\n";
  out << "crash_point " << to_string(c.fault.crash_point) << "\n";
  out << "crash_at " << c.fault.crash_at_arrival << "\n";
  out << "spurious_timeout_permille " << c.fault.spurious_timeout_permille
      << "\n";
  out << "delayed_wakeup_permille " << c.fault.delayed_wakeup_permille
      << "\n";
  out << "delayed_wakeup_us " << c.fault.delayed_wakeup_us << "\n";
  out << "max_faults " << c.fault.max_faults << "\n";
  if (!c.schedule.empty()) out << "schedule " << c.schedule << "\n";
  return out.str();
}

bool parse_sched_case(const std::string& text, SchedCase* out,
                      std::string* error) {
  SchedCase c;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    // Trim; skip blanks and '#' comments (same lexical rules as parse.h).
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    if (line[0] == '#') continue;

    std::istringstream fields(line);
    std::string key, value, extra;
    if (!(fields >> key >> value) || (fields >> extra)) {
      return fail("expected `key value`: " + line);
    }

    if (key == "kind") {
      const auto k = kind_from_string(value);
      if (!k) return fail("unknown schedule kind: " + value);
      c.kind = *k;
      continue;
    }
    if (key == "protocol") {
      const auto p = protocol_from_string(value);
      if (!p) return fail("unknown protocol: " + value);
      c.protocol = *p;
      continue;
    }
    if (key == "adt") {
      if (value != "bank" && value != "queue") {
        return fail("unknown adt: " + value);
      }
      c.adt = value;
      continue;
    }
    if (key == "crash_point") {
      const auto site = fault_site_from_string(value);
      if (!site) return fail("unknown crash point: " + value);
      c.fault.crash_point = *site;
      continue;
    }
    if (key == "schedule") {
      std::vector<std::uint32_t> choices;
      std::string sched_error;
      if (!parse_schedule_string(value, &choices, &sched_error)) {
        return fail("bad schedule: " + sched_error);
      }
      c.schedule = value;
      continue;
    }

    std::uint64_t n = 0;
    try {
      n = std::stoull(value);
    } catch (const std::exception&) {
      return fail("not a number: " + value);
    }
    if (key == "seed") {
      c.seed = n;
    } else if (key == "pct_change_points") {
      c.pct_change_points = static_cast<std::uint32_t>(n);
    } else if (key == "objects") {
      if (n == 0) return fail("objects must be > 0");
      c.objects = static_cast<int>(n);
    } else if (key == "lanes") {
      if (n == 0) return fail("lanes must be > 0");
      c.lanes = static_cast<int>(n);
    } else if (key == "txns_per_lane") {
      c.txns_per_lane = static_cast<int>(n);
    } else if (key == "initial_balance") {
      c.initial_balance = static_cast<std::int64_t>(n);
    } else if (key == "live_sentinel") {
      c.live_sentinel = n != 0;
    } else if (key == "weaken_admission") {
      c.weaken_admission = n != 0;
    } else if (key == "force_fail_permille") {
      c.fault.force_fail_permille = static_cast<std::uint32_t>(n);
    } else if (key == "force_max_retries") {
      c.fault.force_max_retries = static_cast<std::uint32_t>(n);
    } else if (key == "force_retry_backoff_us") {
      c.fault.force_retry_backoff_us = static_cast<std::uint32_t>(n);
    } else if (key == "torn_batch_permille") {
      c.fault.torn_batch_permille = static_cast<std::uint32_t>(n);
    } else if (key == "leader_latency_permille") {
      c.fault.leader_latency_permille = static_cast<std::uint32_t>(n);
    } else if (key == "leader_latency_us") {
      c.fault.leader_latency_us = static_cast<std::uint32_t>(n);
    } else if (key == "crash_at") {
      c.fault.crash_at_arrival = n;
    } else if (key == "spurious_timeout_permille") {
      c.fault.spurious_timeout_permille = static_cast<std::uint32_t>(n);
    } else if (key == "delayed_wakeup_permille") {
      c.fault.delayed_wakeup_permille = static_cast<std::uint32_t>(n);
    } else if (key == "delayed_wakeup_us") {
      c.fault.delayed_wakeup_us = static_cast<std::uint32_t>(n);
    } else if (key == "max_faults") {
      c.fault.max_faults = n;
    } else {
      return fail("unknown key: " + key);
    }
  }
  *out = c;
  return true;
}

SchedCaseResult run_sched_case(const SchedCase& c) {
  switch (c.kind) {
    case ScheduleKind::kRandom: {
      RandomScheduleSource source(c.seed);
      return run_with_source(c, source);
    }
    case ScheduleKind::kPct: {
      PctScheduleSource source(c.seed, c.pct_change_points);
      return run_with_source(c, source);
    }
    case ScheduleKind::kDfs: {
      // The leftmost DFS path only; run_dfs_explore walks the tree.
      DfsScheduleSource source;
      return run_with_source(c, source);
    }
    case ScheduleKind::kReplay: {
      std::vector<std::uint32_t> choices;
      std::string error;
      if (!parse_schedule_string(c.schedule, &choices, &error)) {
        SchedCaseResult bad;
        bad.failure = "bad schedule string: " + error;
        return bad;
      }
      ReplayScheduleSource source(std::move(choices));
      return run_with_source(c, source);
    }
  }
  SchedCaseResult bad;
  bad.failure = "unknown schedule kind";
  return bad;
}

DfsIndependence sched_independence(const std::string& adt) {
  const bool bank = adt != "queue";
  return [bank](const DfsStep& a, const DfsStep& b) {
    if (a.lane == b.lane) return false;  // program order is never reordered
    if (a.hint.point != WaitPoint::kObjectInvoke ||
        b.hint.point != WaitPoint::kObjectInvoke) {
      return false;  // only invocation steps carry a commutativity fact
    }
    if (!a.hint.has_object || !b.hint.has_object || !a.hint.has_op ||
        !b.hint.has_op) {
      return false;
    }
    if (!(a.hint.object == b.hint.object)) return true;
    return bank ? BankAccountAdt::static_commutes(a.hint.op, b.hint.op)
                : FifoQueueAdt::static_commutes(a.hint.op, b.hint.op);
  };
}

DfsExploreResult run_dfs_explore(const SchedCase& base,
                                 std::uint64_t max_runs,
                                 std::size_t max_depth) {
  SchedCase c = base;
  c.kind = ScheduleKind::kDfs;
  // The sentinel daemon would both inflate the branching factor and make
  // the ready sets depend on drain timing; DFS runs without it (offline
  // checkers still certify every path).
  c.live_sentinel = false;

  DfsOptions options;
  options.max_runs = max_runs;
  options.max_depth = max_depth;
  options.independent = sched_independence(c.weaken_admission ? "bank"
                                                              : c.adt);
  DfsScheduleSource source(std::move(options));

  DfsExploreResult out;
  do {
    const SchedCaseResult result = run_with_source(c, source);
    ++out.runs;
    if (result.ok) {
      ++out.certified;
    } else {
      out.failures.push_back({result.schedule, result.failure});
    }
  } while (source.next_run());
  out.pruned_branches = source.pruned_branches();
  out.exhausted = source.exhausted();
  return out;
}

std::vector<SchedCase> enumerate_sched_cases(
    const SchedExploreOptions& options) {
  struct Family {
    const char* adt;
    Protocol protocol;
  };
  const Family families[] = {
      {"bank", Protocol::kDynamic},
      {"bank", Protocol::kHybrid},
      {"bank", Protocol::kTwoPhase},
      {"bank", Protocol::kOcc},
      {"bank", Protocol::kMvcc},
      {"queue", Protocol::kDynamic},
  };

  // Fault mixes: clean, wait-path chaos, log-path chaos, pinned crash.
  struct Mix {
    const char* name;
    FaultPlan plan;  // seed overwritten per case
  };
  std::vector<Mix> mixes;
  {
    Mix clean{"clean", {}};
    mixes.push_back(clean);
    Mix waits{"wait-chaos", {}};
    waits.plan.spurious_timeout_permille = 60;
    waits.plan.delayed_wakeup_permille = 100;
    waits.plan.delayed_wakeup_us = 50;
    mixes.push_back(waits);
    Mix log{"log-chaos", {}};
    log.plan.force_fail_permille = 200;
    log.plan.force_max_retries = 2;
    log.plan.force_retry_backoff_us = 10;
    log.plan.torn_batch_permille = 200;
    mixes.push_back(log);
    Mix crash{"mid-apply-crash", {}};
    crash.plan.crash_point = FaultSite::kMidApply;
    crash.plan.crash_at_arrival = 2;
    mixes.push_back(crash);
  }

  std::vector<SchedCase> out;
  for (ScheduleKind kind : {ScheduleKind::kRandom, ScheduleKind::kPct}) {
    for (const Family& family : families) {
      if (options.weaken_admission &&
          (family.protocol != Protocol::kDynamic ||
           std::string(family.adt) == "queue")) {
        continue;  // the chaos-admission knob only exists on dynamic bank
      }
      for (const Mix& mix : mixes) {
        for (std::uint64_t s = 1; s <= options.seeds_per_cell; ++s) {
          SchedCase c;
          c.kind = kind;
          c.protocol = family.protocol;
          c.adt = family.adt;
          c.objects = options.objects;
          c.lanes = options.lanes;
          c.txns_per_lane = options.txns_per_lane;
          c.initial_balance = options.initial_balance;
          c.weaken_admission = options.weaken_admission;
          c.fault = mix.plan;
          // The seed identifies the whole cell, so no two cells share a
          // decision stream (schedule or faults).
          c.seed = s * 1000003ULL +
                   static_cast<std::uint64_t>(kind) * 7919ULL +
                   static_cast<std::uint64_t>(&family - families) * 101ULL +
                   static_cast<std::uint64_t>(&mix - mixes.data()) * 13ULL +
                   static_cast<std::uint64_t>(family.protocol);
          out.push_back(std::move(c));
        }
      }
    }
  }
  return out;
}

SchedExploreSummary run_sched_explore(const SchedExploreOptions& options) {
  SchedExploreSummary summary;
  for (const SchedCase& c : enumerate_sched_cases(options)) {
    const SchedCaseResult result = run_sched_case(c);
    ++summary.cases;
    if (result.ok) ++summary.certified;
    if (result.crashed_mid_run) ++summary.crashed_mid_run;
    summary.committed += result.committed;
    summary.faults_injected += result.faults_injected;
    summary.schedule_steps += result.steps;
    if (!result.ok) {
      SchedExploreFailure failure;
      failure.config = c;
      failure.failure = result.failure;
      failure.schedule = result.schedule;
      failure.minimized = minimize_failing_schedule(
          c, result.schedule,
          [](const SchedCase& probe) { return !run_sched_case(probe).ok; });
      summary.failures.push_back(std::move(failure));
    }
  }
  return summary;
}

SchedCase minimize_failing_schedule(
    const SchedCase& failing, const std::string& recorded,
    const std::function<bool(const SchedCase&)>& still_fails) {
  std::vector<std::uint32_t> choices;
  std::string error;
  if (!parse_schedule_string(recorded, &choices, &error)) {
    return failing;  // unparseable recording: nothing to minimize
  }

  SchedCase probe = failing;
  probe.kind = ScheduleKind::kReplay;

  const auto prefix = [&](std::size_t len) {
    return to_schedule_string(std::vector<std::uint32_t>(
        choices.begin(),
        choices.begin() + static_cast<std::ptrdiff_t>(len)));
  };

  // Past the replayed prefix the source defaults to the lowest-id ready
  // lane, so a prefix of length 0 is "the default schedule".
  probe.schedule = prefix(0);
  if (still_fails(probe)) return probe;

  // Invariant: fails at prefix hi (the full recording reproduces the
  // failure by construction), passes at lo.
  std::size_t lo = 0;
  std::size_t hi = choices.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    probe.schedule = prefix(mid);
    if (still_fails(probe)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  probe.schedule = prefix(hi);
  return probe;
}

}  // namespace argus
