#include "sim/metrics.h"

#include <iomanip>
#include <sstream>

namespace argus {

std::string WorkloadResult::summary() const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << "committed=" << committed << " aborted=" << aborted
      << " gave_up=" << gave_up << " throughput=" << throughput() << "/s"
      << " abort_rate=" << std::setprecision(3) << abort_rate()
      << std::setprecision(1) << " deadlocks=" << deadlocks << "\n";

  if (!aborts_by_reason.empty()) {
    out << "  aborts by reason:\n";
    for (const auto& [reason, n] : aborts_by_reason) {
      out << "    " << std::left << std::setw(16) << to_string(reason)
          << std::right << std::setw(10) << n << "\n";
    }
  }

  if (!by_label.empty()) {
    out << "  by label:            committed    aborted    mean_us     "
           "p50_us     p95_us     p99_us\n";
    for (const auto& [label, s] : by_label) {
      out << "    " << std::left << std::setw(16) << label << std::right
          << std::setw(11) << s.committed << std::setw(11) << s.aborted
          << std::setw(11) << s.latency.mean() << std::setw(11)
          << s.latency.percentile(0.50) << std::setw(11)
          << s.latency.percentile(0.95) << std::setw(11)
          << s.latency.percentile(0.99) << "\n";
    }
  }

  if (pipeline.commits > 0) {
    const auto stage_row = [&](const char* name, std::uint64_t us) {
      out << "    " << std::left << std::setw(16) << name << std::right
          << std::setw(12) << us << std::setw(12)
          << (static_cast<double>(us) /
              static_cast<double>(pipeline.commits))
          << "\n";
    };
    out << "  commit pipeline (" << pipeline.commits
        << " commits):      total_us   per_commit\n";
    stage_row("validate", pipeline.validate_us);
    stage_row("timestamp", pipeline.timestamp_us);
    stage_row("log", pipeline.log_us);
    stage_row("apply", pipeline.apply_us);
    out << "    group commit: forces=" << pipeline.log_forces
        << " records=" << pipeline.log_records
        << " avg_batch=" << pipeline.avg_batch()
        << " max_batch=" << pipeline.max_batch
        << " watermark_lag=" << pipeline.watermark_lag() << "\n";
  }
  return out.str();
}

}  // namespace argus
