#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace argus {

void LatencyStats::add(double micros) {
  ++count_;
  total_ += micros;
  max_ = std::max(max_, micros);
  if (sample_.size() < kSampleCap) sample_.push_back(micros);
}

void LatencyStats::merge(const LatencyStats& other) {
  count_ += other.count_;
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
  for (double v : other.sample_) {
    if (sample_.size() >= kSampleCap) break;
    sample_.push_back(v);
  }
}

double LatencyStats::percentile(double q) const {
  if (sample_.empty()) return 0.0;
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string WorkloadResult::summary() const {
  std::ostringstream out;
  out << "committed=" << committed << " aborted=" << aborted
      << " gave_up=" << gave_up << " throughput=" << throughput() << "/s"
      << " abort_rate=" << abort_rate() << " deadlocks=" << deadlocks;
  for (const auto& [reason, n] : aborts_by_reason) {
    out << " abort[" << to_string(reason) << "]=" << n;
  }
  return out.str();
}

}  // namespace argus
