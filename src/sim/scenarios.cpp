#include "sim/scenarios.h"

#include <chrono>
#include <thread>

#include "spec/adts/bank_account.h"
#include "spec/adts/fifo_queue.h"

namespace argus {

namespace {

void hold(int hold_us) {
  if (hold_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(hold_us));
  }
}

}  // namespace

BankScenario BankScenario::create(Runtime& rt, Protocol protocol, int n,
                                  std::int64_t initial_balance) {
  BankScenario scenario;
  scenario.accounts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    scenario.accounts.push_back(make_object<BankAccountAdt>(
        rt, protocol, "account" + std::to_string(i)));
  }
  if (initial_balance > 0) {
    auto setup = rt.begin();
    for (const auto& account : scenario.accounts) {
      account->invoke(*setup, account::deposit(initial_balance));
    }
    rt.commit(setup);
  }
  return scenario;
}

MixItem BankScenario::transfer_mix(std::int64_t amount, int weight,
                                   int hold_us) const {
  return MixItem{
      "transfer", TxnKind::kUpdate, weight,
      [accounts = this->accounts, amount, hold_us](Transaction& txn,
                                                   SplitMix64& rng) {
        const std::size_t from = rng.below(accounts.size());
        std::size_t to = rng.below(accounts.size());
        if (to == from) to = (to + 1) % accounts.size();
        const Value got =
            accounts[from]->invoke(txn, account::withdraw(amount));
        hold(hold_us);
        if (got.is_unit()) {  // "ok": funds were available
          accounts[to]->invoke(txn, account::deposit(amount));
        }
      }};
}

MixItem BankScenario::audit_mix(bool read_only, int weight,
                                int hold_us) const {
  return MixItem{
      "audit", read_only ? TxnKind::kReadOnly : TxnKind::kUpdate, weight,
      [accounts = this->accounts, hold_us](Transaction& txn, SplitMix64&) {
        std::int64_t total = 0;
        for (const auto& account : accounts) {
          total += account->invoke(txn, account::balance()).as_int();
          hold(hold_us);
        }
        (void)total;
      }};
}

std::int64_t BankScenario::total_balance(Runtime& rt, bool read_only) const {
  auto txn = read_only ? rt.begin_read_only() : rt.begin();
  std::int64_t total = 0;
  for (const auto& account : accounts) {
    total += account->invoke(*txn, account::balance()).as_int();
  }
  rt.commit(txn);
  return total;
}

QueueScenario QueueScenario::create(Runtime& rt, Protocol protocol,
                                    const std::string& name) {
  QueueScenario scenario;
  if (protocol == Protocol::kHybrid) {
    scenario.queue = rt.create_hybrid_queue(name);
  } else {
    scenario.queue = make_object<FifoQueueAdt>(rt, protocol, name);
  }
  return scenario;
}

MixItem QueueScenario::producer_mix(int burst, int weight) const {
  return MixItem{"producer", TxnKind::kUpdate, weight,
                 [queue = this->queue, burst](Transaction& txn,
                                              SplitMix64& rng) {
                   for (int i = 0; i < burst; ++i) {
                     queue->invoke(txn, fifo::enqueue(rng.range(0, 999)));
                   }
                 }};
}

MixItem QueueScenario::consumer_mix(int burst, int weight) const {
  return MixItem{"consumer", TxnKind::kUpdate, weight,
                 [queue = this->queue, burst](Transaction& txn, SplitMix64&) {
                   for (int i = 0; i < burst; ++i) {
                     queue->invoke(txn, fifo::dequeue());
                   }
                 }};
}

AccountScenario AccountScenario::create(Runtime& rt, Protocol protocol,
                                        std::int64_t initial_balance) {
  AccountScenario scenario;
  scenario.account = make_object<BankAccountAdt>(rt, protocol, "account");
  if (initial_balance > 0) {
    auto setup = rt.begin();
    scenario.account->invoke(*setup, account::deposit(initial_balance));
    rt.commit(setup);
  }
  return scenario;
}

MixItem AccountScenario::withdraw_mix(std::int64_t amount, int weight) const {
  return MixItem{"withdraw", TxnKind::kUpdate, weight,
                 [account = this->account, amount](Transaction& txn,
                                                   SplitMix64&) {
                   account->invoke(txn, account::withdraw(amount));
                 }};
}

MixItem AccountScenario::deposit_mix(std::int64_t amount, int weight) const {
  return MixItem{"deposit", TxnKind::kUpdate, weight,
                 [account = this->account, amount](Transaction& txn,
                                                   SplitMix64&) {
                   account->invoke(txn, account::deposit(amount));
                 }};
}

MixItem AccountScenario::withdraw_burst_mix(std::int64_t amount, int count,
                                            int hold_us, int weight) const {
  return MixItem{"withdraw", TxnKind::kUpdate, weight,
                 [account = this->account, amount, count, hold_us](
                     Transaction& txn, SplitMix64&) {
                   for (int i = 0; i < count; ++i) {
                     account->invoke(txn, account::withdraw(amount));
                     hold(hold_us);
                   }
                 }};
}

MixItem AccountScenario::deposit_burst_mix(std::int64_t amount, int count,
                                           int hold_us, int weight) const {
  return MixItem{"deposit", TxnKind::kUpdate, weight,
                 [account = this->account, amount, count, hold_us](
                     Transaction& txn, SplitMix64&) {
                   for (int i = 0; i < count; ++i) {
                     account->invoke(txn, account::deposit(amount));
                     hold(hold_us);
                   }
                 }};
}

}  // namespace argus
