// Aggregated workload metrics: the measurements every experiment reports
// (committed/aborted counts by reason, latency distribution, throughput,
// and commit-pipeline stage counters). The latency aggregation itself
// lives in obs/latency_stats.h, shared with the metrics registry.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/errors.h"
#include "core/executor_stats.h"
#include "obs/latency_stats.h"
#include "txn/manager.h"

namespace argus {

struct LabelStats {
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::map<AbortReason, std::uint64_t> aborts_by_reason;
  LatencyStats latency;  // committed transactions, begin-to-commit incl. retries
};

struct WorkloadResult {
  double seconds{0.0};
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::uint64_t gave_up{0};  // exceeded retry budget
  std::map<AbortReason, std::uint64_t> aborts_by_reason;
  std::map<std::string, LabelStats> by_label;
  std::uint64_t deadlocks{0};
  /// Commit-pipeline counters captured from the runtime at the end of the
  /// run: per-stage time, group-commit batch shape, watermark lag.
  CommitPipelineStats pipeline;
  /// Executor-pool counters (queue pressure, retries, validation aborts)
  /// captured from the driver's TxnExecutor before it shut down.
  ExecutorStatsSnapshot executor;

  [[nodiscard]] double throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  }
  [[nodiscard]] double abort_rate() const {
    const auto attempts = committed + aborted;
    return attempts == 0 ? 0.0
                         : static_cast<double>(aborted) /
                               static_cast<double>(attempts);
  }
  /// Multi-line report: headline rates, the abort-reason table, the
  /// per-label mix table (throughput + latency quantiles), and the
  /// commit-pipeline stage breakdown.
  [[nodiscard]] std::string summary() const;
};

}  // namespace argus
