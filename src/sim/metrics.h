// Aggregated workload metrics: the measurements every experiment reports
// (committed/aborted counts by reason, latency distribution, throughput,
// and commit-pipeline stage counters).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/errors.h"
#include "common/rng.h"
#include "txn/manager.h"

namespace argus {

/// Online latency aggregation with a bounded reservoir sample for
/// percentiles. add() runs Algorithm R, so every observation has equal
/// probability of being retained regardless of arrival position — the
/// sample stays unbiased under arbitrarily long runs (the previous
/// first-N truncation over-weighted warm-up latencies).
class LatencyStats {
 public:
  static constexpr std::size_t kSampleCap = 65536;

  void add(double micros);

  /// Merges another aggregate into this one. When the combined samples
  /// fit under the cap this is exact concatenation; otherwise the merged
  /// reservoir draws from each side proportionally to its observation
  /// count, preserving (approximately) uniform inclusion probability.
  void merge(const LatencyStats& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  [[nodiscard]] double max() const { return max_; }
  /// q in [0,1]; computed from the retained sample (all points when fewer
  /// than the cap were observed).
  [[nodiscard]] double percentile(double q) const;

 private:
  std::uint64_t count_{0};
  double total_{0.0};
  double max_{0.0};
  std::vector<double> sample_;
  SplitMix64 rng_{0x61727573u};  // fixed seed: deterministic replacement
};

struct LabelStats {
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::map<AbortReason, std::uint64_t> aborts_by_reason;
  LatencyStats latency;  // committed transactions, begin-to-commit incl. retries
};

struct WorkloadResult {
  double seconds{0.0};
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::uint64_t gave_up{0};  // exceeded retry budget
  std::map<AbortReason, std::uint64_t> aborts_by_reason;
  std::map<std::string, LabelStats> by_label;
  std::uint64_t deadlocks{0};
  /// Commit-pipeline counters captured from the runtime at the end of the
  /// run: per-stage time, group-commit batch shape, watermark lag.
  CommitPipelineStats pipeline;

  [[nodiscard]] double throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  }
  [[nodiscard]] double abort_rate() const {
    const auto attempts = committed + aborted;
    return attempts == 0 ? 0.0
                         : static_cast<double>(aborted) /
                               static_cast<double>(attempts);
  }
  [[nodiscard]] std::string summary() const;
};

}  // namespace argus
