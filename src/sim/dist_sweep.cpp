#include "sim/dist_sweep.h"

#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "check/atomicity.h"
#include "common/rng.h"
#include "dist/dist_runtime.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"

namespace argus {

namespace {

std::optional<Protocol> protocol_from_string(const std::string& name) {
  for (Protocol p : {Protocol::kDynamic, Protocol::kHybrid}) {
    if (to_string(p) == name) return p;
  }
  return std::nullopt;
}

}  // namespace

std::string to_dist_config_string(const DistSweepCase& c) {
  std::ostringstream out;
  out << "# dist-sweep case (replay: examples/dist_replay <file>)\n";
  out << "sites " << c.sites << "\n";
  out << "protocol " << to_string(c.protocol) << "\n";
  out << "sharded " << c.sharded << "\n";
  out << "replicated " << c.replicated << "\n";
  out << "transactions " << c.transactions << "\n";
  out << "initial_balance " << c.initial_balance << "\n";
  out << "seed " << c.plan.seed << "\n";
  out << "site_fail_permille " << c.plan.site_fail_permille << "\n";
  out << "site_recover_permille " << c.plan.site_recover_permille << "\n";
  out << "force_fail_permille " << c.plan.force_fail_permille << "\n";
  out << "force_max_retries " << c.plan.force_max_retries << "\n";
  out << "force_retry_backoff_us " << c.plan.force_retry_backoff_us << "\n";
  out << "torn_batch_permille " << c.plan.torn_batch_permille << "\n";
  out << "leader_latency_permille " << c.plan.leader_latency_permille << "\n";
  out << "leader_latency_us " << c.plan.leader_latency_us << "\n";
  out << "crash_point " << to_string(c.plan.crash_point) << "\n";
  out << "crash_at " << c.plan.crash_at_arrival << "\n";
  out << "spurious_timeout_permille " << c.plan.spurious_timeout_permille
      << "\n";
  out << "delayed_wakeup_permille " << c.plan.delayed_wakeup_permille << "\n";
  out << "delayed_wakeup_us " << c.plan.delayed_wakeup_us << "\n";
  out << "coord_crash_point " << to_string(c.plan.coord_crash_point) << "\n";
  out << "coord_crash_at " << c.plan.coord_crash_at_arrival << "\n";
  out << "coord_recover_permille " << c.plan.coord_recover_permille << "\n";
  out << "decision_force_fail_permille "
      << c.plan.decision_force_fail_permille << "\n";
  out << "msg_loss_permille " << c.plan.msg_loss_permille << "\n";
  out << "msg_latency_permille " << c.plan.msg_latency_permille << "\n";
  out << "msg_latency_us " << c.plan.msg_latency_us << "\n";
  out << "msg_retries " << c.plan.msg_retries << "\n";
  out << "max_faults " << c.plan.max_faults << "\n";
  return out.str();
}

bool parse_dist_case(const std::string& text, DistSweepCase* out,
                     std::string* error) {
  DistSweepCase c;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    if (line[0] == '#') continue;

    std::istringstream fields(line);
    std::string key, value, extra;
    if (!(fields >> key >> value) || (fields >> extra)) {
      return fail("expected `key value`: " + line);
    }

    if (key == "protocol") {
      const auto p = protocol_from_string(value);
      if (!p) return fail("unknown/unsupported protocol: " + value);
      c.protocol = *p;
      continue;
    }
    if (key == "crash_point") {
      const auto site = fault_site_from_string(value);
      if (!site) return fail("unknown crash point: " + value);
      c.plan.crash_point = *site;
      continue;
    }
    if (key == "coord_crash_point") {
      const auto site = fault_site_from_string(value);
      if (!site) return fail("unknown coordinator crash point: " + value);
      c.plan.coord_crash_point = *site;
      continue;
    }

    std::uint64_t n = 0;
    try {
      n = std::stoull(value);
    } catch (const std::exception&) {
      return fail("not a number: " + value);
    }
    if (key == "sites") {
      if (n == 0) return fail("sites must be > 0");
      c.sites = static_cast<int>(n);
    } else if (key == "sharded") {
      c.sharded = static_cast<int>(n);
    } else if (key == "replicated") {
      c.replicated = static_cast<int>(n);
    } else if (key == "transactions") {
      c.transactions = static_cast<int>(n);
    } else if (key == "initial_balance") {
      c.initial_balance = static_cast<std::int64_t>(n);
    } else if (key == "seed") {
      c.plan.seed = n;
    } else if (key == "site_fail_permille") {
      c.plan.site_fail_permille = static_cast<std::uint32_t>(n);
    } else if (key == "site_recover_permille") {
      c.plan.site_recover_permille = static_cast<std::uint32_t>(n);
    } else if (key == "force_fail_permille") {
      c.plan.force_fail_permille = static_cast<std::uint32_t>(n);
    } else if (key == "force_max_retries") {
      c.plan.force_max_retries = static_cast<std::uint32_t>(n);
    } else if (key == "force_retry_backoff_us") {
      c.plan.force_retry_backoff_us = static_cast<std::uint32_t>(n);
    } else if (key == "torn_batch_permille") {
      c.plan.torn_batch_permille = static_cast<std::uint32_t>(n);
    } else if (key == "leader_latency_permille") {
      c.plan.leader_latency_permille = static_cast<std::uint32_t>(n);
    } else if (key == "leader_latency_us") {
      c.plan.leader_latency_us = static_cast<std::uint32_t>(n);
    } else if (key == "crash_at") {
      c.plan.crash_at_arrival = n;
    } else if (key == "spurious_timeout_permille") {
      c.plan.spurious_timeout_permille = static_cast<std::uint32_t>(n);
    } else if (key == "delayed_wakeup_permille") {
      c.plan.delayed_wakeup_permille = static_cast<std::uint32_t>(n);
    } else if (key == "delayed_wakeup_us") {
      c.plan.delayed_wakeup_us = static_cast<std::uint32_t>(n);
    } else if (key == "coord_crash_at") {
      c.plan.coord_crash_at_arrival = n;
    } else if (key == "coord_recover_permille") {
      c.plan.coord_recover_permille = static_cast<std::uint32_t>(n);
    } else if (key == "decision_force_fail_permille") {
      c.plan.decision_force_fail_permille = static_cast<std::uint32_t>(n);
    } else if (key == "msg_loss_permille") {
      c.plan.msg_loss_permille = static_cast<std::uint32_t>(n);
    } else if (key == "msg_latency_permille") {
      c.plan.msg_latency_permille = static_cast<std::uint32_t>(n);
    } else if (key == "msg_latency_us") {
      c.plan.msg_latency_us = static_cast<std::uint32_t>(n);
    } else if (key == "msg_retries") {
      c.plan.msg_retries = static_cast<std::uint32_t>(n);
    } else if (key == "max_faults") {
      c.plan.max_faults = n;
    } else {
      return fail("unknown key: " + key);
    }
  }
  if (c.sharded + c.replicated == 0) return fail("no accounts configured");
  *out = c;
  return true;
}

DistCaseResult run_dist_case(const DistSweepCase& c) {
  DistCaseResult result;
  std::vector<std::string> failures;
  auto probe = [&](bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  };

  DistOptions options;
  options.sites = static_cast<std::size_t>(c.sites);
  options.protocol = c.protocol;
  DistRuntime dist(options);

  std::vector<std::string> names;
  for (int i = 0; i < c.sharded; ++i) {
    const std::string name = "s" + std::to_string(i);
    dist.create_sharded<BankAccountAdt>(name);
    names.push_back(name);
  }
  for (int i = 0; i < c.replicated; ++i) {
    const std::string name = "r" + std::to_string(i);
    dist.create_replicated<BankAccountAdt>(name);
    names.push_back(name);
  }

  std::vector<AtomicitySentinel*> sentinels;
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    Runtime& rt = dist.site(i).runtime();
    rt.set_wait_timeout_all(std::chrono::milliseconds(200));
    SentinelOptions sentinel_options;
    sentinel_options.window = std::chrono::milliseconds(2);
    sentinels.push_back(&rt.start_sentinel(sentinel_options));
  }

  // Seed every account before faults are live: the conservation probe
  // needs a known starting total, and the model starts from a quiescent
  // committed state. With >1 site this is itself a 2PC (it writes at
  // every site).
  {
    auto setup = dist.begin();
    for (const auto& name : names) {
      dist.write(*setup, name, account::deposit(c.initial_balance));
    }
    dist.commit(setup);
  }

  dist.set_fault_plan(c.plan);

  // Deterministic single-threaded workload: transfers between random
  // logical accounts (sharded<->replicated pairs force 2PC), plus
  // read-only audits under the hybrid protocol and occasional in-update
  // reads (the available-copies read path) under both.
  SplitMix64 rng(c.plan.seed * 0x9e3779b97f4a7c15ULL + 1);
  for (int i = 0; i < c.transactions; ++i) {
    dist.tick_site_faults();
    // Cooperative termination runs between transactions, like a real
    // deployment's periodic status round: fenced participants (stranded
    // prepared by a coordinator crash or lost decide messages) resolve
    // their in-doubt records and rejoin mid-run. A no-op — beyond lazy
    // ack collection — when nothing is fenced, so pre-PR-8
    // configurations replay their traces unchanged.
    dist.run_termination_protocol();
    const bool audit =
        supports_snapshot_reads(c.protocol) && rng.chance(1, 4);
    const auto t = dist.begin(audit ? TxnKind::kReadOnly : TxnKind::kUpdate);
    try {
      if (audit) {
        for (const auto& name : names) {
          dist.read(*t, name, account::balance());
        }
      } else {
        const std::size_t n = names.size();
        const std::size_t from = rng.below(n);
        const std::size_t to =
            n > 1 ? (from + 1 + rng.below(n - 1)) % n : from;
        const std::int64_t amount = rng.range(1, 5);
        const Value got =
            dist.write(*t, names[from], account::withdraw(amount));
        if (got.is_unit()) {
          dist.write(*t, names[to], account::deposit(amount));
        }
        if (rng.chance(1, 3)) {
          dist.read(*t, names[to], account::balance());
        }
      }
      dist.commit(t);
    } catch (const TransactionAborted&) {
      // read/write/commit abort the distributed transaction before
      // throwing; nothing to clean up.
    }
  }

  // Epilogue: verification runs fault-free. Clear the per-site injectors
  // (the coordinator injector only acts when ticked, and the epilogue
  // never ticks), then recover every down site — the full crash ->
  // in-doubt resolution -> log replay -> catch-up path, now guaranteed
  // to complete.
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    dist.site(i).runtime().set_fault_injector(nullptr);
  }
  // Coordinator first: site recovery is atomic and refuses while an
  // in-doubt record is unresolvable, which with every peer down only the
  // recovered commit list can break.
  if (!dist.coordinator_up()) {
    probe(dist.recover_coordinator(), "recover: coordinator failed");
  }
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    if (!dist.site(i).up()) {
      probe(dist.recover(i),
            "recover: site " + std::to_string(i) + " failed fault-free");
    }
  }
  // Final termination round: with everything up it only re-derives acks
  // from the participants' stable logs and truncates settled decisions.
  dist.run_termination_protocol();

  // The replayable artifact: everything up to (not including) the
  // verification probes, so two runs of the same case compare
  // byte-for-byte without the probes' own transactions in the way.
  result.trace = dist.merged_trace();

  const DistStats stats = dist.stats();

  // Probe: conservation + replica agreement, via the administrative dump
  // (bypasses the stale-read rule; every site is up, so every copy of
  // every variable answers exactly once).
  {
    std::map<std::string, std::vector<std::int64_t>> by_var;
    for (const auto& entry : dist.dump(account::balance())) {
      by_var[entry.var].push_back(entry.value.as_int());
    }
    probe(by_var.size() == names.size(),
          "dump: " + std::to_string(by_var.size()) + " of " +
              std::to_string(names.size()) + " variables answered");
    std::int64_t total = 0;
    for (const auto& [var, values] : by_var) {
      total += values.front();
      for (const std::int64_t v : values) {
        probe(v == values.front(),
              "replica agreement: " + var + " has copies " +
                  std::to_string(values.front()) + " and " +
                  std::to_string(v));
      }
    }
    const std::int64_t expected =
        static_cast<std::int64_t>(names.size()) * c.initial_balance;
    probe(total == expected,
          "conservation: recovered total " + std::to_string(total) +
              " != " + std::to_string(expected));
  }
  probe(stats.replica_divergence == 0,
        "replica divergence: " + std::to_string(stats.replica_divergence) +
            " mismatched write results");

  // With every participant recovered and acks re-synced, the decision
  // log must have truncated to empty — unless torn-batch faults could
  // drop a participant's committed record, in which case catch-up
  // restores the value but the ack is honestly never derivable.
  if (c.plan.torn_batch_permille == 0) {
    probe(dist.decision_log().outstanding() == 0,
          "decision log: " + std::to_string(dist.decision_log().outstanding()) +
              " decisions still outstanding after full recovery");
  }

  // Probes per site: stable-log order, watermark coverage, and total
  // in-doubt resolution — with every site and the coordinator recovered,
  // no prepared record may remain anywhere (each was promoted or dropped
  // by recovery / the termination protocol).
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    const std::string tag = "site" + std::to_string(i) + " ";
    Runtime& rt = dist.site(i).runtime();
    probe(rt.tm().log().prepared_records().empty(),
          tag + "termination: " +
              std::to_string(rt.tm().log().prepared_records().size()) +
              " records still in doubt after recovery");
    const auto records = rt.tm().log().records();
    const Timestamp watermark = rt.tm().clock().watermark();
    Timestamp prev = 0;
    for (const auto& record : records) {
      probe(record.commit_ts >= prev,
            tag + "log order: record ts " + std::to_string(record.commit_ts) +
                " after ts " + std::to_string(prev));
      prev = record.commit_ts;
      probe(record.commit_ts <= watermark,
            tag + "watermark: forced ts " + std::to_string(record.commit_ts) +
                " above watermark " + std::to_string(watermark));
    }
  }

  // Formal certification, twice over: each site's local history against
  // its local objects, and the merged cross-site history (one activity
  // per global transaction) against every replica in the deployment.
  const auto read_only = dist.read_only_activities();
  auto certify = [&](const SystemSpec& system, const History& h,
                     const std::string& tag) {
    switch (c.protocol) {
      case Protocol::kDynamic: {
        const auto wf = check_well_formed(h);
        probe(wf.ok(), tag + "well-formed: " + wf.summary());
        const auto verdict = check_dynamic_atomic(system, h);
        probe(verdict.ok, tag + "dynamic atomic: " + verdict.explanation);
        break;
      }
      default: {
        const auto wf = check_well_formed_hybrid(h, read_only);
        probe(wf.ok(), tag + "well-formed(hybrid): " + wf.summary());
        const auto verdict = check_hybrid_atomic(system, h);
        probe(verdict.ok, tag + "hybrid atomic: " + verdict.explanation);
        break;
      }
    }
  };
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    Runtime& rt = dist.site(i).runtime();
    certify(rt.system(), rt.history(), "site" + std::to_string(i) + " ");
  }
  certify(dist.merged_system(), dist.merged_history(), "merged ");

  // The online sentinels watched the same run, crash windows included.
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    sentinels[i]->stop();
    probe(sentinels[i]->violations() == 0,
          "site" + std::to_string(i) +
              " sentinel: " + sentinels[i]->last_violation());
    dist.site(i).runtime().stop_sentinel();
  }

  result.faults_injected = 0;
  if (FaultInjector* coord = dist.coordinator_injector()) {
    result.faults_injected += coord->faults_injected();
  }
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    if (FaultInjector* inj = dist.site(i).runtime().fault_injector()) {
      result.faults_injected += inj->faults_injected();
    }
  }
  result.site_fails = stats.site_fails;
  result.site_recovers = stats.site_recovers;
  result.committed =
      stats.one_phase_commits + stats.two_pc_commits + stats.read_only_commits;
  result.two_pc_commits = stats.two_pc_commits;
  result.aborted = stats.aborts;
  result.promoted_commits = stats.promoted_commits;
  result.presumed_aborts = stats.presumed_aborts;
  result.catchup_txns = stats.catchup_txns;
  result.coord_crashes = stats.coord_crashes;
  result.coord_recovers = stats.coord_recovers;
  result.decisions_logged = stats.decisions_logged;
  result.msgs_lost = stats.msgs_lost;
  result.termination_promotions =
      stats.termination_promoted + stats.termination_peer_promotions;
  result.ok = failures.empty();
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) result.failure += "\n";
    result.failure += failures[i];
  }
  return result;
}

std::vector<DistSweepCase> enumerate_dist_cases(
    const DistSweepOptions& options) {
  // Fault mixes: clean, site churn alone, log faults alone, a pinned
  // mid-commit crash (delivered as a site failure) with recovery churn,
  // then everything at once.
  struct Mix {
    const char* name;
    FaultPlan plan;  // seed/crash_at overwritten per cell
  };
  std::vector<Mix> mixes;
  {
    Mix clean{"clean", {}};
    mixes.push_back(clean);
    Mix churn{"site-churn", {}};
    churn.plan.site_fail_permille = 80;
    churn.plan.site_recover_permille = 350;
    mixes.push_back(churn);
    Mix log_faults{"log-faults", {}};
    log_faults.plan.force_fail_permille = 200;
    log_faults.plan.force_max_retries = 2;
    log_faults.plan.force_retry_backoff_us = 10;
    log_faults.plan.torn_batch_permille = 200;
    mixes.push_back(log_faults);
    Mix crash{"pinned-crash", {}};
    crash.plan.crash_point = FaultSite::kPostForcePreApply;
    crash.plan.site_recover_permille = 300;  // let the failed site return
    mixes.push_back(crash);
    Mix chaos{"chaos", {}};
    chaos.plan.site_fail_permille = 60;
    chaos.plan.site_recover_permille = 300;
    chaos.plan.force_fail_permille = 100;
    chaos.plan.force_max_retries = 2;
    chaos.plan.force_retry_backoff_us = 10;
    chaos.plan.torn_batch_permille = 120;
    chaos.plan.leader_latency_permille = 100;
    chaos.plan.leader_latency_us = 50;
    chaos.plan.crash_point = FaultSite::kMidApply;
    mixes.push_back(chaos);
  }

  std::vector<DistSweepCase> out;
  for (const int sites : options.site_counts) {
    for (const Mix& mix : mixes) {
      const auto mix_index = static_cast<std::uint64_t>(&mix - mixes.data());
      const bool pinned_crash = mix.plan.crash_point != FaultSite::kPreForce;
      for (Protocol protocol : options.protocols) {
        for (std::uint64_t s = 1; s <= options.seeds_per_cell; ++s) {
          DistSweepCase c;
          c.plan = mix.plan;
          c.protocol = protocol;
          c.sites = sites;
          c.sharded = options.sharded;
          c.replicated = options.replicated;
          c.transactions = options.transactions;
          c.initial_balance = options.initial_balance;
          // Seed identifies the cell, so no two cells share a stream.
          c.plan.seed = s * 1000003ULL + static_cast<std::uint64_t>(sites) * 7919ULL +
                        mix_index * 101ULL + static_cast<std::uint64_t>(protocol);
          // Vary which pipeline arrival dies so early and late crashes
          // both occur (0 disables the pinned crash).
          c.plan.crash_at_arrival = pinned_crash ? 1 + (s % 6) : 0;
          out.push_back(c);
        }
      }
    }
  }

  // Coordinator-fault axis (appended so the base grid keeps its order):
  // a pinned coordinator crash at each of the four 2PC protocol steps,
  // crossed with message-fault mixes, at a fixed 3-site deployment — two
  // participants to strand, plus a surviving peer for the cooperative
  // termination protocol's status queries.
  std::vector<Mix> coord_mixes;
  {
    Mix bare{"coord-crash", {}};
    bare.plan.coord_recover_permille = 400;
    coord_mixes.push_back(bare);
    Mix lossy{"coord-lossy", {}};
    lossy.plan.coord_recover_permille = 400;
    lossy.plan.msg_loss_permille = 150;
    lossy.plan.msg_retries = 2;
    // Spurious timeouts land on the peer-query wait path too, wasting
    // termination rounds (bounded retry + backoff).
    lossy.plan.spurious_timeout_permille = 120;
    coord_mixes.push_back(lossy);
    Mix chaos{"coord-chaos", {}};
    chaos.plan.coord_recover_permille = 300;
    chaos.plan.msg_loss_permille = 100;
    chaos.plan.msg_latency_permille = 250;
    chaos.plan.msg_latency_us = 100;
    chaos.plan.msg_retries = 2;
    chaos.plan.decision_force_fail_permille = 100;
    chaos.plan.site_fail_permille = 60;
    chaos.plan.site_recover_permille = 300;
    coord_mixes.push_back(chaos);
  }
  const FaultSite coord_steps[] = {
      FaultSite::kCoordPrePrepare, FaultSite::kCoordPostPrepare,
      FaultSite::kCoordPostDecision, FaultSite::kCoordMidDelivery};
  constexpr int kCoordSites = 3;
  for (std::uint64_t step_index = 0; step_index < std::size(coord_steps);
       ++step_index) {
    const FaultSite step = coord_steps[step_index];
    for (const Mix& mix : coord_mixes) {
      // Continues the base grid's mix numbering so no two cells —
      // across both axes — share a seed stream.
      const auto mix_index =
          static_cast<std::uint64_t>(mixes.size()) +
          step_index * coord_mixes.size() +
          static_cast<std::uint64_t>(&mix - coord_mixes.data());
      for (Protocol protocol : options.protocols) {
        for (std::uint64_t s = 1; s <= options.seeds_per_cell; ++s) {
          DistSweepCase c;
          c.plan = mix.plan;
          c.protocol = protocol;
          c.sites = kCoordSites;
          c.sharded = options.sharded;
          c.replicated = options.replicated;
          c.transactions = options.transactions;
          c.initial_balance = options.initial_balance;
          c.plan.seed = s * 1000003ULL +
                        static_cast<std::uint64_t>(kCoordSites) * 7919ULL +
                        mix_index * 101ULL + static_cast<std::uint64_t>(protocol);
          c.plan.coord_crash_point = step;
          // Vary which 2PC hits the crash so early and late coordinator
          // deaths both occur.
          c.plan.coord_crash_at_arrival = 1 + (s % 3);
          out.push_back(c);
        }
      }
    }
  }
  return out;
}

DistSweepSummary run_dist_sweep(const DistSweepOptions& options) {
  DistSweepSummary summary;
  for (const DistSweepCase& c : enumerate_dist_cases(options)) {
    const DistCaseResult result = run_dist_case(c);
    ++summary.cases;
    summary.faults_injected += result.faults_injected;
    summary.site_fails += result.site_fails;
    summary.committed += result.committed;
    summary.two_pc_commits += result.two_pc_commits;
    summary.promoted_commits += result.promoted_commits;
    summary.coord_crashes += result.coord_crashes;
    summary.termination_promotions += result.termination_promotions;
    if (!result.ok) summary.failures.push_back({c, result.failure});
  }
  return summary;
}

DistSweepCase minimize_dist_budget(
    const DistSweepCase& failing,
    const std::function<bool(const DistSweepCase&)>& still_fails) {
  DistSweepCase probe = failing;
  std::uint64_t hi = run_dist_case(failing).faults_injected;
  probe.plan.max_faults = 0;
  if (still_fails(probe)) return probe;  // needs no probabilistic faults

  std::uint64_t lo = 0;
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    probe.plan.max_faults = mid;
    if (still_fails(probe)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  probe.plan.max_faults = hi;
  return probe;
}

}  // namespace argus
