// Deterministic interleaving explorer: enumerate {schedule source x
// object family x fault mix}, run each cell under the deterministic
// cooperative scheduler (src/dsched), and certify every explored
// interleaving with the formal atomicity checkers plus the live sentinel.
//
// One seed drives both dimensions of nondeterminism: the schedule
// source's choices and the fault injector's decisions derive from the
// same SchedCase::seed, so a case replays byte-for-byte from its config
// alone — the same contract the fault sweep established for FaultPlan,
// extended to thread interleavings. Every run additionally emits a
// compact schedule string; replaying it (ScheduleKind::kReplay) pins the
// exact interleaving, and prefix-length bisection over that string is
// the schedule minimizer (mirroring minimize_fault_budget).
//
// Exploration strategies per case: seeded-random, PCT-style priority
// schedules with k change points, and (run_dfs_explore) exhaustive DFS
// over small configurations with sleep-set-style pruning of commuting
// steps, using the ADTs' static commutativity as the independence
// relation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dsched/schedule_source.h"
#include "fault/fault.h"
#include "sched/factory.h"

namespace argus {

enum class ScheduleKind {
  kRandom,  // uniform over the ready set, seeded
  kPct,     // PCT priority schedule with k change points
  kDfs,     // leftmost DFS path (use run_dfs_explore for the full tree)
  kReplay,  // replay SchedCase::schedule exactly
};

[[nodiscard]] std::string to_string(ScheduleKind kind);

/// One explorer configuration. Round-trips through
/// to_config_string/parse_sched_case (the tests/corpus/sched file
/// format).
struct SchedCase {
  ScheduleKind kind{ScheduleKind::kRandom};
  /// Drives the schedule source AND the fault plan (plan seed is
  /// overwritten with this value at run time).
  std::uint64_t seed{1};
  std::uint32_t pct_change_points{2};
  Protocol protocol{Protocol::kDynamic};
  std::string adt{"bank"};  // "bank" | "queue"
  int objects{2};
  int lanes{3};
  int txns_per_lane{2};
  std::int64_t initial_balance{3};
  bool live_sentinel{true};
  /// Seeded regression knob: replaces the dynamic objects' admission
  /// test with admit-everything (AdmissionMode::kChaosAdmitAll). Runs
  /// under it must FAIL certification; the explorer minimizes them.
  /// Only meaningful for adt=bank, protocol=dynamic.
  bool weaken_admission{false};
  FaultPlan fault;
  /// Recorded schedule to replay (kReplay); ignored otherwise.
  std::string schedule;

  friend bool operator==(const SchedCase&, const SchedCase&) = default;
};

/// Renders a case as `key value` lines ('#' comments allowed).
[[nodiscard]] std::string to_config_string(const SchedCase& c);

/// Parses the to_config_string format. Unknown keys and malformed lines
/// are errors. On failure returns false and sets *error.
[[nodiscard]] bool parse_sched_case(const std::string& text, SchedCase* out,
                                    std::string* error);

struct SchedCaseResult {
  bool ok{false};
  std::string failure;   // every failed probe/checker, newline-separated
  std::string trace;     // parse.h history dump + '#' fault-trace lines
  std::string schedule;  // the schedule string this run took
  std::uint64_t steps{0};
  bool overflowed{false};
  bool crashed_mid_run{false};
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::uint64_t faults_injected{0};
  std::uint64_t sentinel_violations{0};
};

/// Runs one case start to finish under the deterministic scheduler:
/// build the objects, attach the injector, drive the lanes to
/// completion, crash, recover, certify. Deterministic: same case, same
/// result, byte-equal trace, identical schedule string.
[[nodiscard]] SchedCaseResult run_sched_case(const SchedCase& c);

/// The independence relation used for sleep-set pruning: two steps
/// commute when they are object invocations by different lanes that
/// either target different objects or statically commute under the ADT.
/// Sound under-approximation — anything else is treated as dependent.
[[nodiscard]] DfsIndependence sched_independence(const std::string& adt);

struct DfsExploreResult {
  std::uint64_t runs{0};
  std::uint64_t certified{0};
  std::uint64_t pruned_branches{0};
  bool exhausted{false};  // full tree explored (vs. max_runs truncation)
  struct Failure {
    std::string schedule;
    std::string failure;
  };
  std::vector<Failure> failures;
};

/// Exhaustive DFS over `base`'s configuration (live_sentinel is forced
/// off: the daemon lane would inflate the branching factor), certifying
/// every non-pruned interleaving. Stops after max_runs executions.
[[nodiscard]] DfsExploreResult run_dfs_explore(const SchedCase& base,
                                               std::uint64_t max_runs = 4096,
                                               std::size_t max_depth = 4096);

/// Sweep shape: {random, pct} x object families x fault mixes x seeds.
struct SchedExploreOptions {
  std::uint64_t seeds_per_cell{16};
  int objects{2};
  int lanes{3};
  int txns_per_lane{2};
  std::int64_t initial_balance{3};
  bool weaken_admission{false};  // seeded-regression sweep when true
};

/// The enumerated configurations (deterministic order). With the default
/// options: 2 kinds x 6 families x 4 mixes x 16 seeds = 768 cases.
[[nodiscard]] std::vector<SchedCase> enumerate_sched_cases(
    const SchedExploreOptions& options = {});

struct SchedExploreFailure {
  SchedCase config;          // as enumerated
  SchedCase minimized;       // kReplay with the bisected schedule prefix
  std::string failure;
  std::string schedule;      // full recorded schedule of the failing run
};

struct SchedExploreSummary {
  std::uint64_t cases{0};
  std::uint64_t certified{0};
  std::uint64_t crashed_mid_run{0};
  std::uint64_t committed{0};
  std::uint64_t faults_injected{0};
  std::uint64_t schedule_steps{0};
  std::vector<SchedExploreFailure> failures;

  [[nodiscard]] bool all_ok() const { return failures.empty(); }
};

/// Runs every enumerated case, certifies each, and auto-minimizes every
/// failure to a replayable schedule string.
[[nodiscard]] SchedExploreSummary run_sched_explore(
    const SchedExploreOptions& options = {});

/// Shrinks a failing run's schedule to the shortest replay prefix that
/// still reproduces the failure: binary search on the prefix length
/// (past the prefix, replay defaults to the lowest-id ready lane).
/// `recorded` is the failing run's full schedule string; `still_fails`
/// decides reproduction (normally !run_sched_case(c).ok). Returns the
/// kReplay case; if even the empty prefix fails, that is the answer.
[[nodiscard]] SchedCase minimize_failing_schedule(
    const SchedCase& failing, const std::string& recorded,
    const std::function<bool(const SchedCase&)>& still_fails);

}  // namespace argus
