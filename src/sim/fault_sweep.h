// Crash-point sweep driver: enumerate {crash point x fault mix x seed},
// run a deterministic bank workload under injected faults, crash,
// recover, and certify the outcome with the atomicity checker plus
// invariant probes.
//
// Each case is single-threaded on purpose: with one driver thread every
// injector arrival index, every Lamport stamp and every recorded event is
// a pure function of the FaultSweepCase, so re-running a case reproduces
// the flight-recorder trace byte for byte — a failing configuration is a
// bug report you can replay from its seed (see tests/corpus/).
//
// Certification per case, after crash + recover:
//
//   * conservation — the summed balance equals what the setup deposited
//     (transfers move money or do nothing; an escrow-style conservation
//     invariant no partial commit may break).
//   * watermark coverage — every forced record's commit timestamp is
//     covered by the visibility watermark (nothing stable is invisible).
//   * log order — the stable log is sorted by commit timestamp, so
//     recovery replays in serialization order.
//   * formal checkers — the recorded history is well-formed and satisfies
//     the protocol's local atomicity property (dynamic / static / hybrid
//     atomic, §4.1/§4.2.2/§4.3.2).
//   * sentinel — the online checker saw no violation at any point,
//     including mid-crash.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sched/factory.h"

namespace argus {

/// One sweep configuration: a fault plan plus the workload shape. The
/// whole struct round-trips through to_config_string/parse_fault_case
/// (the corpus file format).
struct FaultSweepCase {
  FaultPlan plan;
  Protocol protocol{Protocol::kDynamic};
  int accounts{4};
  int transactions{24};
  std::int64_t initial_balance{100};

  friend bool operator==(const FaultSweepCase&, const FaultSweepCase&) =
      default;
};

/// Renders a case as `key value` lines (one per field, '#' comments
/// allowed) — the format checked into tests/corpus/*.txt.
[[nodiscard]] std::string to_config_string(const FaultSweepCase& c);

/// Parses the to_config_string format. Unknown keys and malformed lines
/// are errors (a corpus file that silently half-applies would defeat the
/// point of replay). On failure returns false and sets *error.
[[nodiscard]] bool parse_fault_case(const std::string& text,
                                    FaultSweepCase* out, std::string* error);

/// Outcome of one case: the certification verdict plus enough context to
/// report and replay it.
struct FaultCaseResult {
  bool ok{false};
  std::string failure;  // every failed probe/checker, newline-separated
  std::string trace;    // parse.h history dump + '#' fault-trace lines
  bool crashed_mid_run{false};  // the pinned crash fired during the workload
  std::uint64_t faults_injected{0};
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::uint64_t log_records{0};
};

/// Runs one case start to finish: build the bank, attach the injector,
/// drive the workload until done (or the pinned crash fires), crash,
/// recover, certify. Deterministic: same case, same result, byte-equal
/// trace.
[[nodiscard]] FaultCaseResult run_fault_case(const FaultSweepCase& c);

/// Sweep shape: every crash point (plus "no pinned crash") x every fault
/// mix x every protocol x seeds_per_cell seeds.
struct FaultSweepOptions {
  std::vector<Protocol> protocols{Protocol::kDynamic, Protocol::kHybrid};
  std::uint64_t seeds_per_cell{4};
  int accounts{4};
  int transactions{24};
  std::int64_t initial_balance{100};
};

/// The enumerated configurations (deterministic order).
[[nodiscard]] std::vector<FaultSweepCase> enumerate_fault_cases(
    const FaultSweepOptions& options = {});

struct FaultSweepFailure {
  FaultSweepCase config;
  std::string failure;
};

struct FaultSweepSummary {
  std::uint64_t cases{0};
  std::uint64_t crashed_mid_run{0};
  std::uint64_t faults_injected{0};
  std::uint64_t committed{0};
  std::vector<FaultSweepFailure> failures;

  [[nodiscard]] bool all_ok() const { return failures.empty(); }
};

/// Runs every enumerated case and aggregates the verdicts. Failing
/// configurations come back as replayable configs (to_config_string).
[[nodiscard]] FaultSweepSummary run_fault_sweep(
    const FaultSweepOptions& options = {});

/// Shrinks a failing case to the smallest fault budget that still
/// reproduces it: binary search on plan.max_faults in [0, F] where F is
/// the fault count of the full failing run. `still_fails` decides
/// reproduction (normally !run_fault_case(c).ok). Returns the minimized
/// case; if even budget 0 fails (the failure needs no probabilistic
/// faults at all) that is the answer.
[[nodiscard]] FaultSweepCase minimize_fault_budget(
    const FaultSweepCase& failing,
    const std::function<bool(const FaultSweepCase&)>& still_fails);

}  // namespace argus
