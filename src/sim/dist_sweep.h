// Cross-site sweep driver: enumerate {site count x fault mix x seed},
// run a deterministic bank workload over a sharded + replicated
// DistRuntime with injected site churn and pipeline faults, recover
// every failed site, and certify the outcome with the atomicity
// checkers plus distributed invariant probes.
//
// Each case is single-threaded on purpose, exactly like the single-site
// fault sweep (sim/fault_sweep.h): with one driver thread every injector
// arrival, every Lamport stamp (per-site clocks draw from disjoint
// residue classes) and every recorded event is a pure function of the
// DistSweepCase, so re-running a case reproduces the merged cross-site
// trace byte for byte — a failing configuration replays from its seed.
//
// Liveness is part of the schedule: the coordinator injector decides
// site fail/recover per tick, and ticks run between transactions *and
// between 2PC protocol steps*, so the sweep explores participants dying
// after prepare, before the decision, and between deliveries.
//
// The coordinator itself is a fault axis (PR 8): a pinned coordinator
// crash at any of the four 2PC protocol steps, decision-log force
// failures, and per-message loss/latency on prepare/decide/ack — all
// crossed with message mixes and seeds at a fixed 3-site deployment
// (two participants to strand, one surviving peer for cooperative
// termination). The workload loop runs the termination protocol between
// transactions, so fenced participants rejoin mid-run the way a real
// deployment would, and the epilogue asserts total resolution: no
// prepared record anywhere, and (absent torn-batch faults) a fully
// drained decision log.
//
// Certification per case, after the epilogue recovers every down site:
//
//   * conservation — the summed balance over every logical variable
//     (one physical copy each) equals what the setup deposited; no
//     partial 2PC, lost promotion, or catch-up slip may break it.
//   * replica agreement — every copy of every replicated variable holds
//     the same value at every site, and no replica diverged mid-run.
//   * per-site log order / watermark coverage — each site's stable log
//     is timestamp-sorted and covered, as in the single-site sweep.
//   * formal checkers — each site's history AND the merged cross-site
//     history (one activity per global transaction) are well-formed and
//     satisfy the protocol's local atomicity property.
//   * sentinels — each site's online checker saw no violation at any
//     point, including mid-crash windows.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sched/factory.h"

namespace argus {

/// One sweep configuration. Round-trips through
/// to_dist_config_string/parse_dist_case (the corpus file format in
/// tests/corpus/dist/).
struct DistSweepCase {
  FaultPlan plan;
  Protocol protocol{Protocol::kHybrid};
  int sites{2};
  int sharded{4};     // sharded (single-copy) accounts, round-robin placed
  int replicated{2};  // fully replicated accounts (one copy per site)
  int transactions{24};
  std::int64_t initial_balance{100};

  friend bool operator==(const DistSweepCase&, const DistSweepCase&) = default;
};

/// Renders a case as `key value` lines ('#' comments allowed).
[[nodiscard]] std::string to_dist_config_string(const DistSweepCase& c);

/// Parses the to_dist_config_string format. Unknown keys and malformed
/// lines are errors; returns false and sets *error.
[[nodiscard]] bool parse_dist_case(const std::string& text, DistSweepCase* out,
                                   std::string* error);

/// Outcome of one case.
struct DistCaseResult {
  bool ok{false};
  std::string failure;  // every failed probe/checker, newline-separated
  std::string trace;    // merged cross-site dump + '#' fault-trace lines
  std::uint64_t faults_injected{0};  // coordinator + all site injectors
  std::uint64_t site_fails{0};
  std::uint64_t site_recovers{0};
  std::uint64_t committed{0};  // one-phase + 2PC + read-only
  std::uint64_t two_pc_commits{0};
  std::uint64_t aborted{0};
  std::uint64_t promoted_commits{0};
  std::uint64_t presumed_aborts{0};
  std::uint64_t catchup_txns{0};
  std::uint64_t coord_crashes{0};
  std::uint64_t coord_recovers{0};
  std::uint64_t decisions_logged{0};
  std::uint64_t msgs_lost{0};
  /// In-doubt records resolved by the termination protocol, via the
  /// recovered commit list or a surviving peer's stable log.
  std::uint64_t termination_promotions{0};
};

/// Runs one case start to finish: build the deployment, seed the bank,
/// attach the fault plan, drive the workload (ticking liveness), recover
/// every down site, certify. Deterministic: same case, same result,
/// byte-equal merged trace.
[[nodiscard]] DistCaseResult run_dist_case(const DistSweepCase& c);

/// Sweep shape: every site count x every fault mix x every protocol x
/// seeds_per_cell seeds.
struct DistSweepOptions {
  std::vector<int> site_counts{1, 2, 3, 4};
  std::vector<Protocol> protocols{Protocol::kDynamic, Protocol::kHybrid};
  std::uint64_t seeds_per_cell{5};
  int sharded{4};
  int replicated{2};
  int transactions{24};
  std::int64_t initial_balance{100};
};

/// The enumerated configurations (deterministic order; >= 320 with the
/// defaults: 4 site counts x 5 mixes x 2 protocols x 5 seeds, plus the
/// coordinator-fault axis appended after them — 4 pinned coordinator
/// crash steps x 3 message mixes x 2 protocols x 5 seeds at 3 sites).
[[nodiscard]] std::vector<DistSweepCase> enumerate_dist_cases(
    const DistSweepOptions& options = {});

struct DistSweepFailure {
  DistSweepCase config;
  std::string failure;
};

struct DistSweepSummary {
  std::uint64_t cases{0};
  std::uint64_t faults_injected{0};
  std::uint64_t site_fails{0};
  std::uint64_t committed{0};
  std::uint64_t two_pc_commits{0};
  std::uint64_t promoted_commits{0};
  std::uint64_t coord_crashes{0};
  std::uint64_t termination_promotions{0};
  std::vector<DistSweepFailure> failures;

  [[nodiscard]] bool all_ok() const { return failures.empty(); }
};

/// Runs every enumerated case and aggregates the verdicts.
[[nodiscard]] DistSweepSummary run_dist_sweep(
    const DistSweepOptions& options = {});

/// Shrinks a failing case to the smallest fault budget that still
/// reproduces it: binary search on plan.max_faults (site churn counts
/// against the budget like every other fault class). `still_fails`
/// decides reproduction (normally !run_dist_case(c).ok).
[[nodiscard]] DistSweepCase minimize_dist_budget(
    const DistSweepCase& failing,
    const std::function<bool(const DistSweepCase&)>& still_fails);

}  // namespace argus
