// Deterministic fault injection: seeded chaos for the stable log, the
// staged commit pipeline, and the scheduler wait paths.
//
// The paper's central claim is that recoverability belongs to the object
// specification, so the reproduction must demonstrate atomicity *through*
// failures, not just in their absence. This subsystem turns "imagine a
// failure" into an enumerable, replayable schedule: a FaultPlan names the
// fault mix (probabilities, pinned crash points, budgets) and a seed; a
// FaultInjector answers every injection-site query as a pure function of
// (seed, site, per-site arrival index). Same plan, same arrival order =>
// same fault schedule => (for single-threaded drivers) the same trace,
// byte for byte — which is what lets the sweep in sim/fault_sweep.h
// certify hundreds of {crash point x fault mix x seed} configurations
// with the atomicity checker and replay any failing one from its seed.
//
// Injection sites (see DESIGN.md "Fault model" for the full table):
//
//   * StableLog group commit — transient force failures (the leader
//     retries with backoff, then fails the batch as an I/O error), torn
//     batch tails (a force stabilizes only a prefix of the batch; the
//     tail is requeued, so a crash that follows loses exactly the
//     unstabilized committers — write-ahead is preserved because an
//     unstabilized record is never applied), and leader latency spikes.
//   * Commit pipeline — whole-node crashes pinned to a named stage:
//     pre-force, post-force-pre-apply, mid-apply,
//     post-apply-pre-watermark. The crash is delivered through a hook
//     (normally Runtime::crash()), so a pinned crash exercises exactly
//     the same doom-all + drop-pending path as a spontaneous one.
//   * Scheduler wait paths — spurious timeouts (a waiter dooms itself as
//     if its timeout expired) and delayed wakeups (a wait round blocks
//     longer than the notification would suggest).
//
// Every injected fault is appended to an in-memory trace stamped with a
// sequence drawn from the runtime's Lamport clock (the same counter the
// flight recorder stamps events with), so fault lines interleave
// faithfully with the event trace; trace_to_string() renders them as
// '#'-comment lines that hist/parse.h ignores, keeping combined dumps
// replayable through examples/check_history_file.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace argus {

/// Named injection sites. The first group lives in StableLog, the middle
/// four are the commit pipeline's crash points (txn/manager.cpp), the
/// last two are the blocking-wait path (core/object_base.cpp).
enum class FaultSite : int {
  kLogForce = 0,            // a flush leader's force attempt
  kLogLeaderLatency,        // extra leader latency per force
  kPreForce,                // commit: after timestamp, before log force
  kPostForcePreApply,       // commit: record stable, nothing applied yet
  kMidApply,                // commit: between two objects' applies
  kPostApplyPreWatermark,   // commit: applied, watermark not yet advanced
  kWaitSpuriousTimeout,     // await(): doom as if the wait timed out
  kWaitDelayedWakeup,       // await(): stretch one wait round
  kSiteFail,                // multi-site: a whole Site fails (crash)
  kSiteRecover,             // multi-site: a failed Site recovers
  kCoordPrePrepare,         // 2PC: coordinator dies before any prepare
  kCoordPostPrepare,        // 2PC: dies after prepares, before the decision
  kCoordPostDecision,       // 2PC: dies post-decision, pre-delivery
  kCoordMidDelivery,        // 2PC: dies between two deliveries
  kCoordRecover,            // a failed coordinator restarts
  kDecisionForce,           // coordinator decision-log force attempt
  kMsgPrepare,              // coordinator->participant prepare message
  kMsgDecide,               // coordinator->participant decision message
  kMsgAck,                  // participant->coordinator delivery ack
};

inline constexpr std::size_t kFaultSiteCount = 19;

[[nodiscard]] std::string to_string(FaultSite site);
[[nodiscard]] std::optional<FaultSite> fault_site_from_string(
    const std::string& name);

/// What the injector did at one arrival (trace vocabulary).
enum class FaultAction {
  kForceFail,
  kTornTail,
  kLeaderLatency,
  kCrash,
  kSpuriousTimeout,
  kDelayedWakeup,
  kSiteFail,
  kSiteRecover,
  kCoordRecover,
  kMsgLoss,
  kMsgLatency,
};

[[nodiscard]] std::string to_string(FaultAction action);

/// One injected fault, stamped with a sequence from the runtime clock so
/// it is ordered against the flight-recorder events.
struct FaultEvent {
  std::uint64_t seq{0};
  FaultSite site{FaultSite::kLogForce};
  std::uint64_t arrival{0};  // per-site arrival index, 1-based
  FaultAction action{FaultAction::kForceFail};
  std::uint64_t detail{0};   // prefix length / delay us / crash point

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// One fault as a '#'-comment line (what trace_to_string emits per
/// event); hist/parse.h skips it, so dumps stay replayable.
[[nodiscard]] std::string to_trace_line(const FaultEvent& e);

inline constexpr std::uint64_t kUnlimitedFaults = ~0ULL;

/// A deterministic fault schedule. Probabilities are permille (0..1000)
/// per arrival; every decision is a pure function of
/// (seed, site, arrival index), so the schedule does not depend on which
/// thread reaches a site — only on how many times the site was reached.
struct FaultPlan {
  std::uint64_t seed{1};

  // Stable-log faults.
  std::uint32_t force_fail_permille{0};     // transient force failure
  std::uint32_t force_max_retries{3};       // leader retries before giving up
  std::uint32_t force_retry_backoff_us{50}; // linear backoff per attempt
  std::uint32_t torn_batch_permille{0};     // stabilize only a prefix
  std::uint32_t leader_latency_permille{0}; // latency spike probability
  std::uint32_t leader_latency_us{200};     // spike magnitude

  // Pipeline crash: fire the crash hook at the Nth arrival at
  // `crash_point`. 0 = never.
  FaultSite crash_point{FaultSite::kPreForce};
  std::uint64_t crash_at_arrival{0};

  // Wait-path faults.
  std::uint32_t spurious_timeout_permille{0};
  std::uint32_t delayed_wakeup_permille{0};
  std::uint32_t delayed_wakeup_us{200};

  // Multi-site faults (dist/DistRuntime's coordinator injector): per
  // liveness tick, the chance that an up site fails, and that a down
  // site recovers. Both count against max_faults, so budget bisection
  // shrinks site churn like any other fault class.
  std::uint32_t site_fail_permille{0};
  std::uint32_t site_recover_permille{0};

  // Coordinator faults (dist 2PC). The pinned coordinator crash mirrors
  // the pipeline crash: it fires at the Nth arrival at
  // `coord_crash_point` (one of the four kCoord* protocol steps);
  // 0 = never, and it is configuration, not budget. Recovery is rolled
  // per liveness tick while the coordinator is down.
  // decision_force_fail_permille fails the decision-log force (the
  // coordinator still knows the outcome, so it aborts globally); the
  // msg_* knobs model per-message loss and latency on the
  // prepare/decide/ack channels, with lost prepare messages resent up to
  // msg_retries times before the coordinator treats the site as
  // unreachable.
  FaultSite coord_crash_point{FaultSite::kCoordPrePrepare};
  std::uint64_t coord_crash_at_arrival{0};
  std::uint32_t coord_recover_permille{0};
  std::uint32_t decision_force_fail_permille{0};
  std::uint32_t msg_loss_permille{0};
  std::uint32_t msg_latency_permille{0};
  std::uint32_t msg_latency_us{100};
  std::uint32_t msg_retries{2};

  // Probabilistic faults injected after this many have fired are
  // suppressed (the pinned crash is configuration, not budget).
  // kUnlimitedFaults = no cap; 0 = probabilistic faults off. Plan
  // minimization bisects this to the smallest reproducing prefix.
  std::uint64_t max_faults{kUnlimitedFaults};

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Answers injection-site queries per a FaultPlan. Thread-safe; decisions
/// are lock-free apart from the trace append. Wire one to a Runtime with
/// Runtime::set_fault_injector() — that threads it through the stable
/// log, the commit pipeline and every object's wait path, points the
/// sequence source at the runtime clock, and makes the crash hook
/// Runtime::crash().
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Sequence source for trace stamps (normally the runtime's Lamport
  /// clock). Unset = all stamps 0.
  void set_sequence_source(std::function<std::uint64_t()> source) {
    seq_source_ = std::move(source);
  }

  /// Invoked (once, latched) when the pinned pipeline crash fires.
  void set_crash_hook(std::function<void()> hook) {
    crash_hook_ = std::move(hook);
  }

  /// Decision for one force attempt by a flush leader.
  struct ForceDecision {
    bool fail{false};               // transient failure: retry, then give up
    bool torn{false};               // only `stable_prefix` records stabilize
    std::size_t stable_prefix{0};   // valid when torn; < batch_size
    std::uint32_t latency_us{0};    // extra leader latency
    std::uint32_t max_retries{0};   // from the plan, for the caller's loop
    std::uint32_t retry_backoff_us{0};
  };
  [[nodiscard]] ForceDecision on_force(std::size_t batch_size);

  /// Fires the pinned crash if this arrival at `point` is the one the
  /// plan names. Returns true when the hook ran (exactly once ever).
  bool maybe_crash(FaultSite point);

  /// Liveness decisions for the multi-site runtime, rolled once per
  /// (tick, site) by the coordinator in a fixed order. `site_index` is
  /// recorded as the event detail. Both respect the fault budget.
  [[nodiscard]] bool on_site_fail(std::size_t site_index);
  [[nodiscard]] bool on_site_recover(std::size_t site_index);

  /// Fires the pinned coordinator crash if this arrival at `step` (one
  /// of the four kCoord* 2PC protocol steps) is the one the plan names.
  /// Latched separately from the pipeline crash, so a plan can pin both.
  /// Returns true exactly once ever.
  bool on_coord_crash(FaultSite step);

  /// Coordinator recovery roll, once per liveness tick while the
  /// coordinator is down. Respects the fault budget.
  [[nodiscard]] bool on_coord_recover();

  /// Decision-log force roll: true = this force fails and the
  /// coordinator must abort the transaction globally (nothing stable).
  [[nodiscard]] bool on_decision_force();

  /// Fate of one coordinator<->participant message. `channel` is
  /// kMsgPrepare, kMsgDecide or kMsgAck — each channel is its own
  /// arrival stream, so loss on one never perturbs the others.
  struct MsgDecision {
    bool lost{false};
    std::uint32_t latency_us{0};
  };
  [[nodiscard]] MsgDecision on_message(FaultSite channel);

  /// Decision for one blocking-wait round.
  struct WaitDecision {
    bool spurious_timeout{false};
    std::uint32_t extra_delay_us{0};
  };
  [[nodiscard]] WaitDecision on_wait();

  [[nodiscard]] std::uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t crashes_fired() const {
    return crashes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t arrivals_at(FaultSite site) const {
    return arrivals_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injected_at(FaultSite site) const {
    return injected_by_site_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }

  /// Every injected fault, in injection order.
  [[nodiscard]] std::vector<FaultEvent> trace() const;

  /// The trace as '#'-comment lines (one per fault) that hist/parse.h
  /// skips, so a history dump with the trace appended stays replayable.
  [[nodiscard]] std::string trace_to_string() const;

 private:
  /// The deterministic decision stream for (site, arrival).
  [[nodiscard]] SplitMix64 decision_rng(FaultSite site,
                                        std::uint64_t arrival) const {
    return SplitMix64(plan_.seed ^
                      (0x9e3779b97f4a7c15ULL *
                       (static_cast<std::uint64_t>(site) + 1)) ^
                      (0xbf58476d1ce4e5b9ULL * arrival));
  }

  [[nodiscard]] bool budget_open() const {
    return injected_.load(std::memory_order_relaxed) < plan_.max_faults;
  }

  std::uint64_t next_arrival(FaultSite site) {
    return arrivals_[static_cast<std::size_t>(site)].fetch_add(
               1, std::memory_order_relaxed) +
           1;
  }

  void emit(FaultSite site, std::uint64_t arrival, FaultAction action,
            std::uint64_t detail);

  const FaultPlan plan_;
  std::function<std::uint64_t()> seq_source_;
  std::function<void()> crash_hook_;

  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> arrivals_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected_by_site_{};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<bool> crash_fired_{false};
  std::atomic<bool> coord_crash_fired_{false};

  mutable std::mutex mu_;  // guards trace_
  std::vector<FaultEvent> trace_;
};

}  // namespace argus
