#include "fault/fault.h"

#include <sstream>

namespace argus {

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kLogForce:
      return "log-force";
    case FaultSite::kLogLeaderLatency:
      return "log-leader-latency";
    case FaultSite::kPreForce:
      return "pre-force";
    case FaultSite::kPostForcePreApply:
      return "post-force-pre-apply";
    case FaultSite::kMidApply:
      return "mid-apply";
    case FaultSite::kPostApplyPreWatermark:
      return "post-apply-pre-watermark";
    case FaultSite::kWaitSpuriousTimeout:
      return "wait-spurious-timeout";
    case FaultSite::kWaitDelayedWakeup:
      return "wait-delayed-wakeup";
    case FaultSite::kSiteFail:
      return "site-fail";
    case FaultSite::kSiteRecover:
      return "site-recover";
    case FaultSite::kCoordPrePrepare:
      return "coord-pre-prepare";
    case FaultSite::kCoordPostPrepare:
      return "coord-post-prepare";
    case FaultSite::kCoordPostDecision:
      return "coord-post-decision";
    case FaultSite::kCoordMidDelivery:
      return "coord-mid-delivery";
    case FaultSite::kCoordRecover:
      return "coord-recover";
    case FaultSite::kDecisionForce:
      return "decision-force";
    case FaultSite::kMsgPrepare:
      return "msg-prepare";
    case FaultSite::kMsgDecide:
      return "msg-decide";
    case FaultSite::kMsgAck:
      return "msg-ack";
  }
  return "?";
}

std::optional<FaultSite> fault_site_from_string(const std::string& name) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (to_string(site) == name) return site;
  }
  return std::nullopt;
}

std::string to_string(FaultAction action) {
  switch (action) {
    case FaultAction::kForceFail:
      return "force-fail";
    case FaultAction::kTornTail:
      return "torn-tail";
    case FaultAction::kLeaderLatency:
      return "leader-latency";
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kSpuriousTimeout:
      return "spurious-timeout";
    case FaultAction::kDelayedWakeup:
      return "delayed-wakeup";
    case FaultAction::kSiteFail:
      return "site-fail";
    case FaultAction::kSiteRecover:
      return "site-recover";
    case FaultAction::kCoordRecover:
      return "coord-recover";
    case FaultAction::kMsgLoss:
      return "msg-loss";
    case FaultAction::kMsgLatency:
      return "msg-latency";
  }
  return "?";
}

FaultInjector::ForceDecision FaultInjector::on_force(std::size_t batch_size) {
  ForceDecision out;
  out.max_retries = plan_.force_max_retries;
  out.retry_backoff_us = plan_.force_retry_backoff_us;

  const std::uint64_t arrival = next_arrival(FaultSite::kLogForce);
  const std::uint64_t latency_arrival =
      next_arrival(FaultSite::kLogLeaderLatency);

  if (plan_.leader_latency_permille > 0 && budget_open()) {
    SplitMix64 rng =
        decision_rng(FaultSite::kLogLeaderLatency, latency_arrival);
    if (rng.chance(plan_.leader_latency_permille, 1000)) {
      out.latency_us = plan_.leader_latency_us;
      emit(FaultSite::kLogLeaderLatency, latency_arrival,
           FaultAction::kLeaderLatency, out.latency_us);
    }
  }

  if (budget_open()) {
    SplitMix64 rng = decision_rng(FaultSite::kLogForce, arrival);
    if (plan_.force_fail_permille > 0 &&
        rng.chance(plan_.force_fail_permille, 1000)) {
      out.fail = true;
      emit(FaultSite::kLogForce, arrival, FaultAction::kForceFail, 0);
      return out;  // a failed force cannot also be torn
    }
    if (plan_.torn_batch_permille > 0 && batch_size > 0 &&
        rng.chance(plan_.torn_batch_permille, 1000)) {
      out.torn = true;
      out.stable_prefix = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(batch_size)));
      emit(FaultSite::kLogForce, arrival, FaultAction::kTornTail,
           out.stable_prefix);
    }
  }
  return out;
}

bool FaultInjector::maybe_crash(FaultSite point) {
  const std::uint64_t arrival = next_arrival(point);
  if (plan_.crash_at_arrival == 0 || point != plan_.crash_point ||
      arrival != plan_.crash_at_arrival) {
    return false;
  }
  if (crash_fired_.exchange(true, std::memory_order_acq_rel)) return false;
  crashes_.fetch_add(1, std::memory_order_relaxed);
  emit(point, arrival, FaultAction::kCrash,
       static_cast<std::uint64_t>(point));
  if (crash_hook_) crash_hook_();
  return true;
}

bool FaultInjector::on_site_fail(std::size_t site_index) {
  const std::uint64_t arrival = next_arrival(FaultSite::kSiteFail);
  if (plan_.site_fail_permille == 0 || !budget_open()) return false;
  SplitMix64 rng = decision_rng(FaultSite::kSiteFail, arrival);
  if (!rng.chance(plan_.site_fail_permille, 1000)) return false;
  emit(FaultSite::kSiteFail, arrival, FaultAction::kSiteFail, site_index);
  return true;
}

bool FaultInjector::on_site_recover(std::size_t site_index) {
  const std::uint64_t arrival = next_arrival(FaultSite::kSiteRecover);
  if (plan_.site_recover_permille == 0 || !budget_open()) return false;
  SplitMix64 rng = decision_rng(FaultSite::kSiteRecover, arrival);
  if (!rng.chance(plan_.site_recover_permille, 1000)) return false;
  emit(FaultSite::kSiteRecover, arrival, FaultAction::kSiteRecover,
       site_index);
  return true;
}

bool FaultInjector::on_coord_crash(FaultSite step) {
  const std::uint64_t arrival = next_arrival(step);
  if (plan_.coord_crash_at_arrival == 0 || step != plan_.coord_crash_point ||
      arrival != plan_.coord_crash_at_arrival) {
    return false;
  }
  if (coord_crash_fired_.exchange(true, std::memory_order_acq_rel)) {
    return false;
  }
  crashes_.fetch_add(1, std::memory_order_relaxed);
  emit(step, arrival, FaultAction::kCrash, static_cast<std::uint64_t>(step));
  return true;
}

bool FaultInjector::on_coord_recover() {
  const std::uint64_t arrival = next_arrival(FaultSite::kCoordRecover);
  if (plan_.coord_recover_permille == 0 || !budget_open()) return false;
  SplitMix64 rng = decision_rng(FaultSite::kCoordRecover, arrival);
  if (!rng.chance(plan_.coord_recover_permille, 1000)) return false;
  emit(FaultSite::kCoordRecover, arrival, FaultAction::kCoordRecover, 0);
  return true;
}

bool FaultInjector::on_decision_force() {
  const std::uint64_t arrival = next_arrival(FaultSite::kDecisionForce);
  if (plan_.decision_force_fail_permille == 0 || !budget_open()) return false;
  SplitMix64 rng = decision_rng(FaultSite::kDecisionForce, arrival);
  if (!rng.chance(plan_.decision_force_fail_permille, 1000)) return false;
  emit(FaultSite::kDecisionForce, arrival, FaultAction::kForceFail, 0);
  return true;
}

FaultInjector::MsgDecision FaultInjector::on_message(FaultSite channel) {
  MsgDecision out;
  const std::uint64_t arrival = next_arrival(channel);
  if (!budget_open()) return out;
  SplitMix64 rng = decision_rng(channel, arrival);
  if (plan_.msg_loss_permille > 0 &&
      rng.chance(plan_.msg_loss_permille, 1000)) {
    out.lost = true;
    emit(channel, arrival, FaultAction::kMsgLoss, 0);
    return out;  // a lost message has no latency
  }
  if (plan_.msg_latency_permille > 0 &&
      rng.chance(plan_.msg_latency_permille, 1000)) {
    out.latency_us = plan_.msg_latency_us;
    emit(channel, arrival, FaultAction::kMsgLatency, out.latency_us);
  }
  return out;
}

FaultInjector::WaitDecision FaultInjector::on_wait() {
  WaitDecision out;
  const std::uint64_t timeout_arrival =
      next_arrival(FaultSite::kWaitSpuriousTimeout);
  const std::uint64_t delay_arrival =
      next_arrival(FaultSite::kWaitDelayedWakeup);

  if (plan_.spurious_timeout_permille > 0 && budget_open()) {
    SplitMix64 rng =
        decision_rng(FaultSite::kWaitSpuriousTimeout, timeout_arrival);
    if (rng.chance(plan_.spurious_timeout_permille, 1000)) {
      out.spurious_timeout = true;
      emit(FaultSite::kWaitSpuriousTimeout, timeout_arrival,
           FaultAction::kSpuriousTimeout, 0);
      return out;  // the waiter dooms itself; no point also delaying
    }
  }
  if (plan_.delayed_wakeup_permille > 0 && budget_open()) {
    SplitMix64 rng =
        decision_rng(FaultSite::kWaitDelayedWakeup, delay_arrival);
    if (rng.chance(plan_.delayed_wakeup_permille, 1000)) {
      out.extra_delay_us = plan_.delayed_wakeup_us;
      emit(FaultSite::kWaitDelayedWakeup, delay_arrival,
           FaultAction::kDelayedWakeup, out.extra_delay_us);
    }
  }
  return out;
}

void FaultInjector::emit(FaultSite site, std::uint64_t arrival,
                         FaultAction action, std::uint64_t detail) {
  injected_.fetch_add(1, std::memory_order_relaxed);
  injected_by_site_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  FaultEvent e;
  e.seq = seq_source_ ? seq_source_() : 0;
  e.site = site;
  e.arrival = arrival;
  e.action = action;
  e.detail = detail;
  const std::scoped_lock lock(mu_);
  trace_.push_back(e);
}

std::vector<FaultEvent> FaultInjector::trace() const {
  const std::scoped_lock lock(mu_);
  return trace_;
}

std::string to_trace_line(const FaultEvent& e) {
  std::ostringstream out;
  out << "# fault seq=" << e.seq << " site=" << to_string(e.site)
      << " arrival=" << e.arrival << " action=" << to_string(e.action)
      << " detail=" << e.detail;
  return out.str();
}

std::string FaultInjector::trace_to_string() const {
  std::ostringstream out;
  for (const FaultEvent& e : trace()) out << to_trace_line(e) << "\n";
  return out.str();
}

}  // namespace argus
