#include "dist/decision_log.h"

#include <utility>

#include "fault/fault.h"

namespace argus {

bool DecisionLog::force_decision(ActivityId gid, Timestamp decision,
                                 const std::vector<std::size_t>& parts) {
  if (FaultInjector* inj = fault_.load(std::memory_order_acquire)) {
    if (inj->on_decision_force()) {
      const std::scoped_lock lock(mu_);
      ++stats_.force_failures;
      return false;
    }
  }
  CommitLogRecord rec;
  rec.txn = gid;
  rec.commit_ts = decision;
  rec.start_ts = kNoTimestamp;
  rec.entries.reserve(parts.size());
  for (const std::size_t site : parts) {
    rec.entries.push_back({ObjectId{site}, {}});
  }
  log_.append(std::move(rec));
  const std::scoped_lock lock(mu_);
  ++stats_.logged;
  return true;
}

void DecisionLog::ack(ActivityId gid, std::size_t site_index) {
  const std::scoped_lock lock(mu_);
  if (acks_[gid].insert(site_index).second) ++stats_.acks;
}

std::size_t DecisionLog::checkpoint() {
  std::size_t removed = 0;
  for (const Decision& d : replay()) {
    bool complete = true;
    {
      const std::scoped_lock lock(mu_);
      const auto it = acks_.find(d.gid);
      for (const std::size_t site : d.participants) {
        if (it == acks_.end() || !it->second.contains(site)) {
          complete = false;
          break;
        }
      }
    }
    if (!complete) continue;
    if (log_.remove_record(d.gid)) ++removed;
    const std::scoped_lock lock(mu_);
    acks_.erase(d.gid);
    ++stats_.truncated;
  }
  return removed;
}

std::optional<Timestamp> DecisionLog::lookup(ActivityId gid) const {
  return log_.committed_ts(gid);
}

std::vector<DecisionLog::Decision> DecisionLog::replay() const {
  std::vector<Decision> out;
  for (const CommitLogRecord& rec : log_.records()) {
    Decision d;
    d.gid = rec.txn;
    d.decision = rec.commit_ts;
    d.participants.reserve(rec.entries.size());
    for (const auto& entry : rec.entries) {
      d.participants.push_back(static_cast<std::size_t>(entry.object.value));
    }
    out.push_back(std::move(d));
  }
  return out;
}

void DecisionLog::crash() {
  const std::scoped_lock lock(mu_);
  acks_.clear();
}

DecisionLog::Stats DecisionLog::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace argus
