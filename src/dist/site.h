// Site: one node of the multi-site runtime — a full Runtime (its own
// transaction manager, commit pipeline, stable log, flight recorder and
// metrics) plus a liveness flag.
//
// Two pieces of global coordination are configured at construction and
// cost nothing afterwards:
//
//   * Timestamp domain — site i of N draws Lamport timestamps congruent
//     to i mod N (LamportClock::set_domain), so every timestamp issued
//     anywhere in the deployment is globally unique without messages.
//     This is Lamport's site-id tiebreaker folded into the numeric
//     value; it is what lets the 2PC coordinator pick max(proposals) as
//     a decision timestamp that is already unique, and what makes the
//     cross-site merge of flight-recorder sequences collision-free.
//
//   * Object-id base — site i allocates ObjectIds starting at
//     i * stride, so the merged cross-site SystemSpec and history never
//     alias two sites' objects (each replica of a replicated variable
//     is its own object in the formal model; see DESIGN.md §4.10).
//
// fail()/recover() live on DistRuntime, which owns the available-copies
// bookkeeping; Site only carries the up/down bit they flip.
#pragma once

#include <atomic>
#include <cstddef>

#include "core/runtime.h"

namespace argus {

class Site {
 public:
  Site(std::size_t index, std::size_t total_sites,
       Runtime::RecorderMode recorder_mode, std::uint64_t object_id_stride)
      : index_(index), runtime_(recorder_mode) {
    runtime_.tm().clock().set_domain(index, total_sites);
    runtime_.set_object_id_base(index * object_id_stride);
  }

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] Runtime& runtime() { return runtime_; }
  [[nodiscard]] const Runtime& runtime() const { return runtime_; }
  [[nodiscard]] TransactionManager& tm() { return runtime_.tm(); }

  [[nodiscard]] bool up() const {
    return up_.load(std::memory_order_acquire);
  }
  void set_up(bool up) { up_.store(up, std::memory_order_release); }

 private:
  const std::size_t index_;
  std::atomic<bool> up_{true};
  Runtime runtime_;
};

}  // namespace argus
