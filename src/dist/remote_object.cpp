#include "dist/remote_object.h"

#include <thread>

#include "common/errors.h"

namespace argus {

RemoteObject::RemoteObject(std::shared_ptr<ManagedObject> inner,
                           NetworkProfile profile)
    : inner_(std::move(inner)),
      profile_(profile),
      rng_state_(profile.seed * 0x9e3779b97f4a7c15ULL + 1) {}

void RemoteObject::one_way_delay() {
  // Thread-safe splitmix draw.
  std::uint64_t z =
      rng_state_.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const auto spread = static_cast<std::uint64_t>(
      (profile_.max_delay - profile_.min_delay).count());
  const auto delay =
      profile_.min_delay +
      std::chrono::microseconds(spread == 0 ? 0 : z % (spread + 1));
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

void RemoteObject::require_reachable(Transaction& txn) {
  if (partitioned()) {
    txn.doom(AbortReason::kWaitTimeout);
    throw TransactionAborted(txn.id(), AbortReason::kWaitTimeout);
  }
}

Value RemoteObject::invoke(Transaction& txn, const Operation& op) {
  require_reachable(txn);
  one_way_delay();  // request
  // Re-check after the request "arrives": the partition may have started
  // while the message was in flight.
  require_reachable(txn);
  const Value result = inner_->invoke(txn, op);
  one_way_delay();  // response
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void RemoteObject::prepare(Transaction& txn) {
  require_reachable(txn);
  one_way_delay();
  inner_->prepare(txn);
  one_way_delay();
  round_trips_.fetch_add(1, std::memory_order_relaxed);
}

void RemoteObject::commit(Transaction& txn, Timestamp commit_ts) {
  // Commit decisions are delivered even across partitions (they are
  // durable coordinator decisions; a truly lost node replays them from
  // the log at recovery). The latency is still paid.
  one_way_delay();
  inner_->commit(txn, commit_ts);
  round_trips_.fetch_add(1, std::memory_order_relaxed);
}

void RemoteObject::abort(Transaction& txn) {
  one_way_delay();
  inner_->abort(txn);
  round_trips_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LoggedOp> RemoteObject::intentions_of(
    const Transaction& txn) const {
  return inner_->intentions_of(txn);
}

void RemoteObject::reset_for_recovery() { inner_->reset_for_recovery(); }

void RemoteObject::replay(const ReplayContext& ctx, const LoggedOp& logged) {
  inner_->replay(ctx, logged);
}

}  // namespace argus
