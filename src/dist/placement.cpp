#include "dist/placement.h"

#include "common/errors.h"
#include "dist/site.h"

namespace argus {

Replica* LogicalVar::replica_at(std::size_t site_index) const {
  for (const auto& r : replicas) {
    if (r->site->index() == site_index) return r.get();
  }
  return nullptr;
}

LogicalVar& Placement::add(std::string name, bool replicated,
                           std::vector<std::unique_ptr<Replica>> replicas) {
  if (index_.contains(name)) {
    throw UsageError("logical variable '" + name + "' already exists");
  }
  auto var = std::make_unique<LogicalVar>();
  var->name = name;
  var->replicated = replicated;
  var->replicas = std::move(replicas);
  index_.emplace(std::move(name), vars_.size());
  vars_.push_back(std::move(var));
  return *vars_.back();
}

LogicalVar* Placement::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : vars_[it->second].get();
}

}  // namespace argus
