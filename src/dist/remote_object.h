// RemoteObject: simulated remote residency for any protocol object.
//
// The paper's setting is a distributed system (the Argus project):
// objects live on other nodes and every operation, prepare and commit
// crosses the network. We simulate that with a decorator that injects
// latency around each ManagedObject entry point. The substitution
// preserves what matters for the paper's comparisons: the *duration for
// which synchronization state is held* now includes round-trip times, so
// protocols that hold locks across operations (dynamic/locking) feel
// network latency very differently from protocols whose read-only
// activities touch nothing (hybrid) — measured in bench_distributed.
//
// A NetworkProfile also supports partitions: while partitioned, calls
// fail by dooming the calling transaction (kWaitTimeout), modelling an
// unreachable participant; commit/abort are delivered (they are
// idempotent decisions from the coordinator's log — recovery replays
// them if the node was truly lost).
//
// Scope note: protocol objects register *themselves* with the
// transaction on first touch, so the manager's prepare/commit fan-out
// reaches the inner object directly — the injected latency covers
// operation RPCs (request + response per invoke), not the commit
// messages. That is exactly the window in which synchronization state is
// held, which is what the distributed comparison measures; commit-path
// latency would be paid equally by every protocol.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/rng.h"
#include "txn/managed_object.h"

namespace argus {

struct NetworkProfile {
  /// One-way delay bounds (a call pays two one-way delays).
  std::chrono::microseconds min_delay{50};
  std::chrono::microseconds max_delay{150};
  std::uint64_t seed{1};
};

class RemoteObject final : public ManagedObject {
 public:
  RemoteObject(std::shared_ptr<ManagedObject> inner, NetworkProfile profile);

  [[nodiscard]] ObjectId id() const override { return inner_->id(); }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "@remote";
  }

  Value invoke(Transaction& txn, const Operation& op) override;
  void prepare(Transaction& txn) override;
  void commit(Transaction& txn, Timestamp commit_ts) override;
  void abort(Transaction& txn) override;
  [[nodiscard]] std::vector<LoggedOp> intentions_of(
      const Transaction& txn) const override;
  void reset_for_recovery() override;
  void replay(const ReplayContext& ctx, const LoggedOp& logged) override;
  void wake_all() override { inner_->wake_all(); }

  /// Simulated partition control: while partitioned, invoke/prepare doom
  /// the calling transaction instead of reaching the object.
  void set_partitioned(bool partitioned) {
    partitioned_.store(partitioned, std::memory_order_release);
  }
  [[nodiscard]] bool partitioned() const {
    return partitioned_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const std::shared_ptr<ManagedObject>& inner() const {
    return inner_;
  }

  /// Total messages delayed so far (round trips), for metrics.
  [[nodiscard]] std::uint64_t round_trips() const {
    return round_trips_.load(std::memory_order_relaxed);
  }

 private:
  void one_way_delay();
  void require_reachable(Transaction& txn);

  std::shared_ptr<ManagedObject> inner_;
  NetworkProfile profile_;
  std::atomic<std::uint64_t> rng_state_;
  std::atomic<bool> partitioned_{false};
  std::atomic<std::uint64_t> round_trips_{0};
};

}  // namespace argus
