#include "dist/dist_runtime.h"

#include <algorithm>
#include <utility>

#include "common/errors.h"

namespace argus {

namespace {

/// FNV-1a over the transaction id and variable name: the deterministic
/// replica pick for reads with no site affinity yet. Purely a routing
/// choice — any live readable replica is correct — but it must be a pure
/// function of the transaction so sweep runs replay byte-for-byte.
std::uint64_t replica_hash(ActivityId gid, const std::string& var) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(gid.value);
  for (const char c : var) mix(static_cast<unsigned char>(c));
  return h;
}

}  // namespace

std::vector<std::size_t> DistTxn::participants() const {
  std::vector<std::size_t> out;
  out.reserve(parts_.size());
  for (const auto& [site, part] : parts_) out.push_back(site);
  return out;
}

DistRuntime::DistRuntime(DistOptions options) : options_(options) {
  if (options_.sites == 0) {
    throw UsageError("DistRuntime needs at least one site");
  }
  if (options_.protocol != Protocol::kDynamic &&
      options_.protocol != Protocol::kHybrid) {
    throw UsageError(
        "DistRuntime supports the dynamic and hybrid local atomicity "
        "properties (validate-at-commit protocols cannot hold a 2PC "
        "decision open)");
  }
  sites_.reserve(options_.sites);
  for (std::size_t i = 0; i < options_.sites; ++i) {
    sites_.push_back(std::make_unique<Site>(
        i, options_.sites, options_.recorder, options_.object_id_stride));
  }
}

DistRuntime::~DistRuntime() = default;

void DistRuntime::index_replicas(LogicalVar& var) {
  for (const auto& r : var.replicas) {
    replica_by_oid_.emplace(r->object->id(), std::make_pair(&var, r.get()));
  }
}

// --- transactions ------------------------------------------------------

std::shared_ptr<DistTxn> DistRuntime::begin(TxnKind kind) {
  if (kind == TxnKind::kReadOnly &&
      !supports_snapshot_reads(options_.protocol)) {
    // Dynamic atomicity has no snapshot timestamp; audits run as update
    // transactions there, exactly as in the single-site sweeps.
    throw UsageError(
        "read-only distributed transactions require snapshot reads "
        "(hybrid protocol)");
  }
  auto t = std::make_shared<DistTxn>();
  t->gid_ = next_gid();
  t->kind_ = kind;
  t->stamp_ = global_stamp_.load(std::memory_order_acquire);
  begun_.fetch_add(1, std::memory_order_relaxed);
  if (kind == TxnKind::kReadOnly) {
    const std::scoped_lock lock(ro_mu_);
    read_only_gids_.insert(t->gid_);
  }
  return t;
}

void DistRuntime::observe_into(DistTxn& t, Site& s) {
  s.tm().clock().observe(t.stamp_);
}

void DistRuntime::absorb_from(DistTxn& t, Site& s) {
  t.stamp_ = std::max(t.stamp_, s.tm().clock().now());
}

DistTxn::Part& DistRuntime::ensure_part(DistTxn& t, Site& s) {
  const auto it = t.parts_.find(s.index());
  if (it != t.parts_.end()) return it->second;
  // Lamport carry: the site's clock absorbs everything this transaction
  // has seen before the participant begins, so cross-site causality is
  // reflected in every timestamp the participant draws.
  observe_into(t, s);
  std::shared_ptr<Transaction> txn;
  if (t.kind_ == TxnKind::kReadOnly) {
    if (t.snapshot_ts_ == kNoTimestamp) {
      // First participant fixes the global snapshot: a fresh timestamp,
      // watermark-covered locally.
      txn = s.tm().begin_as(t.gid_, TxnKind::kReadOnly);
      t.snapshot_ts_ = txn->start_ts();
    } else {
      // Later participants adopt it (begin_as waits until this site's
      // watermark covers it, preserving §4.3.3's snapshot invariant at
      // every site the activity visits).
      txn = s.tm().begin_as(t.gid_, TxnKind::kReadOnly, t.snapshot_ts_);
    }
  } else {
    txn = s.tm().begin_as(t.gid_, TxnKind::kUpdate);
  }
  absorb_from(t, s);
  const auto [ins, inserted] =
      t.parts_.emplace(s.index(), DistTxn::Part{std::move(txn)});
  return ins->second;
}

Value DistRuntime::read(DistTxn& t, const std::string& var,
                        const Operation& op) {
  if (t.finished_) {
    throw UsageError("read on finished distributed transaction " +
                     to_string(t.gid_));
  }
  LogicalVar* v = placement_.find(var);
  if (v == nullptr) throw UsageError("unknown logical variable '" + var + "'");

  // Available copies: any live replica whose readable flag is set.
  std::vector<Replica*> candidates;
  for (const auto& r : v->replicas) {
    if (r->site->up() && r->readable.load(std::memory_order_acquire)) {
      candidates.push_back(r.get());
    }
  }
  if (candidates.empty()) abort_unavailable(t);

  // Routing preference: a replica this transaction already wrote (so its
  // own intentions are visible), then a site it already runs on, then a
  // deterministic hash pick.
  Replica* pick = nullptr;
  if (const auto wt = t.write_targets_.find(v); wt != t.write_targets_.end()) {
    for (Replica* r : candidates) {
      if (wt->second.contains(r->site->index())) {
        pick = r;
        break;
      }
    }
  }
  if (pick == nullptr) {
    for (Replica* r : candidates) {
      if (t.parts_.contains(r->site->index())) {
        pick = r;
        break;
      }
    }
  }
  if (pick == nullptr) {
    pick = candidates[replica_hash(t.gid_, var) % candidates.size()];
  }

  Site& s = *pick->site;
  DistTxn::Part& part = ensure_part(t, s);
  observe_into(t, s);
  const Value result = pick->object->invoke(*part.txn, op);
  absorb_from(t, s);
  return result;
}

Value DistRuntime::write(DistTxn& t, const std::string& var,
                         const Operation& op) {
  if (t.finished_) {
    throw UsageError("write on finished distributed transaction " +
                     to_string(t.gid_));
  }
  if (t.kind_ == TxnKind::kReadOnly) {
    throw UsageError("read-only distributed transaction invoked a write");
  }
  LogicalVar* v = placement_.find(var);
  if (v == nullptr) throw UsageError("unknown logical variable '" + var + "'");

  // Write all available copies. The target set is pinned at the first
  // write to this variable: a site that recovers mid-transaction must not
  // receive only a suffix of the variable's operations. If a pinned
  // target has since failed, its participant is doomed and the invoke
  // below unwinds the transaction — the failure rule.
  std::vector<Replica*> targets;
  if (const auto wt = t.write_targets_.find(v); wt != t.write_targets_.end()) {
    for (const std::size_t idx : wt->second) {
      if (Replica* r = v->replica_at(idx)) targets.push_back(r);
    }
  } else {
    for (const auto& r : v->replicas) {
      if (r->site->up()) targets.push_back(r.get());
    }
    if (targets.empty()) abort_unavailable(t);
    auto& pinned = t.write_targets_[v];
    for (Replica* r : targets) pinned.insert(r->site->index());
  }

  std::optional<Value> first;
  for (Replica* r : targets) {
    Site& s = *r->site;
    DistTxn::Part& part = ensure_part(t, s);
    observe_into(t, s);
    const Value result = r->object->invoke(*part.txn, op);
    absorb_from(t, s);
    if (!first.has_value()) {
      first = result;
    } else if (!(*first == result)) {
      replica_divergence_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (v->replicated) {
    t.replicated_writes_.emplace_back(v, LoggedOp{op, *first});
  }
  return *first;
}

void DistRuntime::abort(const std::shared_ptr<DistTxn>& t) {
  if (t->finished_) return;
  abort_parts(*t, AbortReason::kUser);
  aborts_.fetch_add(1, std::memory_order_relaxed);
}

void DistRuntime::abort_parts(DistTxn& t, AbortReason reason) {
  t.finished_ = true;
  for (auto& [idx, part] : t.parts_) {
    Site& s = *sites_[idx];
    // Same Lamport carry as the commit paths: the abort event at each
    // site must sequence after every invoke the activity made anywhere,
    // or the merged history shows an operation after the abort.
    if (s.up()) observe_into(t, s);
    if (part.prepared) {
      const bool healthy =
          s.up() && part.txn->active() && !part.txn->doomed();
      if (healthy) {
        s.tm().abort_prepared(part.txn, reason);
      } else {
        // The site crashed after preparing. Retire the volatile state
        // silently; if the site has already recovered the in-doubt record
        // is resolvable now (the global outcome is abort), otherwise it
        // stays in the stable log for recovery's presumed abort.
        s.tm().detach_prepared(part.txn);
        if (s.up()) s.tm().log().drop_prepared(t.gid_);
      }
    } else {
      s.tm().abort(part.txn, reason);
    }
    if (s.up()) absorb_from(t, s);
  }
}

void DistRuntime::abort_unavailable(DistTxn& t) {
  abort_parts(t, AbortReason::kUnavailable);
  count_abort(AbortReason::kUnavailable);
  throw TransactionAborted(t.gid_, AbortReason::kUnavailable);
}

void DistRuntime::count_abort(AbortReason reason) {
  aborts_.fetch_add(1, std::memory_order_relaxed);
  if (reason == AbortReason::kUnavailable) {
    unavailable_aborts_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DistRuntime::bump_global_stamp(std::uint64_t v) {
  std::uint64_t cur = global_stamp_.load(std::memory_order_relaxed);
  while (cur < v && !global_stamp_.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void DistRuntime::commit(const std::shared_ptr<DistTxn>& t) {
  if (t->finished_) {
    throw UsageError("commit of finished distributed transaction " +
                     to_string(t->gid_));
  }
  if (t->parts_.empty()) {
    t->finished_ = true;
    return;
  }
  if (t->kind_ == TxnKind::kReadOnly) {
    commit_read_only(*t);
    return;
  }

  // The failure rule: a transaction that ran at a site which has since
  // failed cannot commit — its participant there was doomed by the
  // crash, so its intentions are gone. Abort globally before any
  // participant records a commit event.
  for (auto& [idx, part] : t->parts_) {
    Site& s = *sites_[idx];
    if (!s.up() || !part.txn->active() || part.txn->doomed()) {
      AbortReason reason = AbortReason::kUnavailable;
      if (s.up() && part.txn->doomed() &&
          part.txn->doom_reason() != AbortReason::kCrash) {
        reason = part.txn->doom_reason();
      }
      abort_parts(*t, reason);
      count_abort(reason);
      throw TransactionAborted(t->gid_, reason);
    }
  }

  if (t->parts_.size() == 1) {
    const auto it = t->parts_.begin();
    commit_one_phase(*t, it->first, it->second);
  } else {
    commit_two_phase(*t);
  }
}

void DistRuntime::commit_read_only(DistTxn& t) {
  // A cross-site read-only commit must be all-or-nothing too: commit and
  // abort events are tracked per activity across the merged history, so
  // committing at one site and aborting at another would make it
  // ill-formed. Check every participant first (nothing recorded yet, so
  // a global abort is still clean), then run the no-fail commit phase —
  // a read-only commit is pure event recording, with no log force, no
  // timestamp and no crash window.
  t.finished_ = true;
  for (auto& [idx, part] : t.parts_) {
    Site& s = *sites_[idx];
    if (!s.up() || !part.txn->active() || part.txn->doomed()) {
      AbortReason reason = AbortReason::kUnavailable;
      if (s.up() && part.txn->doomed() &&
          part.txn->doom_reason() != AbortReason::kCrash) {
        reason = part.txn->doom_reason();
      }
      abort_parts(t, reason);
      count_abort(reason);
      throw TransactionAborted(t.gid_, reason);
    }
  }
  for (auto& [idx, part] : t.parts_) {
    // Lamport carry into the commit events too: the stamp has absorbed
    // every site this activity read at, so each site's commit event
    // sequences after every invoke of the activity — otherwise a commit
    // recorded at a lagging clock could sort before an invoke made at a
    // busier site and the merged history would be ill-formed.
    observe_into(t, *sites_[idx]);
    sites_[idx]->tm().commit_read_only(part.txn);
    absorb_from(t, *sites_[idx]);
  }
  read_only_commits_.fetch_add(1, std::memory_order_relaxed);
}

void DistRuntime::commit_one_phase(DistTxn& t, std::size_t site_index,
                                   DistTxn::Part& part) {
  // A single participant commits through its site's ordinary pipeline —
  // no coordinator lock, which is what keeps disjoint per-site workloads
  // scaling with the site count.
  t.finished_ = true;
  Site& s = *sites_[site_index];
  try {
    s.tm().commit(part.txn);
  } catch (const TransactionAborted& e) {
    count_abort(e.reason());
    throw;
  }
  const Timestamp decided = part.txn->commit_ts();
  bump_global_stamp(decided);
  register_commit(t, decided, {site_index});
  one_phase_commits_.fetch_add(1, std::memory_order_relaxed);
}

void DistRuntime::commit_two_phase(DistTxn& t) {
  const std::scoped_lock commit_lock(dist_commit_mu_);
  {
    const std::scoped_lock lock(catalog_mu_);
    in_2pc_ = true;
  }
  {
    // While this gid's decision is open, a recovering participant must
    // keep its prepared record in doubt instead of presuming abort.
    const std::scoped_lock lock(decisions_mu_);
    inflight_gid_ = t.gid_;
  }

  // Phase 1: prepare at every participant, in ascending site order. Each
  // prepare validates locally, registers a proposed commit timestamp in
  // the site clock's in-flight table, and forces a prepared record.
  // tick_site_faults() between protocol steps puts mid-commit site
  // failures inside the sweep's search space.
  Timestamp decision = kNoTimestamp;
  std::optional<AbortReason> veto;
  for (auto& [idx, part] : t.parts_) {
    tick_site_faults();
    Site& s = *sites_[idx];
    if (!s.up() || !part.txn->active() || part.txn->doomed()) {
      veto = AbortReason::kUnavailable;
      break;
    }
    const std::optional<Timestamp> proposal = s.tm().prepare_2pc(part.txn);
    if (!proposal.has_value()) {
      // The local transaction is already aborted (validation veto, log
      // force failure, or a pinned crash downed the site mid-prepare).
      veto = s.up() ? AbortReason::kValidation : AbortReason::kUnavailable;
      break;
    }
    part.prepared = true;
    part.proposal = *proposal;
    decision = std::max(decision, *proposal);
  }

  if (veto.has_value()) {
    {
      const std::scoped_lock lock(decisions_mu_);
      inflight_gid_.reset();
    }
    abort_parts(t, *veto);
    count_abort(*veto);
    run_deferred_catchups();
    throw TransactionAborted(t.gid_, *veto);
  }

  // Decision: commit at G = max(proposals). Disjoint clock residue
  // classes make G globally unique, and G >= every local proposal, so
  // each participant's re-stamp is an order-preserving move. Recording
  // the decision *before* delivery is what lets a participant that fails
  // from here on resolve its in-doubt record at recovery (presumed abort
  // for everything not on this list).
  tick_site_faults();
  {
    const std::scoped_lock lock(decisions_mu_);
    decisions_.emplace(t.gid_, decision);
    inflight_gid_.reset();
  }

  // Phase 2: deliver. A participant that failed keeps its prepared
  // record for recovery; one that failed and already recovered is
  // resolved right here.
  t.finished_ = true;
  std::set<std::size_t> delivered;
  for (auto& [idx, part] : t.parts_) {
    tick_site_faults();
    Site& s = *sites_[idx];
    if (s.up() && part.txn->active() && !part.txn->doomed()) {
      s.tm().commit_prepared(part.txn, decision);
      // A pinned crash can down the site mid-apply; the promoted record
      // is stable and the apply completes, so the commit is delivered
      // here either way (recovery replays the same record).
      delivered.insert(idx);
    } else if (s.up()) {
      // Failed after preparing, recovered before delivery.
      s.tm().detach_prepared(part.txn);
      resolve_in_doubt_commit(s, t.gid_, decision);
      delivered.insert(idx);
    } else {
      // Still down: silent retire; the prepared record waits for
      // recovery, which finds the decision on the commit list.
      s.tm().detach_prepared(part.txn);
    }
  }

  bump_global_stamp(decision);
  register_commit(t, decision, delivered);
  two_pc_commits_.fetch_add(1, std::memory_order_relaxed);
  run_deferred_catchups();
}

void DistRuntime::register_commit(DistTxn& t, Timestamp decided,
                                  const std::set<std::size_t>& delivered_sites) {
  if (t.replicated_writes_.empty()) return;
  const std::scoped_lock lock(catalog_mu_);
  for (auto& [var, logged] : t.replicated_writes_) {
    var->writes[decided].push_back(logged);
  }
  // A replica received this commit iff its site was a pinned write
  // target *and* the commit was delivered there. Delivery makes the
  // copy provably current for the variable, which also restores
  // readability after a recovery (the stale-read rule's exit).
  for (const auto& [var, targets] : t.write_targets_) {
    if (!var->replicated) continue;
    for (const auto& r : var->replicas) {
      const std::size_t idx = r->site->index();
      if (targets.contains(idx) && delivered_sites.contains(idx)) {
        r->delivered.insert(decided);
        r->readable.store(true, std::memory_order_release);
      }
    }
  }
}

void DistRuntime::resolve_in_doubt_commit(Site& s, ActivityId gid,
                                          Timestamp decided) {
  CommitLogRecord rec;
  bool found = false;
  for (auto& r : s.tm().log().prepared_records()) {
    if (r.txn == gid) {
      rec = std::move(r);
      found = true;
      break;
    }
  }
  // Recovery may have resolved it already (the decision was recorded
  // before phase 2 began); promote_prepared returning false means the
  // effects are present.
  if (!found || !s.tm().log().promote_prepared(gid, decided)) return;
  s.tm().clock().observe_committed(decided);
  const ReplayContext ctx{rec.txn, decided, rec.start_ts};
  for (const auto& entry : rec.entries) {
    const auto obj = s.runtime().object(entry.object);
    if (obj == nullptr) continue;
    for (const LoggedOp& logged : entry.ops) obj->replay(ctx, logged);
  }
  synthesize_commit_events(s, rec, decided);
  mark_promoted_delivered(rec, decided);
  promoted_commits_.fetch_add(1, std::memory_order_relaxed);
}

void DistRuntime::synthesize_commit_events(Site& s,
                                           const CommitLogRecord& rec,
                                           Timestamp ts) {
  // The record's invoke/respond events were recorded before the crash
  // and survive in the flight recorder; only the commit events are
  // missing (the participant was detached before delivery). Synthesizing
  // them late is safe: a commit event may appear anywhere after the
  // responses, and the timestamp is the activity's decision timestamp at
  // every object. Without them the merged history would show a committed
  // transaction's effects with no commit — exactly the violation the
  // checkers exist to catch.
  EventSink* sink = s.runtime().recorder();
  if (sink == nullptr) return;
  for (const auto& entry : rec.entries) {
    sink->record(options_.protocol == Protocol::kHybrid
                     ? commit_at(entry.object, rec.txn, ts)
                     : argus::commit(entry.object, rec.txn));
  }
}

void DistRuntime::mark_promoted_delivered(const CommitLogRecord& rec,
                                          Timestamp ts) {
  const std::scoped_lock lock(catalog_mu_);
  for (const auto& entry : rec.entries) {
    const auto it = replica_by_oid_.find(entry.object);
    if (it == replica_by_oid_.end()) continue;
    if (!it->second.first->replicated) continue;
    it->second.second->delivered.insert(ts);
  }
}

// --- liveness ----------------------------------------------------------

bool DistRuntime::fail(std::size_t site_index) {
  Site& s = *sites_.at(site_index);
  if (!s.up()) return false;
  s.set_up(false);
  site_fails_.fetch_add(1, std::memory_order_relaxed);
  // Whole-node failure: dooms every local participant (the failure rule)
  // and discards un-forced log records. Prepared records survive — they
  // are what recovery resolves against the coordinator.
  s.runtime().crash();
  return true;
}

bool DistRuntime::recover(std::size_t site_index) {
  Site& s = *sites_.at(site_index);
  if (s.up()) return false;

  // (1) Resolve in-doubt prepared records against the decision list:
  // promote and count the ones the coordinator committed, presume abort
  // for the rest — except a record of the 2PC currently in flight, whose
  // outcome is genuinely still open. Either way the proposal's entry in
  // the clock's in-flight table is released (idempotent), or it would
  // stall every later commit turn at this site forever.
  std::vector<std::pair<CommitLogRecord, Timestamp>> promoted;
  for (auto& rec : s.tm().log().prepared_records()) {
    s.tm().clock().finish_commit(rec.commit_ts);
    std::optional<Timestamp> decided;
    bool in_doubt = false;
    {
      const std::scoped_lock lock(decisions_mu_);
      const auto it = decisions_.find(rec.txn);
      if (it != decisions_.end()) {
        decided = it->second;
      } else if (inflight_gid_ == rec.txn) {
        in_doubt = true;
      }
    }
    if (decided.has_value()) {
      if (s.tm().log().promote_prepared(rec.txn, *decided)) {
        s.tm().clock().observe_committed(*decided);
        promoted.emplace_back(std::move(rec), *decided);
        promoted_commits_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (!in_doubt) {
      if (s.tm().log().drop_prepared(rec.txn)) {
        presumed_aborts_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // (2) Rebuild every object from the stable log — which now includes
  // the just-promoted records, re-stamped with their decision
  // timestamps, replayed in timestamp order.
  s.runtime().recover();

  // (3) The promoted transactions' commit events were never recorded
  // (the site was down at delivery); synthesize them so per-site and
  // merged histories certify.
  for (const auto& [rec, ts] : promoted) {
    synthesize_commit_events(s, rec, ts);
    mark_promoted_delivered(rec, ts);
  }

  // (4) Stale-read rule: every replicated copy at a recovered site is
  // unreadable until a client write commits to it post-recovery. The
  // catch-up below restores the *state* but deliberately not
  // readability. Sharded copies stay readable — no other copy can have
  // taken writes while this site was down.
  for (const auto& v : placement_.vars()) {
    if (!v->replicated) continue;
    if (Replica* r = v->replica_at(site_index)) {
      r->readable.store(false, std::memory_order_release);
    }
  }

  s.set_up(true);

  // (5) Catch-up: re-apply the catalog writes this site missed, through
  // an ordinary local transaction. Deferred while a 2PC is in flight —
  // its decision timestamp may be below a timestamp drawn here now,
  // which would un-sort the per-object committed logs.
  bool defer = false;
  {
    const std::scoped_lock lock(catalog_mu_);
    if (in_2pc_) {
      deferred_catchup_.insert(site_index);
      defer = true;
    }
  }
  if (!defer && !catch_up(s)) {
    // The copier was aborted by an injected fault: recovery is atomic,
    // so the site goes back down and a later recover() retries whole.
    s.set_up(false);
    return false;
  }
  site_recovers_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DistRuntime::catch_up(Site& s) {
  struct Missing {
    Timestamp ts{kNoTimestamp};
    std::vector<LoggedOp> ops;
    Replica* replica{nullptr};
  };
  std::vector<Missing> missing;
  {
    const std::scoped_lock lock(catalog_mu_);
    for (const auto& v : placement_.vars()) {
      if (!v->replicated) continue;
      Replica* r = v->replica_at(s.index());
      if (r == nullptr) continue;
      for (const auto& [ts, ops] : v->writes) {
        if (!r->delivered.contains(ts)) missing.push_back({ts, ops, r});
      }
    }
  }
  if (missing.empty()) return true;
  std::sort(missing.begin(), missing.end(),
            [](const Missing& a, const Missing& b) { return a.ts < b.ts; });

  // The copier is an ordinary update transaction in the formal model —
  // fresh activity id, normal invoke/respond/commit events — so the
  // certified histories need no special case for it. Re-applying in
  // origin-commit-timestamp order on a replica that has everything below
  // the first missed write reproduces each operation's original state,
  // so logged results match (divergence is counted if they don't).
  std::shared_ptr<Transaction> txn;
  std::uint64_t applied = 0;
  try {
    txn = s.tm().begin_as(next_gid(), TxnKind::kUpdate);
    for (const Missing& m : missing) {
      for (const LoggedOp& logged : m.ops) {
        const Value result = m.replica->object->invoke(*txn, logged.op);
        if (!(result == logged.result)) {
          replica_divergence_.fetch_add(1, std::memory_order_relaxed);
        }
        ++applied;
      }
    }
    s.tm().commit(txn);
  } catch (const TransactionAborted&) {
    if (txn != nullptr) s.tm().abort(txn);
    return false;
  }
  catchup_txns_.fetch_add(1, std::memory_order_relaxed);
  catchup_ops_.fetch_add(applied, std::memory_order_relaxed);
  const std::scoped_lock lock(catalog_mu_);
  for (const Missing& m : missing) m.replica->delivered.insert(m.ts);
  return true;
}

void DistRuntime::run_deferred_catchups() {
  std::set<std::size_t> pending;
  {
    const std::scoped_lock lock(catalog_mu_);
    in_2pc_ = false;
    pending.swap(deferred_catchup_);
  }
  for (const std::size_t idx : pending) {
    Site& s = *sites_[idx];
    if (!s.up()) continue;  // failed again; its next recovery catches up
    if (!catch_up(s)) s.set_up(false);
  }
}

void DistRuntime::set_fault_plan(const FaultPlan& plan) {
  // Coordinator injector: decides site fail/recover per liveness tick.
  // Its sequence source is the deployment-wide clock maximum, so fault
  // trace lines interleave faithfully with the merged event trace.
  auto coord = std::make_shared<FaultInjector>(plan);
  coord->set_sequence_source([this] {
    std::uint64_t m = 0;
    for (const auto& s : sites_) m = std::max(m, s->tm().clock().now());
    return m;
  });
  coordinator_injector_ = std::move(coord);

  // Per-site injectors: derived seeds (distinct fault streams per site),
  // site churn zeroed (that's the coordinator's job), and the pinned
  // pipeline crash re-aimed at fail(site) — a node that crashes inside
  // its commit pipeline is a site failure, not a private restart.
  site_injectors_.clear();
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    FaultPlan local = plan;
    local.seed = plan.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    local.site_fail_permille = 0;
    local.site_recover_permille = 0;
    auto inj = std::make_shared<FaultInjector>(local);
    // set_fault_injector installs runtime().crash() as the crash hook;
    // override it after, so the pinned crash goes through fail().
    sites_[i]->runtime().set_fault_injector(inj);
    inj->set_crash_hook([this, i] { fail(i); });
    site_injectors_.push_back(std::move(inj));
  }
}

void DistRuntime::tick_site_faults() {
  FaultInjector* inj = coordinator_injector_.get();
  if (inj == nullptr) return;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i]->up()) {
      if (inj->on_site_fail(i)) fail(i);
    } else {
      if (inj->on_site_recover(i)) recover(i);
    }
  }
}

// --- observation -------------------------------------------------------

History DistRuntime::merged_history() const {
  std::vector<std::pair<std::pair<std::uint64_t, std::size_t>, Event>> all;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    FlightRecorder* fr = sites_[i]->runtime().flight_recorder();
    if (fr == nullptr) continue;
    for (auto& se : fr->sequenced_snapshot()) {
      all.emplace_back(std::make_pair(se.seq, i), std::move(se.event));
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  History h;
  for (auto& [key, e] : all) h.append(std::move(e));
  return h;
}

std::string DistRuntime::merged_trace() const {
  struct Line {
    std::uint64_t seq{0};
    std::size_t rank{0};
    std::string text;
  };
  std::vector<Line> lines;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const std::string tag = "site" + std::to_string(i);
    FlightRecorder* fr = sites_[i]->runtime().flight_recorder();
    if (fr != nullptr) {
      for (const auto& se : fr->sequenced_snapshot()) {
        lines.push_back({se.seq, i, tag + ": " + to_string(se.event)});
      }
    }
    if (i < site_injectors_.size() && site_injectors_[i] != nullptr) {
      for (const FaultEvent& fe : site_injectors_[i]->trace()) {
        // '#'-prefixed so hist/parse.h skips fault lines before the
        // site-tag stripping even looks at them.
        lines.push_back({fe.seq, i, "# " + tag + " " + to_trace_line(fe).substr(2)});
      }
    }
  }
  if (coordinator_injector_ != nullptr) {
    for (const FaultEvent& fe : coordinator_injector_->trace()) {
      lines.push_back(
          {fe.seq, sites_.size(), "# coord " + to_trace_line(fe).substr(2)});
    }
  }
  std::stable_sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return a.seq != b.seq ? a.seq < b.seq : a.rank < b.rank;
  });
  std::string out;
  for (const Line& l : lines) {
    out += l.text;
    out += '\n';
  }
  return out;
}

std::unordered_set<ActivityId> DistRuntime::read_only_activities() const {
  const std::scoped_lock lock(ro_mu_);
  return read_only_gids_;
}

std::vector<DistRuntime::DumpEntry> DistRuntime::dump(const Operation& op) {
  std::vector<DumpEntry> out;
  for (const auto& s : sites_) {
    if (!s->up()) continue;
    std::vector<std::pair<const LogicalVar*, Replica*>> local;
    for (const auto& v : placement_.vars()) {
      if (Replica* r = v->replica_at(s->index())) local.emplace_back(v.get(), r);
    }
    if (local.empty()) continue;
    const std::size_t mark = out.size();
    try {
      // One administrative transaction per site, querying every local
      // replica — readable or not (the classic dump() bypasses the
      // stale-read rule). Recorded and certified like any transaction.
      const auto txn = s->tm().begin_as(next_gid(), TxnKind::kUpdate);
      for (const auto& [var, r] : local) {
        out.push_back({var->name, s->index(), r->object->invoke(*txn, op)});
      }
      s->tm().commit(txn);
    } catch (const TransactionAborted&) {
      // An injected fault aborted the probe; drop its partial answers.
      out.resize(mark);
    }
  }
  return out;
}

DistStats DistRuntime::stats() const {
  DistStats out;
  out.begun = begun_.load(std::memory_order_relaxed);
  out.one_phase_commits = one_phase_commits_.load(std::memory_order_relaxed);
  out.two_pc_commits = two_pc_commits_.load(std::memory_order_relaxed);
  out.read_only_commits = read_only_commits_.load(std::memory_order_relaxed);
  out.aborts = aborts_.load(std::memory_order_relaxed);
  out.unavailable_aborts =
      unavailable_aborts_.load(std::memory_order_relaxed);
  out.site_fails = site_fails_.load(std::memory_order_relaxed);
  out.site_recovers = site_recovers_.load(std::memory_order_relaxed);
  out.presumed_aborts = presumed_aborts_.load(std::memory_order_relaxed);
  out.promoted_commits = promoted_commits_.load(std::memory_order_relaxed);
  out.catchup_txns = catchup_txns_.load(std::memory_order_relaxed);
  out.catchup_ops = catchup_ops_.load(std::memory_order_relaxed);
  out.replica_divergence =
      replica_divergence_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace argus
