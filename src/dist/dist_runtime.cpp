#include "dist/dist_runtime.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/errors.h"
#include "obs/metrics_registry.h"

namespace argus {

namespace {

/// FNV-1a over the transaction id and variable name: the deterministic
/// replica pick for reads with no site affinity yet. Purely a routing
/// choice — any live readable replica is correct — but it must be a pure
/// function of the transaction so sweep runs replay byte-for-byte.
std::uint64_t replica_hash(ActivityId gid, const std::string& var) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(gid.value);
  for (const char c : var) mix(static_cast<unsigned char>(c));
  return h;
}

}  // namespace

std::vector<std::size_t> DistTxn::participants() const {
  std::vector<std::size_t> out;
  out.reserve(parts_.size());
  for (const auto& [site, part] : parts_) out.push_back(site);
  return out;
}

DistRuntime::DistRuntime(DistOptions options) : options_(options) {
  if (options_.sites == 0) {
    throw UsageError("DistRuntime needs at least one site");
  }
  if (options_.protocol != Protocol::kDynamic &&
      options_.protocol != Protocol::kHybrid) {
    throw UsageError(
        "DistRuntime supports the dynamic and hybrid local atomicity "
        "properties (validate-at-commit protocols cannot hold a 2PC "
        "decision open)");
  }
  sites_.reserve(options_.sites);
  for (std::size_t i = 0; i < options_.sites; ++i) {
    sites_.push_back(std::make_unique<Site>(
        i, options_.sites, options_.recorder, options_.object_id_stride));
  }
}

DistRuntime::~DistRuntime() = default;

void DistRuntime::index_replicas(LogicalVar& var) {
  for (const auto& r : var.replicas) {
    replica_by_oid_.emplace(r->object->id(), std::make_pair(&var, r.get()));
  }
}

// --- transactions ------------------------------------------------------

std::shared_ptr<DistTxn> DistRuntime::begin(TxnKind kind) {
  if (kind == TxnKind::kReadOnly &&
      !supports_snapshot_reads(options_.protocol)) {
    // Dynamic atomicity has no snapshot timestamp; audits run as update
    // transactions there, exactly as in the single-site sweeps.
    throw UsageError(
        "read-only distributed transactions require snapshot reads "
        "(hybrid protocol)");
  }
  auto t = std::make_shared<DistTxn>();
  t->gid_ = next_gid();
  t->kind_ = kind;
  t->stamp_ = global_stamp_.load(std::memory_order_acquire);
  begun_.fetch_add(1, std::memory_order_relaxed);
  if (kind == TxnKind::kReadOnly) {
    const std::scoped_lock lock(ro_mu_);
    read_only_gids_.insert(t->gid_);
  }
  return t;
}

void DistRuntime::observe_into(DistTxn& t, Site& s) {
  s.tm().clock().observe(t.stamp_);
}

void DistRuntime::absorb_from(DistTxn& t, Site& s) {
  t.stamp_ = std::max(t.stamp_, s.tm().clock().now());
}

DistTxn::Part& DistRuntime::ensure_part(DistTxn& t, Site& s) {
  const auto it = t.parts_.find(s.index());
  if (it != t.parts_.end()) return it->second;
  // Lamport carry: the site's clock absorbs everything this transaction
  // has seen before the participant begins, so cross-site causality is
  // reflected in every timestamp the participant draws.
  observe_into(t, s);
  std::shared_ptr<Transaction> txn;
  if (t.kind_ == TxnKind::kReadOnly) {
    if (t.snapshot_ts_ == kNoTimestamp) {
      // First participant fixes the global snapshot: a fresh timestamp,
      // watermark-covered locally.
      txn = s.tm().begin_as(t.gid_, TxnKind::kReadOnly);
      t.snapshot_ts_ = txn->start_ts();
    } else {
      // Later participants adopt it (begin_as waits until this site's
      // watermark covers it, preserving §4.3.3's snapshot invariant at
      // every site the activity visits).
      txn = s.tm().begin_as(t.gid_, TxnKind::kReadOnly, t.snapshot_ts_);
    }
  } else {
    txn = s.tm().begin_as(t.gid_, TxnKind::kUpdate);
  }
  absorb_from(t, s);
  const auto [ins, inserted] =
      t.parts_.emplace(s.index(), DistTxn::Part{std::move(txn)});
  return ins->second;
}

Value DistRuntime::read(DistTxn& t, const std::string& var,
                        const Operation& op) {
  if (t.finished_) {
    throw UsageError("read on finished distributed transaction " +
                     to_string(t.gid_));
  }
  LogicalVar* v = placement_.find(var);
  if (v == nullptr) throw UsageError("unknown logical variable '" + var + "'");

  // Available copies: any live replica whose readable flag is set.
  std::vector<Replica*> candidates;
  for (const auto& r : v->replicas) {
    if (r->site->up() && r->readable.load(std::memory_order_acquire)) {
      candidates.push_back(r.get());
    }
  }
  if (candidates.empty()) abort_unavailable(t);

  // Routing preference: a replica this transaction already wrote (so its
  // own intentions are visible), then a site it already runs on, then a
  // deterministic hash pick.
  Replica* pick = nullptr;
  if (const auto wt = t.write_targets_.find(v); wt != t.write_targets_.end()) {
    for (Replica* r : candidates) {
      if (wt->second.contains(r->site->index())) {
        pick = r;
        break;
      }
    }
  }
  if (pick == nullptr) {
    for (Replica* r : candidates) {
      if (t.parts_.contains(r->site->index())) {
        pick = r;
        break;
      }
    }
  }
  if (pick == nullptr) {
    pick = candidates[replica_hash(t.gid_, var) % candidates.size()];
  }

  Site& s = *pick->site;
  DistTxn::Part& part = ensure_part(t, s);
  observe_into(t, s);
  const Value result = pick->object->invoke(*part.txn, op);
  absorb_from(t, s);
  return result;
}

Value DistRuntime::write(DistTxn& t, const std::string& var,
                         const Operation& op) {
  if (t.finished_) {
    throw UsageError("write on finished distributed transaction " +
                     to_string(t.gid_));
  }
  if (t.kind_ == TxnKind::kReadOnly) {
    throw UsageError("read-only distributed transaction invoked a write");
  }
  LogicalVar* v = placement_.find(var);
  if (v == nullptr) throw UsageError("unknown logical variable '" + var + "'");

  // Write all available copies. The target set is pinned at the first
  // write to this variable: a site that recovers mid-transaction must not
  // receive only a suffix of the variable's operations. If a pinned
  // target has since failed, its participant is doomed and the invoke
  // below unwinds the transaction — the failure rule.
  std::vector<Replica*> targets;
  if (const auto wt = t.write_targets_.find(v); wt != t.write_targets_.end()) {
    for (const std::size_t idx : wt->second) {
      if (Replica* r = v->replica_at(idx)) targets.push_back(r);
    }
  } else {
    for (const auto& r : v->replicas) {
      if (r->site->up()) targets.push_back(r.get());
    }
    if (targets.empty()) abort_unavailable(t);
    auto& pinned = t.write_targets_[v];
    for (Replica* r : targets) pinned.insert(r->site->index());
  }

  std::optional<Value> first;
  for (Replica* r : targets) {
    Site& s = *r->site;
    DistTxn::Part& part = ensure_part(t, s);
    observe_into(t, s);
    const Value result = r->object->invoke(*part.txn, op);
    absorb_from(t, s);
    if (!first.has_value()) {
      first = result;
    } else if (!(*first == result)) {
      replica_divergence_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (v->replicated) {
    t.replicated_writes_.emplace_back(v, LoggedOp{op, *first});
  }
  return *first;
}

void DistRuntime::abort(const std::shared_ptr<DistTxn>& t) {
  if (t->finished_) return;
  abort_parts(*t, AbortReason::kUser);
  aborts_.fetch_add(1, std::memory_order_relaxed);
}

void DistRuntime::abort_parts(DistTxn& t, AbortReason reason) {
  t.finished_ = true;
  for (auto& [idx, part] : t.parts_) {
    Site& s = *sites_[idx];
    // Same Lamport carry as the commit paths: the abort event at each
    // site must sequence after every invoke the activity made anywhere,
    // or the merged history shows an operation after the abort.
    if (s.up()) observe_into(t, s);
    if (part.prepared) {
      const bool healthy =
          s.up() && part.txn->active() && !part.txn->doomed();
      if (healthy) {
        s.tm().abort_prepared(part.txn, reason);
      } else {
        // The site crashed after preparing. Retire the volatile state
        // silently; if the site has already recovered the in-doubt record
        // is resolvable now (the global outcome is abort), otherwise it
        // stays in the stable log for recovery's presumed abort.
        s.tm().detach_prepared(part.txn);
        if (s.up()) s.tm().log().drop_prepared(t.gid_);
      }
    } else {
      s.tm().abort(part.txn, reason);
    }
    if (s.up()) absorb_from(t, s);
  }
}

void DistRuntime::abort_unavailable(DistTxn& t) {
  abort_parts(t, AbortReason::kUnavailable);
  count_abort(AbortReason::kUnavailable);
  throw TransactionAborted(t.gid_, AbortReason::kUnavailable);
}

void DistRuntime::count_abort(AbortReason reason) {
  aborts_.fetch_add(1, std::memory_order_relaxed);
  if (reason == AbortReason::kUnavailable) {
    unavailable_aborts_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DistRuntime::bump_global_stamp(std::uint64_t v) {
  std::uint64_t cur = global_stamp_.load(std::memory_order_relaxed);
  while (cur < v && !global_stamp_.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void DistRuntime::commit(const std::shared_ptr<DistTxn>& t) {
  if (t->finished_) {
    throw UsageError("commit of finished distributed transaction " +
                     to_string(t->gid_));
  }
  if (t->parts_.empty()) {
    t->finished_ = true;
    return;
  }
  if (t->kind_ == TxnKind::kReadOnly) {
    commit_read_only(*t);
    return;
  }

  // The failure rule: a transaction that ran at a site which has since
  // failed cannot commit — its participant there was doomed by the
  // crash, so its intentions are gone. Abort globally before any
  // participant records a commit event.
  for (auto& [idx, part] : t->parts_) {
    Site& s = *sites_[idx];
    if (!s.up() || !part.txn->active() || part.txn->doomed()) {
      AbortReason reason = AbortReason::kUnavailable;
      if (s.up() && part.txn->doomed() &&
          part.txn->doom_reason() != AbortReason::kCrash) {
        reason = part.txn->doom_reason();
      }
      abort_parts(*t, reason);
      count_abort(reason);
      throw TransactionAborted(t->gid_, reason);
    }
  }

  if (t->parts_.size() == 1) {
    const auto it = t->parts_.begin();
    commit_one_phase(*t, it->first, it->second);
  } else {
    commit_two_phase(*t);
  }
}

void DistRuntime::commit_read_only(DistTxn& t) {
  // A cross-site read-only commit must be all-or-nothing too: commit and
  // abort events are tracked per activity across the merged history, so
  // committing at one site and aborting at another would make it
  // ill-formed. Check every participant first (nothing recorded yet, so
  // a global abort is still clean), then run the no-fail commit phase —
  // a read-only commit is pure event recording, with no log force, no
  // timestamp and no crash window.
  t.finished_ = true;
  for (auto& [idx, part] : t.parts_) {
    Site& s = *sites_[idx];
    if (!s.up() || !part.txn->active() || part.txn->doomed()) {
      AbortReason reason = AbortReason::kUnavailable;
      if (s.up() && part.txn->doomed() &&
          part.txn->doom_reason() != AbortReason::kCrash) {
        reason = part.txn->doom_reason();
      }
      abort_parts(t, reason);
      count_abort(reason);
      throw TransactionAborted(t.gid_, reason);
    }
  }
  for (auto& [idx, part] : t.parts_) {
    // Lamport carry into the commit events too: the stamp has absorbed
    // every site this activity read at, so each site's commit event
    // sequences after every invoke of the activity — otherwise a commit
    // recorded at a lagging clock could sort before an invoke made at a
    // busier site and the merged history would be ill-formed.
    observe_into(t, *sites_[idx]);
    sites_[idx]->tm().commit_read_only(part.txn);
    absorb_from(t, *sites_[idx]);
  }
  read_only_commits_.fetch_add(1, std::memory_order_relaxed);
}

void DistRuntime::commit_one_phase(DistTxn& t, std::size_t site_index,
                                   DistTxn::Part& part) {
  // A single participant commits through its site's ordinary pipeline —
  // no coordinator lock, which is what keeps disjoint per-site workloads
  // scaling with the site count.
  t.finished_ = true;
  Site& s = *sites_[site_index];
  try {
    s.tm().commit(part.txn);
  } catch (const TransactionAborted& e) {
    count_abort(e.reason());
    throw;
  }
  const Timestamp decided = part.txn->commit_ts();
  bump_global_stamp(decided);
  register_commit(t, decided, {site_index});
  one_phase_commits_.fetch_add(1, std::memory_order_relaxed);
}

void DistRuntime::commit_two_phase(DistTxn& t) {
  const std::scoped_lock commit_lock(dist_commit_mu_);

  // No coordinator, no 2PC: presumed abort only works while there is a
  // decision list to ask. Refuse up front, before any participant
  // prepares — an unprepared abort leaves nothing in doubt.
  if (!coordinator_up()) {
    coord_unavailable_aborts_.fetch_add(1, std::memory_order_relaxed);
    abort_parts(t, AbortReason::kUnavailable);
    count_abort(AbortReason::kUnavailable);
    throw TransactionAborted(t.gid_, AbortReason::kUnavailable);
  }

  {
    const std::scoped_lock lock(catalog_mu_);
    in_2pc_ = true;
  }
  {
    // While this gid's decision is open, a recovering participant must
    // keep its prepared record in doubt instead of presuming abort.
    const std::scoped_lock lock(decisions_mu_);
    inflight_gid_ = t.gid_;
  }
  FaultInjector* coord = coordinator_injector_.get();

  // A pinned coordinator crash before any prepare: a clean global abort
  // (no participant holds anything stable yet).
  if (coord != nullptr && coord->on_coord_crash(FaultSite::kCoordPrePrepare)) {
    coordinator_died(t, std::nullopt);  // throws
  }

  // Phase 1: prepare at every participant, in ascending site order. Each
  // prepare validates locally, registers a proposed commit timestamp in
  // the site clock's in-flight table, and forces a prepared record.
  // tick_site_faults() between protocol steps puts mid-commit site
  // failures inside the sweep's search space.
  Timestamp decision = kNoTimestamp;
  std::optional<AbortReason> veto;
  for (auto& [idx, part] : t.parts_) {
    tick_site_faults();
    Site& s = *sites_[idx];
    if (!s.up() || !part.txn->active() || part.txn->doomed()) {
      veto = AbortReason::kUnavailable;
      break;
    }
    if (!send_message(FaultSite::kMsgPrepare)) {
      // Every prepare attempt to this participant was lost: treat it as
      // unreachable and abort globally — it never prepared, so nothing
      // is in doubt.
      veto = AbortReason::kUnavailable;
      break;
    }
    const std::optional<Timestamp> proposal = s.tm().prepare_2pc(part.txn);
    if (!proposal.has_value()) {
      // The local transaction is already aborted (validation veto, log
      // force failure, or a pinned crash downed the site mid-prepare).
      veto = s.up() ? AbortReason::kValidation : AbortReason::kUnavailable;
      break;
    }
    part.prepared = true;
    part.proposal = *proposal;
    decision = std::max(decision, *proposal);
  }

  if (veto.has_value()) {
    {
      const std::scoped_lock lock(decisions_mu_);
      inflight_gid_.reset();
    }
    abort_parts(t, *veto);
    count_abort(*veto);
    run_deferred_catchups();
    throw TransactionAborted(t.gid_, *veto);
  }

  // A pinned coordinator crash after every prepare but before the
  // decision: the classic in-doubt window. Nothing stable names the gid
  // yet, so the global outcome is (presumed) abort — but no participant
  // can learn that until the coordinator returns.
  if (coord != nullptr && coord->on_coord_crash(FaultSite::kCoordPostPrepare)) {
    coordinator_died(t, std::nullopt);  // throws
  }

  // Decision: commit at G = max(proposals). Disjoint clock residue
  // classes make G globally unique, and G >= every local proposal, so
  // each participant's re-stamp is an order-preserving move. The
  // decision is force-written to the DecisionLog *before* any delivery
  // (write-ahead for the decision itself): that is what lets a
  // participant — or the coordinator — that fails from here on resolve
  // the in-doubt record later (presumed abort for everything not
  // logged).
  tick_site_faults();
  if (options_.durable_decisions &&
      !decision_log_.force_decision(t.gid_, decision, t.participants())) {
    // The decision force failed: nothing stable names the gid, so the
    // only safe outcome is a global abort — the coordinator must never
    // deliver a commit it could not remember.
    {
      const std::scoped_lock lock(decisions_mu_);
      inflight_gid_.reset();
    }
    abort_parts(t, AbortReason::kIoError);
    count_abort(AbortReason::kIoError);
    run_deferred_catchups();
    throw TransactionAborted(t.gid_, AbortReason::kIoError);
  }
  {
    const std::scoped_lock lock(decisions_mu_);
    decisions_.emplace(t.gid_, decision);
    inflight_gid_.reset();
  }

  // From here the transaction IS committed — the decision is stable
  // (and cached on the commit list): whatever fails below, recovery and
  // the termination protocol deliver it everywhere eventually. The
  // catalog entry is registered now; delivery is marked per site as
  // phase 2 actually reaches each one.
  t.finished_ = true;
  bump_global_stamp(decision);
  register_commit(t, decision, {});

  if (coord != nullptr && coord->on_coord_crash(FaultSite::kCoordPostDecision)) {
    // Crash post-decision, pre-delivery: committed, and nobody was told.
    // Every prepared participant is stranded in doubt.
    coordinator_died(t, decision);
    two_pc_commits_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Phase 2: deliver. A participant that failed keeps its prepared
  // record for recovery; one that failed and already recovered is
  // resolved right here.
  bool crashed_mid_delivery = false;
  std::size_t delivered = 0;
  for (auto& [idx, part] : t.parts_) {
    if (delivered > 0 && coord != nullptr &&
        coord->on_coord_crash(FaultSite::kCoordMidDelivery)) {
      crashed_mid_delivery = true;
      break;
    }
    tick_site_faults();
    Site& s = *sites_[idx];
    if (s.up() && part.txn->active() && !part.txn->doomed()) {
      if (!send_message(FaultSite::kMsgDecide)) {
        // Every decide retry was lost: the participant is unreachable
        // while holding prepared volatile state — fence it (it is a
        // participant failure); recovery promotes its record from the
        // decision list.
        fence(idx);
        s.tm().detach_prepared(part.txn);
        continue;
      }
      s.tm().commit_prepared(part.txn, decision);
      // A pinned crash can down the site mid-apply; the promoted record
      // is stable and the apply completes, so the commit is delivered
      // here either way (recovery replays the same record).
      part.delivered = true;
      ++delivered;
      mark_delivered_site(t, decision, idx);
      if (options_.durable_decisions && send_message(FaultSite::kMsgAck)) {
        decision_log_.ack(t.gid_, idx);
      }
    } else if (s.up()) {
      // Failed after preparing, recovered before delivery.
      s.tm().detach_prepared(part.txn);
      resolve_in_doubt_commit(s, t.gid_, decision);
      part.delivered = true;
      ++delivered;
      mark_delivered_site(t, decision, idx);
      // Its stable log now carries the promoted record, which is exactly
      // what an ack certifies.
      if (options_.durable_decisions && send_message(FaultSite::kMsgAck)) {
        decision_log_.ack(t.gid_, idx);
      }
    } else {
      // Still down: silent retire; the prepared record waits for
      // recovery, which finds the decision on the commit list.
      s.tm().detach_prepared(part.txn);
    }
  }
  if (crashed_mid_delivery) {
    // Crash between two deliveries: some participants committed, the
    // rest are in doubt — the showcase for cooperative termination
    // (surviving peers' stable logs carry the promoted record).
    coordinator_died(t, decision);
    two_pc_commits_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (options_.durable_decisions) decision_log_.checkpoint();
  two_pc_commits_.fetch_add(1, std::memory_order_relaxed);
  run_deferred_catchups();
}

void DistRuntime::coordinator_died(DistTxn& t,
                                   std::optional<Timestamp> decided) {
  crash_coordinator();
  t.finished_ = true;
  for (auto& [idx, part] : t.parts_) {
    if (part.delivered) continue;  // already committed locally
    Site& s = *sites_[idx];
    if (part.prepared) {
      if (s.up() && part.txn->active() && !part.txn->doomed()) {
        // A live participant stranded while prepared: fence it. Its
        // volatile intentions must not serve reads, and nothing short of
        // a crash can retire them without a decision.
        fence(idx);
      }
      s.tm().detach_prepared(part.txn);
    } else {
      // Never prepared: a plain local abort is safe and clean.
      if (s.up()) observe_into(t, s);
      s.tm().abort(part.txn, AbortReason::kUnavailable);
      if (s.up()) absorb_from(t, s);
    }
  }
  run_deferred_catchups();
  if (!decided.has_value()) {
    count_abort(AbortReason::kUnavailable);
    throw TransactionAborted(t.gid_, AbortReason::kUnavailable);
  }
}

bool DistRuntime::send_message(FaultSite channel) {
  FaultInjector* inj = coordinator_injector_.get();
  if (inj == nullptr) return true;
  // Prepare and decide messages are resent on loss; an ack is not (a
  // lost ack merely leaves the decision on the log until the next
  // ack-table sync re-derives it from the participant's stable log).
  const std::uint32_t retries =
      channel == FaultSite::kMsgAck ? 0 : inj->plan().msg_retries;
  for (std::uint32_t attempt = 0; attempt <= retries; ++attempt) {
    const FaultInjector::MsgDecision d = inj->on_message(channel);
    if (d.latency_us > 0) msg_delays_.fetch_add(1, std::memory_order_relaxed);
    if (!d.lost) return true;
    msgs_lost_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void DistRuntime::register_commit(DistTxn& t, Timestamp decided,
                                  const std::set<std::size_t>& delivered_sites) {
  if (t.replicated_writes_.empty()) return;
  const std::scoped_lock lock(catalog_mu_);
  for (auto& [var, logged] : t.replicated_writes_) {
    var->writes[decided].push_back(logged);
  }
  // A replica received this commit iff its site was a pinned write
  // target *and* the commit was delivered there. Delivery makes the
  // copy provably current for the variable, which also restores
  // readability after a recovery (the stale-read rule's exit).
  for (const auto& [var, targets] : t.write_targets_) {
    if (!var->replicated) continue;
    for (const auto& r : var->replicas) {
      const std::size_t idx = r->site->index();
      if (targets.contains(idx) && delivered_sites.contains(idx)) {
        r->delivered.insert(decided);
        r->readable.store(true, std::memory_order_release);
      }
    }
  }
}

void DistRuntime::mark_delivered_site(DistTxn& t, Timestamp G,
                                      std::size_t site_index) {
  const std::scoped_lock lock(catalog_mu_);
  for (const auto& [var, targets] : t.write_targets_) {
    if (!var->replicated || !targets.contains(site_index)) continue;
    if (Replica* r = var->replica_at(site_index)) {
      r->delivered.insert(G);
      r->readable.store(true, std::memory_order_release);
    }
  }
}

void DistRuntime::resolve_in_doubt_commit(Site& s, ActivityId gid,
                                          Timestamp decided) {
  CommitLogRecord rec;
  bool found = false;
  for (auto& r : s.tm().log().prepared_records()) {
    if (r.txn == gid) {
      rec = std::move(r);
      found = true;
      break;
    }
  }
  // Recovery may have resolved it already (the decision was recorded
  // before phase 2 began); promote_prepared returning false means the
  // effects are present.
  if (!found || !s.tm().log().promote_prepared(gid, decided)) return;
  s.tm().clock().observe_committed(decided);
  const ReplayContext ctx{rec.txn, decided, rec.start_ts};
  for (const auto& entry : rec.entries) {
    const auto obj = s.runtime().object(entry.object);
    if (obj == nullptr) continue;
    for (const LoggedOp& logged : entry.ops) obj->replay(ctx, logged);
  }
  synthesize_commit_events(s, rec, decided);
  mark_promoted_delivered(rec, decided);
  promoted_commits_.fetch_add(1, std::memory_order_relaxed);
}

void DistRuntime::synthesize_commit_events(Site& s,
                                           const CommitLogRecord& rec,
                                           Timestamp ts) {
  // The record's invoke/respond events were recorded before the crash
  // and survive in the flight recorder; only the commit events are
  // missing (the participant was detached before delivery). Synthesizing
  // them late is safe: a commit event may appear anywhere after the
  // responses, and the timestamp is the activity's decision timestamp at
  // every object. Without them the merged history would show a committed
  // transaction's effects with no commit — exactly the violation the
  // checkers exist to catch.
  EventSink* sink = s.runtime().recorder();
  if (sink == nullptr) return;
  for (const auto& entry : rec.entries) {
    sink->record(options_.protocol == Protocol::kHybrid
                     ? commit_at(entry.object, rec.txn, ts)
                     : argus::commit(entry.object, rec.txn));
  }
}

void DistRuntime::mark_promoted_delivered(const CommitLogRecord& rec,
                                          Timestamp ts) {
  const std::scoped_lock lock(catalog_mu_);
  for (const auto& entry : rec.entries) {
    const auto it = replica_by_oid_.find(entry.object);
    if (it == replica_by_oid_.end()) continue;
    if (!it->second.first->replicated) continue;
    it->second.second->delivered.insert(ts);
  }
}

// --- liveness ----------------------------------------------------------

bool DistRuntime::fail(std::size_t site_index) {
  Site& s = *sites_.at(site_index);
  if (!s.up()) return false;
  s.set_up(false);
  site_fails_.fetch_add(1, std::memory_order_relaxed);
  // Whole-node failure: dooms every local participant (the failure rule)
  // and discards un-forced log records. Prepared records survive — they
  // are what recovery resolves against the coordinator.
  s.runtime().crash();
  return true;
}

bool DistRuntime::recover(std::size_t site_index) {
  Site& s = *sites_.at(site_index);
  if (s.up()) return false;
  bool fenced = false;
  {
    const std::scoped_lock lock(catalog_mu_);
    fenced = fenced_sites_.contains(site_index);
  }

  // (1a) Determine the outcome of every in-doubt prepared record first —
  // read-only, so recovery can refuse atomically. The coordinator's
  // commit list is decisive while it is up: promote what it committed,
  // presume abort for the rest — except a record of the 2PC currently in
  // flight, whose outcome is genuinely still open. With the coordinator
  // down, the cooperative termination protocol queries surviving peers'
  // stable logs instead; a record nobody can resolve blocks the whole
  // recovery — the site stays down and a later recover() retries
  // (normally after the coordinator returns) — because recovering with
  // an undecided record would let the catch-up copier apply catalog
  // writes that a later promotion would replay a second time.
  struct Resolution {
    CommitLogRecord rec;
    std::optional<Timestamp> decided;
    bool in_flight{false};
    bool via_peer{false};
  };
  std::vector<Resolution> resolutions;
  std::size_t unresolved = 0;
  for (auto& rec : s.tm().log().prepared_records()) {
    Resolution r{std::move(rec), std::nullopt, false, false};
    {
      const std::scoped_lock lock(decisions_mu_);
      const auto it = decisions_.find(r.rec.txn);
      if (it != decisions_.end()) {
        r.decided = it->second;
      } else if (inflight_gid_ == r.rec.txn) {
        r.in_flight = true;
      }
    }
    if (!r.decided.has_value() && !r.in_flight && !coordinator_up()) {
      r.decided = query_peers(site_index, r.rec.txn);
      if (r.decided.has_value()) {
        r.via_peer = true;
      } else {
        ++unresolved;
      }
    }
    resolutions.push_back(std::move(r));
  }
  if (unresolved > 0) {
    termination_blocked_.fetch_add(unresolved, std::memory_order_relaxed);
    return false;
  }

  // (1b) Apply the resolutions. Either way each proposal's entry in the
  // clock's in-flight table is released (idempotent), or it would stall
  // every later commit turn at this site forever.
  std::vector<std::pair<CommitLogRecord, Timestamp>> promoted;
  for (auto& r : resolutions) {
    s.tm().clock().finish_commit(r.rec.commit_ts);
    if (r.in_flight) continue;
    if (r.decided.has_value()) {
      if (s.tm().log().promote_prepared(r.rec.txn, *r.decided)) {
        s.tm().clock().observe_committed(*r.decided);
        promoted_commits_.fetch_add(1, std::memory_order_relaxed);
        if (r.via_peer) {
          termination_peer_promotions_.fetch_add(1,
                                                 std::memory_order_relaxed);
        } else if (fenced) {
          termination_promoted_.fetch_add(1, std::memory_order_relaxed);
        }
        // The promoted record in this site's stable log doubles as the
        // delivery ack the coordinator needs before truncating.
        if (options_.durable_decisions && coordinator_up()) {
          decision_log_.ack(r.rec.txn, site_index);
        }
        promoted.emplace_back(std::move(r.rec), *r.decided);
      }
    } else {
      if (s.tm().log().drop_prepared(r.rec.txn)) {
        presumed_aborts_.fetch_add(1, std::memory_order_relaxed);
        if (fenced) {
          termination_presumed_aborts_.fetch_add(1,
                                                 std::memory_order_relaxed);
        }
      }
    }
  }

  // (2) Rebuild every object from the stable log — which now includes
  // the just-promoted records, re-stamped with their decision
  // timestamps, replayed in timestamp order.
  s.runtime().recover();

  // (3) The promoted transactions' commit events were never recorded
  // (the site was down at delivery); synthesize them so per-site and
  // merged histories certify.
  for (const auto& [rec, ts] : promoted) {
    synthesize_commit_events(s, rec, ts);
    mark_promoted_delivered(rec, ts);
  }

  // (4) Stale-read rule: every replicated copy at a recovered site is
  // unreadable until a client write commits to it post-recovery. The
  // catch-up below restores the *state* but deliberately not
  // readability. Sharded copies stay readable — no other copy can have
  // taken writes while this site was down.
  for (const auto& v : placement_.vars()) {
    if (!v->replicated) continue;
    if (Replica* r = v->replica_at(site_index)) {
      r->readable.store(false, std::memory_order_release);
    }
  }

  s.set_up(true);

  // (5) Catch-up: re-apply the catalog writes this site missed, through
  // an ordinary local transaction. Deferred while a 2PC is in flight —
  // its decision timestamp may be below a timestamp drawn here now,
  // which would un-sort the per-object committed logs.
  bool defer = false;
  {
    const std::scoped_lock lock(catalog_mu_);
    if (in_2pc_) {
      deferred_catchup_.insert(site_index);
      defer = true;
    }
  }
  if (!defer && !catch_up(s)) {
    // The copier was aborted by an injected fault: recovery is atomic,
    // so the site goes back down (still fenced, if it was) and a later
    // recover() retries whole.
    s.set_up(false);
    return false;
  }
  {
    const std::scoped_lock lock(catalog_mu_);
    fenced_sites_.erase(site_index);
  }
  site_recovers_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void DistRuntime::fence(std::size_t site_index) {
  if (fail(site_index)) {
    const std::scoped_lock lock(catalog_mu_);
    fenced_sites_.insert(site_index);
  }
}

std::optional<Timestamp> DistRuntime::query_peers(std::size_t self,
                                                  ActivityId gid) {
  FaultInjector* inj = coordinator_injector_.get();
  std::uint32_t backoff_us = options_.termination_backoff_us;
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (inj != nullptr && inj->on_wait().spurious_timeout) {
      // This status-query round timed out (injected). Back off and
      // retry, up to the bound.
      termination_retries_.fetch_add(1, std::memory_order_relaxed);
      if (attempt >= options_.termination_max_retries) return std::nullopt;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us *= 2;
      continue;
    }
    for (std::size_t p = 0; p < sites_.size(); ++p) {
      if (p == self || !sites_[p]->up()) continue;
      if (const auto ts = sites_[p]->tm().log().committed_ts(gid)) return ts;
    }
    // A clean round where no surviving peer knows the outcome: further
    // retries bring no new information, so the record stays in doubt.
    return std::nullopt;
  }
}

// --- coordinator failover ----------------------------------------------

bool DistRuntime::crash_coordinator() {
  if (!coordinator_up_.exchange(false, std::memory_order_acq_rel)) {
    return false;
  }
  coord_crashes_.fetch_add(1, std::memory_order_relaxed);
  {
    // The volatile commit list and the open-decision marker die with the
    // coordinator; with durable_decisions the stable DecisionLog is the
    // recovery source, without it the decisions are simply gone (the
    // failure mode the log exists to close).
    const std::scoped_lock lock(decisions_mu_);
    decisions_.clear();
    inflight_gid_.reset();
  }
  decision_log_.crash();
  return true;
}

bool DistRuntime::recover_coordinator() {
  const std::scoped_lock commit_lock(dist_commit_mu_);
  if (coordinator_up()) return false;
  {
    const std::scoped_lock lock(decisions_mu_);
    decisions_.clear();
    for (const DecisionLog::Decision& d : decision_log_.replay()) {
      decisions_.emplace(d.gid, d.decision);
    }
    inflight_gid_.reset();
  }
  coordinator_up_.store(true, std::memory_order_release);
  coord_recovers_.fetch_add(1, std::memory_order_relaxed);
  // Re-sync the ack table lost in the crash from the participants' own
  // stable logs, and truncate what every participant already has.
  if (options_.durable_decisions) sync_acks_locked();
  return true;
}

std::size_t DistRuntime::run_termination_protocol() {
  std::set<std::size_t> fenced;
  {
    const std::scoped_lock lock(catalog_mu_);
    fenced = fenced_sites_;
  }
  const std::scoped_lock commit_lock(dist_commit_mu_);
  std::size_t resolved = 0;
  if (!fenced.empty()) {
    termination_rounds_.fetch_add(1, std::memory_order_relaxed);
    for (const std::size_t idx : fenced) {
      Site& s = *sites_[idx];
      if (s.up()) {
        // Recovered through another path meanwhile.
        const std::scoped_lock lock(catalog_mu_);
        fenced_sites_.erase(idx);
        continue;
      }
      const std::size_t in_doubt = s.tm().log().prepared_records().size();
      // recover() runs the cooperative termination for the site's records
      // (decisive against the commit list when the coordinator is up, peer
      // queries with retry + backoff when it is not) and refuses — leaving
      // the site down and fenced — if any record stays unresolvable.
      if (recover(idx)) resolved += in_doubt;
    }
  }
  // Even with nothing fenced, the round doubles as the coordinator's lazy
  // ack collection: acks lost on the wire are re-derived from the
  // participants' own stable logs, and fully-acknowledged decisions are
  // truncated — which is what lets drivers assert the decision log drains
  // once every site is up.
  if (coordinator_up() && options_.durable_decisions) sync_acks_locked();
  return resolved;
}

void DistRuntime::sync_acks_locked() {
  for (const DecisionLog::Decision& d : decision_log_.replay()) {
    for (const std::size_t p : d.participants) {
      if (p >= sites_.size() || !sites_[p]->up()) continue;
      if (sites_[p]->tm().log().committed_ts(d.gid).has_value()) {
        decision_log_.ack(d.gid, p);
      }
    }
  }
  decision_log_.checkpoint();
}

bool DistRuntime::catch_up(Site& s) {
  struct Missing {
    Timestamp ts{kNoTimestamp};
    std::vector<LoggedOp> ops;
    Replica* replica{nullptr};
  };
  std::vector<Missing> missing;
  {
    const std::scoped_lock lock(catalog_mu_);
    for (const auto& v : placement_.vars()) {
      if (!v->replicated) continue;
      Replica* r = v->replica_at(s.index());
      if (r == nullptr) continue;
      for (const auto& [ts, ops] : v->writes) {
        if (!r->delivered.contains(ts)) missing.push_back({ts, ops, r});
      }
    }
  }
  if (missing.empty()) return true;
  std::sort(missing.begin(), missing.end(),
            [](const Missing& a, const Missing& b) { return a.ts < b.ts; });

  // The copier is an ordinary update transaction in the formal model —
  // fresh activity id, normal invoke/respond/commit events — so the
  // certified histories need no special case for it. Re-applying in
  // origin-commit-timestamp order on a replica that has everything below
  // the first missed write reproduces each operation's original state,
  // so logged results match (divergence is counted if they don't).
  std::shared_ptr<Transaction> txn;
  std::uint64_t applied = 0;
  try {
    txn = s.tm().begin_as(next_gid(), TxnKind::kUpdate);
    for (const Missing& m : missing) {
      for (const LoggedOp& logged : m.ops) {
        const Value result = m.replica->object->invoke(*txn, logged.op);
        if (!(result == logged.result)) {
          replica_divergence_.fetch_add(1, std::memory_order_relaxed);
        }
        ++applied;
      }
    }
    s.tm().commit(txn);
  } catch (const TransactionAborted&) {
    if (txn != nullptr) s.tm().abort(txn);
    return false;
  }
  catchup_txns_.fetch_add(1, std::memory_order_relaxed);
  catchup_ops_.fetch_add(applied, std::memory_order_relaxed);
  const std::scoped_lock lock(catalog_mu_);
  for (const Missing& m : missing) m.replica->delivered.insert(m.ts);
  return true;
}

void DistRuntime::run_deferred_catchups() {
  std::set<std::size_t> pending;
  {
    const std::scoped_lock lock(catalog_mu_);
    in_2pc_ = false;
    pending.swap(deferred_catchup_);
  }
  for (const std::size_t idx : pending) {
    Site& s = *sites_[idx];
    if (!s.up()) continue;  // failed again; its next recovery catches up
    if (!catch_up(s)) s.set_up(false);
  }
}

void DistRuntime::set_fault_plan(const FaultPlan& plan) {
  // Coordinator injector: decides site fail/recover per liveness tick.
  // Its sequence source is the deployment-wide clock maximum, so fault
  // trace lines interleave faithfully with the merged event trace.
  auto coord = std::make_shared<FaultInjector>(plan);
  coord->set_sequence_source([this] {
    std::uint64_t m = 0;
    for (const auto& s : sites_) m = std::max(m, s->tm().clock().now());
    return m;
  });
  coordinator_injector_ = std::move(coord);
  // Decision-log forces consult the coordinator injector too
  // (FaultSite::kDecisionForce — a coordinator-side storage fault).
  decision_log_.set_fault_injector(coordinator_injector_.get());

  // Per-site injectors: derived seeds (distinct fault streams per site),
  // site churn zeroed (that's the coordinator's job), and the pinned
  // pipeline crash re-aimed at fail(site) — a node that crashes inside
  // its commit pipeline is a site failure, not a private restart.
  site_injectors_.clear();
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    FaultPlan local = plan;
    local.seed = plan.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    local.site_fail_permille = 0;
    local.site_recover_permille = 0;
    auto inj = std::make_shared<FaultInjector>(local);
    // set_fault_injector installs runtime().crash() as the crash hook;
    // override it after, so the pinned crash goes through fail().
    sites_[i]->runtime().set_fault_injector(inj);
    inj->set_crash_hook([this, i] { fail(i); });
    site_injectors_.push_back(std::move(inj));
  }
}

void DistRuntime::tick_site_faults() {
  FaultInjector* inj = coordinator_injector_.get();
  if (inj == nullptr) return;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i]->up()) {
      if (inj->on_site_fail(i)) fail(i);
    } else {
      if (inj->on_site_recover(i)) recover(i);
    }
  }
  if (!coordinator_up()) {
    bool in_2pc = false;
    {
      const std::scoped_lock lock(catalog_mu_);
      in_2pc = in_2pc_;
    }
    // recover_coordinator() takes dist_commit_mu_, which the 2PC holds
    // when it ticks between protocol steps — but the coordinator cannot
    // be down mid-2PC anyway (its death ends the 2PC), so the guard is
    // belt and braces.
    if (!in_2pc && inj->on_coord_recover()) recover_coordinator();
  }
}

// --- observation -------------------------------------------------------

History DistRuntime::merged_history() const {
  std::vector<std::pair<std::pair<std::uint64_t, std::size_t>, Event>> all;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    FlightRecorder* fr = sites_[i]->runtime().flight_recorder();
    if (fr == nullptr) continue;
    for (auto& se : fr->sequenced_snapshot()) {
      all.emplace_back(std::make_pair(se.seq, i), std::move(se.event));
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  History h;
  for (auto& [key, e] : all) h.append(std::move(e));
  return h;
}

std::string DistRuntime::merged_trace() const {
  struct Line {
    std::uint64_t seq{0};
    std::size_t rank{0};
    std::string text;
  };
  std::vector<Line> lines;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const std::string tag = "site" + std::to_string(i);
    FlightRecorder* fr = sites_[i]->runtime().flight_recorder();
    if (fr != nullptr) {
      for (const auto& se : fr->sequenced_snapshot()) {
        lines.push_back({se.seq, i, tag + ": " + to_string(se.event)});
      }
    }
    if (i < site_injectors_.size() && site_injectors_[i] != nullptr) {
      for (const FaultEvent& fe : site_injectors_[i]->trace()) {
        // '#'-prefixed so hist/parse.h skips fault lines before the
        // site-tag stripping even looks at them.
        lines.push_back({fe.seq, i, "# " + tag + " " + to_trace_line(fe).substr(2)});
      }
    }
  }
  if (coordinator_injector_ != nullptr) {
    for (const FaultEvent& fe : coordinator_injector_->trace()) {
      lines.push_back(
          {fe.seq, sites_.size(), "# coord " + to_trace_line(fe).substr(2)});
    }
  }
  std::stable_sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return a.seq != b.seq ? a.seq < b.seq : a.rank < b.rank;
  });
  std::string out;
  for (const Line& l : lines) {
    out += l.text;
    out += '\n';
  }
  return out;
}

std::unordered_set<ActivityId> DistRuntime::read_only_activities() const {
  const std::scoped_lock lock(ro_mu_);
  return read_only_gids_;
}

std::vector<DistRuntime::DumpEntry> DistRuntime::dump(const Operation& op) {
  std::vector<DumpEntry> out;
  for (const auto& s : sites_) {
    if (!s->up()) continue;
    std::vector<std::pair<const LogicalVar*, Replica*>> local;
    for (const auto& v : placement_.vars()) {
      if (Replica* r = v->replica_at(s->index())) local.emplace_back(v.get(), r);
    }
    if (local.empty()) continue;
    const std::size_t mark = out.size();
    try {
      // One administrative transaction per site, querying every local
      // replica — readable or not (the classic dump() bypasses the
      // stale-read rule). Recorded and certified like any transaction.
      const auto txn = s->tm().begin_as(next_gid(), TxnKind::kUpdate);
      for (const auto& [var, r] : local) {
        out.push_back({var->name, s->index(), r->object->invoke(*txn, op)});
      }
      s->tm().commit(txn);
    } catch (const TransactionAborted&) {
      // An injected fault aborted the probe; drop its partial answers.
      out.resize(mark);
    }
  }
  return out;
}

DistStats DistRuntime::stats() const {
  DistStats out;
  out.begun = begun_.load(std::memory_order_relaxed);
  out.one_phase_commits = one_phase_commits_.load(std::memory_order_relaxed);
  out.two_pc_commits = two_pc_commits_.load(std::memory_order_relaxed);
  out.read_only_commits = read_only_commits_.load(std::memory_order_relaxed);
  out.aborts = aborts_.load(std::memory_order_relaxed);
  out.unavailable_aborts =
      unavailable_aborts_.load(std::memory_order_relaxed);
  out.site_fails = site_fails_.load(std::memory_order_relaxed);
  out.site_recovers = site_recovers_.load(std::memory_order_relaxed);
  out.presumed_aborts = presumed_aborts_.load(std::memory_order_relaxed);
  out.promoted_commits = promoted_commits_.load(std::memory_order_relaxed);
  out.catchup_txns = catchup_txns_.load(std::memory_order_relaxed);
  out.catchup_ops = catchup_ops_.load(std::memory_order_relaxed);
  out.replica_divergence =
      replica_divergence_.load(std::memory_order_relaxed);
  out.coord_crashes = coord_crashes_.load(std::memory_order_relaxed);
  out.coord_recovers = coord_recovers_.load(std::memory_order_relaxed);
  out.coord_unavailable_aborts =
      coord_unavailable_aborts_.load(std::memory_order_relaxed);
  const DecisionLog::Stats dl = decision_log_.stats();
  out.decisions_logged = dl.logged;
  out.decision_force_failures = dl.force_failures;
  out.decisions_truncated = dl.truncated;
  out.msgs_lost = msgs_lost_.load(std::memory_order_relaxed);
  out.msg_delays = msg_delays_.load(std::memory_order_relaxed);
  out.termination_rounds = termination_rounds_.load(std::memory_order_relaxed);
  out.termination_promoted =
      termination_promoted_.load(std::memory_order_relaxed);
  out.termination_peer_promotions =
      termination_peer_promotions_.load(std::memory_order_relaxed);
  out.termination_presumed_aborts =
      termination_presumed_aborts_.load(std::memory_order_relaxed);
  out.termination_retries =
      termination_retries_.load(std::memory_order_relaxed);
  out.termination_blocked =
      termination_blocked_.load(std::memory_order_relaxed);
  return out;
}

void DistRuntime::register_metrics(MetricsRegistry& registry) {
  static constexpr struct {
    const char* name;
    const char* help;
    const char* type;
  } kMetrics[] = {
      {"argus_dist_txns_begun_total", "Distributed transactions begun",
       "counter"},
      {"argus_dist_one_phase_commits_total",
       "Single-participant commits through the local pipeline", "counter"},
      {"argus_dist_two_pc_commits_total", "Two-phase commits decided commit",
       "counter"},
      {"argus_dist_read_only_commits_total",
       "Cross-site read-only transactions committed", "counter"},
      {"argus_dist_aborts_total", "Distributed transactions aborted",
       "counter"},
      {"argus_dist_unavailable_aborts_total",
       "Aborts because no copy or participant was available", "counter"},
      {"argus_dist_site_fails_total", "Site failures", "counter"},
      {"argus_dist_site_recovers_total", "Completed site recoveries",
       "counter"},
      {"argus_dist_presumed_aborts_total",
       "In-doubt prepared records dropped at recovery (presumed abort)",
       "counter"},
      {"argus_dist_promoted_commits_total",
       "In-doubt prepared records promoted to commit", "counter"},
      {"argus_dist_catchup_txns_total", "Catch-up copier transactions",
       "counter"},
      {"argus_dist_catchup_ops_total",
       "Operations re-applied by the catch-up copier", "counter"},
      {"argus_dist_replica_divergence_total",
       "Replica result disagreements observed", "counter"},
      {"argus_dist_coord_crashes_total", "Coordinator crashes", "counter"},
      {"argus_dist_coord_recovers_total", "Coordinator failovers completed",
       "counter"},
      {"argus_dist_coord_unavailable_aborts_total",
       "2PC attempts refused because the coordinator was down", "counter"},
      {"argus_dist_decisions_logged_total",
       "Commit decisions force-written to the decision log", "counter"},
      {"argus_dist_decision_force_failures_total",
       "Injected decision-log force failures (each aborts its 2PC)",
       "counter"},
      {"argus_dist_decisions_truncated_total",
       "Fully-acknowledged decisions checkpointed off the log", "counter"},
      {"argus_dist_msgs_lost_total", "Coordinator messages lost (injected)",
       "counter"},
      {"argus_dist_msg_delays_total",
       "Coordinator messages delayed (injected)", "counter"},
      {"argus_dist_termination_rounds_total",
       "Cooperative termination rounds run", "counter"},
      {"argus_dist_termination_promoted_total",
       "Fenced in-doubt records promoted via the recovered commit list",
       "counter"},
      {"argus_dist_termination_peer_promotions_total",
       "In-doubt records promoted via a surviving peer's stable log",
       "counter"},
      {"argus_dist_termination_presumed_aborts_total",
       "Fenced in-doubt records resolved by presumed abort", "counter"},
      {"argus_dist_termination_retries_total",
       "Termination query rounds wasted on injected timeouts", "counter"},
      {"argus_dist_termination_blocked_total",
       "In-doubt records left unresolved by a termination attempt",
       "counter"},
      {"argus_dist_decisions_outstanding",
       "Stable decisions awaiting full acknowledgement", "gauge"},
  };
  for (const auto& m : kMetrics) registry.describe(m.name, m.help, m.type);
  registry.add_collector([this] {
    const DistStats s = stats();
    std::vector<MetricSample> out;
    const auto add = [&out](const char* name, std::uint64_t v) {
      out.push_back({name, {}, static_cast<double>(v)});
    };
    add("argus_dist_txns_begun_total", s.begun);
    add("argus_dist_one_phase_commits_total", s.one_phase_commits);
    add("argus_dist_two_pc_commits_total", s.two_pc_commits);
    add("argus_dist_read_only_commits_total", s.read_only_commits);
    add("argus_dist_aborts_total", s.aborts);
    add("argus_dist_unavailable_aborts_total", s.unavailable_aborts);
    add("argus_dist_site_fails_total", s.site_fails);
    add("argus_dist_site_recovers_total", s.site_recovers);
    add("argus_dist_presumed_aborts_total", s.presumed_aborts);
    add("argus_dist_promoted_commits_total", s.promoted_commits);
    add("argus_dist_catchup_txns_total", s.catchup_txns);
    add("argus_dist_catchup_ops_total", s.catchup_ops);
    add("argus_dist_replica_divergence_total", s.replica_divergence);
    add("argus_dist_coord_crashes_total", s.coord_crashes);
    add("argus_dist_coord_recovers_total", s.coord_recovers);
    add("argus_dist_coord_unavailable_aborts_total",
        s.coord_unavailable_aborts);
    add("argus_dist_decisions_logged_total", s.decisions_logged);
    add("argus_dist_decision_force_failures_total",
        s.decision_force_failures);
    add("argus_dist_decisions_truncated_total", s.decisions_truncated);
    add("argus_dist_msgs_lost_total", s.msgs_lost);
    add("argus_dist_msg_delays_total", s.msg_delays);
    add("argus_dist_termination_rounds_total", s.termination_rounds);
    add("argus_dist_termination_promoted_total", s.termination_promoted);
    add("argus_dist_termination_peer_promotions_total",
        s.termination_peer_promotions);
    add("argus_dist_termination_presumed_aborts_total",
        s.termination_presumed_aborts);
    add("argus_dist_termination_retries_total", s.termination_retries);
    add("argus_dist_termination_blocked_total", s.termination_blocked);
    add("argus_dist_decisions_outstanding", decision_log_.outstanding());
    return out;
  });
}

}  // namespace argus
