// DistRuntime: the multi-site replicated runtime — N Sites (each a full
// single-node runtime: commit pipeline, stable log, flight recorder),
// a Placement of logical variables over them, available-copies reads,
// write-all-available writes, and two-phase commit grown out of the
// transaction manager's participant hooks (txn/manager.h).
//
// The design follows the replicated-data tradition the paper's model
// plugs into (available copies with a fail/recover liveness model, as in
// the classic distributed-database exercises):
//
//   * Global transactions. begin() assigns a globally unique ActivityId
//     (gid) and lazily opens one local participant transaction per site
//     touched, under the *same* gid (TransactionManager::begin_as), so
//     the merged cross-site history has one activity per global
//     transaction with no remapping. A Lamport stamp rides along: each
//     site's clock observes the transaction's stamp before it operates
//     there and the stamp absorbs the clock after, so cross-site
//     causality is reflected in the numeric timestamps (site clocks draw
//     from disjoint residue classes — Site's set_domain — which makes
//     every timestamp globally unique and lets histories merge by
//     sequence number).
//
//   * Available-copies. read() serves from any live readable replica
//     (preferring a site the transaction already runs on); write()
//     applies to every replica whose site is up. If no copy is
//     available, the transaction aborts with AbortReason::kUnavailable.
//     The failure rule: a transaction that touched a site which then
//     failed cannot commit (its participant there was doomed by the
//     crash); commit() detects this and aborts globally.
//
//   * Two-phase commit. A multi-site update commits via prepare_2pc at
//     every participant (validate + force a prepared record under a
//     *proposed* local timestamp held in the clock's in-flight table),
//     then the decision timestamp G = max(proposals) — globally unique,
//     and consistent with every local proposal — is delivered via
//     commit_prepared (re-stamp, promote, apply behind the local
//     watermark). Decisions are *force-written to the DecisionLog*
//     before delivery (presumed abort for everything else), so a
//     participant that fails between prepare and delivery resolves its
//     in-doubt record at recovery: promote+replay if the gid is logged,
//     drop if not. Single-participant transactions take the ordinary
//     one-phase pipeline — no coordinator lock — which is what keeps
//     disjoint per-site workloads scaling (bench_distributed).
//
//   * Coordinator failover. The coordinator itself is failable:
//     crash_coordinator() (or a pinned kCoord* fault at any 2PC protocol
//     step) loses the volatile commit list and the decision log's ack
//     table, but never a forced decision. recover_coordinator() rebuilds
//     the commit list from the log, resolves every in-doubt record at
//     every up site, re-syncs acks from the participants' own stable
//     logs, and checkpoints (truncates fully-acknowledged decisions).
//     A live participant stranded while prepared (its coordinator died,
//     or every decide-message retry was lost) *fences* itself: it fails
//     out of the available set — in-doubt volatile state must not serve
//     reads — leaving only its stable prepared record, and
//     run_termination_protocol() drives its rejoin: recovery resolves
//     the record against the coordinator's commit list when it is up,
//     else by querying surviving peers' stable logs, with bounded retry
//     + exponential backoff under injected spurious timeouts. Message
//     faults (loss/latency on prepare/decide/ack) are part of the same
//     deterministic plan.
//
//   * fail()/recover() are first-class fault-plan sites
//     (FaultSite::kSiteFail / kSiteRecover): set_fault_plan() attaches a
//     coordinator injector that decides site churn per liveness tick —
//     tick_site_faults() runs between transactions and *inside* the 2PC
//     (mid-protocol site failures are part of the sweep's search space)
//     — plus per-site injectors (derived seeds) for log/crash/wait
//     faults, whose pinned pipeline crash is wired to fail(site).
//
//   * Recovery: resolve in-doubt prepared records against the decision
//     list (synthesizing the missing commit events so per-site and
//     merged histories stay certifiable — their invoke/respond events
//     were recorded before the crash), replay the stable log, then run
//     the catch-up copier: client writes to replicated variables the
//     site missed (per the Placement catalog) are re-applied through an
//     ordinary local transaction, so catch-up is itself just a writer in
//     the formal model and needs no live peer. Finally the stale-read
//     rule: recovered replicated copies stay unreadable until a client
//     write commits to them post-recovery.
//
// Threading: transactions are single-threaded objects; DistRuntime
// itself may be driven from many threads (the benchmark runs a thread
// per site over disjoint shards). fail/recover/tick are coordinator
// operations — drive them from one thread (the sweep's).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/system.h"
#include "dist/decision_log.h"
#include "dist/placement.h"
#include "dist/site.h"
#include "fault/fault.h"
#include "hist/history.h"
#include "sched/factory.h"

namespace argus {

class MetricsRegistry;

struct DistOptions {
  std::size_t sites{2};
  /// Local atomicity property of every object. Dynamic (§4.1) and hybrid
  /// (§4.3) are supported; validate-at-commit protocols (OCC/MVCC)
  /// cannot participate in 2PC (see TransactionManager::prepare_2pc).
  Protocol protocol{Protocol::kHybrid};
  Runtime::RecorderMode recorder{Runtime::RecorderMode::kFlight};
  /// Site i allocates ObjectIds from [i*stride, (i+1)*stride).
  std::uint64_t object_id_stride{1000};
  /// Global transaction ids start here (clear of every site-local id
  /// space; rendered "t1000000", "t1000001", ... in traces).
  std::uint64_t gid_base{1000000};
  /// Force 2PC decisions to the coordinator's DecisionLog before
  /// delivery (replayed by recover_coordinator()). false = the PR 6
  /// in-memory commit list, kept as E18's baseline; with it a
  /// coordinator crash forgets every decision, so only enable
  /// coordinator faults against the durable log.
  bool durable_decisions{true};
  /// Cooperative termination: per in-doubt record, how many status-query
  /// rounds a participant attempts (spurious-timeout injection can waste
  /// a round) and the initial backoff, doubled per retry.
  std::uint32_t termination_max_retries{4};
  std::uint32_t termination_backoff_us{50};
};

struct DistStats {
  std::uint64_t begun{0};
  std::uint64_t one_phase_commits{0};
  std::uint64_t two_pc_commits{0};
  std::uint64_t read_only_commits{0};
  std::uint64_t aborts{0};
  std::uint64_t unavailable_aborts{0};
  std::uint64_t site_fails{0};
  std::uint64_t site_recovers{0};
  std::uint64_t presumed_aborts{0};    // in-doubt records dropped at recovery
  std::uint64_t promoted_commits{0};   // in-doubt records resolved to commit
  std::uint64_t catchup_txns{0};       // catch-up copier transactions
  std::uint64_t catchup_ops{0};        // operations re-applied by catch-up
  std::uint64_t replica_divergence{0}; // replicas disagreed on a result

  // Coordinator failover + decision log (PR 8).
  std::uint64_t coord_crashes{0};
  std::uint64_t coord_recovers{0};
  std::uint64_t coord_unavailable_aborts{0};  // 2PC refused: coordinator down
  std::uint64_t decisions_logged{0};
  std::uint64_t decision_force_failures{0};
  std::uint64_t decisions_truncated{0};
  std::uint64_t msgs_lost{0};
  std::uint64_t msg_delays{0};

  // Cooperative termination protocol.
  std::uint64_t termination_rounds{0};
  std::uint64_t termination_promoted{0};        // resolved via the live log
  std::uint64_t termination_peer_promotions{0}; // resolved via a peer's log
  std::uint64_t termination_presumed_aborts{0};
  std::uint64_t termination_retries{0};  // rounds wasted on injected timeouts
  std::uint64_t termination_blocked{0};  // records left in doubt this round
};

class DistRuntime;

/// One global transaction. Created by DistRuntime::begin(); operate on it
/// through DistRuntime::read/write/commit/abort. Single-threaded.
class DistTxn {
 public:
  [[nodiscard]] ActivityId id() const { return gid_; }
  [[nodiscard]] bool read_only() const { return kind_ == TxnKind::kReadOnly; }
  /// The shared snapshot timestamp of a read-only transaction
  /// (kNoTimestamp until its first read picks a site).
  [[nodiscard]] Timestamp snapshot_ts() const { return snapshot_ts_; }
  /// Site indices this transaction runs participants at.
  [[nodiscard]] std::vector<std::size_t> participants() const;

 private:
  friend class DistRuntime;

  struct Part {
    std::shared_ptr<Transaction> txn;
    bool prepared{false};
    bool delivered{false};  // phase 2 reached this site (commit applied)
    Timestamp proposal{kNoTimestamp};
  };

  ActivityId gid_{0};
  TxnKind kind_{TxnKind::kUpdate};
  Timestamp snapshot_ts_{kNoTimestamp};
  std::uint64_t stamp_{0};  // Lamport carry between sites
  std::map<std::size_t, Part> parts_;
  /// Writes to replicated variables, in invocation order (first
  /// replica's results) — becomes the catalog entry at commit.
  std::vector<std::pair<LogicalVar*, LoggedOp>> replicated_writes_;
  /// The replica sites each written variable's ops were applied at,
  /// pinned at the first write (a site that recovers mid-transaction must
  /// not receive a suffix of the variable's ops).
  std::map<LogicalVar*, std::set<std::size_t>> write_targets_;
  bool finished_{false};
};

class DistRuntime {
 public:
  explicit DistRuntime(DistOptions options = {});
  ~DistRuntime();

  DistRuntime(const DistRuntime&) = delete;
  DistRuntime& operator=(const DistRuntime&) = delete;

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] Site& site(std::size_t i) { return *sites_.at(i); }
  [[nodiscard]] Protocol protocol() const { return options_.protocol; }
  [[nodiscard]] Placement& placement() { return placement_; }

  /// Creates a sharded variable: one copy, at the next round-robin site.
  template <AdtTraits A>
  LogicalVar& create_sharded(const std::string& name) {
    Site& s = *sites_[placement_.next_shard_site(sites_.size())];
    std::vector<std::unique_ptr<Replica>> reps;
    reps.push_back(std::make_unique<Replica>(
        &s, make_object<A>(s.runtime(), options_.protocol, name)));
    merged_system_.add_object(reps.back()->object->id(),
                              std::make_shared<AdtSpec<A>>());
    LogicalVar& var = placement_.add(name, /*replicated=*/false,
                                     std::move(reps));
    index_replicas(var);
    return var;
  }

  /// Creates a replicated variable: one copy at every site.
  template <AdtTraits A>
  LogicalVar& create_replicated(const std::string& name) {
    std::vector<std::unique_ptr<Replica>> reps;
    for (auto& s : sites_) {
      reps.push_back(std::make_unique<Replica>(
          s.get(), make_object<A>(s->runtime(), options_.protocol, name)));
      merged_system_.add_object(reps.back()->object->id(),
                                std::make_shared<AdtSpec<A>>());
    }
    LogicalVar& var =
        placement_.add(name, /*replicated=*/true, std::move(reps));
    index_replicas(var);
    return var;
  }

  // --- transactions ----------------------------------------------------

  std::shared_ptr<DistTxn> begin(TxnKind kind = TxnKind::kUpdate);

  /// Available-copies read: serves `op` from one live readable replica
  /// (a site the transaction already runs on if possible, else a
  /// deterministic hash pick). Throws TransactionAborted(kUnavailable) —
  /// after aborting the transaction — if no copy is available.
  Value read(DistTxn& t, const std::string& var, const Operation& op);

  /// Write-all-available: applies `op` at every replica whose site is
  /// up, returns the first replica's result (disagreements are counted
  /// as replica_divergence). Unavailable if no site holding a copy is
  /// up.
  Value write(DistTxn& t, const std::string& var, const Operation& op);

  /// Commits: read-only and single-participant transactions through the
  /// local pipelines, multi-participant updates through 2PC. Throws
  /// TransactionAborted (after aborting everywhere) on a veto, a failed
  /// participant site, or unavailability.
  void commit(const std::shared_ptr<DistTxn>& t);

  void abort(const std::shared_ptr<DistTxn>& t);

  // --- liveness --------------------------------------------------------

  /// Site failure: marks the site down and crashes its runtime (dooming
  /// its participants — the failure rule). False if already down.
  bool fail(std::size_t site_index);

  /// Site recovery: resolves in-doubt prepared records against the
  /// decision list, replays the stable log, runs the catch-up copier,
  /// and applies the stale-read rule. False if already up — or if the
  /// coordinator is down and the site holds in-doubt records no
  /// surviving peer can resolve (recovery is atomic: the site stays down
  /// and a later recover() retries, normally after the coordinator
  /// returns).
  bool recover(std::size_t site_index);

  // --- coordinator failover -------------------------------------------

  [[nodiscard]] bool coordinator_up() const {
    return coordinator_up_.load(std::memory_order_acquire);
  }

  /// Coordinator crash: the volatile commit list and the decision log's
  /// ack table are lost; stable decisions survive. While down, every
  /// multi-participant commit aborts kUnavailable and in-doubt
  /// participants can only resolve cooperatively (peers). False if
  /// already down.
  bool crash_coordinator();

  /// Coordinator failover: rebuilds the commit list from the decision
  /// log's stable records, authoritatively resolves every in-doubt
  /// prepared record at every up site (promote if logged, presumed abort
  /// otherwise), re-syncs the ack table from the participants' stable
  /// logs, and checkpoints. Idempotent — a second call is a no-op
  /// returning false (already up), and replaying the same log twice
  /// cannot double-apply (promotion is conditional on the record still
  /// being prepared). False if already up.
  bool recover_coordinator();

  /// Cooperative termination: every *fenced* site (a participant that
  /// failed itself out of the available set when a coordinator crash or
  /// decide-message loss left it holding prepared volatile state — see
  /// coordinator_died) attempts to rejoin via recover(), which resolves
  /// its in-doubt records against the coordinator's commit list when the
  /// coordinator is up, else by querying surviving peers' stable logs
  /// for the promoted record, with bounded retry + exponential backoff
  /// (an injected spurious timeout, FaultInjector::on_wait, wastes a
  /// round). Sites whose records nobody can resolve stay down (counted
  /// termination_blocked) until new information appears — normally the
  /// coordinator's return. Every round with the coordinator up also
  /// re-syncs the decision log's ack table from the participants' stable
  /// logs and truncates fully-acknowledged decisions (so acks lost on
  /// the wire never pin the log). Returns the number of records
  /// resolved.
  std::size_t run_termination_protocol();

  [[nodiscard]] DecisionLog& decision_log() { return decision_log_; }

  /// Attaches fault injection: a coordinator injector deciding site
  /// fail/recover per tick_site_faults() call, and per-site injectors
  /// (derived seeds; pinned crashes wired to fail(site)) for log, crash
  /// and wait faults. Call before running transactions.
  void set_fault_plan(const FaultPlan& plan);

  /// One liveness round: asks the coordinator injector, in site order,
  /// whether each up site fails and each down site recovers. Called by
  /// drivers between transactions; the 2PC calls it internally between
  /// protocol steps so mid-commit site failures are explored.
  void tick_site_faults();

  [[nodiscard]] FaultInjector* coordinator_injector() {
    return coordinator_injector_.get();
  }

  // --- observation -----------------------------------------------------

  /// The cross-site history: every site's flight-recorder events merged
  /// by (sequence, site). Disjoint clock domains make the merge a
  /// faithful, precedes-consistent interleaving.
  [[nodiscard]] History merged_history() const;

  /// merged_history() in the parse.h dump notation: events stamped
  /// "siteN: <...>", fault traces (site and coordinator) interleaved as
  /// '#'-comment lines. Replayable through hist/parse.h.
  [[nodiscard]] std::string merged_trace() const;

  /// Specification of every replica at every site (each replica is its
  /// own object in the formal model).
  [[nodiscard]] const SystemSpec& merged_system() const {
    return merged_system_;
  }

  /// Gids begun read-only (the partition check_well_formed_hybrid and
  /// updates() need).
  [[nodiscard]] std::unordered_set<ActivityId> read_only_activities() const;

  struct DumpEntry {
    std::string var;
    std::size_t site{0};
    Value value;
  };

  /// Administrative dump (the classic dump() query): runs `op` against
  /// every replica at every up site through ordinary local transactions
  /// (recorded and certified like any other), bypassing the stale-read
  /// rule. Probes use it for conservation and replica-equality checks.
  [[nodiscard]] std::vector<DumpEntry> dump(const Operation& op);

  [[nodiscard]] DistStats stats() const;

  /// Exposes every DistStats field (plus the decision-log backlog) as
  /// argus_dist_* counters/gauges through a registry collector, scraped
  /// on demand like the per-runtime metrics.
  void register_metrics(MetricsRegistry& registry);

 private:
  ActivityId next_gid() {
    return ActivityId{options_.gid_base +
                      gid_counter_.fetch_add(1, std::memory_order_relaxed)};
  }

  void index_replicas(LogicalVar& var);
  DistTxn::Part& ensure_part(DistTxn& t, Site& s);
  void observe_into(DistTxn& t, Site& s);
  void absorb_from(DistTxn& t, Site& s);

  void commit_read_only(DistTxn& t);
  void commit_one_phase(DistTxn& t, std::size_t site_index,
                        DistTxn::Part& part);
  void commit_two_phase(DistTxn& t);
  /// Abort every participant; prepared ones per their site's liveness.
  void abort_parts(DistTxn& t, AbortReason reason);
  [[noreturn]] void abort_unavailable(DistTxn& t);

  /// Registers a committed transaction's replicated writes in the
  /// catalog under decision timestamp G and marks delivery/readability
  /// at `delivered_sites`.
  void register_commit(DistTxn& t, Timestamp G,
                       const std::set<std::size_t>& delivered_sites);

  /// Marks one site's replicas delivered/readable for a committed
  /// transaction (2PC registers the catalog entry at decision time, then
  /// marks per-site delivery as phase 2 actually reaches each site).
  void mark_delivered_site(DistTxn& t, Timestamp G, std::size_t site_index);

  /// One simulated coordinator<->participant message on `channel`
  /// (kMsgPrepare / kMsgDecide / kMsgAck). Lost prepare messages are
  /// resent up to plan.msg_retries times; returns false when every
  /// attempt was lost.
  bool send_message(FaultSite channel);

  /// The pinned coordinator crash fired mid-2PC: crash the coordinator,
  /// fence every live undelivered prepared participant (fail it out of
  /// the available set — its in-doubt volatile state must not serve
  /// reads, and its prepared record is what the termination protocol
  /// resolves) and abort the unprepared rest. If `decided` is set the
  /// decision was already forced — the transaction IS committed and the
  /// caller returns normally; otherwise this throws
  /// TransactionAborted(kUnavailable) (presumed abort: nothing stable
  /// names the gid).
  void coordinator_died(DistTxn& t, std::optional<Timestamp> decided);

  /// fail(site) because a coordinator failure (or exhausted decide
  /// retries) stranded the site's prepared volatile state; tracked in
  /// fenced_sites_ so run_termination_protocol() drives its rejoin.
  void fence(std::size_t site_index);

  /// The participant side of cooperative termination: with the
  /// coordinator down, ask every surviving peer's stable log whether
  /// `gid` committed. Bounded retry with exponential backoff; an
  /// injected spurious timeout (on_wait) wastes a round. nullopt = no
  /// peer knows (the record stays in doubt).
  std::optional<Timestamp> query_peers(std::size_t self, ActivityId gid);

  /// Re-syncs the decision log's volatile ack table from participants'
  /// stable logs (a promoted record at the participant == an ack), then
  /// checkpoints. Caller holds dist_commit_mu_.
  void sync_acks_locked();

  /// Commit-side resolution for a participant that failed and recovered
  /// mid-2PC: promote its still-in-doubt record, replay the effects, and
  /// synthesize the commit events. No-op if recovery already resolved
  /// it.
  void resolve_in_doubt_commit(Site& s, ActivityId gid, Timestamp G);

  void synthesize_commit_events(Site& s, const CommitLogRecord& rec,
                                Timestamp ts);
  void mark_promoted_delivered(const CommitLogRecord& rec, Timestamp ts);

  /// Re-applies catalog writes the site's replicas missed, through one
  /// ordinary local transaction. False if an injected fault aborted the
  /// copier — the site is then marked down again (recovery is atomic; a
  /// later recover() retries).
  bool catch_up(Site& s);
  void run_deferred_catchups();

  void bump_global_stamp(std::uint64_t v);
  void count_abort(AbortReason reason);

  DistOptions options_;
  std::vector<std::unique_ptr<Site>> sites_;
  Placement placement_;
  SystemSpec merged_system_;
  std::unordered_map<ObjectId, std::pair<LogicalVar*, Replica*>>
      replica_by_oid_;

  std::atomic<std::uint64_t> gid_counter_{0};
  std::atomic<std::uint64_t> global_stamp_{0};

  /// Serializes multi-participant commits (and the liveness churn the
  /// 2PC interleaves); one-phase commits never take it.
  std::mutex dist_commit_mu_;
  bool in_2pc_{false};  // guarded by catalog_mu_ (recover() reads it)

  mutable std::mutex decisions_mu_;
  /// The volatile commit list (presumed abort) — now a cache over
  /// decision_log_ when durable_decisions is on: lost at
  /// crash_coordinator(), rebuilt by recover_coordinator().
  std::map<ActivityId, Timestamp> decisions_;
  std::optional<ActivityId> inflight_gid_;     // guarded by decisions_mu_

  DecisionLog decision_log_;
  std::atomic<bool> coordinator_up_{true};

  mutable std::mutex catalog_mu_;  // placement catalog + deferred catch-ups
  std::set<std::size_t> deferred_catchup_;
  /// Sites failed by fence(): down because a coordinator crash (or
  /// exhausted decide retries) stranded their prepared state, not by the
  /// fault plan's site churn. run_termination_protocol() recovers them
  /// as soon as their in-doubt records resolve. Guarded by catalog_mu_.
  std::set<std::size_t> fenced_sites_;

  mutable std::mutex ro_mu_;
  std::unordered_set<ActivityId> read_only_gids_;

  std::shared_ptr<FaultInjector> coordinator_injector_;
  std::vector<std::shared_ptr<FaultInjector>> site_injectors_;

  std::atomic<std::uint64_t> begun_{0};
  std::atomic<std::uint64_t> one_phase_commits_{0};
  std::atomic<std::uint64_t> two_pc_commits_{0};
  std::atomic<std::uint64_t> read_only_commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> unavailable_aborts_{0};
  std::atomic<std::uint64_t> site_fails_{0};
  std::atomic<std::uint64_t> site_recovers_{0};
  std::atomic<std::uint64_t> presumed_aborts_{0};
  std::atomic<std::uint64_t> promoted_commits_{0};
  std::atomic<std::uint64_t> catchup_txns_{0};
  std::atomic<std::uint64_t> catchup_ops_{0};
  std::atomic<std::uint64_t> replica_divergence_{0};
  std::atomic<std::uint64_t> coord_crashes_{0};
  std::atomic<std::uint64_t> coord_recovers_{0};
  std::atomic<std::uint64_t> coord_unavailable_aborts_{0};
  std::atomic<std::uint64_t> msgs_lost_{0};
  std::atomic<std::uint64_t> msg_delays_{0};
  std::atomic<std::uint64_t> termination_rounds_{0};
  std::atomic<std::uint64_t> termination_promoted_{0};
  std::atomic<std::uint64_t> termination_peer_promotions_{0};
  std::atomic<std::uint64_t> termination_presumed_aborts_{0};
  std::atomic<std::uint64_t> termination_retries_{0};
  std::atomic<std::uint64_t> termination_blocked_{0};
};

}  // namespace argus
