// DistRuntime: the multi-site replicated runtime — N Sites (each a full
// single-node runtime: commit pipeline, stable log, flight recorder),
// a Placement of logical variables over them, available-copies reads,
// write-all-available writes, and two-phase commit grown out of the
// transaction manager's participant hooks (txn/manager.h).
//
// The design follows the replicated-data tradition the paper's model
// plugs into (available copies with a fail/recover liveness model, as in
// the classic distributed-database exercises):
//
//   * Global transactions. begin() assigns a globally unique ActivityId
//     (gid) and lazily opens one local participant transaction per site
//     touched, under the *same* gid (TransactionManager::begin_as), so
//     the merged cross-site history has one activity per global
//     transaction with no remapping. A Lamport stamp rides along: each
//     site's clock observes the transaction's stamp before it operates
//     there and the stamp absorbs the clock after, so cross-site
//     causality is reflected in the numeric timestamps (site clocks draw
//     from disjoint residue classes — Site's set_domain — which makes
//     every timestamp globally unique and lets histories merge by
//     sequence number).
//
//   * Available-copies. read() serves from any live readable replica
//     (preferring a site the transaction already runs on); write()
//     applies to every replica whose site is up. If no copy is
//     available, the transaction aborts with AbortReason::kUnavailable.
//     The failure rule: a transaction that touched a site which then
//     failed cannot commit (its participant there was doomed by the
//     crash); commit() detects this and aborts globally.
//
//   * Two-phase commit. A multi-site update commits via prepare_2pc at
//     every participant (validate + force a prepared record under a
//     *proposed* local timestamp held in the clock's in-flight table),
//     then the decision timestamp G = max(proposals) — globally unique,
//     and consistent with every local proposal — is delivered via
//     commit_prepared (re-stamp, promote, apply behind the local
//     watermark). Decisions are recorded coordinator-side *before*
//     delivery (commit list; presumed abort for everything else), so a
//     participant that fails between prepare and delivery resolves its
//     in-doubt record at recovery: promote+replay if the gid is on the
//     commit list, drop if not. Single-participant transactions take the
//     ordinary one-phase pipeline — no coordinator lock — which is what
//     keeps disjoint per-site workloads scaling (bench_distributed).
//
//   * fail()/recover() are first-class fault-plan sites
//     (FaultSite::kSiteFail / kSiteRecover): set_fault_plan() attaches a
//     coordinator injector that decides site churn per liveness tick —
//     tick_site_faults() runs between transactions and *inside* the 2PC
//     (mid-protocol site failures are part of the sweep's search space)
//     — plus per-site injectors (derived seeds) for log/crash/wait
//     faults, whose pinned pipeline crash is wired to fail(site).
//
//   * Recovery: resolve in-doubt prepared records against the decision
//     list (synthesizing the missing commit events so per-site and
//     merged histories stay certifiable — their invoke/respond events
//     were recorded before the crash), replay the stable log, then run
//     the catch-up copier: client writes to replicated variables the
//     site missed (per the Placement catalog) are re-applied through an
//     ordinary local transaction, so catch-up is itself just a writer in
//     the formal model and needs no live peer. Finally the stale-read
//     rule: recovered replicated copies stay unreadable until a client
//     write commits to them post-recovery.
//
// Threading: transactions are single-threaded objects; DistRuntime
// itself may be driven from many threads (the benchmark runs a thread
// per site over disjoint shards). fail/recover/tick are coordinator
// operations — drive them from one thread (the sweep's).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/system.h"
#include "dist/placement.h"
#include "dist/site.h"
#include "fault/fault.h"
#include "hist/history.h"
#include "sched/factory.h"

namespace argus {

struct DistOptions {
  std::size_t sites{2};
  /// Local atomicity property of every object. Dynamic (§4.1) and hybrid
  /// (§4.3) are supported; validate-at-commit protocols (OCC/MVCC)
  /// cannot participate in 2PC (see TransactionManager::prepare_2pc).
  Protocol protocol{Protocol::kHybrid};
  Runtime::RecorderMode recorder{Runtime::RecorderMode::kFlight};
  /// Site i allocates ObjectIds from [i*stride, (i+1)*stride).
  std::uint64_t object_id_stride{1000};
  /// Global transaction ids start here (clear of every site-local id
  /// space; rendered "t1000000", "t1000001", ... in traces).
  std::uint64_t gid_base{1000000};
};

struct DistStats {
  std::uint64_t begun{0};
  std::uint64_t one_phase_commits{0};
  std::uint64_t two_pc_commits{0};
  std::uint64_t read_only_commits{0};
  std::uint64_t aborts{0};
  std::uint64_t unavailable_aborts{0};
  std::uint64_t site_fails{0};
  std::uint64_t site_recovers{0};
  std::uint64_t presumed_aborts{0};    // in-doubt records dropped at recovery
  std::uint64_t promoted_commits{0};   // in-doubt records resolved to commit
  std::uint64_t catchup_txns{0};       // catch-up copier transactions
  std::uint64_t catchup_ops{0};        // operations re-applied by catch-up
  std::uint64_t replica_divergence{0}; // replicas disagreed on a result
};

class DistRuntime;

/// One global transaction. Created by DistRuntime::begin(); operate on it
/// through DistRuntime::read/write/commit/abort. Single-threaded.
class DistTxn {
 public:
  [[nodiscard]] ActivityId id() const { return gid_; }
  [[nodiscard]] bool read_only() const { return kind_ == TxnKind::kReadOnly; }
  /// The shared snapshot timestamp of a read-only transaction
  /// (kNoTimestamp until its first read picks a site).
  [[nodiscard]] Timestamp snapshot_ts() const { return snapshot_ts_; }
  /// Site indices this transaction runs participants at.
  [[nodiscard]] std::vector<std::size_t> participants() const;

 private:
  friend class DistRuntime;

  struct Part {
    std::shared_ptr<Transaction> txn;
    bool prepared{false};
    Timestamp proposal{kNoTimestamp};
  };

  ActivityId gid_{0};
  TxnKind kind_{TxnKind::kUpdate};
  Timestamp snapshot_ts_{kNoTimestamp};
  std::uint64_t stamp_{0};  // Lamport carry between sites
  std::map<std::size_t, Part> parts_;
  /// Writes to replicated variables, in invocation order (first
  /// replica's results) — becomes the catalog entry at commit.
  std::vector<std::pair<LogicalVar*, LoggedOp>> replicated_writes_;
  /// The replica sites each written variable's ops were applied at,
  /// pinned at the first write (a site that recovers mid-transaction must
  /// not receive a suffix of the variable's ops).
  std::map<LogicalVar*, std::set<std::size_t>> write_targets_;
  bool finished_{false};
};

class DistRuntime {
 public:
  explicit DistRuntime(DistOptions options = {});
  ~DistRuntime();

  DistRuntime(const DistRuntime&) = delete;
  DistRuntime& operator=(const DistRuntime&) = delete;

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] Site& site(std::size_t i) { return *sites_.at(i); }
  [[nodiscard]] Protocol protocol() const { return options_.protocol; }
  [[nodiscard]] Placement& placement() { return placement_; }

  /// Creates a sharded variable: one copy, at the next round-robin site.
  template <AdtTraits A>
  LogicalVar& create_sharded(const std::string& name) {
    Site& s = *sites_[placement_.next_shard_site(sites_.size())];
    std::vector<std::unique_ptr<Replica>> reps;
    reps.push_back(std::make_unique<Replica>(
        &s, make_object<A>(s.runtime(), options_.protocol, name)));
    merged_system_.add_object(reps.back()->object->id(),
                              std::make_shared<AdtSpec<A>>());
    LogicalVar& var = placement_.add(name, /*replicated=*/false,
                                     std::move(reps));
    index_replicas(var);
    return var;
  }

  /// Creates a replicated variable: one copy at every site.
  template <AdtTraits A>
  LogicalVar& create_replicated(const std::string& name) {
    std::vector<std::unique_ptr<Replica>> reps;
    for (auto& s : sites_) {
      reps.push_back(std::make_unique<Replica>(
          s.get(), make_object<A>(s->runtime(), options_.protocol, name)));
      merged_system_.add_object(reps.back()->object->id(),
                                std::make_shared<AdtSpec<A>>());
    }
    LogicalVar& var =
        placement_.add(name, /*replicated=*/true, std::move(reps));
    index_replicas(var);
    return var;
  }

  // --- transactions ----------------------------------------------------

  std::shared_ptr<DistTxn> begin(TxnKind kind = TxnKind::kUpdate);

  /// Available-copies read: serves `op` from one live readable replica
  /// (a site the transaction already runs on if possible, else a
  /// deterministic hash pick). Throws TransactionAborted(kUnavailable) —
  /// after aborting the transaction — if no copy is available.
  Value read(DistTxn& t, const std::string& var, const Operation& op);

  /// Write-all-available: applies `op` at every replica whose site is
  /// up, returns the first replica's result (disagreements are counted
  /// as replica_divergence). Unavailable if no site holding a copy is
  /// up.
  Value write(DistTxn& t, const std::string& var, const Operation& op);

  /// Commits: read-only and single-participant transactions through the
  /// local pipelines, multi-participant updates through 2PC. Throws
  /// TransactionAborted (after aborting everywhere) on a veto, a failed
  /// participant site, or unavailability.
  void commit(const std::shared_ptr<DistTxn>& t);

  void abort(const std::shared_ptr<DistTxn>& t);

  // --- liveness --------------------------------------------------------

  /// Site failure: marks the site down and crashes its runtime (dooming
  /// its participants — the failure rule). False if already down.
  bool fail(std::size_t site_index);

  /// Site recovery: resolves in-doubt prepared records against the
  /// decision list, replays the stable log, runs the catch-up copier,
  /// and applies the stale-read rule. False if already up.
  bool recover(std::size_t site_index);

  /// Attaches fault injection: a coordinator injector deciding site
  /// fail/recover per tick_site_faults() call, and per-site injectors
  /// (derived seeds; pinned crashes wired to fail(site)) for log, crash
  /// and wait faults. Call before running transactions.
  void set_fault_plan(const FaultPlan& plan);

  /// One liveness round: asks the coordinator injector, in site order,
  /// whether each up site fails and each down site recovers. Called by
  /// drivers between transactions; the 2PC calls it internally between
  /// protocol steps so mid-commit site failures are explored.
  void tick_site_faults();

  [[nodiscard]] FaultInjector* coordinator_injector() {
    return coordinator_injector_.get();
  }

  // --- observation -----------------------------------------------------

  /// The cross-site history: every site's flight-recorder events merged
  /// by (sequence, site). Disjoint clock domains make the merge a
  /// faithful, precedes-consistent interleaving.
  [[nodiscard]] History merged_history() const;

  /// merged_history() in the parse.h dump notation: events stamped
  /// "siteN: <...>", fault traces (site and coordinator) interleaved as
  /// '#'-comment lines. Replayable through hist/parse.h.
  [[nodiscard]] std::string merged_trace() const;

  /// Specification of every replica at every site (each replica is its
  /// own object in the formal model).
  [[nodiscard]] const SystemSpec& merged_system() const {
    return merged_system_;
  }

  /// Gids begun read-only (the partition check_well_formed_hybrid and
  /// updates() need).
  [[nodiscard]] std::unordered_set<ActivityId> read_only_activities() const;

  struct DumpEntry {
    std::string var;
    std::size_t site{0};
    Value value;
  };

  /// Administrative dump (the classic dump() query): runs `op` against
  /// every replica at every up site through ordinary local transactions
  /// (recorded and certified like any other), bypassing the stale-read
  /// rule. Probes use it for conservation and replica-equality checks.
  [[nodiscard]] std::vector<DumpEntry> dump(const Operation& op);

  [[nodiscard]] DistStats stats() const;

 private:
  ActivityId next_gid() {
    return ActivityId{options_.gid_base +
                      gid_counter_.fetch_add(1, std::memory_order_relaxed)};
  }

  void index_replicas(LogicalVar& var);
  DistTxn::Part& ensure_part(DistTxn& t, Site& s);
  void observe_into(DistTxn& t, Site& s);
  void absorb_from(DistTxn& t, Site& s);

  void commit_read_only(DistTxn& t);
  void commit_one_phase(DistTxn& t, std::size_t site_index,
                        DistTxn::Part& part);
  void commit_two_phase(DistTxn& t);
  /// Abort every participant; prepared ones per their site's liveness.
  void abort_parts(DistTxn& t, AbortReason reason);
  [[noreturn]] void abort_unavailable(DistTxn& t);

  /// Registers a committed transaction's replicated writes in the
  /// catalog under decision timestamp G and marks delivery/readability
  /// at `delivered_sites`.
  void register_commit(DistTxn& t, Timestamp G,
                       const std::set<std::size_t>& delivered_sites);

  /// Commit-side resolution for a participant that failed and recovered
  /// mid-2PC: promote its still-in-doubt record, replay the effects, and
  /// synthesize the commit events. No-op if recovery already resolved
  /// it.
  void resolve_in_doubt_commit(Site& s, ActivityId gid, Timestamp G);

  void synthesize_commit_events(Site& s, const CommitLogRecord& rec,
                                Timestamp ts);
  void mark_promoted_delivered(const CommitLogRecord& rec, Timestamp ts);

  /// Re-applies catalog writes the site's replicas missed, through one
  /// ordinary local transaction. False if an injected fault aborted the
  /// copier — the site is then marked down again (recovery is atomic; a
  /// later recover() retries).
  bool catch_up(Site& s);
  void run_deferred_catchups();

  void bump_global_stamp(std::uint64_t v);
  void count_abort(AbortReason reason);

  DistOptions options_;
  std::vector<std::unique_ptr<Site>> sites_;
  Placement placement_;
  SystemSpec merged_system_;
  std::unordered_map<ObjectId, std::pair<LogicalVar*, Replica*>>
      replica_by_oid_;

  std::atomic<std::uint64_t> gid_counter_{0};
  std::atomic<std::uint64_t> global_stamp_{0};

  /// Serializes multi-participant commits (and the liveness churn the
  /// 2PC interleaves); one-phase commits never take it.
  std::mutex dist_commit_mu_;
  bool in_2pc_{false};  // guarded by catalog_mu_ (recover() reads it)

  mutable std::mutex decisions_mu_;
  std::map<ActivityId, Timestamp> decisions_;  // commit list (presumed abort)
  std::optional<ActivityId> inflight_gid_;     // guarded by decisions_mu_

  mutable std::mutex catalog_mu_;  // placement catalog + deferred catch-ups
  std::set<std::size_t> deferred_catchup_;

  mutable std::mutex ro_mu_;
  std::unordered_set<ActivityId> read_only_gids_;

  std::shared_ptr<FaultInjector> coordinator_injector_;
  std::vector<std::shared_ptr<FaultInjector>> site_injectors_;

  std::atomic<std::uint64_t> begun_{0};
  std::atomic<std::uint64_t> one_phase_commits_{0};
  std::atomic<std::uint64_t> two_pc_commits_{0};
  std::atomic<std::uint64_t> read_only_commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> unavailable_aborts_{0};
  std::atomic<std::uint64_t> site_fails_{0};
  std::atomic<std::uint64_t> site_recovers_{0};
  std::atomic<std::uint64_t> presumed_aborts_{0};
  std::atomic<std::uint64_t> promoted_commits_{0};
  std::atomic<std::uint64_t> catchup_txns_{0};
  std::atomic<std::uint64_t> catchup_ops_{0};
  std::atomic<std::uint64_t> replica_divergence_{0};
};

}  // namespace argus
