// DecisionLog: the coordinator's durable commit list.
//
// PR 6's coordinator kept its 2PC decisions in a volatile std::map — the
// one piece of recovery-critical state outside the fault model. This log
// closes that gap by reusing the StableLog machinery: each commit
// decision is force-written as a CommitLogRecord *before* any delivery
// (write-ahead for the decision itself), survives crash(), and is
// replayed at coordinator restart. Presumed abort is preserved: only
// commits are logged, so a gid absent from the log is an abort.
//
// Record encoding: txn = the global transaction id, commit_ts = the
// decision timestamp G, and one entry per participant whose ObjectId
// holds the participant's *site index* (the decision log tracks sites,
// not objects — the participants are who must acknowledge before the
// decision can be truncated).
//
// Acknowledgements are deliberately volatile: a participant that applied
// the decision (its own stable log now holds the promoted record) acks,
// and checkpoint() truncates every fully-acknowledged decision.
// Truncation is safe because a full ack set means every participant's
// *own* stable log carries the commit — no in-doubt prepared record for
// that gid can ever reappear, so nobody will ask the coordinator again.
// A coordinator crash loses the ack table; recovery re-syncs it from the
// participants' stable logs (StableLog::committed_ts) and checkpoints
// again, so truncation survives failover without ever being unsafe.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "txn/stable_log.h"

namespace argus {

class FaultInjector;

class DecisionLog {
 public:
  struct Decision {
    ActivityId gid{0};
    Timestamp decision{kNoTimestamp};
    std::vector<std::size_t> participants;
  };

  struct Stats {
    std::uint64_t logged{0};          // decisions force-written
    std::uint64_t force_failures{0};  // injected force failures
    std::uint64_t truncated{0};       // decisions checkpointed away
    std::uint64_t acks{0};            // participant acknowledgements
  };

  /// Fault hook for decision-force failures (FaultSite::kDecisionForce).
  /// nullptr = no injection; the pointer must outlive the log or be
  /// cleared first.
  void set_fault_injector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
  }

  /// Simulated per-force storage latency (what E18 prices).
  void set_force_delay(std::chrono::microseconds delay) {
    log_.set_force_delay(delay);
  }

  /// Force-writes one commit decision before delivery. Returns false if
  /// an injected force failure lost it — nothing is stable then, and the
  /// coordinator must abort the transaction globally (it never delivered
  /// a commit it could not remember).
  [[nodiscard]] bool force_decision(ActivityId gid, Timestamp decision,
                                    const std::vector<std::size_t>& parts);

  /// One participant acknowledges having durably applied the decision.
  void ack(ActivityId gid, std::size_t site_index);

  /// Truncates every decision all of whose participants have
  /// acknowledged. Returns the number removed.
  std::size_t checkpoint();

  /// The decision timestamp for `gid`, if a stable decision exists.
  [[nodiscard]] std::optional<Timestamp> lookup(ActivityId gid) const;

  /// Every stable (not yet truncated) decision — what coordinator
  /// recovery rebuilds its commit list from.
  [[nodiscard]] std::vector<Decision> replay() const;

  /// Stable decisions awaiting truncation.
  [[nodiscard]] std::size_t outstanding() const { return log_.size(); }

  /// Coordinator crash: the volatile ack table is lost; stable decisions
  /// survive (that is the whole point).
  void crash();

  [[nodiscard]] Stats stats() const;

 private:
  StableLog log_;
  std::atomic<FaultInjector*> fault_{nullptr};

  mutable std::mutex mu_;  // ack table + counters
  std::map<ActivityId, std::set<std::size_t>> acks_;
  Stats stats_;
};

}  // namespace argus
