// Placement: the mapping from logical variables to physical copies.
//
// A logical variable is either *sharded* — one copy, at the site the
// round-robin assignment chose — or *replicated* — one copy per site.
// Each copy ("replica") is an ordinary ManagedObject registered with its
// site's runtime; in the formal model every replica is its own object
// (per-site and merged histories are certified with per-replica object
// ids), and the available-copies discipline is a property of how
// DistRuntime routes reads and writes over this table:
//
//   * read  — any live replica whose `readable` flag is set,
//   * write — every replica whose site is up,
//   * a replica at a recovering site is marked unreadable and stays so
//     until a client write commits to it after the recovery (the
//     stale-read rule; the recovery catch-up copier restores its state
//     but deliberately does not restore readability).
//
// The table itself is immutable after setup (create all variables before
// running transactions): the hot path reads it without locks, only the
// per-replica `readable` flag and the catch-up bookkeeping mutate.
//
// `LogicalVar::writes` and `Replica::delivered` are the coordinator-side
// catalog the recovery catch-up copier works from: every committed client
// write to a replicated variable is recorded under its (globally unique)
// commit timestamp, and each replica tracks which of those writes reached
// it — either delivered at commit, promoted from an in-doubt prepared
// record during recovery, or re-applied by a catch-up transaction. The
// catalog lives outside any site on purpose: it plays the role of the
// replicated catalog / coordinator state that survives individual site
// failures, so catch-up needs no live peer to copy from. Guarded by
// DistRuntime's catalog mutex.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "txn/managed_object.h"

namespace argus {

class Site;

struct Replica {
  Replica(Site* s, std::shared_ptr<ManagedObject> o)
      : site(s), object(std::move(o)) {}

  Site* site{nullptr};
  std::shared_ptr<ManagedObject> object;

  /// Available-copies read permission. Cleared when the site recovers
  /// (stale-read rule), set again by the next committed client write.
  std::atomic<bool> readable{true};

  /// Commit timestamps of the catalog writes this replica has applied.
  /// Guarded by DistRuntime's catalog mutex.
  std::set<Timestamp> delivered;
};

struct LogicalVar {
  std::string name;
  bool replicated{false};
  std::vector<std::unique_ptr<Replica>> replicas;  // ascending site index

  /// Committed client writes: origin commit timestamp -> the operations
  /// (with results) the transaction performed on this variable, in
  /// invocation order. Guarded by DistRuntime's catalog mutex.
  std::map<Timestamp, std::vector<LoggedOp>> writes;

  /// The replica hosted at `site_index`, or nullptr (sharded variables
  /// have exactly one replica, somewhere).
  [[nodiscard]] Replica* replica_at(std::size_t site_index) const;
};

class Placement {
 public:
  Placement() = default;
  Placement(const Placement&) = delete;
  Placement& operator=(const Placement&) = delete;

  /// Registers a logical variable. Names must be unique.
  LogicalVar& add(std::string name, bool replicated,
                  std::vector<std::unique_ptr<Replica>> replicas);

  /// nullptr if no variable of that name exists.
  [[nodiscard]] LogicalVar* find(const std::string& name) const;

  [[nodiscard]] const std::vector<std::unique_ptr<LogicalVar>>& vars() const {
    return vars_;
  }

  /// The site index the next sharded variable should live at
  /// (round-robin; deterministic in creation order).
  [[nodiscard]] std::size_t next_shard_site(std::size_t site_count) {
    return site_count == 0 ? 0 : next_shard_++ % site_count;
  }

 private:
  std::vector<std::unique_ptr<LogicalVar>> vars_;
  std::unordered_map<std::string, std::size_t> index_;
  std::size_t next_shard_{0};
};

}  // namespace argus
