// MetricsRegistry: one registry for every runtime counter, gauge and
// histogram, exportable as Prometheus text exposition and as JSON.
//
// The seed grew three disjoint telemetry paths — TxnStats and
// CommitPipelineStats structs polled by callers, and the ad-hoc
// BENCH_*.json emitters in bench_common.h. This registry unifies them:
// hot paths bump Counter/Histogram handles (relaxed atomics / a leaf
// mutex around the shared LatencyStats core), cheap-to-read sources are
// registered as callback gauges or collectors and sampled at scrape
// time (the Prometheus collector pattern — the commit pipeline, clock
// watermark and per-object counters cost nothing until someone asks).
//
// Metric identity is (name, labels). Handles returned by counter() /
// gauge() / histogram() are stable for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/latency_stats.h"

namespace argus {

using MetricLabels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Quantile summary over the shared LatencyStats reservoir core (the
/// same implementation the benchmark harness reports percentiles with).
class Histogram {
 public:
  void observe(double v) {
    const std::scoped_lock lock(mu_);
    stats_.add(v);
  }
  [[nodiscard]] LatencyStats stats() const {
    const std::scoped_lock lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  LatencyStats stats_;
};

/// One scraped value, as produced by callback gauges and collectors.
struct MetricSample {
  std::string name;
  MetricLabels labels;
  double value{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the metric with this (name, labels) identity.
  Counter& counter(const std::string& name, const std::string& help,
                   MetricLabels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               MetricLabels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       MetricLabels labels = {});

  /// A gauge whose value is computed at scrape time.
  void gauge_callback(const std::string& name, const std::string& help,
                      MetricLabels labels, std::function<double()> fn);

  /// A collector emits a batch of samples at scrape time (used for
  /// per-object counters, whose label sets are not known up front).
  /// `help` / `type` metadata for collector-produced names can be
  /// declared via describe().
  void add_collector(std::function<std::vector<MetricSample>()> fn);

  /// Declares help text and Prometheus type ("counter"/"gauge") for a
  /// metric name emitted by a collector.
  void describe(const std::string& name, const std::string& help,
                const std::string& type);

  /// Prometheus text exposition format (help/type comments + samples;
  /// histograms render as summaries with quantile labels, _sum, _count).
  [[nodiscard]] std::string prometheus_text() const;

  /// The same data as a JSON object: {"name{labels}": value, ...};
  /// histograms expand to mean/max/p50/p95/p99/count keys.
  [[nodiscard]] std::string json() const;

 private:
  enum class Kind { kCounter, kGauge, kCallbackGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string name;
    MetricLabels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
  };

  Entry& find_or_create(Kind kind, const std::string& name,
                        const std::string& help, MetricLabels labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<std::function<std::vector<MetricSample>()>> collectors_;
  std::map<std::string, std::pair<std::string, std::string>> descriptions_;
};

}  // namespace argus
