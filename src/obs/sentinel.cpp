#include "obs/sentinel.h"

#include <algorithm>
#include <sstream>

#include "dsched/wait_policy.h"
#include "spec/serial.h"

namespace argus {

namespace {

/// Deduplicates a candidate set by pairwise equality (same discipline as
/// spec/serial.cpp: candidate sets stay tiny for our ADTs).
void dedupe(std::vector<std::unique_ptr<SpecState>>& states) {
  std::vector<std::unique_ptr<SpecState>> unique;
  for (auto& s : states) {
    bool dup = false;
    for (const auto& u : unique) {
      if (u->equals(*s)) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(std::move(s));
  }
  states = std::move(unique);
}

std::map<ObjectId, std::vector<std::unique_ptr<SpecState>>> clone_states(
    const std::map<ObjectId, std::vector<std::unique_ptr<SpecState>>>& from) {
  std::map<ObjectId, std::vector<std::unique_ptr<SpecState>>> out;
  for (const auto& [x, set] : from) {
    auto& dst = out[x];
    dst.reserve(set.size());
    for (const auto& s : set) dst.push_back(s->clone());
  }
  return out;
}

}  // namespace

const char* to_string(CheckMode m) {
  switch (m) {
    case CheckMode::kExact:
      return "exact";
    case CheckMode::kVectorClock:
      return "vector-clock";
    case CheckMode::kEscalating:
      return "escalating";
  }
  return "?";
}

AtomicitySentinel::AtomicitySentinel(FlightRecorder& recorder,
                                     const SystemSpec& system,
                                     SentinelOptions options,
                                     MetricsRegistry* metrics)
    : recorder_(recorder), system_(system), options_(std::move(options)) {
  if (options_.mode != CheckMode::kExact) {
    VcCheckerOptions vc;
    vc.escalate = options_.mode == CheckMode::kEscalating;
    vc.checkpoint_threshold = options_.checkpoint_threshold;
    vc_ = std::make_unique<VectorClockChecker>(system_, vc);
  }
  if (metrics != nullptr) {
    violations_metric_ = &metrics->counter(
        "argus_sentinel_violations_total",
        "atomicity violations found in the committed projection");
    windows_metric_ = &metrics->counter("argus_sentinel_windows_total",
                                        "sentinel drain+check windows run");
    events_metric_ = &metrics->counter("argus_sentinel_events_total",
                                       "events drained by the sentinel");
    activities_metric_ =
        &metrics->counter("argus_sentinel_activities_total",
                          "committed activities verified serializable");
    stragglers_metric_ = &metrics->counter(
        "argus_sentinel_stragglers_total",
        "activities that committed below an already-folded checkpoint");
    fastpath_windows_metric_ = &metrics->counter(
        "argus_sentinel_fastpath_windows_total",
        "windows certified by the vector-clock fast path alone");
    escalations_metric_ = &metrics->counter(
        "argus_sentinel_escalations_total",
        "suspicious windows escalated to an exact canonical re-replay");
    suspicious_metric_ =
        &metrics->counter("argus_sentinel_suspicious_total",
                          "activities flagged suspicious by the fast path");
    vc_ops_metric_ = &metrics->counter(
        "argus_sentinel_vc_ops_total",
        "conflict-relation consults and vector-clock joins performed");
  }
}

AtomicitySentinel::~AtomicitySentinel() { stop(); }

void AtomicitySentinel::start() {
  const std::scoped_lock lock(thread_mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  loop_done_.store(false);
  thread_ = std::thread([this] { run_loop(); });
}

void AtomicitySentinel::stop() {
  {
    const std::scoped_lock lock(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  // Bounded re-notify: a heavily delayed sentinel thread (TSan CI) can be
  // between its predicate check and its wait when the first notification
  // lands. Re-sending until the loop confirms exit (bounded, so shutdown
  // can never itself become the hang) makes join() below a quick,
  // already-exited join instead of an unbounded wait.
  for (int attempt = 0; attempt < 2000; ++attempt) {
    stop_cv_.notify_all();
    if (options_.wait_policy != nullptr) {
      options_.wait_policy->notify(&stop_cv_);
    }
    if (loop_done_.load()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  thread_.join();
  {
    const std::scoped_lock lock(thread_mu_);
    running_ = false;
  }
  finalize();
}

void AtomicitySentinel::finalize() {
  poll();
  if (vc_ == nullptr) return;
  std::vector<std::string> found;
  {
    const std::scoped_lock lock(mu_);
    vc_->finish();
    sync_vc_stats();
    found.swap(pending_hooks_);
  }
  if (options_.on_violation) {
    for (const std::string& explanation : found) {
      options_.on_violation(explanation);
    }
  }
}

void AtomicitySentinel::set_window(std::chrono::milliseconds window) {
  const std::scoped_lock lock(thread_mu_);
  options_.window = window;
}

void AtomicitySentinel::set_checkpoint_threshold(std::size_t threshold) {
  const std::scoped_lock lock(mu_);
  options_.checkpoint_threshold = threshold;
  if (vc_ != nullptr) vc_->set_checkpoint_threshold(threshold);
}

void AtomicitySentinel::run_loop() {
  WaitPolicy* policy = options_.wait_policy;
  if (policy != nullptr) {
    // Join the deterministic lane pool before touching any shared state:
    // from here on, this thread runs only when the schedule picks it.
    policy->adopt_daemon("sentinel");
  }
  std::unique_lock lock(thread_mu_);
  while (!stop_requested_) {
    if (policy == nullptr) {
      stop_cv_.wait_for(lock, options_.window,
                        [this] { return stop_requested_; });
    } else {
      const auto window_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              options_.window);
      policy->wait_round(LaneHint{WaitPoint::kSentinelWindow}, &stop_cv_,
                         lock, stop_cv_, window_us);
    }
    lock.unlock();
    poll();
    lock.lock();
  }
  lock.unlock();
  loop_done_.store(true);  // stop() may cease re-notifying
  if (policy != nullptr) policy->retire_daemon();
  poll();  // final flush so stop() observes a fully checked stream
}

void AtomicitySentinel::poll() {
  std::vector<std::string> found;
  {
    const std::scoped_lock lock(mu_);
    const std::uint64_t clock_before = recorder_.sequence_now();
    if (vc_ == nullptr) {
      ingest(recorder_.drain_new());
      check_window();
      maybe_checkpoint();
    } else {
      const std::vector<SequencedEvent> batch = recorder_.drain_new();
      events_seen_.fetch_add(batch.size(), std::memory_order_relaxed);
      if (events_metric_ != nullptr) events_metric_->inc(batch.size());
      vc_->feed(batch);
      // The frontier hint is the clock before the *previous* batch: any
      // serialization key not yet drawn exceeds it (same reasoning as
      // the exact mode's checkpoint frontier).
      vc_->advance_frontier(prev_window_clock_);
      sync_vc_stats();
    }
    prev_window_clock_ = clock_before;
    windows_.fetch_add(1, std::memory_order_relaxed);
    if (windows_metric_ != nullptr) windows_metric_->inc();
    found.swap(pending_hooks_);
  }
  if (options_.on_violation) {
    for (const std::string& explanation : found) {
      options_.on_violation(explanation);
    }
  }
}

void AtomicitySentinel::ingest(const std::vector<SequencedEvent>& batch) {
  events_seen_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (events_metric_ != nullptr) events_metric_->inc(batch.size());
  for (const SequencedEvent& se : batch) {
    ActivityBuffer& act = activities_[se.event.activity];
    const bool terminated = act.committed || act.aborted;
    switch (se.event.kind) {
      case EventKind::kInitiate:
        if (act.ts == kNoTimestamp) {
          act.ts = se.event.timestamp;
          if (!terminated) {
            open_initiations_.insert(act.ts);
            act.init_open = true;
          }
        }
        break;
      case EventKind::kCommit:
        if (!act.committed && !act.aborted) {
          act.committed = true;
          act.first_commit_seq = se.seq;
          if (se.event.has_timestamp() && act.ts == kNoTimestamp) {
            act.ts = se.event.timestamp;  // hybrid update commit stamp
          }
          buffered_committed_events_ += act.events.size();
          if (act.init_open) {
            open_initiations_.erase(open_initiations_.find(act.ts));
            act.init_open = false;
          }
        }
        break;
      case EventKind::kAbort:
        if (!act.committed && !act.aborted) {
          act.aborted = true;
          act.events.clear();  // not part of the committed projection
          act.events.shrink_to_fit();
          if (act.init_open) {
            open_initiations_.erase(open_initiations_.find(act.ts));
            act.init_open = false;
          }
        }
        break;
      case EventKind::kInvoke:
      case EventKind::kRespond:
        break;
    }
    if (act.aborted) continue;
    act.events.push_back(se);
    if (act.committed) ++buffered_committed_events_;
  }
}

void AtomicitySentinel::check_window() {
  // Committed, unfolded activities in canonical (key) order, re-checked
  // from the checkpoint each window: a straggler that commits late slots
  // into its key position automatically.
  std::vector<std::pair<std::uint64_t, ActivityId>> order;
  for (auto& [id, act] : activities_) {
    if (!act.committed || act.quarantined) continue;
    if (act.key() <= checkpoint_key_ && checkpoint_key_ != 0) {
      // Committed below an already-folded prefix; cannot be re-ordered
      // into it. Count, quarantine, move on — not a protocol violation.
      act.quarantined = true;
      stragglers_.fetch_add(1, std::memory_order_relaxed);
      if (stragglers_metric_ != nullptr) stragglers_metric_->inc();
      continue;
    }
    order.emplace_back(act.key(), id);
  }
  std::sort(order.begin(), order.end());
  auto states = clone_states(checkpoint_states_);
  for (const auto& [key, id] : order) {
    ActivityBuffer& act = activities_.at(id);
    if (replay_activity(id, act, states) && !act.checked) {
      act.checked = true;
      activities_checked_.fetch_add(1, std::memory_order_relaxed);
      if (activities_metric_ != nullptr) activities_metric_->inc();
    }
  }
}

void AtomicitySentinel::maybe_checkpoint() {
  if (buffered_committed_events_ < options_.checkpoint_threshold) return;
  // Frontier: no activity can still acquire a serialization key below
  // it. Keys are drawn fresh from the clock, so any key not yet drawn
  // exceeds the clock value at the previous window; keys already drawn
  // but unterminated sit in open_initiations_.
  std::uint64_t frontier = prev_window_clock_;
  if (!open_initiations_.empty()) {
    frontier = std::min(frontier, *open_initiations_.begin());
  }
  std::vector<std::pair<std::uint64_t, ActivityId>> fold;
  for (auto& [id, act] : activities_) {
    if (act.committed && !act.quarantined && act.key() < frontier) {
      fold.emplace_back(act.key(), id);
    }
  }
  std::sort(fold.begin(), fold.end());
  for (const auto& [key, id] : fold) {
    ActivityBuffer& act = activities_.at(id);
    replay_activity(id, act, checkpoint_states_);
    checkpoint_key_ = std::max(checkpoint_key_, key);
    buffered_committed_events_ -= std::min(
        buffered_committed_events_, act.events.size());
    activities_.erase(id);
  }
  // Drop terminated tombstones (aborted or straggler-quarantined
  // activities) whose events can no longer matter.
  for (auto it = activities_.begin(); it != activities_.end();) {
    if (it->second.aborted || it->second.quarantined) {
      it = activities_.erase(it);
    } else {
      ++it;
    }
  }
}

AtomicitySentinel::StateSet& AtomicitySentinel::states_for(
    std::map<ObjectId, StateSet>& states, ObjectId x) {
  auto it = states.find(x);
  if (it == states.end()) {
    StateSet initial;
    initial.push_back(system_.spec_of(x).initial_state());
    it = states.emplace(x, std::move(initial)).first;
  }
  return it->second;
}

bool AtomicitySentinel::replay_activity(
    ActivityId id, ActivityBuffer& act,
    std::map<ObjectId, StateSet>& states) {
  std::sort(act.events.begin(), act.events.end(),
            [](const SequencedEvent& a, const SequencedEvent& b) {
              return a.seq < b.seq;
            });
  // h|a split per object, preserving order — the per-object view whose
  // replay is exactly serializability-in-order's acceptance test.
  std::map<ObjectId, History> per_object;
  std::vector<ObjectId> object_order;
  for (const SequencedEvent& se : act.events) {
    auto [it, inserted] = per_object.try_emplace(se.event.object);
    if (inserted) object_order.push_back(se.event.object);
    it->second.append(se.event);
  }
  for (ObjectId x : object_order) {
    if (!system_.has(x)) continue;  // object created after the snapshot
    StateSet& current = states_for(states, x);
    StateSet next;
    for (const auto& s : current) {
      for (auto& reached : replay_states(*s, per_object.at(x))) {
        next.push_back(std::move(reached));
      }
    }
    dedupe(next);
    if (next.empty()) {
      std::ostringstream out;
      out << "atomicity violation: committed projection is not serializable "
             "in its canonical order — activity "
          << to_string(id) << " (key " << act.key()
          << ") has no acceptable replay at object " << to_string(x) << " ("
          << system_.spec_of(x).type_name() << "); h|a|x =\n"
          << per_object.at(x).to_string();
      report_violation(out.str());
      act.quarantined = true;
      return false;
    }
    current = std::move(next);
  }
  return true;
}

void AtomicitySentinel::report_violation(const std::string& explanation) {
  violations_.fetch_add(1, std::memory_order_relaxed);
  if (violations_metric_ != nullptr) violations_metric_->inc();
  last_violation_ = explanation;
  pending_hooks_.push_back(explanation);
}

std::string AtomicitySentinel::last_violation() const {
  const std::scoped_lock lock(mu_);
  return last_violation_;
}

void AtomicitySentinel::sync_vc_stats() {
  const VcStats& s = vc_->stats();
  const auto bump = [](Counter* metric, std::uint64_t prev,
                       std::uint64_t now) {
    if (metric != nullptr && now > prev) metric->inc(now - prev);
  };
  bump(violations_metric_, last_vc_.violations, s.violations);
  bump(activities_metric_, last_vc_.certified, s.certified);
  bump(stragglers_metric_, last_vc_.stragglers, s.stragglers);
  bump(fastpath_windows_metric_, last_vc_.fastpath_windows,
       s.fastpath_windows);
  bump(escalations_metric_, last_vc_.escalations, s.escalations);
  bump(suspicious_metric_, last_vc_.suspicious, s.suspicious);
  bump(vc_ops_metric_, last_vc_.vc_ops, s.vc_ops);
  violations_.store(s.violations, std::memory_order_relaxed);
  activities_checked_.store(s.certified, std::memory_order_relaxed);
  stragglers_.store(s.stragglers, std::memory_order_relaxed);
  fastpath_windows_.store(s.fastpath_windows, std::memory_order_relaxed);
  escalations_.store(s.escalations, std::memory_order_relaxed);
  suspicious_.store(s.suspicious, std::memory_order_relaxed);
  vc_ops_.store(s.vc_ops, std::memory_order_relaxed);
  last_vc_ = s;
  for (std::string& report : vc_->drain_reports()) {
    last_violation_ = report;
    pending_hooks_.push_back(std::move(report));
  }
}

}  // namespace argus
