// FlightRecorder: a sharded, always-on capture of the event stream whose
// output is a well-formed History — the paper's computation, produced as
// production telemetry rather than a test artifact.
//
// Design:
//
//   * One shard per recording thread (bound thread-locally on first
//     record). Each shard is an append-only buffer guarded by its own
//     leaf mutex, so the common-case record() is an uncontended lock, a
//     sequence draw, and a push — no cross-thread cache traffic. The
//     seed's HistoryRecorder serialized every event of every thread on
//     one global mutex, which made it a second commit lock; benchmarks
//     had to disable it, so exactly the high-concurrency executions the
//     checkers exist for were the ones that could not be observed.
//
//   * Every event is stamped with a sequence drawn from the runtime's
//     LamportClock — the same counter that issues commit and initiation
//     timestamps. The draw happens inside the critical section in which
//     the event takes effect, so sorting by sequence reconstructs a
//     faithful observation of the computation (the same guarantee the
//     global mutex gave), and event sequences are directly comparable
//     with the timestamps embedded in the events themselves.
//
//   * snapshot() / drain_new() merge the shards in sequence order.
//     snapshot() is non-destructive and returns the full retained
//     History (HistoryRecorder-compatible, used by Runtime::history()
//     and tests). drain_new() advances per-shard cursors and returns
//     only events not yet drained — the incremental feed consumed by the
//     atomicity sentinel (obs/sentinel.h). The two coexist.
//
//   * Bounded-memory mode (shard_capacity > 0) turns each shard into a
//     ring that keeps the last N events, for always-on crash dumps:
//     Runtime::crash() writes tail() in the parse.h notation so the
//     final moments of a failed node can be replayed through
//     examples/check_history_file.
//
// Threads that exit leave their shard behind (its events are still part
// of the history); a new thread gets a fresh shard. Shard count is
// therefore bounded by the number of distinct recording threads over the
// recorder's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hist/history.h"
#include "obs/event_sink.h"
#include "txn/clock.h"

namespace argus {

struct FlightRecorderOptions {
  /// 0 = unbounded shards (full history retained). N > 0 = each shard
  /// keeps only its most recent N events (crash-dump mode).
  std::size_t shard_capacity{0};
};

/// An event plus the global sequence number it was stamped with.
struct SequencedEvent {
  std::uint64_t seq{0};
  Event event;
};

class FlightRecorder final : public EventSink {
 public:
  explicit FlightRecorder(LamportClock& clock,
                          FlightRecorderOptions options = {});
  ~FlightRecorder() override;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends to the calling thread's shard. Thread-safe, wait-free
  /// against other recording threads (they touch different shards).
  void record(Event e) override;

  /// The retained events of all shards merged in sequence order.
  /// Non-destructive; with bounded shards this is the flight-recorder
  /// tail rather than the full history.
  [[nodiscard]] History snapshot() const;

  /// The last `max_events` retained events, merged in sequence order.
  [[nodiscard]] History tail(std::size_t max_events) const;

  /// snapshot() with the sequence stamps kept — what the multi-site
  /// runtime merges across sites (per-site sequences come from disjoint
  /// clock domains, so a cross-site sort by seq is a faithful
  /// precedes-consistent interleaving). Non-destructive.
  [[nodiscard]] std::vector<SequencedEvent> sequenced_snapshot() const;

  /// Events recorded since the previous drain_new() call, merged in
  /// sequence order. Advances the drain cursors (snapshot() is
  /// unaffected). Note that a slow recording thread can publish an event
  /// with a smaller sequence than one already drained from another
  /// shard; consumers that need a total order must sort across windows
  /// (the sentinel does).
  [[nodiscard]] std::vector<SequencedEvent> drain_new();

  /// Discards all retained events and resets drain cursors.
  void clear();

  /// Retained event count across shards.
  [[nodiscard]] std::size_t size() const;

  /// Events ever recorded (including ring-evicted ones).
  [[nodiscard]] std::uint64_t total_recorded() const {
    return total_recorded_.load(std::memory_order_relaxed);
  }

  /// Events evicted by bounded shards (0 in unbounded mode).
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t shard_count() const;

  /// Current value of the sequence source (the runtime's Lamport clock).
  [[nodiscard]] std::uint64_t sequence_now() const { return clock_.now(); }

  [[nodiscard]] const FlightRecorderOptions& options() const {
    return options_;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Logical stream: events [appended - buffer.size(), appended). In
    // bounded mode `buffer` is a ring indexed modulo capacity; in
    // unbounded mode it simply grows.
    std::vector<SequencedEvent> buffer;
    std::uint64_t appended{0};   // events ever appended to this shard
    std::uint64_t drained{0};    // logical index of the next undrained event
  };

  Shard& local_shard();
  /// Copies the retained events of every shard (each slice is
  /// seq-ascending: one writer per shard, sequence drawn under its lock).
  [[nodiscard]] std::vector<std::vector<SequencedEvent>> copy_shards() const;

  LamportClock& clock_;
  const FlightRecorderOptions options_;
  const std::uint64_t instance_id_;  // thread-local binding key; never reused

  mutable std::mutex shards_mu_;  // guards shards_ (vector growth only)
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> total_recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace argus
