// EventSink: the recording interface between protocol objects and any
// observer of the event stream.
//
// Protocol objects emit the paper's events (invoke/respond/commit/abort/
// initiate) from inside the critical section where the event takes
// effect, so whatever sits behind this interface observes a faithful
// computation. Two implementations exist: the seed's global-mutex
// HistoryRecorder (txn/recorder.h, kept as a reference and for tests that
// want strict arrival-order capture) and the sharded FlightRecorder
// (obs/flight_recorder.h), the production path.
#pragma once

#include "hist/event.h"

namespace argus {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Called with the object's monitor held; implementations must be
  /// cheap and must not call back into the object.
  virtual void record(Event e) = 0;
};

}  // namespace argus
