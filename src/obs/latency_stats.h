// Online latency/value aggregation with a bounded reservoir sample for
// percentiles, shared by the benchmark harness (sim/metrics.h) and the
// MetricsRegistry's histograms so both report identical quantiles.
//
// add() runs Algorithm R, so every observation has equal probability of
// being retained regardless of arrival position — the sample stays
// unbiased under arbitrarily long runs (a first-N truncation would
// over-weight warm-up latencies).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace argus {

class LatencyStats {
 public:
  static constexpr std::size_t kSampleCap = 65536;

  void add(double micros);

  /// Merges another aggregate into this one. When the combined samples
  /// fit under the cap this is exact concatenation; otherwise the merged
  /// reservoir draws from each side proportionally to its observation
  /// count, preserving (approximately) uniform inclusion probability.
  void merge(const LatencyStats& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  [[nodiscard]] double max() const { return max_; }
  /// q in [0,1]; computed from the retained sample (all points when fewer
  /// than the cap were observed).
  [[nodiscard]] double percentile(double q) const;

 private:
  std::uint64_t count_{0};
  double total_{0.0};
  double max_{0.0};
  std::vector<double> sample_;
  SplitMix64 rng_{0x61727573u};  // fixed seed: deterministic replacement
};

}  // namespace argus
