#include "obs/metrics_registry.h"

#include <sstream>

#include "common/errors.h"

namespace argus {

namespace {

std::string escape_label_value(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string render_labels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  out += "}";
  return out;
}

std::string format_value(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_create(Kind kind,
                                                        const std::string& name,
                                                        const std::string& help,
                                                        MetricLabels labels) {
  const std::scoped_lock lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      if (e->kind != kind) {
        throw UsageError("metric " + name +
                         " re-registered with a different type");
      }
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->labels = std::move(labels);
  entry->help = help;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
    case Kind::kCallbackGauge:
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  MetricLabels labels) {
  return *find_or_create(Kind::kCounter, name, help, std::move(labels))
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              MetricLabels labels) {
  return *find_or_create(Kind::kGauge, name, help, std::move(labels)).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      MetricLabels labels) {
  return *find_or_create(Kind::kHistogram, name, help, std::move(labels))
              .histogram;
}

void MetricsRegistry::gauge_callback(const std::string& name,
                                     const std::string& help,
                                     MetricLabels labels,
                                     std::function<double()> fn) {
  find_or_create(Kind::kCallbackGauge, name, help, std::move(labels))
      .callback = std::move(fn);
}

void MetricsRegistry::add_collector(
    std::function<std::vector<MetricSample>()> fn) {
  const std::scoped_lock lock(mu_);
  collectors_.push_back(std::move(fn));
}

void MetricsRegistry::describe(const std::string& name, const std::string& help,
                               const std::string& type) {
  const std::scoped_lock lock(mu_);
  descriptions_[name] = {help, type};
}

std::string MetricsRegistry::prometheus_text() const {
  // Snapshot the entry pointers and collectors, then render without the
  // registry lock held (callbacks may take other locks).
  std::vector<const Entry*> entries;
  std::vector<std::function<std::vector<MetricSample>()>> collectors;
  std::map<std::string, std::pair<std::string, std::string>> descriptions;
  {
    const std::scoped_lock lock(mu_);
    for (const auto& e : entries_) entries.push_back(e.get());
    collectors = collectors_;
    descriptions = descriptions_;
  }

  std::ostringstream out;
  std::map<std::string, bool> header_written;
  auto write_header = [&](const std::string& name, const std::string& help,
                          const std::string& type) {
    if (header_written[name]) return;
    header_written[name] = true;
    if (!help.empty()) out << "# HELP " << name << " " << help << "\n";
    out << "# TYPE " << name << " " << type << "\n";
  };

  for (const Entry* e : entries) {
    switch (e->kind) {
      case Kind::kCounter:
        write_header(e->name, e->help, "counter");
        out << e->name << render_labels(e->labels) << " "
            << e->counter->value() << "\n";
        break;
      case Kind::kGauge:
        write_header(e->name, e->help, "gauge");
        out << e->name << render_labels(e->labels) << " "
            << format_value(e->gauge->value()) << "\n";
        break;
      case Kind::kCallbackGauge:
        write_header(e->name, e->help, "gauge");
        out << e->name << render_labels(e->labels) << " "
            << format_value(e->callback ? e->callback() : 0.0) << "\n";
        break;
      case Kind::kHistogram: {
        write_header(e->name, e->help, "summary");
        const LatencyStats stats = e->histogram->stats();
        for (double q : {0.5, 0.95, 0.99}) {
          MetricLabels labels = e->labels;
          labels["quantile"] = format_value(q);
          out << e->name << render_labels(labels) << " "
              << format_value(stats.percentile(q)) << "\n";
        }
        out << e->name << "_sum" << render_labels(e->labels) << " "
            << format_value(stats.total()) << "\n";
        out << e->name << "_count" << render_labels(e->labels) << " "
            << stats.count() << "\n";
        break;
      }
    }
  }
  for (const auto& collect : collectors) {
    for (const MetricSample& s : collect()) {
      auto it = descriptions.find(s.name);
      write_header(s.name, it == descriptions.end() ? "" : it->second.first,
                   it == descriptions.end() ? "gauge" : it->second.second);
      out << s.name << render_labels(s.labels) << " " << format_value(s.value)
          << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::json() const {
  std::vector<const Entry*> entries;
  std::vector<std::function<std::vector<MetricSample>()>> collectors;
  {
    const std::scoped_lock lock(mu_);
    for (const auto& e : entries_) entries.push_back(e.get());
    collectors = collectors_;
  }

  std::map<std::string, double> flat;
  auto key_of = [](const std::string& name, const MetricLabels& labels) {
    return name + render_labels(labels);
  };
  for (const Entry* e : entries) {
    switch (e->kind) {
      case Kind::kCounter:
        flat[key_of(e->name, e->labels)] =
            static_cast<double>(e->counter->value());
        break;
      case Kind::kGauge:
        flat[key_of(e->name, e->labels)] = e->gauge->value();
        break;
      case Kind::kCallbackGauge:
        flat[key_of(e->name, e->labels)] = e->callback ? e->callback() : 0.0;
        break;
      case Kind::kHistogram: {
        const LatencyStats stats = e->histogram->stats();
        const std::string base = key_of(e->name, e->labels);
        flat[base + ".count"] = static_cast<double>(stats.count());
        flat[base + ".mean"] = stats.mean();
        flat[base + ".max"] = stats.max();
        flat[base + ".p50"] = stats.percentile(0.5);
        flat[base + ".p95"] = stats.percentile(0.95);
        flat[base + ".p99"] = stats.percentile(0.99);
        break;
      }
    }
  }
  for (const auto& collect : collectors) {
    for (const MetricSample& s : collect()) {
      flat[key_of(s.name, s.labels)] = s.value;
    }
  }

  std::ostringstream out;
  out << "{\n";
  bool first = true;
  for (const auto& [k, v] : flat) {
    if (!first) out << ",\n";
    first = false;
    std::string escaped;
    for (char c : k) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    out << "  \"" << escaped << "\": " << format_value(v);
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace argus
