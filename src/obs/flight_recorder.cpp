#include "obs/flight_recorder.h"

#include <algorithm>
#include <unordered_map>

namespace argus {

namespace {

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

FlightRecorder::FlightRecorder(LamportClock& clock,
                               FlightRecorderOptions options)
    : clock_(clock), options_(options), instance_id_(next_instance_id()) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Shard& FlightRecorder::local_shard() {
  // Thread-local binding keyed by a never-reused instance id, so a shard
  // pointer cached for a destroyed recorder can never be revived by
  // address reuse. Entries for dead recorders are never looked up again;
  // they cost a few bytes per (thread, recorder) pair.
  struct Binding {
    std::uint64_t instance{0};
    Shard* shard{nullptr};
    std::unordered_map<std::uint64_t, Shard*> others;
  };
  thread_local Binding binding;
  if (binding.instance == instance_id_) return *binding.shard;
  auto it = binding.others.find(instance_id_);
  Shard* shard = it == binding.others.end() ? nullptr : it->second;
  if (shard == nullptr) {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    {
      const std::scoped_lock lock(shards_mu_);
      shards_.push_back(std::move(owned));
    }
    binding.others.emplace(instance_id_, shard);
  }
  binding.instance = instance_id_;
  binding.shard = shard;
  return *shard;
}

void FlightRecorder::record(Event e) {
  Shard& shard = local_shard();
  const std::scoped_lock lock(shard.mu);
  // The sequence draw happens under the shard lock and inside the
  // object's critical section (record() is called with the monitor
  // held), so per-shard sequences are strictly increasing and the global
  // sort by sequence is a faithful observation order.
  const std::uint64_t seq = clock_.next();
  if (options_.shard_capacity == 0) {
    shard.buffer.push_back(SequencedEvent{seq, std::move(e)});
  } else {
    if (shard.buffer.size() < options_.shard_capacity) {
      shard.buffer.push_back(SequencedEvent{seq, std::move(e)});
    } else {
      shard.buffer[static_cast<std::size_t>(shard.appended %
                                            options_.shard_capacity)] =
          SequencedEvent{seq, std::move(e)};
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ++shard.appended;
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::vector<SequencedEvent>> FlightRecorder::copy_shards() const {
  std::vector<Shard*> shards;
  {
    const std::scoped_lock lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  std::vector<std::vector<SequencedEvent>> out;
  out.reserve(shards.size());
  for (Shard* shard : shards) {
    const std::scoped_lock lock(shard->mu);
    std::vector<SequencedEvent> slice;
    slice.reserve(shard->buffer.size());
    if (options_.shard_capacity == 0 ||
        shard->buffer.size() < options_.shard_capacity) {
      slice = shard->buffer;
    } else {
      // Ring: oldest retained entry sits at appended % capacity.
      const std::size_t cap = options_.shard_capacity;
      const std::size_t start = static_cast<std::size_t>(shard->appended % cap);
      for (std::size_t i = 0; i < cap; ++i) {
        slice.push_back(shard->buffer[(start + i) % cap]);
      }
    }
    out.push_back(std::move(slice));
  }
  return out;
}

namespace {

/// Merges seq-ascending slices into one seq-ascending vector.
std::vector<SequencedEvent> merge_slices(
    std::vector<std::vector<SequencedEvent>> slices) {
  std::vector<SequencedEvent> merged;
  std::size_t total = 0;
  for (const auto& s : slices) total += s.size();
  merged.reserve(total);
  for (auto& s : slices) {
    merged.insert(merged.end(), std::make_move_iterator(s.begin()),
                  std::make_move_iterator(s.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const SequencedEvent& a, const SequencedEvent& b) {
              return a.seq < b.seq;
            });
  return merged;
}

}  // namespace

History FlightRecorder::snapshot() const {
  History h;
  for (auto& se : merge_slices(copy_shards())) h.append(std::move(se.event));
  return h;
}

std::vector<SequencedEvent> FlightRecorder::sequenced_snapshot() const {
  return merge_slices(copy_shards());
}

History FlightRecorder::tail(std::size_t max_events) const {
  auto merged = merge_slices(copy_shards());
  History h;
  const std::size_t start =
      merged.size() > max_events ? merged.size() - max_events : 0;
  for (std::size_t i = start; i < merged.size(); ++i) {
    h.append(std::move(merged[i].event));
  }
  return h;
}

std::vector<SequencedEvent> FlightRecorder::drain_new() {
  std::vector<Shard*> shards;
  {
    const std::scoped_lock lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  std::vector<std::vector<SequencedEvent>> slices;
  for (Shard* shard : shards) {
    const std::scoped_lock lock(shard->mu);
    const std::uint64_t oldest = shard->appended - shard->buffer.size();
    // Ring eviction may have discarded undrained events; skip the gap.
    if (shard->drained < oldest) shard->drained = oldest;
    if (shard->drained == shard->appended) continue;
    std::vector<SequencedEvent> slice;
    slice.reserve(static_cast<std::size_t>(shard->appended - shard->drained));
    for (std::uint64_t logical = shard->drained; logical < shard->appended;
         ++logical) {
      const std::size_t cap = options_.shard_capacity;
      const std::size_t index =
          cap == 0 ? static_cast<std::size_t>(logical - oldest)
                   : static_cast<std::size_t>(logical % cap);
      slice.push_back(shard->buffer[index]);
    }
    shard->drained = shard->appended;
    slices.push_back(std::move(slice));
  }
  return merge_slices(std::move(slices));
}

void FlightRecorder::clear() {
  const std::scoped_lock lock(shards_mu_);
  for (const auto& shard : shards_) {
    const std::scoped_lock shard_lock(shard->mu);
    shard->buffer.clear();
    // Restart the logical stream so the ring position stays aligned with
    // the rebuilt buffer (position appended % capacity == buffer.size()
    // while the shard refills).
    shard->appended = 0;
    shard->drained = 0;
  }
}

std::size_t FlightRecorder::size() const {
  std::size_t total = 0;
  const std::scoped_lock lock(shards_mu_);
  for (const auto& shard : shards_) {
    const std::scoped_lock shard_lock(shard->mu);
    total += shard->buffer.size();
  }
  return total;
}

std::size_t FlightRecorder::shard_count() const {
  const std::scoped_lock lock(shards_mu_);
  return shards_.size();
}

}  // namespace argus
