// AtomicitySentinel: continuous online atomicity checking over the
// flight recorder's event stream (in the spirit of Mathur &
// Viswanathan's online atomicity checkers — see PAPERS.md).
//
// The sentinel drains the recorder in windows and incrementally verifies
// that the committed projection perm(h) of the observed history is
// serializable in its *canonical order* — the order the paper's local
// atomicity properties promise:
//
//   * activities with a timestamp (static initiations, hybrid commit
//     stamps, hybrid read-only initiations) serialize at that timestamp;
//   * activities without one (dynamic / 2PL) serialize at their first
//     commit event's sequence number.
//
// Both keys are drawn from the same Lamport clock, so they are mutually
// comparable; the resulting total order is consistent with precedes(h)
// (a first-commit sequence is always preceded by the responses that
// precedes is defined over) and equals timestamp order on timestamped
// activities. A correct protocol therefore always passes, and a failure
// is a genuine atomicity violation — serializability is checked by the
// same NFA-style replay (spec/serial.h) the offline checkers use, but
// incrementally: per object the sentinel carries the set of candidate
// specification states reached by the committed prefix, and each newly
// committed activity's per-object event subsequences are replayed
// against it. The full exponential search of check_atomic is never
// needed because the canonical order is known.
//
// Memory is bounded by checkpointing: once the buffered committed events
// exceed `checkpoint_threshold`, activities whose key lies below the
// *frontier* — a sequence below which no new serialization key can
// appear (min of the open initiation timestamps and the clock value at
// the previous window) — are folded permanently into the per-object
// state sets and their buffers are dropped. An activity that commits
// with a key below an already-folded checkpoint (possible only if its
// thread stalled for a whole window between drawing a timestamp and
// recording its first event) is skipped and counted as a straggler, not
// reported as a violation.
//
// Violations increment a metric, latch an explanation, invoke the
// optional on_violation hook (the fail-fast path: the hook may abort the
// process or fail the test), and quarantine the offending activity so
// one bad activity cannot re-fire every window.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/system.h"
#include "check/vc_atomicity.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "spec/spec.h"

namespace argus {

class WaitPolicy;

/// How each window certifies the committed projection.
enum class CheckMode {
  /// Re-replay every unfolded committed activity from the checkpoint
  /// each window (the original incremental checker): exact, but the
  /// per-window work grows with the buffered suffix.
  kExact,
  /// Vector-clock fast path only (check/vc_atomicity.h): each committed
  /// activity is folded once, in observed order; activities whose
  /// conflicts fold against canonical order are quarantined and counted
  /// SUSPICIOUS, never resolved. Cheapest; monitoring-only.
  kVectorClock,
  /// Vector-clock fast path, but suspicious windows escalate to an exact
  /// canonical re-replay of the window's buffer. Linear-time on
  /// conflict-clean traffic, exact verdicts everywhere.
  kEscalating,
};

[[nodiscard]] const char* to_string(CheckMode m);

struct SentinelOptions {
  /// Interval between background drain+check windows.
  std::chrono::milliseconds window{25};
  /// Buffered committed events above which the checked prefix is folded
  /// into per-object candidate states. Default: never fold (exact mode).
  std::size_t checkpoint_threshold{static_cast<std::size_t>(-1)};
  /// Certification strategy per window (see CheckMode).
  CheckMode mode{CheckMode::kExact};
  /// Invoked (from the sentinel thread, or from poll()'s caller) with an
  /// explanation for every violation found.
  std::function<void(const std::string&)> on_violation;
  /// When set (SchedMode::kDeterministic), the sentinel thread registers
  /// itself as a daemon lane of the deterministic scheduler, so its
  /// drain windows are schedule choices too. Runtime::start_sentinel
  /// fills this in automatically.
  WaitPolicy* wait_policy{nullptr};
};

class AtomicitySentinel {
 public:
  /// Snapshots `system` (register objects before constructing the
  /// sentinel; events of unknown objects are counted, not checked).
  AtomicitySentinel(FlightRecorder& recorder, const SystemSpec& system,
                    SentinelOptions options = {},
                    MetricsRegistry* metrics = nullptr);
  ~AtomicitySentinel();

  AtomicitySentinel(const AtomicitySentinel&) = delete;
  AtomicitySentinel& operator=(const AtomicitySentinel&) = delete;

  /// Starts the background window thread. stop() (or destruction) joins
  /// it and runs one final flush window.
  void start();
  void stop();

  /// Runs one drain+check window synchronously (usable without start()).
  void poll();

  /// Terminal flush: one final window, then (in the vector-clock modes)
  /// seals everything still buffered so deferred certificates land and
  /// unresolved suspicion is surfaced. stop() calls this after joining
  /// the window thread; poll()-only users call it directly. Events
  /// recorded after finalize() would be treated as stragglers.
  void finalize();

  /// Adjusts the drain interval of a running sentinel.
  void set_window(std::chrono::milliseconds window);
  /// Adjusts the checkpoint threshold of a running sentinel.
  void set_checkpoint_threshold(std::size_t threshold);

  [[nodiscard]] CheckMode mode() const { return options_.mode; }

  [[nodiscard]] std::uint64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t windows() const {
    return windows_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_seen() const {
    return events_seen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t activities_checked() const {
    return activities_checked_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stragglers() const {
    return stragglers_.load(std::memory_order_relaxed);
  }
  /// Windows certified on the fast path alone (vector-clock modes; 0
  /// under kExact).
  [[nodiscard]] std::uint64_t fastpath_windows() const {
    return fastpath_windows_.load(std::memory_order_relaxed);
  }
  /// Exact re-replays triggered by suspicious windows (kEscalating).
  [[nodiscard]] std::uint64_t escalations() const {
    return escalations_.load(std::memory_order_relaxed);
  }
  /// Activities flagged suspicious by the fast path.
  [[nodiscard]] std::uint64_t suspicious() const {
    return suspicious_.load(std::memory_order_relaxed);
  }
  /// Conflict-relation consults + vector-clock joins performed.
  [[nodiscard]] std::uint64_t vc_ops() const {
    return vc_ops_.load(std::memory_order_relaxed);
  }
  /// Explanation of the most recent violation ("" if none).
  [[nodiscard]] std::string last_violation() const;

 private:
  struct ActivityBuffer {
    std::vector<SequencedEvent> events;  // sorted by seq before replay
    Timestamp ts{kNoTimestamp};          // initiation / hybrid commit stamp
    std::uint64_t first_commit_seq{0};
    bool committed{false};
    bool aborted{false};
    bool quarantined{false};
    bool init_open{false};  // ts currently registered in open_initiations_
    bool checked{false};    // counted in activities_checked_
    [[nodiscard]] std::uint64_t key() const {
      return ts != kNoTimestamp ? ts : first_commit_seq;
    }
  };
  using StateSet = std::vector<std::unique_ptr<SpecState>>;

  void run_loop();
  void ingest(const std::vector<SequencedEvent>& batch);
  void check_window();
  void maybe_checkpoint();
  /// Replays one committed activity against `states`; returns false (and
  /// reports) on violation.
  bool replay_activity(ActivityId id, ActivityBuffer& act,
                       std::map<ObjectId, StateSet>& states);
  StateSet& states_for(std::map<ObjectId, StateSet>& states, ObjectId x);
  void report_violation(const std::string& explanation);
  /// Publishes the fast-path checker's stats to the atomics and metric
  /// counters (callers hold mu_).
  void sync_vc_stats();

  FlightRecorder& recorder_;
  const SystemSpec system_;  // snapshot at construction
  SentinelOptions options_;  // window/threshold adjustable at runtime

  mutable std::mutex mu_;  // guards everything below + poll() itself
  std::unique_ptr<VectorClockChecker> vc_;  // the fast path (non-kExact)
  VcStats last_vc_;  // previously published stats, for metric deltas
  std::map<ActivityId, ActivityBuffer> activities_;
  std::multiset<Timestamp> open_initiations_;  // drawn ts of live activities
  std::map<ObjectId, StateSet> checkpoint_states_;
  std::uint64_t checkpoint_key_{0};
  std::uint64_t prev_window_clock_{0};
  std::size_t buffered_committed_events_{0};
  std::string last_violation_;
  std::vector<std::string> pending_hooks_;  // violations awaiting callbacks

  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint64_t> events_seen_{0};
  std::atomic<std::uint64_t> activities_checked_{0};
  std::atomic<std::uint64_t> stragglers_{0};
  std::atomic<std::uint64_t> fastpath_windows_{0};
  std::atomic<std::uint64_t> escalations_{0};
  std::atomic<std::uint64_t> suspicious_{0};
  std::atomic<std::uint64_t> vc_ops_{0};

  Counter* violations_metric_{nullptr};
  Counter* windows_metric_{nullptr};
  Counter* events_metric_{nullptr};
  Counter* activities_metric_{nullptr};
  Counter* stragglers_metric_{nullptr};
  Counter* fastpath_windows_metric_{nullptr};
  Counter* escalations_metric_{nullptr};
  Counter* suspicious_metric_{nullptr};
  Counter* vc_ops_metric_{nullptr};

  std::mutex thread_mu_;  // guards thread_ / running_ transitions
  std::condition_variable stop_cv_;
  bool running_{false};
  bool stop_requested_{false};
  std::atomic<bool> loop_done_{false};  // window loop exited; join is quick
  std::thread thread_;
};

}  // namespace argus
