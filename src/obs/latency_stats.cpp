#include "obs/latency_stats.h"

#include <algorithm>
#include <cmath>

namespace argus {

void LatencyStats::add(double micros) {
  ++count_;
  total_ += micros;
  max_ = std::max(max_, micros);
  // Algorithm R: the i-th observation replaces a random slot with
  // probability cap/i, keeping inclusion probability uniform.
  if (sample_.size() < kSampleCap) {
    sample_.push_back(micros);
  } else {
    const std::uint64_t j = rng_.below(count_);
    if (j < kSampleCap) sample_[static_cast<std::size_t>(j)] = micros;
  }
}

void LatencyStats::merge(const LatencyStats& other) {
  const std::uint64_t n_self = count_;
  const std::uint64_t n_other = other.count_;
  count_ += other.count_;
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
  if (sample_.size() + other.sample_.size() <= kSampleCap) {
    sample_.insert(sample_.end(), other.sample_.begin(), other.sample_.end());
    return;
  }
  // Draw the merged reservoir from both sides without replacement,
  // picking each next element from a side with probability proportional
  // to the observation count it represents.
  std::vector<double> mine = std::move(sample_);
  std::vector<double> theirs = other.sample_;
  sample_.clear();
  sample_.reserve(kSampleCap);
  double weight_self = static_cast<double>(n_self);
  double weight_other = static_cast<double>(n_other);
  const double per_self =
      mine.empty() ? 0.0 : weight_self / static_cast<double>(mine.size());
  const double per_other =
      theirs.empty() ? 0.0
                     : weight_other / static_cast<double>(theirs.size());
  auto take = [&](std::vector<double>& from) {
    const std::size_t i = static_cast<std::size_t>(rng_.below(from.size()));
    sample_.push_back(from[i]);
    from[i] = from.back();
    from.pop_back();
  };
  while (sample_.size() < kSampleCap && (!mine.empty() || !theirs.empty())) {
    if (mine.empty()) {
      take(theirs);
      weight_other -= per_other;
    } else if (theirs.empty()) {
      take(mine);
      weight_self -= per_self;
    } else {
      const double total = weight_self + weight_other;
      const double roll = static_cast<double>(rng_.below(1u << 30)) /
                          static_cast<double>(1u << 30) * total;
      if (roll < weight_self) {
        take(mine);
        weight_self -= per_self;
      } else {
        take(theirs);
        weight_other -= per_other;
      }
    }
  }
}

double LatencyStats::percentile(double q) const {
  if (sample_.empty()) return 0.0;
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace argus
