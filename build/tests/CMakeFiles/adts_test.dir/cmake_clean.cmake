file(REMOVE_RECURSE
  "CMakeFiles/adts_test.dir/adts_test.cpp.o"
  "CMakeFiles/adts_test.dir/adts_test.cpp.o.d"
  "adts_test"
  "adts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
