# Empty compiler generated dependencies file for adts_test.
# This may be replaced when dependencies are built.
