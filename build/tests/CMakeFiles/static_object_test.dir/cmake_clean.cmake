file(REMOVE_RECURSE
  "CMakeFiles/static_object_test.dir/static_object_test.cpp.o"
  "CMakeFiles/static_object_test.dir/static_object_test.cpp.o.d"
  "static_object_test"
  "static_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
