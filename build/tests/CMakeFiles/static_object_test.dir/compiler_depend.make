# Empty compiler generated dependencies file for static_object_test.
# This may be replaced when dependencies are built.
