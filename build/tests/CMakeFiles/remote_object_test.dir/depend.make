# Empty dependencies file for remote_object_test.
# This may be replaced when dependencies are built.
