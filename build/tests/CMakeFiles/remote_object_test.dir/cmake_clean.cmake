file(REMOVE_RECURSE
  "CMakeFiles/remote_object_test.dir/remote_object_test.cpp.o"
  "CMakeFiles/remote_object_test.dir/remote_object_test.cpp.o.d"
  "remote_object_test"
  "remote_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
