file(REMOVE_RECURSE
  "CMakeFiles/deadlock_paths_test.dir/deadlock_paths_test.cpp.o"
  "CMakeFiles/deadlock_paths_test.dir/deadlock_paths_test.cpp.o.d"
  "deadlock_paths_test"
  "deadlock_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
