# Empty dependencies file for wellformed_test.
# This may be replaced when dependencies are built.
