file(REMOVE_RECURSE
  "CMakeFiles/wellformed_test.dir/wellformed_test.cpp.o"
  "CMakeFiles/wellformed_test.dir/wellformed_test.cpp.o.d"
  "wellformed_test"
  "wellformed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wellformed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
