file(REMOVE_RECURSE
  "CMakeFiles/hybrid_bag_test.dir/hybrid_bag_test.cpp.o"
  "CMakeFiles/hybrid_bag_test.dir/hybrid_bag_test.cpp.o.d"
  "hybrid_bag_test"
  "hybrid_bag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_bag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
