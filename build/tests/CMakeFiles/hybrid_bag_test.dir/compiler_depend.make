# Empty compiler generated dependencies file for hybrid_bag_test.
# This may be replaced when dependencies are built.
