# Empty dependencies file for paper_traces_test.
# This may be replaced when dependencies are built.
