file(REMOVE_RECURSE
  "CMakeFiles/event_history_test.dir/event_history_test.cpp.o"
  "CMakeFiles/event_history_test.dir/event_history_test.cpp.o.d"
  "event_history_test"
  "event_history_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
