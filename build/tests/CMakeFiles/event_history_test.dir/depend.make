# Empty dependencies file for event_history_test.
# This may be replaced when dependencies are built.
