# Empty dependencies file for hybrid_object_test.
# This may be replaced when dependencies are built.
