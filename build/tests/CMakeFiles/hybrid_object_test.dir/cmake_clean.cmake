file(REMOVE_RECURSE
  "CMakeFiles/hybrid_object_test.dir/hybrid_object_test.cpp.o"
  "CMakeFiles/hybrid_object_test.dir/hybrid_object_test.cpp.o.d"
  "hybrid_object_test"
  "hybrid_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
