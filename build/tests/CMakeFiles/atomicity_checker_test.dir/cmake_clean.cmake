file(REMOVE_RECURSE
  "CMakeFiles/atomicity_checker_test.dir/atomicity_checker_test.cpp.o"
  "CMakeFiles/atomicity_checker_test.dir/atomicity_checker_test.cpp.o.d"
  "atomicity_checker_test"
  "atomicity_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomicity_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
