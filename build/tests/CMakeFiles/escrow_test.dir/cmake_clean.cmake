file(REMOVE_RECURSE
  "CMakeFiles/escrow_test.dir/escrow_test.cpp.o"
  "CMakeFiles/escrow_test.dir/escrow_test.cpp.o.d"
  "escrow_test"
  "escrow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escrow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
