# Empty compiler generated dependencies file for escrow_test.
# This may be replaced when dependencies are built.
