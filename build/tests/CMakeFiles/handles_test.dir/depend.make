# Empty dependencies file for handles_test.
# This may be replaced when dependencies are built.
