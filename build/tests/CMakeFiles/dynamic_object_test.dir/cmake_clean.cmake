file(REMOVE_RECURSE
  "CMakeFiles/dynamic_object_test.dir/dynamic_object_test.cpp.o"
  "CMakeFiles/dynamic_object_test.dir/dynamic_object_test.cpp.o.d"
  "dynamic_object_test"
  "dynamic_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
