# Empty compiler generated dependencies file for dynamic_object_test.
# This may be replaced when dependencies are built.
