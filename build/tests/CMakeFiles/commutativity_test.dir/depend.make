# Empty dependencies file for commutativity_test.
# This may be replaced when dependencies are built.
