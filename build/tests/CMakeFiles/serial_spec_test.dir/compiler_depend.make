# Empty compiler generated dependencies file for serial_spec_test.
# This may be replaced when dependencies are built.
