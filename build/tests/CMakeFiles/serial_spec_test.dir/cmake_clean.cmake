file(REMOVE_RECURSE
  "CMakeFiles/serial_spec_test.dir/serial_spec_test.cpp.o"
  "CMakeFiles/serial_spec_test.dir/serial_spec_test.cpp.o.d"
  "serial_spec_test"
  "serial_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
