file(REMOVE_RECURSE
  "CMakeFiles/crash_stress_test.dir/crash_stress_test.cpp.o"
  "CMakeFiles/crash_stress_test.dir/crash_stress_test.cpp.o.d"
  "crash_stress_test"
  "crash_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
