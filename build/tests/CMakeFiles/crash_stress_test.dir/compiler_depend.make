# Empty compiler generated dependencies file for crash_stress_test.
# This may be replaced when dependencies are built.
