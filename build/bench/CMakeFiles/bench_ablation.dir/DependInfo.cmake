
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/argus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/argus_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/argus_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/argus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/argus_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/argus_check.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/argus_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/argus_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
