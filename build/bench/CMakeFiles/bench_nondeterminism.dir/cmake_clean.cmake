file(REMOVE_RECURSE
  "CMakeFiles/bench_nondeterminism.dir/bench_nondeterminism.cpp.o"
  "CMakeFiles/bench_nondeterminism.dir/bench_nondeterminism.cpp.o.d"
  "bench_nondeterminism"
  "bench_nondeterminism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nondeterminism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
