# Empty compiler generated dependencies file for bench_nondeterminism.
# This may be replaced when dependencies are built.
