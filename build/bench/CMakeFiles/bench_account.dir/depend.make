# Empty dependencies file for bench_account.
# This may be replaced when dependencies are built.
