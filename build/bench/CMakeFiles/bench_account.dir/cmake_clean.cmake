file(REMOVE_RECURSE
  "CMakeFiles/bench_account.dir/bench_account.cpp.o"
  "CMakeFiles/bench_account.dir/bench_account.cpp.o.d"
  "bench_account"
  "bench_account.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_account.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
