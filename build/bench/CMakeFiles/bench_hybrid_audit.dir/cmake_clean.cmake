file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_audit.dir/bench_hybrid_audit.cpp.o"
  "CMakeFiles/bench_hybrid_audit.dir/bench_hybrid_audit.cpp.o.d"
  "bench_hybrid_audit"
  "bench_hybrid_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
