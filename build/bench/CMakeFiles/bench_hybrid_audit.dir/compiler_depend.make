# Empty compiler generated dependencies file for bench_hybrid_audit.
# This may be replaced when dependencies are built.
