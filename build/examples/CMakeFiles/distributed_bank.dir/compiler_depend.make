# Empty compiler generated dependencies file for distributed_bank.
# This may be replaced when dependencies are built.
