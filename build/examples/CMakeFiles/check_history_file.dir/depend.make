# Empty dependencies file for check_history_file.
# This may be replaced when dependencies are built.
