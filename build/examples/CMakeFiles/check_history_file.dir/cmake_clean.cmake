file(REMOVE_RECURSE
  "CMakeFiles/check_history_file.dir/check_history_file.cpp.o"
  "CMakeFiles/check_history_file.dir/check_history_file.cpp.o.d"
  "check_history_file"
  "check_history_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_history_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
