# Empty compiler generated dependencies file for history_check.
# This may be replaced when dependencies are built.
