file(REMOVE_RECURSE
  "CMakeFiles/history_check.dir/history_check.cpp.o"
  "CMakeFiles/history_check.dir/history_check.cpp.o.d"
  "history_check"
  "history_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
