# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;16;argus_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_banking_audit]=] "/root/repo/build/examples/banking_audit")
set_tests_properties([=[example_banking_audit]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;17;argus_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_queue_pipeline]=] "/root/repo/build/examples/queue_pipeline")
set_tests_properties([=[example_queue_pipeline]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;18;argus_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_history_check]=] "/root/repo/build/examples/history_check")
set_tests_properties([=[example_history_check]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;19;argus_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed_bank]=] "/root/repo/build/examples/distributed_bank")
set_tests_properties([=[example_distributed_bank]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;20;argus_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_check_history_file]=] "/root/repo/build/examples/check_history_file" "int_set" "/root/repo/examples/section41.history")
set_tests_properties([=[example_check_history_file]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
