file(REMOVE_RECURSE
  "CMakeFiles/argus_txn.dir/clock.cpp.o"
  "CMakeFiles/argus_txn.dir/clock.cpp.o.d"
  "CMakeFiles/argus_txn.dir/deadlock.cpp.o"
  "CMakeFiles/argus_txn.dir/deadlock.cpp.o.d"
  "CMakeFiles/argus_txn.dir/managed_object.cpp.o"
  "CMakeFiles/argus_txn.dir/managed_object.cpp.o.d"
  "CMakeFiles/argus_txn.dir/manager.cpp.o"
  "CMakeFiles/argus_txn.dir/manager.cpp.o.d"
  "CMakeFiles/argus_txn.dir/stable_log.cpp.o"
  "CMakeFiles/argus_txn.dir/stable_log.cpp.o.d"
  "CMakeFiles/argus_txn.dir/transaction.cpp.o"
  "CMakeFiles/argus_txn.dir/transaction.cpp.o.d"
  "libargus_txn.a"
  "libargus_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
