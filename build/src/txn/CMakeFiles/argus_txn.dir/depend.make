# Empty dependencies file for argus_txn.
# This may be replaced when dependencies are built.
