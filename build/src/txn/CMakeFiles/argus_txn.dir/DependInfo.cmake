
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/clock.cpp" "src/txn/CMakeFiles/argus_txn.dir/clock.cpp.o" "gcc" "src/txn/CMakeFiles/argus_txn.dir/clock.cpp.o.d"
  "/root/repo/src/txn/deadlock.cpp" "src/txn/CMakeFiles/argus_txn.dir/deadlock.cpp.o" "gcc" "src/txn/CMakeFiles/argus_txn.dir/deadlock.cpp.o.d"
  "/root/repo/src/txn/managed_object.cpp" "src/txn/CMakeFiles/argus_txn.dir/managed_object.cpp.o" "gcc" "src/txn/CMakeFiles/argus_txn.dir/managed_object.cpp.o.d"
  "/root/repo/src/txn/manager.cpp" "src/txn/CMakeFiles/argus_txn.dir/manager.cpp.o" "gcc" "src/txn/CMakeFiles/argus_txn.dir/manager.cpp.o.d"
  "/root/repo/src/txn/stable_log.cpp" "src/txn/CMakeFiles/argus_txn.dir/stable_log.cpp.o" "gcc" "src/txn/CMakeFiles/argus_txn.dir/stable_log.cpp.o.d"
  "/root/repo/src/txn/transaction.cpp" "src/txn/CMakeFiles/argus_txn.dir/transaction.cpp.o" "gcc" "src/txn/CMakeFiles/argus_txn.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/argus_hist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
