file(REMOVE_RECURSE
  "libargus_txn.a"
)
