file(REMOVE_RECURSE
  "CMakeFiles/argus_dist.dir/remote_object.cpp.o"
  "CMakeFiles/argus_dist.dir/remote_object.cpp.o.d"
  "libargus_dist.a"
  "libargus_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
