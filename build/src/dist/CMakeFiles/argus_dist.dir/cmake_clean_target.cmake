file(REMOVE_RECURSE
  "libargus_dist.a"
)
