# Empty compiler generated dependencies file for argus_dist.
# This may be replaced when dependencies are built.
