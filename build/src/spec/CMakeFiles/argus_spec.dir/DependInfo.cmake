
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/adts/bag.cpp" "src/spec/CMakeFiles/argus_spec.dir/adts/bag.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/adts/bag.cpp.o.d"
  "/root/repo/src/spec/adts/bank_account.cpp" "src/spec/CMakeFiles/argus_spec.dir/adts/bank_account.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/adts/bank_account.cpp.o.d"
  "/root/repo/src/spec/adts/counter.cpp" "src/spec/CMakeFiles/argus_spec.dir/adts/counter.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/adts/counter.cpp.o.d"
  "/root/repo/src/spec/adts/fifo_queue.cpp" "src/spec/CMakeFiles/argus_spec.dir/adts/fifo_queue.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/adts/fifo_queue.cpp.o.d"
  "/root/repo/src/spec/adts/int_set.cpp" "src/spec/CMakeFiles/argus_spec.dir/adts/int_set.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/adts/int_set.cpp.o.d"
  "/root/repo/src/spec/adts/kv_store.cpp" "src/spec/CMakeFiles/argus_spec.dir/adts/kv_store.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/adts/kv_store.cpp.o.d"
  "/root/repo/src/spec/adts/registry.cpp" "src/spec/CMakeFiles/argus_spec.dir/adts/registry.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/adts/registry.cpp.o.d"
  "/root/repo/src/spec/adts/rw_register.cpp" "src/spec/CMakeFiles/argus_spec.dir/adts/rw_register.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/adts/rw_register.cpp.o.d"
  "/root/repo/src/spec/commutativity.cpp" "src/spec/CMakeFiles/argus_spec.dir/commutativity.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/commutativity.cpp.o.d"
  "/root/repo/src/spec/serial.cpp" "src/spec/CMakeFiles/argus_spec.dir/serial.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/serial.cpp.o.d"
  "/root/repo/src/spec/spec.cpp" "src/spec/CMakeFiles/argus_spec.dir/spec.cpp.o" "gcc" "src/spec/CMakeFiles/argus_spec.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/argus_hist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
