file(REMOVE_RECURSE
  "CMakeFiles/argus_spec.dir/adts/bag.cpp.o"
  "CMakeFiles/argus_spec.dir/adts/bag.cpp.o.d"
  "CMakeFiles/argus_spec.dir/adts/bank_account.cpp.o"
  "CMakeFiles/argus_spec.dir/adts/bank_account.cpp.o.d"
  "CMakeFiles/argus_spec.dir/adts/counter.cpp.o"
  "CMakeFiles/argus_spec.dir/adts/counter.cpp.o.d"
  "CMakeFiles/argus_spec.dir/adts/fifo_queue.cpp.o"
  "CMakeFiles/argus_spec.dir/adts/fifo_queue.cpp.o.d"
  "CMakeFiles/argus_spec.dir/adts/int_set.cpp.o"
  "CMakeFiles/argus_spec.dir/adts/int_set.cpp.o.d"
  "CMakeFiles/argus_spec.dir/adts/kv_store.cpp.o"
  "CMakeFiles/argus_spec.dir/adts/kv_store.cpp.o.d"
  "CMakeFiles/argus_spec.dir/adts/registry.cpp.o"
  "CMakeFiles/argus_spec.dir/adts/registry.cpp.o.d"
  "CMakeFiles/argus_spec.dir/adts/rw_register.cpp.o"
  "CMakeFiles/argus_spec.dir/adts/rw_register.cpp.o.d"
  "CMakeFiles/argus_spec.dir/commutativity.cpp.o"
  "CMakeFiles/argus_spec.dir/commutativity.cpp.o.d"
  "CMakeFiles/argus_spec.dir/serial.cpp.o"
  "CMakeFiles/argus_spec.dir/serial.cpp.o.d"
  "CMakeFiles/argus_spec.dir/spec.cpp.o"
  "CMakeFiles/argus_spec.dir/spec.cpp.o.d"
  "libargus_spec.a"
  "libargus_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
