file(REMOVE_RECURSE
  "libargus_spec.a"
)
