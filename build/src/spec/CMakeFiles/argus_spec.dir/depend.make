# Empty dependencies file for argus_spec.
# This may be replaced when dependencies are built.
