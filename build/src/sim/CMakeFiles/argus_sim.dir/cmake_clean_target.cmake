file(REMOVE_RECURSE
  "libargus_sim.a"
)
