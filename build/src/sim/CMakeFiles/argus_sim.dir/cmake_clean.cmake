file(REMOVE_RECURSE
  "CMakeFiles/argus_sim.dir/metrics.cpp.o"
  "CMakeFiles/argus_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/argus_sim.dir/scenarios.cpp.o"
  "CMakeFiles/argus_sim.dir/scenarios.cpp.o.d"
  "CMakeFiles/argus_sim.dir/workload.cpp.o"
  "CMakeFiles/argus_sim.dir/workload.cpp.o.d"
  "libargus_sim.a"
  "libargus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
