# Empty dependencies file for argus_sim.
# This may be replaced when dependencies are built.
