# Empty dependencies file for argus_sched.
# This may be replaced when dependencies are built.
