file(REMOVE_RECURSE
  "libargus_sched.a"
)
