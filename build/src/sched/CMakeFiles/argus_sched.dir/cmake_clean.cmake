file(REMOVE_RECURSE
  "CMakeFiles/argus_sched.dir/factory.cpp.o"
  "CMakeFiles/argus_sched.dir/factory.cpp.o.d"
  "CMakeFiles/argus_sched.dir/storage.cpp.o"
  "CMakeFiles/argus_sched.dir/storage.cpp.o.d"
  "libargus_sched.a"
  "libargus_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
