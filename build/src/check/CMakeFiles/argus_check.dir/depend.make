# Empty dependencies file for argus_check.
# This may be replaced when dependencies are built.
