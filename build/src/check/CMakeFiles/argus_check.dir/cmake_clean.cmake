file(REMOVE_RECURSE
  "CMakeFiles/argus_check.dir/admission.cpp.o"
  "CMakeFiles/argus_check.dir/admission.cpp.o.d"
  "CMakeFiles/argus_check.dir/atomicity.cpp.o"
  "CMakeFiles/argus_check.dir/atomicity.cpp.o.d"
  "CMakeFiles/argus_check.dir/random_history.cpp.o"
  "CMakeFiles/argus_check.dir/random_history.cpp.o.d"
  "CMakeFiles/argus_check.dir/serializability.cpp.o"
  "CMakeFiles/argus_check.dir/serializability.cpp.o.d"
  "CMakeFiles/argus_check.dir/system.cpp.o"
  "CMakeFiles/argus_check.dir/system.cpp.o.d"
  "libargus_check.a"
  "libargus_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
