
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/admission.cpp" "src/check/CMakeFiles/argus_check.dir/admission.cpp.o" "gcc" "src/check/CMakeFiles/argus_check.dir/admission.cpp.o.d"
  "/root/repo/src/check/atomicity.cpp" "src/check/CMakeFiles/argus_check.dir/atomicity.cpp.o" "gcc" "src/check/CMakeFiles/argus_check.dir/atomicity.cpp.o.d"
  "/root/repo/src/check/random_history.cpp" "src/check/CMakeFiles/argus_check.dir/random_history.cpp.o" "gcc" "src/check/CMakeFiles/argus_check.dir/random_history.cpp.o.d"
  "/root/repo/src/check/serializability.cpp" "src/check/CMakeFiles/argus_check.dir/serializability.cpp.o" "gcc" "src/check/CMakeFiles/argus_check.dir/serializability.cpp.o.d"
  "/root/repo/src/check/system.cpp" "src/check/CMakeFiles/argus_check.dir/system.cpp.o" "gcc" "src/check/CMakeFiles/argus_check.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/argus_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/argus_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
