file(REMOVE_RECURSE
  "libargus_check.a"
)
