file(REMOVE_RECURSE
  "libargus_core.a"
)
