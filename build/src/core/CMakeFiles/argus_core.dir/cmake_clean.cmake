file(REMOVE_RECURSE
  "CMakeFiles/argus_core.dir/escrow_account.cpp.o"
  "CMakeFiles/argus_core.dir/escrow_account.cpp.o.d"
  "CMakeFiles/argus_core.dir/hybrid_bag.cpp.o"
  "CMakeFiles/argus_core.dir/hybrid_bag.cpp.o.d"
  "CMakeFiles/argus_core.dir/hybrid_queue.cpp.o"
  "CMakeFiles/argus_core.dir/hybrid_queue.cpp.o.d"
  "CMakeFiles/argus_core.dir/object_base.cpp.o"
  "CMakeFiles/argus_core.dir/object_base.cpp.o.d"
  "CMakeFiles/argus_core.dir/runtime.cpp.o"
  "CMakeFiles/argus_core.dir/runtime.cpp.o.d"
  "libargus_core.a"
  "libargus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
