# Empty dependencies file for argus_common.
# This may be replaced when dependencies are built.
