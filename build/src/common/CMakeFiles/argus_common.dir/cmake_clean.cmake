file(REMOVE_RECURSE
  "CMakeFiles/argus_common.dir/errors.cpp.o"
  "CMakeFiles/argus_common.dir/errors.cpp.o.d"
  "CMakeFiles/argus_common.dir/operation.cpp.o"
  "CMakeFiles/argus_common.dir/operation.cpp.o.d"
  "CMakeFiles/argus_common.dir/value.cpp.o"
  "CMakeFiles/argus_common.dir/value.cpp.o.d"
  "libargus_common.a"
  "libargus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
