# Empty compiler generated dependencies file for argus_hist.
# This may be replaced when dependencies are built.
