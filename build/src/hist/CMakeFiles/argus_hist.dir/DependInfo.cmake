
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hist/event.cpp" "src/hist/CMakeFiles/argus_hist.dir/event.cpp.o" "gcc" "src/hist/CMakeFiles/argus_hist.dir/event.cpp.o.d"
  "/root/repo/src/hist/history.cpp" "src/hist/CMakeFiles/argus_hist.dir/history.cpp.o" "gcc" "src/hist/CMakeFiles/argus_hist.dir/history.cpp.o.d"
  "/root/repo/src/hist/parse.cpp" "src/hist/CMakeFiles/argus_hist.dir/parse.cpp.o" "gcc" "src/hist/CMakeFiles/argus_hist.dir/parse.cpp.o.d"
  "/root/repo/src/hist/precedes.cpp" "src/hist/CMakeFiles/argus_hist.dir/precedes.cpp.o" "gcc" "src/hist/CMakeFiles/argus_hist.dir/precedes.cpp.o.d"
  "/root/repo/src/hist/wellformed.cpp" "src/hist/CMakeFiles/argus_hist.dir/wellformed.cpp.o" "gcc" "src/hist/CMakeFiles/argus_hist.dir/wellformed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
