file(REMOVE_RECURSE
  "libargus_hist.a"
)
