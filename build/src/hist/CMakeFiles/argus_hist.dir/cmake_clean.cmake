file(REMOVE_RECURSE
  "CMakeFiles/argus_hist.dir/event.cpp.o"
  "CMakeFiles/argus_hist.dir/event.cpp.o.d"
  "CMakeFiles/argus_hist.dir/history.cpp.o"
  "CMakeFiles/argus_hist.dir/history.cpp.o.d"
  "CMakeFiles/argus_hist.dir/parse.cpp.o"
  "CMakeFiles/argus_hist.dir/parse.cpp.o.d"
  "CMakeFiles/argus_hist.dir/precedes.cpp.o"
  "CMakeFiles/argus_hist.dir/precedes.cpp.o.d"
  "CMakeFiles/argus_hist.dir/wellformed.cpp.o"
  "CMakeFiles/argus_hist.dir/wellformed.cpp.o.d"
  "libargus_hist.a"
  "libargus_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
