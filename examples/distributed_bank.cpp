// Capstone example: a small "distributed" bank branch network.
//
// Three branches hold escrow accounts behind simulated RPC links; a
// hybrid-atomic bag distributes work items to teller threads
// (nondeterministic remove: tellers never contend); audits run as
// read-only transactions. Demonstrates, in one program:
//   * typed handles + TransactionScope (core/handles.h),
//   * the type-specific EscrowAccount and HybridBag,
//   * RemoteObject latency and a transient partition,
//   * crash + recovery mid-workload,
//   * the conservation invariant surviving all of the above.
//
// Build & run:  ./build/examples/distributed_bank
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "core/escrow_account.h"
#include "core/handles.h"
#include "dist/remote_object.h"

int main() {
  using namespace argus;

  constexpr int kBranches = 3;
  constexpr std::int64_t kInitial = 1000;
  constexpr int kTasks = 120;

  Runtime rt(/*record_history=*/false);

  // Escrow accounts, one per branch, each behind a simulated RPC link.
  std::vector<std::shared_ptr<RemoteObject>> branches;
  for (int i = 0; i < kBranches; ++i) {
    auto inner = std::make_shared<EscrowAccount>(
        rt.allocate_object_id(), "branch" + std::to_string(i), rt.tm(),
        rt.recorder());
    rt.adopt(inner, std::make_shared<AdtSpec<BankAccountAdt>>());
    NetworkProfile profile;
    profile.min_delay = std::chrono::microseconds(20);
    profile.max_delay = std::chrono::microseconds(80);
    profile.seed = static_cast<std::uint64_t>(i) + 1;
    branches.push_back(std::make_shared<RemoteObject>(inner, profile));
  }
  AtomicBag tasks(rt.create_hybrid_bag("tasks"));
  rt.set_wait_timeout_all(std::chrono::milliseconds(500));

  {
    TransactionScope setup(rt);
    for (auto& b : branches) b->invoke(setup.txn(), account::deposit(kInitial));
    for (int i = 0; i < kTasks; ++i) tasks.insert(setup, i);
    setup.commit();
  }

  // Tellers: claim a task from the bag and perform a transfer between two
  // branches, atomically with the claim — an aborted transfer returns the
  // task to the bag.
  std::atomic<int> done{0};
  std::atomic<int> retries{0};
  auto teller = [&](int index) {
    SplitMix64 rng(1000 + static_cast<std::uint64_t>(index));
    while (true) {
      const int claimed = done.fetch_add(1);
      if (claimed >= kTasks) return;
      while (true) {
        try {
          TransactionScope tx(rt);
          const std::int64_t task = tasks.remove_any(tx);
          const auto from = static_cast<std::size_t>(task) % branches.size();
          const auto to = (from + 1) % branches.size();
          const Value got =
              branches[from]->invoke(tx.txn(), account::withdraw(10));
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          if (got.is_unit()) {
            branches[to]->invoke(tx.txn(), account::deposit(10));
          }
          tx.commit();
          break;
        } catch (const TransactionAborted&) {
          ++retries;  // partition / crash / timeout: task went back
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    }
  };
  std::vector<std::thread> tellers;
  for (int i = 0; i < 4; ++i) tellers.emplace_back(teller, i);

  // Meanwhile: a transient partition of branch 2, then a full crash.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  branches[2]->set_partitioned(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  branches[2]->set_partitioned(false);

  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  rt.crash();  // tellers' in-flight transactions are doomed and retried...
  for (auto& t : tellers) t.join();  // ...but the crash ends the run:
  rt.recover();

  // After recovery, finish the remaining tasks single-threaded.
  int drained = 0;
  while (true) {
    try {
      TransactionScope tx(rt);
      const std::int64_t task = tasks.remove_any(tx);
      const auto from = static_cast<std::size_t>(task) % branches.size();
      const auto to = (from + 1) % branches.size();
      const Value got = branches[from]->invoke(tx.txn(), account::withdraw(10));
      if (got.is_unit()) {
        branches[to]->invoke(tx.txn(), account::deposit(10));
      }
      tx.commit();
      ++drained;
    } catch (const TransactionAborted& e) {
      if (e.reason() == AbortReason::kWaitTimeout) break;  // bag is empty
    }
  }

  // The invariant: money conserved through latency, a partition, a crash,
  // recovery, and retries.
  std::int64_t total = 0;
  {
    TransactionScope check(rt);
    for (auto& b : branches) {
      total += b->invoke(check.txn(), account::balance()).as_int();
    }
    check.commit();
  }
  std::cout << "tasks completed by tellers + drained after recovery: "
            << (kTasks - drained) << " + " << drained << "\n"
            << "teller retries (partition/crash): " << retries.load() << "\n"
            << "total balance: " << total << " (expected "
            << kBranches * kInitial << ")\n";
  return total == kBranches * kInitial ? 0 : 1;
}
