// Capstone example: a small distributed bank over the multi-site
// runtime (dist/dist_runtime.h).
//
// Three sites — each a full runtime with its own commit pipeline and
// stable log — hold six sharded branch accounts (round-robin placement)
// plus one fully replicated reserve account. Demonstrates, in one
// program:
//   * cross-site transfers committing through two-phase commit,
//   * available-copies reads and write-all-available writes,
//   * a site failure mid-workload: in-flight transactions at the dead
//     site abort (the failure rule), the survivors keep serving the
//     replicated reserve,
//   * recovery with catch-up (the reserve writes the site missed are
//     re-applied) and the stale-read rule (the recovered copy serves
//     reads again only after a fresh committed write),
//   * a read-only audit spanning every site at one snapshot,
//   * the conservation invariant, plus formal certification of the
//     merged cross-site history.
//
// Build & run:  ./build/examples/distributed_bank
#include <iostream>
#include <string>
#include <vector>

#include "check/atomicity.h"
#include "dist/dist_runtime.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"

int main() {
  using namespace argus;

  constexpr std::size_t kSites = 3;
  constexpr int kBranches = 6;
  constexpr std::int64_t kInitial = 1000;

  DistOptions options;
  options.sites = kSites;
  options.protocol = Protocol::kHybrid;
  DistRuntime dist(options);

  // Branch accounts shard round-robin (branch i lands on site i % 3);
  // the reserve is replicated at every site.
  std::vector<std::string> branches;
  for (int i = 0; i < kBranches; ++i) {
    branches.push_back("branch" + std::to_string(i));
    dist.create_sharded<BankAccountAdt>(branches.back());
  }
  dist.create_replicated<BankAccountAdt>("reserve");

  {
    const auto setup = dist.begin();
    for (const auto& b : branches) {
      dist.write(*setup, b, account::deposit(kInitial));
    }
    dist.write(*setup, "reserve", account::deposit(kInitial));
    dist.commit(setup);  // touches all three sites: a 2PC
  }

  // Cross-site transfers: branch i -> branch i+1 sit at different sites,
  // so every one of these commits runs the full two-phase protocol.
  int committed = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < kBranches; ++i) {
      const auto t = dist.begin();
      const Value got =
          dist.write(*t, branches[i], account::withdraw(25));
      if (got.is_unit()) {
        dist.write(*t, branches[(i + 1) % kBranches], account::deposit(25));
      }
      dist.commit(t);
      ++committed;
    }
  }

  // Site 2 fails mid-transaction: the in-flight transfer that already
  // ran there cannot commit (the failure rule) and aborts globally.
  int aborted = 0;
  {
    const auto t = dist.begin();
    dist.write(*t, branches[2], account::withdraw(25));  // lives at site 2
    dist.fail(2);
    try {
      dist.write(*t, branches[3], account::deposit(25));
      dist.commit(t);
    } catch (const TransactionAborted&) {
      ++aborted;  // no partial effect anywhere
    }
  }

  // The survivors keep the replicated reserve available — the write goes
  // to the two live copies and is registered in the placement catalog.
  {
    const auto t = dist.begin();
    dist.write(*t, "reserve", account::deposit(500));
    dist.commit(t);
  }

  // Recovery: the stable log replays, catch-up re-applies the reserve
  // deposit site 2 missed, and the stale-read rule keeps the recovered
  // copy unreadable until a fresh write commits to it.
  dist.recover(2);
  const Replica* copy2 = dist.placement().find("reserve")->replica_at(2);
  const bool stale_held = copy2 != nullptr && !copy2->readable.load();
  {
    const auto t = dist.begin();
    dist.write(*t, "reserve", account::deposit(1));
    dist.commit(t);
  }
  const bool readable_again = copy2 != nullptr && copy2->readable.load();

  // A read-only audit across all three sites at one snapshot.
  std::int64_t audited = 0;
  {
    const auto audit = dist.begin(TxnKind::kReadOnly);
    for (const auto& b : branches) {
      audited += dist.read(*audit, b, account::balance()).as_int();
    }
    audited += dist.read(*audit, "reserve", account::balance()).as_int();
    dist.commit(audit);
  }
  const std::int64_t expected =
      kBranches * kInitial + kInitial + 500 + 1;

  // Certify the merged cross-site history formally.
  const History merged = dist.merged_history();
  const auto wf = check_well_formed_hybrid(merged, dist.read_only_activities());
  const auto atomic = check_hybrid_atomic(dist.merged_system(), merged);

  const DistStats stats = dist.stats();
  std::cout << "transfers committed: " << committed << " ("
            << stats.two_pc_commits << " two-phase)\n"
            << "failure-rule aborts: " << aborted << "\n"
            << "catch-up transactions at recovery: " << stats.catchup_txns
            << "\n"
            << "stale-read rule held: " << (stale_held ? "yes" : "NO")
            << ", readable after fresh write: "
            << (readable_again ? "yes" : "NO") << "\n"
            << "audit total: " << audited << " (expected " << expected
            << ")\n"
            << "merged history: " << merged.events().size() << " events, "
            << (wf.ok() ? "well-formed" : wf.summary()) << ", "
            << (atomic.ok ? "hybrid atomic" : atomic.explanation) << "\n";

  const bool ok = audited == expected && aborted == 1 && stale_held &&
                  readable_again && stats.catchup_txns >= 1 && wf.ok() &&
                  atomic.ok;
  return ok ? 0 : 1;
}
