// The Lamport banking example (§4.3.3): transfers + audits, three ways.
//
// Runs the same workload — concurrent transfer transactions and
// whole-bank audit activities — under dynamic, static and hybrid
// atomicity, and prints the comparison the paper argues qualitatively:
// under locking (dynamic) the audits block updates and risk deadlock;
// under static the audits are safe but updates pay timestamp aborts;
// under hybrid the audits are invisible to updates and every audit sees
// a consistent total.
//
// Build & run:  ./build/examples/banking_audit
#include <iostream>

#include "sim/scenarios.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"

int main() {
  using namespace argus;

  constexpr int kAccounts = 12;
  constexpr std::int64_t kInitial = 500;
  constexpr std::int64_t kExpectedTotal = kAccounts * kInitial;

  for (Protocol protocol :
       {Protocol::kDynamic, Protocol::kStatic, Protocol::kHybrid}) {
    Runtime rt(/*record_history=*/false);
    auto bank = BankScenario::create(rt, protocol, kAccounts, kInitial);
    rt.set_wait_timeout_all(std::chrono::milliseconds(200));

    WorkloadOptions options;
    options.threads = 4;
    options.transactions_per_thread = 150;
    options.seed = 1983;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({
        bank.transfer_mix(5, 4),
        bank.audit_mix(supports_snapshot_reads(protocol), 1),
    });

    std::cout << "=== " << to_string(protocol) << " atomicity ===\n"
              << "  " << result.summary() << "\n";
    for (const auto& [label, stats] : result.by_label) {
      std::cout << "  " << label << ": committed=" << stats.committed
                << " aborted=" << stats.aborted
                << " mean_latency_us=" << stats.latency.mean() << "\n";
    }

    // Every protocol must preserve the invariant; the difference is the
    // price paid to do so.
    const std::int64_t total =
        bank.total_balance(rt, supports_snapshot_reads(protocol));
    std::cout << "  final audit total = " << total << " (expected "
              << kExpectedTotal << ")\n\n";
    if (total != kExpectedTotal) return 1;
  }
  return 0;
}
