// Replays one fault-sweep configuration from a config file (the
// tests/corpus/*.txt format) and reports the certification verdict:
//
//   fault_replay <config-file>           run + certify, print a summary
//   fault_replay <config-file> --trace   also dump the combined trace
//                                        (parse.h history + '#' fault
//                                        lines, replayable through
//                                        check_history_file)
//
// Exit status 0 iff every probe and checker passed — a failing seed's
// config file is a self-contained, deterministic bug report.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/fault_sweep.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <config-file> [--trace]\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  argus::FaultSweepCase config;
  std::string error;
  if (!argus::parse_fault_case(text.str(), &config, &error)) {
    std::cerr << argv[1] << ": " << error << "\n";
    return 2;
  }

  const argus::FaultCaseResult result = argus::run_fault_case(config);
  std::cout << "protocol:        " << to_string(config.protocol) << "\n"
            << "seed:            " << config.plan.seed << "\n"
            << "crash point:     " << to_string(config.plan.crash_point)
            << " (arrival " << config.plan.crash_at_arrival << ")\n"
            << "crashed mid-run: " << (result.crashed_mid_run ? "yes" : "no")
            << "\n"
            << "faults injected: " << result.faults_injected << "\n"
            << "committed:       " << result.committed << "\n"
            << "aborted:         " << result.aborted << "\n"
            << "log records:     " << result.log_records << "\n"
            << "verdict:         " << (result.ok ? "CERTIFIED" : "FAILED")
            << "\n";
  if (!result.ok) std::cout << result.failure << "\n";
  if (argc > 2 && std::string(argv[2]) == "--trace") {
    std::cout << "\n" << result.trace;
  }
  return result.ok ? 0 : 1;
}
