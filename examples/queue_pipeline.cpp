// The §5.1 FIFO queue as a transactional work pipeline.
//
// Stage 1 producers enqueue jobs, stage 2 workers dequeue them, process,
// and enqueue results onto a second queue — each step a transaction, so
// a crash mid-pipeline never loses or duplicates a job. Uses the
// type-specific HybridFifoQueue, whose commit-time ordering lets
// producers with *different* payloads run concurrently (impossible under
// any static conflict table, as the paper's Fig 5-1 discussion shows).
//
// Build & run:  ./build/examples/queue_pipeline
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "spec/adts/fifo_queue.h"

int main() {
  using namespace argus;

  Runtime rt(/*record_history=*/false);
  auto jobs = rt.create_hybrid_queue("jobs");
  auto results = rt.create_hybrid_queue("results");

  constexpr int kJobs = 300;
  constexpr int kProducers = 3;
  constexpr int kWorkers = 4;

  std::atomic<int> produced{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = p; i < kJobs; i += kProducers) {
        while (true) {
          auto t = rt.begin();
          try {
            jobs->invoke(*t, fifo::enqueue(i));
            rt.commit(t);
            ++produced;
            break;
          } catch (const TransactionAborted&) {
            rt.abort(t);
          }
        }
      }
    });
  }

  std::atomic<int> processed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const int claim = processed.fetch_add(1);
        if (claim >= kJobs) return;
        while (true) {
          auto t = rt.begin();
          try {
            const std::int64_t job =
                jobs->invoke(*t, fifo::dequeue()).as_int();
            // "Process": square the job id, atomically with the dequeue —
            // if this transaction aborts, the job goes back to the queue.
            results->invoke(*t, fifo::enqueue(job * job));
            rt.commit(t);
            break;
          } catch (const TransactionAborted&) {
            rt.abort(t);
          }
        }
      }
    });
  }

  for (auto& t : producers) t.join();
  for (auto& t : workers) t.join();

  // Crash and recover: the pipeline state is rebuilt from the log.
  rt.crash();
  rt.recover();

  std::int64_t sum = 0;
  const auto out = results->committed_items();
  for (std::int64_t v : out) sum += v;

  std::int64_t expected = 0;
  for (int i = 0; i < kJobs; ++i) expected += static_cast<std::int64_t>(i) * i;

  std::cout << "jobs produced:   " << produced.load() << "\n"
            << "results present: " << out.size() << " (expected " << kJobs
            << ")\n"
            << "checksum:        " << sum << " (expected " << expected
            << ")\n"
            << "jobs left over:  " << jobs->committed_items().size()
            << " (expected 0)\n";
  return (out.size() == kJobs && sum == expected &&
          jobs->committed_items().empty())
             ? 0
             : 1;
}
