// Quickstart: atomic objects in five minutes.
//
// Creates a dynamic-atomic bank account and integer set, runs a few
// transactions (including an abort and a crash/recovery), and finally
// feeds the recorded history to the formal checker — the library's
// signature move: the implementation is continuously judged by the
// paper's definitions.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "check/atomicity.h"
#include "core/runtime.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/int_set.h"

int main() {
  using namespace argus;

  Runtime rt;  // records the global event history
  auto account = rt.create_dynamic<BankAccountAdt>("checking");
  auto tags = rt.create_dynamic<IntSetAdt>("tags");

  // A transaction across two objects.
  auto t1 = rt.begin();
  account->invoke(*t1, account::deposit(100));
  tags->invoke(*t1, intset::insert(7));
  rt.commit(t1);

  // A transaction that changes its mind: recoverability means its
  // effects vanish completely.
  auto t2 = rt.begin();
  account->invoke(*t2, account::withdraw(30));
  tags->invoke(*t2, intset::del(7));
  rt.abort(t2);

  // Observe: only t1's effects are visible.
  auto t3 = rt.begin();
  std::cout << "balance = "
            << to_string(account->invoke(*t3, account::balance()))
            << " (expected 100)\n";
  std::cout << "member(7) = "
            << to_string(tags->invoke(*t3, intset::member(7)))
            << " (expected true)\n";
  rt.commit(t3);

  // Crash the node; recovery replays the write-ahead intentions log.
  rt.crash();
  rt.recover();
  auto t4 = rt.begin();
  std::cout << "balance after crash+recover = "
            << to_string(account->invoke(*t4, account::balance()))
            << " (expected 100)\n";
  rt.commit(t4);

  // The formal layer: is the recorded computation dynamic atomic?
  const History h = rt.history();
  const auto verdict = check_dynamic_atomic(rt.system(), h);
  std::cout << "\nrecorded " << h.size() << " events; checker says: "
            << verdict.explanation << "\n";
  return verdict.ok ? 0 : 1;
}
