// CLI: classify a history written in the paper's notation.
//
// Usage:
//   check_history_file <adt> [file]
//
// Reads events (one per line, e.g. "<insert(3),x,a>") from `file` or
// stdin, assumes every object in the history is an instance of <adt>
// (one of: int_set, counter, bank_account, fifo_queue, kv_store, bag,
// rw_register), and prints the well-formedness and atomicity
// classifications. Lines starting with '#' are comments.
//
// Example:
//   ./build/examples/check_history_file int_set <<'EOF'
//   <member(3),x,a>
//   <insert(3),x,b>
//   <ok,x,b>
//   <false,x,a>
//   <member(3),x,c>
//   <commit,x,b>
//   <true,x,c>
//   <commit,x,a>
//   <commit,x,c>
//   EOF
#include <fstream>
#include <iostream>
#include <sstream>

#include "check/atomicity.h"
#include "common/errors.h"
#include "hist/parse.h"
#include "hist/wellformed.h"

int main(int argc, char** argv) {
  using namespace argus;

  if (argc < 2) {
    std::cerr << "usage: check_history_file <adt> [file]\n";
    return 2;
  }
  const std::string adt = argv[1];

  std::string text;
  if (argc >= 3) {
    std::ifstream in(argv[2]);
    if (!in) {
      std::cerr << "cannot open " << argv[2] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  const auto parsed = parse_history(text);
  if (!parsed.history) {
    std::cerr << "parse error: " << parsed.error << "\n";
    return 2;
  }
  const History& h = *parsed.history;
  std::cout << "parsed " << h.size() << " events over "
            << h.objects().size() << " object(s), "
            << h.activities().size() << " activity(ies)\n";

  SystemSpec sys;
  try {
    for (ObjectId x : h.objects()) sys.add_object(x, adt);
  } catch (const UsageError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  const auto wf = check_well_formed(h);
  std::cout << "well-formed (plain):  " << wf.summary() << "\n";
  const auto wf_static = check_well_formed_static(h);
  std::cout << "well-formed (static): " << wf_static.summary() << "\n";
  std::cout << "precedes(h) = " << h.precedes().to_string() << "\n\n";

  std::cout << "atomic:         " << check_atomic(sys, h).explanation << "\n";
  std::cout << "dynamic atomic: " << check_dynamic_atomic(sys, h).explanation
            << "\n";
  if (wf_static.ok()) {
    std::cout << "static atomic:  " << check_static_atomic(sys, h).explanation
              << "\n";
  }
  return 0;
}
