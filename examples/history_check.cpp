// The formal model as a standalone tool: build the paper's §4.1 example
// histories by hand and ask the checkers to classify them, reproducing
// the paper's worked derivations (precedes relation, serialization
// orders, atomic-but-not-dynamic-atomic).
//
// Build & run:  ./build/examples/history_check
#include <iostream>

#include "check/atomicity.h"
#include "hist/wellformed.h"

int main() {
  using namespace argus;

  const ObjectId x{0};
  const ActivityId a{0};
  const ActivityId b{1};
  const ActivityId c{2};

  SystemSpec sys;
  sys.add_object(x, "int_set");

  // §4.1's central example: atomic but not dynamic atomic.
  History h;
  h.append(invoke(x, a, op("member", 3)));
  h.append(invoke(x, b, op("insert", 3)));
  h.append(respond(x, b, ok()));
  h.append(respond(x, a, Value{false}));
  h.append(invoke(x, c, op("member", 3)));
  h.append(commit(x, b));
  h.append(respond(x, c, Value{true}));
  h.append(commit(x, a));
  h.append(commit(x, c));

  std::cout << "history h:\n" << h.to_string() << "\n";
  std::cout << "well-formed: " << check_well_formed(h).summary() << "\n";
  std::cout << "precedes(h) = " << h.precedes().to_string() << "\n\n";

  const auto orders = all_serialization_orders(sys, h.perm());
  std::cout << "perm(h) is serializable in " << orders.size()
            << " order(s):\n";
  for (const auto& order : orders) {
    std::cout << "  ";
    for (std::size_t i = 0; i < order.size(); ++i) {
      std::cout << (i ? "-" : "") << to_string(order[i]);
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  const auto atomic_verdict = check_atomic(sys, h);
  const auto dynamic_verdict = check_dynamic_atomic(sys, h);
  std::cout << "atomic?         " << atomic_verdict.explanation << "\n";
  std::cout << "dynamic atomic? " << dynamic_verdict.explanation << "\n\n";

  // The paper's fix: query member(2) instead, and every
  // precedes-consistent order works.
  History h2;
  h2.append(invoke(x, a, op("member", 2)));
  h2.append(invoke(x, b, op("insert", 3)));
  h2.append(respond(x, b, ok()));
  h2.append(respond(x, a, Value{false}));
  h2.append(invoke(x, c, op("member", 3)));
  h2.append(commit(x, b));
  h2.append(respond(x, c, Value{true}));
  h2.append(commit(x, a));
  h2.append(commit(x, c));

  const auto dynamic2 = check_dynamic_atomic(sys, h2);
  std::cout << "variant with member(2): " << dynamic2.explanation << "\n";

  return (atomic_verdict.ok && !dynamic_verdict.ok && dynamic2.ok) ? 0 : 1;
}
