// Replays one cross-site sweep configuration from a config file (the
// tests/corpus/dist/*.txt format) and reports the certification verdict:
//
//   dist_replay <config-file>           run + certify, print a summary
//   dist_replay <config-file> --trace   also dump the merged cross-site
//                                       trace (site-stamped parse.h
//                                       history + '#' fault lines)
//
// Exit status 0 iff every probe and checker passed — a failing seed's
// config file is a self-contained, deterministic bug report.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/dist_sweep.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <config-file> [--trace]\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  argus::DistSweepCase config;
  std::string error;
  if (!argus::parse_dist_case(text.str(), &config, &error)) {
    std::cerr << argv[1] << ": " << error << "\n";
    return 2;
  }

  const argus::DistCaseResult result = argus::run_dist_case(config);
  std::cout << "protocol:          " << to_string(config.protocol) << "\n"
            << "sites:             " << config.sites << "\n"
            << "seed:              " << config.plan.seed << "\n"
            << "faults injected:   " << result.faults_injected << "\n"
            << "site fails:        " << result.site_fails << " ("
            << result.site_recovers << " recoveries)\n"
            << "committed:         " << result.committed << " ("
            << result.two_pc_commits << " two-phase)\n"
            << "aborted:           " << result.aborted << "\n"
            << "promoted commits:  " << result.promoted_commits << "\n"
            << "presumed aborts:   " << result.presumed_aborts << "\n"
            << "catch-up txns:     " << result.catchup_txns << "\n"
            << "coord crashes:     " << result.coord_crashes << " ("
            << result.coord_recovers << " recoveries)\n"
            << "decisions logged:  " << result.decisions_logged << "\n"
            << "messages lost:     " << result.msgs_lost << "\n"
            << "termination promos: " << result.termination_promotions << "\n"
            << "verdict:           " << (result.ok ? "CERTIFIED" : "FAILED")
            << "\n";
  if (!result.ok) std::cout << result.failure << "\n";
  if (argc > 2 && std::string(argv[2]) == "--trace") {
    std::cout << "\n" << result.trace;
  }
  return result.ok ? 0 : 1;
}
