// Shared helpers for the experiment binaries (E1..E14, see EXPERIMENTS.md
// and DESIGN.md §5 for the paper-claim each reproduces).
#pragma once

#include <benchmark/benchmark.h>
#include <errno.h>  // program_invocation_short_name (GNU)

#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "sim/metrics.h"

namespace argus::bench {

/// Machine-readable mirror of every counter published via report*():
/// rewritten after each report to BENCH_<binary>.json in the repository
/// root (ARGUS_BENCH_JSON_DIR, set by bench/CMakeLists.txt; falls back
/// to the working directory when unset), so the perf trajectory can be
/// diffed across PRs without scraping the human-oriented console table —
/// and so CI finds every artifact in one place no matter which directory
/// the binary ran from.
class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  void update(const std::string& bench_name,
              const std::map<std::string, double>& counters) {
    const std::scoped_lock lock(mu_);
    auto& slot = results_[bench_name];
    for (const auto& [k, v] : counters) slot[k] = v;
    write_locked();
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  void write_locked() const {
#ifdef ARGUS_BENCH_JSON_DIR
    const std::string dir = std::string(ARGUS_BENCH_JSON_DIR) + "/";
#else
    const std::string dir;
#endif
    std::ofstream out(dir + "BENCH_" + program_invocation_short_name +
                      ".json");
    out << "{\n";
    bool first_bench = true;
    for (const auto& [name, counters] : results_) {
      if (!first_bench) out << ",\n";
      first_bench = false;
      out << "  \"" << escape(name) << "\": {";
      bool first = true;
      for (const auto& [k, v] : counters) {
        if (!first) out << ", ";
        first = false;
        out << "\"" << escape(k) << "\": " << v;
      }
      out << "}";
    }
    out << "\n}\n";
  }

  std::mutex mu_;
  std::map<std::string, std::map<std::string, double>> results_;
};

/// Publishes the WorkloadResult on the benchmark's counters so the
/// regenerated "table" carries the quantities the paper's qualitative
/// claims are about: throughput, abort breakdown, deadlocks — plus the
/// commit-pipeline stage counters. Also mirrors them to BENCH_*.json
/// under `key` (callers build it from the benchmark's config — the State
/// object does not expose its own name in this library version).
inline void report(benchmark::State& state, const WorkloadResult& result,
                   const std::string& key) {
  std::map<std::string, double> counters;
  counters["txn_per_s"] = result.throughput();
  counters["committed"] = static_cast<double>(result.committed);
  counters["aborted"] = static_cast<double>(result.aborted);
  counters["abort_rate"] = result.abort_rate();
  counters["deadlocks"] = static_cast<double>(result.deadlocks);
  counters["gave_up"] = static_cast<double>(result.gave_up);
  auto reason_count = [&](AbortReason reason) {
    auto it = result.aborts_by_reason.find(reason);
    return it == result.aborts_by_reason.end() ? 0.0
                                               : static_cast<double>(it->second);
  };
  counters["abort_deadlock"] = reason_count(AbortReason::kDeadlock);
  counters["abort_tsorder"] = reason_count(AbortReason::kTimestampOrder);
  counters["abort_timeout"] = reason_count(AbortReason::kWaitTimeout);
  counters["abort_validation"] = reason_count(AbortReason::kValidation);
  counters["retries"] = static_cast<double>(result.executor.retries);
  counters["validation_aborts"] =
      static_cast<double>(result.executor.validation_aborts);
  if (result.pipeline.commits > 0) {
    counters["pipeline_commits"] =
        static_cast<double>(result.pipeline.commits);
    counters["log_forces"] = static_cast<double>(result.pipeline.log_forces);
    counters["avg_batch"] = result.pipeline.avg_batch();
    counters["max_batch"] = static_cast<double>(result.pipeline.max_batch);
    counters["watermark_lag"] =
        static_cast<double>(result.pipeline.watermark_lag());
  }
  for (const auto& [k, v] : counters) state.counters[k] = v;
  JsonSink::instance().update(key, counters);
}

/// Adds a label's committed throughput and latency to the counters.
inline void report_label(benchmark::State& state, const WorkloadResult& result,
                         const std::string& label, const std::string& key) {
  auto it = result.by_label.find(label);
  if (it == result.by_label.end()) return;
  std::map<std::string, double> counters;
  counters[label + "_committed"] =
      static_cast<double>(it->second.committed);
  counters[label + "_aborted"] = static_cast<double>(it->second.aborted);
  counters[label + "_lat_us"] = it->second.latency.mean();
  counters[label + "_p95_us"] = it->second.latency.percentile(0.95);
  for (const auto& [k, v] : counters) state.counters[k] = v;
  JsonSink::instance().update(key, counters);
}

}  // namespace argus::bench
