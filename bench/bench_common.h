// Shared helpers for the experiment binaries (E1..E7, see EXPERIMENTS.md
// and DESIGN.md §5 for the paper-claim each reproduces).
#pragma once

#include <benchmark/benchmark.h>

#include "sim/metrics.h"

namespace argus::bench {

/// Publishes the WorkloadResult on the benchmark's counters so the
/// regenerated "table" carries the quantities the paper's qualitative
/// claims are about: throughput, abort breakdown, deadlocks.
inline void report(benchmark::State& state, const WorkloadResult& result) {
  state.counters["txn_per_s"] = result.throughput();
  state.counters["committed"] = static_cast<double>(result.committed);
  state.counters["aborted"] = static_cast<double>(result.aborted);
  state.counters["abort_rate"] = result.abort_rate();
  state.counters["deadlocks"] = static_cast<double>(result.deadlocks);
  state.counters["gave_up"] = static_cast<double>(result.gave_up);
  auto reason_count = [&](AbortReason reason) {
    auto it = result.aborts_by_reason.find(reason);
    return it == result.aborts_by_reason.end() ? 0.0
                                               : static_cast<double>(it->second);
  };
  state.counters["abort_deadlock"] = reason_count(AbortReason::kDeadlock);
  state.counters["abort_tsorder"] = reason_count(AbortReason::kTimestampOrder);
  state.counters["abort_timeout"] = reason_count(AbortReason::kWaitTimeout);
}

/// Adds a label's committed throughput and latency to the counters.
inline void report_label(benchmark::State& state, const WorkloadResult& result,
                         const std::string& label) {
  auto it = result.by_label.find(label);
  if (it == result.by_label.end()) return;
  state.counters[label + "_committed"] =
      static_cast<double>(it->second.committed);
  state.counters[label + "_aborted"] = static_cast<double>(it->second.aborted);
  state.counters[label + "_lat_us"] = it->second.latency.mean();
  state.counters[label + "_p95_us"] = it->second.latency.percentile(0.95);
}

}  // namespace argus::bench
