// E5 — §4.1 optimality, measured.
//
// "Dynamic atomicity is optimal: there is no other local atomicity
// property that allows strictly more concurrency" and "the locking
// protocols ... are suboptimal: they permit strictly less concurrency
// than does dynamic atomicity."
//
// We quantify the gap as an admission rate: sample random well-formed
// histories that are atomic by construction, and measure the fraction
// each protocol could have produced. Expected shape, for every ADT:
//     2PL <= commutativity locking <= dynamic atomicity,
// with strict gaps on ADTs whose operations commute conditionally
// (bank_account, fifo_queue) and near-agreement on the read/write
// register (where the paper's generality buys nothing).
#include <benchmark/benchmark.h>

#include "check/admission.h"
#include "check/random_history.h"

namespace argus {
namespace {

void run_admission(benchmark::State& state, const std::string& adt) {
  const int activities = static_cast<int>(state.range(0));
  const int contiguity = static_cast<int>(state.range(1));
  constexpr int kSamples = 400;

  std::uint64_t admitted_2pl = 0;
  std::uint64_t admitted_comm = 0;
  std::uint64_t admitted_dynamic = 0;

  for (auto _ : state) {
    SystemSpec sys;
    sys.add_object(ObjectId{0}, adt);
    for (int i = 0; i < kSamples; ++i) {
      RandomHistoryOptions options;
      options.activities = activities;
      options.ops_per_activity = 3;
      options.abort_percent = 15;
      options.contiguity_percent = contiguity;
      options.seed = static_cast<std::uint64_t>(i) + 1;
      const History h = random_atomic_history(sys, options);
      if (admitted_by_two_phase_locking(sys, h)) ++admitted_2pl;
      if (admitted_by_commutativity_locking(sys, h)) ++admitted_comm;
      if (admitted_by_dynamic_atomicity(sys, h)) ++admitted_dynamic;
    }
  }
  const double n =
      static_cast<double>(kSamples) * static_cast<double>(state.iterations());
  state.counters["rate_2pl"] = static_cast<double>(admitted_2pl) / n;
  state.counters["rate_commlock"] = static_cast<double>(admitted_comm) / n;
  state.counters["rate_dynamic"] = static_cast<double>(admitted_dynamic) / n;
  state.counters["gap_dyn_vs_comm"] =
      static_cast<double>(admitted_dynamic - admitted_comm) / n;
}

void BM_Admission_IntSet(benchmark::State& state) {
  run_admission(state, "int_set");
}
void BM_Admission_BankAccount(benchmark::State& state) {
  run_admission(state, "bank_account");
}
void BM_Admission_FifoQueue(benchmark::State& state) {
  run_admission(state, "fifo_queue");
}
void BM_Admission_RWRegister(benchmark::State& state) {
  run_admission(state, "rw_register");
}
void BM_Admission_KVStore(benchmark::State& state) {
  run_admission(state, "kv_store");
}

// Args: {activities per history, contiguity percent}. High contiguity =
// nearly serial histories (everything admits them); low contiguity =
// heavy interleaving (only the optimal property keeps admitting).
static void AdmissionArgs(benchmark::internal::Benchmark* b) {
  b->Args({3, 90})->Args({3, 60})->Args({3, 0})->Args({4, 60});
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Admission_IntSet)->Apply(AdmissionArgs);
BENCHMARK(BM_Admission_BankAccount)->Apply(AdmissionArgs);
BENCHMARK(BM_Admission_FifoQueue)->Apply(AdmissionArgs);
BENCHMARK(BM_Admission_RWRegister)->Apply(AdmissionArgs);
BENCHMARK(BM_Admission_KVStore)->Apply(AdmissionArgs);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
