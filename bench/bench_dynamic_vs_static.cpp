// E3 — §4.2.3: "Comparison of Dynamic and Static Atomicity".
//
// Claims reproduced:
//   1. "Dynamic atomicity works poorly for long read-only activities such
//      as audits. ... long read-only activities can be quite prone to
//      deadlock." — audits run as locking transactions block transfers
//      and produce deadlock aborts.
//   2. "Static atomicity, however, works reasonably well for long
//      read-only activities ... read-only activities are never forced to
//      abort." — counters must show zero protocol aborts for audits
//      under the multi-version static object.
//   3. "Static atomicity works poorly for updating activities unless
//      timestamps are generated using closely synchronized clocks" —
//      injected timestamp skew (a delay between drawing the initiation
//      timestamp and executing) turns update transactions into
//      timestamp-order aborts under static; under dynamic they merely
//      wait.
//
// Workload: transfers over kAccounts accounts + audits reading all of
// them; sweep audit share and timestamp skew. The single-version
// timestamp-ordering baseline is included to show what Reed's versions
// buy on top of plain TO.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sim/scenarios.h"

namespace argus {
namespace {

constexpr int kAccounts = 16;
constexpr std::int64_t kInitialBalance = 1000;

void run_mixed(benchmark::State& state, Protocol protocol) {
  const int audit_weight = static_cast<int>(state.range(0));
  const int skew_us = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    auto bank = BankScenario::create(rt, protocol, kAccounts, kInitialBalance);
    rt.set_wait_timeout_all(std::chrono::milliseconds(200));

    WorkloadOptions options;
    options.threads = 4;
    options.transactions_per_thread = 120;
    options.seed = 2026;
    options.timestamp_skew_us = skew_us;
    WorkloadDriver driver(rt, options);
    // Long audits (40us per account scanned): the §4.2.3 regime where
    // "long read-only activities can be quite prone to deadlock" under
    // locking.
    const auto result = driver.run({
        bank.transfer_mix(5, 10, /*hold_us=*/10),
        bank.audit_mix(supports_snapshot_reads(protocol), audit_weight,
                       /*hold_us=*/40),
    });
    const std::string key = "mixed/" + to_string(protocol) + "/w" +
                            std::to_string(audit_weight) + "/skew" +
                            std::to_string(skew_us);
    bench::report(state, result, key);
    bench::report_label(state, result, "transfer", key);
    bench::report_label(state, result, "audit", key);
  }
}

void BM_Mixed_Dynamic(benchmark::State& state) {
  run_mixed(state, Protocol::kDynamic);
}
void BM_Mixed_Static(benchmark::State& state) {
  run_mixed(state, Protocol::kStatic);
}
void BM_Mixed_TimestampSingleVersion(benchmark::State& state) {
  run_mixed(state, Protocol::kTimestamp);
}

// Args: {audit weight (vs 10 transfer weight), timestamp skew in us}.
static void MixedArgs(benchmark::internal::Benchmark* b) {
  b->Args({0, 0})->Args({3, 0})->Args({3, 200})->Args({3, 1000});
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Mixed_Dynamic)->Apply(MixedArgs);
BENCHMARK(BM_Mixed_Static)->Apply(MixedArgs);
BENCHMARK(BM_Mixed_TimestampSingleVersion)->Apply(MixedArgs);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
