// E12 — observability overhead: what always-on tracing costs.
//
// Claim measured: the sharded flight recorder makes event capture cheap
// enough to leave on in production — committed-transaction throughput
// with recording on stays within a few percent of recording off at 8
// threads, while the seed's global-mutex HistoryRecorder (kLegacyMutex)
// pays a second serialization point on every event. The online atomicity
// sentinel rides the same stream from a background thread, so continuous
// serializability checking adds only the drain cost to the foreground.
//
// Workload: hybrid bank accounts under a commuting deposit mix plus
// transfers (same shape as E11, so the commit path — not admission — is
// the foreground cost), force delay modelling an fsync. Swept: recording
// config x thread count. BENCH json carries `throughput_vs_off`, the
// ratio against the recording-off baseline measured in the same process.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"

namespace argus {
namespace {

constexpr int kAccounts = 8;
constexpr auto kForceDelay = std::chrono::microseconds(20);

enum class ObsConfig { kOff, kFlight, kFlightSentinel, kLegacy };

const char* config_name(ObsConfig c) {
  switch (c) {
    case ObsConfig::kOff:
      return "off";
    case ObsConfig::kFlight:
      return "flight";
    case ObsConfig::kFlightSentinel:
      return "flight_sentinel";
    case ObsConfig::kLegacy:
      return "legacy_mutex";
  }
  return "?";
}

Runtime::RecorderMode recorder_mode(ObsConfig c) {
  switch (c) {
    case ObsConfig::kOff:
      return Runtime::RecorderMode::kOff;
    case ObsConfig::kFlight:
    case ObsConfig::kFlightSentinel:
      return Runtime::RecorderMode::kFlight;
    case ObsConfig::kLegacy:
      return Runtime::RecorderMode::kLegacyMutex;
  }
  return Runtime::RecorderMode::kOff;
}

/// Recording-off throughput per thread count, measured first in this
/// process; the other configs report their ratio against it.
std::map<int, double>& off_baseline() {
  static std::map<int, double> baseline;
  return baseline;
}

void run_observability(benchmark::State& state, ObsConfig config) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime rt(recorder_mode(config));
    rt.tm().log().set_force_delay(kForceDelay);
    std::vector<std::shared_ptr<ManagedObject>> accounts;
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(
          rt.create_hybrid<BankAccountAdt>("a" + std::to_string(i)));
    }
    rt.set_wait_timeout_all(std::chrono::milliseconds(500));

    AtomicitySentinel* sentinel = nullptr;
    if (config == ObsConfig::kFlightSentinel) {
      SentinelOptions so;
      so.window = std::chrono::milliseconds(5);
      so.checkpoint_threshold = 4096;  // bounded memory, incremental folds
      sentinel = &rt.start_sentinel(so);
    }

    WorkloadOptions options;
    options.threads = threads;
    options.transactions_per_thread = 400;
    options.seed = 7;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({MixItem{
        "deposit", TxnKind::kUpdate, 1,
        [&](Transaction& txn, SplitMix64& rng) {
          auto& account = accounts[rng.below(accounts.size())];
          account->invoke(txn, account::deposit(1));
        }}});

    std::map<std::string, double> extra;
    if (sentinel != nullptr) {
      sentinel->stop();
      extra["sentinel_violations"] =
          static_cast<double>(sentinel->violations());
      extra["sentinel_activities"] =
          static_cast<double>(sentinel->activities_checked());
      extra["sentinel_windows"] = static_cast<double>(sentinel->windows());
      rt.stop_sentinel();
    }
    if (FlightRecorder* rec = rt.flight_recorder()) {
      extra["recorder_events"] = static_cast<double>(rec->total_recorded());
      extra["recorder_shards"] = static_cast<double>(rec->shard_count());
    }
    if (config == ObsConfig::kOff) {
      off_baseline()[threads] = result.throughput();
    } else if (auto it = off_baseline().find(threads);
               it != off_baseline().end() && it->second > 0.0) {
      extra["throughput_vs_off"] = result.throughput() / it->second;
    }

    const std::string key =
        std::string("obs/") + config_name(config) + "/t" +
        std::to_string(threads);
    bench::report(state, result, key);
    for (const auto& [k, v] : extra) state.counters[k] = v;
    bench::JsonSink::instance().update(key, extra);
  }
}

void BM_Observability_Off(benchmark::State& state) {
  run_observability(state, ObsConfig::kOff);
}
void BM_Observability_Flight(benchmark::State& state) {
  run_observability(state, ObsConfig::kFlight);
}
void BM_Observability_FlightSentinel(benchmark::State& state) {
  run_observability(state, ObsConfig::kFlightSentinel);
}
void BM_Observability_LegacyMutex(benchmark::State& state) {
  run_observability(state, ObsConfig::kLegacy);
}

// Arg = worker thread count. The off baseline must run first for a given
// thread count so the ratios have a denominator (benchmarks execute in
// registration order).
BENCHMARK(BM_Observability_Off)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Observability_Flight)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Observability_FlightSentinel)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Observability_LegacyMutex)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
