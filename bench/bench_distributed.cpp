// E10 — the distributed setting (§1: "Maintaining the consistency of
// long-lived, on-line data is a difficult task, particularly in a
// distributed system").
//
// The same transfer+audit workload as E4, but every account is remote
// (simulated RPC latency around each operation). The claim under test:
// protocols that hold synchronization state *across* operations pay the
// network latency multiplicatively — a dynamic-atomicity audit holds its
// locks over 2·N one-way delays while scanning N accounts, stalling every
// conflicting transfer — whereas hybrid read-only activities hold
// nothing, so their latency is paid only by themselves. Expected shape:
// the dynamic-vs-hybrid throughput gap *widens* as RPC latency grows.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dist/remote_object.h"
#include "sim/workload.h"
#include "sched/factory.h"
#include "spec/adts/bank_account.h"

namespace argus {
namespace {

constexpr int kAccounts = 8;

void run_distributed(benchmark::State& state, Protocol protocol) {
  const int rpc_us = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    std::vector<std::shared_ptr<ManagedObject>> accounts;
    for (int i = 0; i < kAccounts; ++i) {
      auto inner = make_object<BankAccountAdt>(rt, protocol,
                                               "a" + std::to_string(i));
      NetworkProfile profile;
      profile.min_delay = std::chrono::microseconds(rpc_us / 2);
      profile.max_delay = std::chrono::microseconds(rpc_us);
      profile.seed = static_cast<std::uint64_t>(i) + 1;
      accounts.push_back(std::make_shared<RemoteObject>(inner, profile));
    }
    rt.set_wait_timeout_all(std::chrono::milliseconds(500));
    {
      auto setup = rt.begin();
      for (auto& a : accounts) a->invoke(*setup, account::deposit(1000));
      rt.commit(setup);
    }

    MixItem transfer{"transfer", TxnKind::kUpdate, 10,
                     [accounts](Transaction& txn, SplitMix64& rng) {
                       const std::size_t from = rng.below(accounts.size());
                       std::size_t to = rng.below(accounts.size());
                       if (to == from) to = (to + 1) % accounts.size();
                       const Value got =
                           accounts[from]->invoke(txn, account::withdraw(5));
                       if (got.is_unit()) {
                         accounts[to]->invoke(txn, account::deposit(5));
                       }
                     }};
    MixItem audit{"audit",
                  supports_snapshot_reads(protocol) ? TxnKind::kReadOnly
                                                    : TxnKind::kUpdate,
                  2,
                  [accounts](Transaction& txn, SplitMix64&) {
                    std::int64_t total = 0;
                    for (const auto& a : accounts) {
                      total += a->invoke(txn, account::balance()).as_int();
                    }
                    (void)total;
                  }};

    WorkloadOptions options;
    options.threads = 6;
    options.transactions_per_thread = 40;
    options.seed = 31;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({transfer, audit});
    const std::string key = "distributed/" + to_string(protocol) + "/rpc" +
                            std::to_string(rpc_us);
    bench::report(state, result, key);
    bench::report_label(state, result, "transfer", key);
    bench::report_label(state, result, "audit", key);
  }
}

void BM_Distributed_Dynamic(benchmark::State& state) {
  run_distributed(state, Protocol::kDynamic);
}
void BM_Distributed_Static(benchmark::State& state) {
  run_distributed(state, Protocol::kStatic);
}
void BM_Distributed_Hybrid(benchmark::State& state) {
  run_distributed(state, Protocol::kHybrid);
}

// Arg: RPC one-way latency upper bound in microseconds.
BENCHMARK(BM_Distributed_Dynamic)->Arg(0)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Distributed_Static)->Arg(0)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Distributed_Hybrid)->Arg(0)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
