// E16 — multi-site scaling (§1: "Maintaining the consistency of
// long-lived, on-line data is a difficult task, particularly in a
// distributed system").
//
// The claim under test: sharding over full per-site runtimes scales.
// Each site is a complete runtime — its own commit pipeline, stable log
// and clock domain — so shard-local transactions commit through the
// ordinary one-phase pipeline with no coordinator lock and no shared
// state between sites. With a fixed per-commit log-force latency (the
// leader-latency fault hook, fired on every force), per-site pipelines
// force in parallel: throughput must grow monotonically from 1 to 4
// sites. A cross-site 2PC variant measures what the coordinated path
// costs by comparison.
//
// E18 — decision-log force cost. Every 2PC decision is force-written to
// the coordinator's DecisionLog before delivery (crash-tolerant commit
// coordination); durable_decisions=false is the PR 6 in-memory baseline.
// With the same simulated storage latency on both the participants'
// prepares and the decision force, the benchmark prices exactly one
// extra forced write per multi-site commit.
#include <benchmark/benchmark.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "dist/dist_runtime.h"
#include "sched/factory.h"
#include "spec/adts/bank_account.h"

namespace argus {
namespace {

constexpr int kAccountsPerSite = 4;
constexpr int kTxnsPerThread = 200;
constexpr std::int64_t kSeedBalance = 1000;

std::unique_ptr<DistRuntime> build(std::size_t sites) {
  DistOptions options;
  options.sites = sites;
  options.protocol = Protocol::kHybrid;
  options.recorder = Runtime::RecorderMode::kOff;
  auto dist = std::make_unique<DistRuntime>(options);
  // Round-robin placement: account j lands on site j % sites, so the
  // accounts of site s are {a_j : j ≡ s (mod sites)}.
  const std::size_t accounts = sites * kAccountsPerSite;
  for (std::size_t j = 0; j < accounts; ++j) {
    dist->create_sharded<BankAccountAdt>("a" + std::to_string(j));
  }
  for (std::size_t i = 0; i < sites; ++i) {
    dist->site(i).runtime().set_wait_timeout_all(
        std::chrono::milliseconds(2000));
  }
  // Seed every account; one transaction per site keeps setup one-phase.
  for (std::size_t s = 0; s < sites; ++s) {
    const auto t = dist->begin();
    for (std::size_t j = s; j < accounts; j += sites) {
      dist->write(*t, "a" + std::to_string(j), account::deposit(kSeedBalance));
    }
    dist->commit(t);
  }
  // Every stable-log force pays a fixed latency — the "disk". This is
  // what makes scaling observable on any host: per-site pipelines sleep
  // in parallel, a single site's pipeline sleeps serially.
  FaultPlan plan;
  plan.seed = 7;
  plan.leader_latency_permille = 1000;
  plan.leader_latency_us = 50;
  dist->set_fault_plan(plan);
  return dist;
}

std::int64_t total_balance(DistRuntime& dist) {
  std::int64_t total = 0;
  for (const auto& entry : dist.dump(account::balance())) {
    total += entry.value.as_int();
  }
  return total;
}

// Shard-local transfers, one driver thread per site over that site's own
// accounts: every commit is one-phase, sites share nothing.
void BM_DistScaling_ShardLocal(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto dist = build(sites);
    const std::size_t accounts = sites * kAccountsPerSite;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(sites);
    for (std::size_t s = 0; s < sites; ++s) {
      threads.emplace_back([&, s] {
        SplitMix64 rng(1000 + s);
        for (int i = 0; i < kTxnsPerThread; ++i) {
          // Pick two distinct accounts of site s.
          const std::size_t span = accounts / sites;
          const std::size_t from = s + sites * rng.below(span);
          std::size_t to = s + sites * rng.below(span);
          if (to == from) to = s + sites * ((from / sites + 1) % span);
          const auto t = dist->begin();
          const Value got =
              dist->read(*t, "a" + std::to_string(from), account::withdraw(5));
          if (got.is_unit()) {
            dist->write(*t, "a" + std::to_string(to), account::deposit(5));
          }
          dist->commit(t);
        }
      });
    }
    for (auto& th : threads) th.join();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    if (total_balance(*dist) !=
        static_cast<std::int64_t>(accounts) * kSeedBalance) {
      throw std::runtime_error("conservation violated in E16 shard-local run");
    }
    const DistStats stats = dist->stats();
    const double committed =
        static_cast<double>(stats.one_phase_commits + stats.two_pc_commits);
    std::map<std::string, double> counters;
    counters["txn_per_s"] =
        static_cast<double>(sites * kTxnsPerThread) / elapsed.count();
    counters["committed"] = committed;
    counters["two_pc_commits"] = static_cast<double>(stats.two_pc_commits);
    counters["aborted"] = static_cast<double>(stats.aborts);
    for (const auto& [k, v] : counters) state.counters[k] = v;
    bench::JsonSink::instance().update(
        "dist_scaling/shard_local/sites" + std::to_string(sites), counters);
  }
}

// The coordinated path for contrast: every transfer crosses two sites,
// so every commit is a full 2PC (prepare at both, decision, delivery)
// under the coordinator lock.
void BM_DistScaling_CrossSite2PC(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto dist = build(sites);
    const std::size_t accounts = sites * kAccountsPerSite;
    const auto start = std::chrono::steady_clock::now();
    SplitMix64 rng(17);
    for (int i = 0; i < kTxnsPerThread; ++i) {
      const std::size_t from = rng.below(accounts);
      std::size_t to = rng.below(accounts);
      // Force a second participant site.
      if (to % sites == from % sites) to = (to + 1) % accounts;
      const auto t = dist->begin();
      const Value got =
          dist->read(*t, "a" + std::to_string(from), account::withdraw(5));
      if (got.is_unit()) {
        dist->write(*t, "a" + std::to_string(to), account::deposit(5));
      }
      dist->commit(t);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    if (total_balance(*dist) !=
        static_cast<std::int64_t>(accounts) * kSeedBalance) {
      throw std::runtime_error("conservation violated in E16 2PC run");
    }
    const DistStats stats = dist->stats();
    std::map<std::string, double> counters;
    counters["txn_per_s"] =
        static_cast<double>(kTxnsPerThread) / elapsed.count();
    counters["committed"] = static_cast<double>(stats.one_phase_commits +
                                                stats.two_pc_commits);
    counters["two_pc_commits"] = static_cast<double>(stats.two_pc_commits);
    counters["aborted"] = static_cast<double>(stats.aborts);
    for (const auto& [k, v] : counters) state.counters[k] = v;
    bench::JsonSink::instance().update(
        "dist_scaling/cross_site_2pc/sites" + std::to_string(sites), counters);
  }
}

// E18: the price of crash-tolerant commit coordination. Cross-site 2PC
// transfers on two sites, once with the durable decision log (every
// decision force-written before delivery, same simulated storage
// latency as the participants' prepares) and once with the in-memory
// PR 6 baseline. Arg(1) = durable, Arg(0) = baseline.
void BM_DecisionLogCost(benchmark::State& state) {
  const bool durable = state.range(0) != 0;
  constexpr std::size_t kSites = 2;
  for (auto _ : state) {
    DistOptions options;
    options.sites = kSites;
    options.protocol = Protocol::kHybrid;
    options.recorder = Runtime::RecorderMode::kOff;
    options.durable_decisions = durable;
    auto dist = std::make_unique<DistRuntime>(options);
    const std::size_t accounts = kSites * kAccountsPerSite;
    for (std::size_t j = 0; j < accounts; ++j) {
      dist->create_sharded<BankAccountAdt>("a" + std::to_string(j));
    }
    for (std::size_t i = 0; i < kSites; ++i) {
      dist->site(i).runtime().set_wait_timeout_all(
          std::chrono::milliseconds(2000));
    }
    for (std::size_t s = 0; s < kSites; ++s) {
      const auto t = dist->begin();
      for (std::size_t j = s; j < accounts; j += kSites) {
        dist->write(*t, "a" + std::to_string(j),
                    account::deposit(kSeedBalance));
      }
      dist->commit(t);
    }
    FaultPlan plan;
    plan.seed = 7;
    plan.leader_latency_permille = 1000;
    plan.leader_latency_us = 50;
    dist->set_fault_plan(plan);
    // The decision force pays the same "disk" as every participant
    // force; the baseline writes nothing, so the delta is one forced
    // write per multi-site commit.
    dist->decision_log().set_force_delay(std::chrono::microseconds(50));

    const auto start = std::chrono::steady_clock::now();
    SplitMix64 rng(17);
    for (int i = 0; i < kTxnsPerThread; ++i) {
      const std::size_t from = rng.below(accounts);
      std::size_t to = rng.below(accounts);
      if (to % kSites == from % kSites) to = (to + 1) % accounts;
      const auto t = dist->begin();
      const Value got =
          dist->read(*t, "a" + std::to_string(from), account::withdraw(5));
      if (got.is_unit()) {
        dist->write(*t, "a" + std::to_string(to), account::deposit(5));
      }
      dist->commit(t);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    if (total_balance(*dist) !=
        static_cast<std::int64_t>(accounts) * kSeedBalance) {
      throw std::runtime_error("conservation violated in E18 run");
    }
    const DistStats stats = dist->stats();
    std::map<std::string, double> counters;
    counters["txn_per_s"] =
        static_cast<double>(kTxnsPerThread) / elapsed.count();
    counters["two_pc_commits"] = static_cast<double>(stats.two_pc_commits);
    counters["decisions_logged"] = static_cast<double>(stats.decisions_logged);
    counters["decisions_truncated"] =
        static_cast<double>(stats.decisions_truncated);
    for (const auto& [k, v] : counters) state.counters[k] = v;
    bench::JsonSink::instance().update(
        std::string("decision_log/") + (durable ? "durable" : "in_memory"),
        counters);
  }
}

BENCHMARK(BM_DistScaling_ShardLocal)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_DistScaling_CrossSite2PC)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_DecisionLogCost)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
