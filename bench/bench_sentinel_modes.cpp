// E17 — sentinel check-mode overhead: what linear-time certification
// buys.
//
// Claim measured: with the vector-clock fast path (kVectorClock and
// kEscalating), always-on atomicity checking stays within a few percent
// of running with the sentinel off, because commuting production traffic
// folds in O(1) per operation and never replays. kExact pays the full
// NFA subset replay on every window and falls behind as the committed
// prefix grows. The foreground workload is untouched either way — the
// sentinel drains the flight recorder from a background thread — so the
// ratio isolates the drain + check cost.
//
// Workload: hybrid bank accounts under a commuting deposit mix (same
// shape as E11/E12, so the numbers compose), force delay modelling an
// fsync. Swept: check mode x thread count. BENCH json carries
// `throughput_vs_off` plus the sentinel's fast-path counters, so the
// "zero escalations on commuting traffic" claim is checkable from the
// artifact alone.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"

namespace argus {
namespace {

constexpr int kAccounts = 8;
constexpr auto kForceDelay = std::chrono::microseconds(20);

enum class SentinelConfig { kOff, kExact, kVectorClock, kEscalating };

const char* config_name(SentinelConfig c) {
  switch (c) {
    case SentinelConfig::kOff:
      return "off";
    case SentinelConfig::kExact:
      return "exact";
    case SentinelConfig::kVectorClock:
      return "vc";
    case SentinelConfig::kEscalating:
      return "escalating";
  }
  return "?";
}

/// Sentinel-off throughput per thread count, measured first in this
/// process; the checked configs report their ratio against it.
std::map<int, double>& off_baseline() {
  static std::map<int, double> baseline;
  return baseline;
}

void run_sentinel_mode(benchmark::State& state, SentinelConfig config) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime rt(Runtime::RecorderMode::kFlight);
    rt.tm().log().set_force_delay(kForceDelay);
    std::vector<std::shared_ptr<ManagedObject>> accounts;
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(
          rt.create_hybrid<BankAccountAdt>("a" + std::to_string(i)));
    }
    rt.set_wait_timeout_all(std::chrono::milliseconds(500));

    AtomicitySentinel* sentinel = nullptr;
    if (config != SentinelConfig::kOff) {
      SentinelOptions so;
      so.window = std::chrono::milliseconds(5);
      so.checkpoint_threshold = 4096;  // bounded memory, incremental folds
      switch (config) {
        case SentinelConfig::kExact:
          so.mode = CheckMode::kExact;
          break;
        case SentinelConfig::kVectorClock:
          so.mode = CheckMode::kVectorClock;
          break;
        default:
          so.mode = CheckMode::kEscalating;
          break;
      }
      sentinel = &rt.start_sentinel(so);
    }

    WorkloadOptions options;
    options.threads = threads;
    options.transactions_per_thread = 400;
    options.seed = 7;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({MixItem{
        "deposit", TxnKind::kUpdate, 1,
        [&](Transaction& txn, SplitMix64& rng) {
          auto& account = accounts[rng.below(accounts.size())];
          account->invoke(txn, account::deposit(1));
        }}});

    std::map<std::string, double> extra;
    if (sentinel != nullptr) {
      sentinel->stop();
      extra["sentinel_violations"] =
          static_cast<double>(sentinel->violations());
      extra["sentinel_activities"] =
          static_cast<double>(sentinel->activities_checked());
      extra["sentinel_windows"] = static_cast<double>(sentinel->windows());
      extra["sentinel_fastpath_windows"] =
          static_cast<double>(sentinel->fastpath_windows());
      extra["sentinel_escalations"] =
          static_cast<double>(sentinel->escalations());
      extra["sentinel_suspicious"] =
          static_cast<double>(sentinel->suspicious());
      extra["sentinel_vc_ops"] = static_cast<double>(sentinel->vc_ops());
      rt.stop_sentinel();
    }
    if (config == SentinelConfig::kOff) {
      off_baseline()[threads] = result.throughput();
    } else if (auto it = off_baseline().find(threads);
               it != off_baseline().end() && it->second > 0.0) {
      extra["throughput_vs_off"] = result.throughput() / it->second;
    }

    const std::string key = std::string("sentinel_mode/") +
                            config_name(config) + "/t" +
                            std::to_string(threads);
    bench::report(state, result, key);
    for (const auto& [k, v] : extra) state.counters[k] = v;
    bench::JsonSink::instance().update(key, extra);
  }
}

void BM_SentinelMode_Off(benchmark::State& state) {
  run_sentinel_mode(state, SentinelConfig::kOff);
}
void BM_SentinelMode_Exact(benchmark::State& state) {
  run_sentinel_mode(state, SentinelConfig::kExact);
}
void BM_SentinelMode_VectorClock(benchmark::State& state) {
  run_sentinel_mode(state, SentinelConfig::kVectorClock);
}
void BM_SentinelMode_Escalating(benchmark::State& state) {
  run_sentinel_mode(state, SentinelConfig::kEscalating);
}

// Arg = worker thread count. The off baseline must run first for a given
// thread count so the ratios have a denominator (benchmarks execute in
// registration order).
BENCHMARK(BM_SentinelMode_Off)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SentinelMode_Exact)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SentinelMode_VectorClock)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SentinelMode_Escalating)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
