// E7 — recoverability online (§1, §3: atomicity is serializability AND
// recoverability, treated together).
//
// Measures the machinery our runtime pays for the all-or-nothing
// property: intentions-list commit vs. abort cost as transaction size
// grows, and full crash-recovery replay time as a function of committed
// log size. Shape expectations: abort is O(1)-ish (discard intentions);
// commit is linear in the intentions list; recovery is linear in the
// stable log.
#include <benchmark/benchmark.h>

#include "core/runtime.h"
#include "spec/adts/int_set.h"

namespace argus {
namespace {

void BM_Recovery_CommitCost(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  Runtime rt(/*record_history=*/false);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  for (auto _ : state) {
    auto t = rt.begin();
    for (int i = 0; i < ops; ++i) {
      set->invoke(*t, intset::insert(i % 64));
    }
    rt.commit(t);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}

void BM_Recovery_AbortCost(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  Runtime rt(/*record_history=*/false);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  for (auto _ : state) {
    auto t = rt.begin();
    for (int i = 0; i < ops; ++i) {
      set->invoke(*t, intset::insert(i % 64));
    }
    rt.abort(t);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}

void BM_Recovery_ReplayCost(benchmark::State& state) {
  const int committed_txns = static_cast<int>(state.range(0));
  Runtime rt(/*record_history=*/false);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  for (int i = 0; i < committed_txns; ++i) {
    auto t = rt.begin();
    set->invoke(*t, intset::insert(i % 256));
    rt.commit(t);
  }
  for (auto _ : state) {
    rt.crash();
    rt.recover();
  }
  state.counters["log_records"] =
      static_cast<double>(rt.tm().log().size());
}

BENCHMARK(BM_Recovery_CommitCost)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_Recovery_AbortCost)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_Recovery_ReplayCost)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
