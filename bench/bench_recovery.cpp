// E7 — recoverability online (§1, §3: atomicity is serializability AND
// recoverability, treated together).
//
// Measures the machinery our runtime pays for the all-or-nothing
// property: intentions-list commit vs. abort cost as transaction size
// grows, and full crash-recovery replay time as a function of committed
// log size. Shape expectations: abort is O(1)-ish (discard intentions);
// commit is linear in the intentions list; recovery is linear in the
// stable log.
// E13 — the price of the fault-injection harness (DESIGN.md "Fault
// model"): the per-commit cost of the injector hooks when no injector is
// attached (one relaxed atomic load per site), when an injector is
// attached but quiet (decisions drawn, no faults fire), and under an
// active chaos mix (force failures retried, torn tails requeued). The
// off/attached ratio is the overhead every production commit pays for
// the harness existing; EXPERIMENTS.md E13 records the measured ratios.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/runtime.h"
#include "fault/fault.h"
#include "spec/adts/int_set.h"

namespace argus {
namespace {

void BM_Recovery_CommitCost(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  Runtime rt(/*record_history=*/false);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  for (auto _ : state) {
    auto t = rt.begin();
    for (int i = 0; i < ops; ++i) {
      set->invoke(*t, intset::insert(i % 64));
    }
    rt.commit(t);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}

void BM_Recovery_AbortCost(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  Runtime rt(/*record_history=*/false);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  for (auto _ : state) {
    auto t = rt.begin();
    for (int i = 0; i < ops; ++i) {
      set->invoke(*t, intset::insert(i % 64));
    }
    rt.abort(t);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}

void BM_Recovery_ReplayCost(benchmark::State& state) {
  const int committed_txns = static_cast<int>(state.range(0));
  Runtime rt(/*record_history=*/false);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  for (int i = 0; i < committed_txns; ++i) {
    auto t = rt.begin();
    set->invoke(*t, intset::insert(i % 256));
    rt.commit(t);
  }
  for (auto _ : state) {
    rt.crash();
    rt.recover();
  }
  state.counters["log_records"] =
      static_cast<double>(rt.tm().log().size());
}

// E13: arg 0 = no injector, 1 = injector attached but quiet, 2 = active
// chaos mix (transient force failures + torn tails).
void BM_Fault_CommitOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  Runtime rt(/*record_history=*/false);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  std::shared_ptr<FaultInjector> injector;
  if (mode >= 1) {
    FaultPlan plan;
    plan.seed = 7;
    if (mode == 2) {
      plan.force_fail_permille = 150;
      plan.force_max_retries = 1;
      plan.force_retry_backoff_us = 0;
      plan.torn_batch_permille = 200;
    }
    injector = std::make_shared<FaultInjector>(plan);
    rt.set_fault_injector(injector);
  }

  int key = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto t = rt.begin();
    set->invoke(*t, intset::insert(key++ % 64));
    try {
      rt.commit(t);
      ++committed;
    } catch (const TransactionAborted&) {
      rt.abort(t);
      ++aborted;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  state.SetItemsProcessed(state.iterations());

  static const char* kModeNames[] = {"off", "attached", "chaos"};
  std::map<std::string, double> counters;
  counters["commit_ns"] = state.iterations() == 0
                              ? 0.0
                              : 1e9 * elapsed_s /
                                    static_cast<double>(state.iterations());
  counters["txn_per_s"] = elapsed_s == 0.0
                              ? 0.0
                              : static_cast<double>(state.iterations()) /
                                    elapsed_s;
  counters["committed"] = static_cast<double>(committed);
  counters["aborted"] = static_cast<double>(aborted);
  counters["faults_injected"] =
      injector ? static_cast<double>(injector->faults_injected()) : 0.0;
  bench::JsonSink::instance().update(
      std::string("fault_commit_overhead/") + kModeNames[mode], counters);
  state.counters["committed"] = static_cast<double>(committed);
  state.counters["aborted"] = static_cast<double>(aborted);
}

BENCHMARK(BM_Recovery_CommitCost)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_Recovery_AbortCost)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_Recovery_ReplayCost)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fault_CommitOverhead)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
