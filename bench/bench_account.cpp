// E2 — §5.1 bank account.
//
// Claim reproduced: "Dynamic atomicity allows activities to execute
// withdraw operations concurrently as long as there is sufficient money
// in the account to cover all of the requests" — a state-dependent fact
// the static conflict tables of the locking protocols cannot use, so
// commutativity locking serializes *every* pair of withdraws.
//
// Workload: N threads of withdraw(small)/deposit(small) against a single
// account; the balance headroom is the swept parameter. Expected shape:
//   * high headroom: dynamic >> comm-lock (withdraws all commute in
//     state); 2pl worst.
//   * zero headroom: dynamic degrades toward comm-lock (withdraws
//     genuinely conflict when the balance can't cover both).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sim/scenarios.h"

namespace argus {
namespace {

void run_account(benchmark::State& state, Protocol protocol) {
  const std::int64_t headroom = state.range(0);
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    auto scenario = AccountScenario::create(rt, protocol, headroom);
    rt.set_wait_timeout_all(std::chrono::milliseconds(200));

    WorkloadOptions options;
    options.threads = 4;
    options.transactions_per_thread = 60;
    options.seed = 99;
    WorkloadDriver driver(rt, options);
    // Bursts of 4 withdraws/deposits with 50us of application work per
    // operation: the transaction holds its locks across ~200us, so
    // conflicting protocols serialize visibly.
    const auto result = driver.run({
        scenario.withdraw_burst_mix(1, 4, 50, 3),
        scenario.deposit_burst_mix(1, 4, 50, 1),
    });
    const std::string key =
        "account/" + to_string(protocol) + "/h" + std::to_string(headroom);
    bench::report(state, result, key);
    bench::report_label(state, result, "withdraw", key);
    bench::report_label(state, result, "deposit", key);
  }
}

void BM_Account_TwoPhase(benchmark::State& state) {
  run_account(state, Protocol::kTwoPhase);
}
void BM_Account_CommLock(benchmark::State& state) {
  run_account(state, Protocol::kCommutativity);
}
void BM_Account_Dynamic(benchmark::State& state) {
  run_account(state, Protocol::kDynamic);
}
void BM_Account_Hybrid(benchmark::State& state) {
  run_account(state, Protocol::kHybrid);
}

// Arg = initial balance (headroom for the 1-unit withdraws).
BENCHMARK(BM_Account_TwoPhase)->Arg(0)->Arg(100000)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Account_CommLock)->Arg(0)->Arg(100000)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Account_Dynamic)->Arg(0)->Arg(100000)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Account_Hybrid)->Arg(0)->Arg(100000)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
