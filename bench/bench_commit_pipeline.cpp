// E11 — commit pipeline scaling: staged pipeline vs the seed's single
// global commit mutex.
//
// Claim measured: restructuring the commit path into validate → timestamp
// → group-commit log force → ordered apply+publish shrinks the global
// critical section to a timestamp allocation, so committed-transaction
// throughput scales with thread count on a commuting-updates workload,
// while the single-mutex baseline flatlines — each of its commits holds
// the global mutex across the full log force (one simulated storage
// round trip per transaction, vs one per batch under group commit).
//
// Workload: hybrid bank accounts, deposit-only transactions (deposits
// commute in every state, so admission never blocks and the commit path
// itself is the bottleneck). Swept: mode x thread count 1..16. The
// simulated force delay models an fsync; both modes pay it, only the
// pipeline amortizes it across a batch.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"

namespace argus {
namespace {

constexpr int kAccounts = 8;
constexpr auto kForceDelay = std::chrono::microseconds(20);

void run_commit_pipeline(benchmark::State& state, CommitMode mode) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    rt.tm().set_commit_mode(mode);
    rt.tm().log().set_force_delay(kForceDelay);
    std::vector<std::shared_ptr<ManagedObject>> accounts;
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(
          rt.create_hybrid<BankAccountAdt>("a" + std::to_string(i)));
    }
    rt.set_wait_timeout_all(std::chrono::milliseconds(500));

    WorkloadOptions options;
    options.threads = threads;
    options.transactions_per_thread = 400;
    options.seed = 7;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({MixItem{
        "deposit", TxnKind::kUpdate, 1,
        [&](Transaction& txn, SplitMix64& rng) {
          auto& account = accounts[rng.below(accounts.size())];
          account->invoke(txn, account::deposit(1));
        }}});
    const std::string key =
        std::string("commit/") +
        (mode == CommitMode::kPipelined ? "pipelined" : "single_mutex") +
        "/t" + std::to_string(threads);
    bench::report(state, result, key);
    bench::report_label(state, result, "deposit", key);
  }
}

void BM_CommitPipeline_SingleMutex(benchmark::State& state) {
  run_commit_pipeline(state, CommitMode::kSingleMutex);
}
void BM_CommitPipeline_Pipelined(benchmark::State& state) {
  run_commit_pipeline(state, CommitMode::kPipelined);
}

// Arg = worker thread count.
BENCHMARK(BM_CommitPipeline_SingleMutex)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_CommitPipeline_Pipelined)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
