// E15 — CC-mode executor head-to-head: data-dependent admission vs the
// classical foils, on identical seeded workloads through one fixed
// worker pool (TxnExecutor).
//
// Question answered: what do Weihl's data-dependent protocols buy (or
// cost) against optimistic validation and multi-version snapshot reads
// when everything else — workload, seeds, pool size, retry budget,
// commit pipeline — is held fixed? The modes differ *only* in the
// admission decision:
//
//   dynamic  — block until the invocation commutes with every
//              uncommitted intention (§4.1); aborts only on deadlock.
//   static   — multi-version timestamp ordering (§4.2); update losers
//              abort on timestamp order, read-only never aborts.
//   hybrid   — dynamic updates + commit-time stamps (§4.3).
//   occ      — never block: execute against committed state, validate
//              at commit, first committer wins, losers retry.
//   mvcc     — occ updates + a timestamp-keyed version log; read-only
//              transactions read an initiation-time snapshot abort-free.
//
// Two passes per mode:
//
//   * BM_E15_Certify_* — a small recorded run, online sentinel attached,
//     then the mode's offline checker over the full history (dynamic /
//     static / hybrid atomicity; OCC and MVCC certify against hybrid —
//     updates serialize at commit timestamps). Publishes cert_ok and
//     sentinel_violations; a 0 in cert_ok means the perf numbers next to
//     it are numbers for a broken protocol and must be discarded.
//   * BM_E15_<mode>/threads — the measured run (recording off):
//     transfers + audits over a seeded bank, threads in {1,2,4,8},
//     reporting txn/s, abort breakdown (incl. validation losses),
//     executor retries and money conservation.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "check/atomicity.h"
#include "hist/wellformed.h"
#include "sim/scenarios.h"

namespace argus {
namespace {

constexpr int kAccounts = 8;
constexpr std::int64_t kInitialBalance = 1000;
constexpr std::int64_t kTotal = kAccounts * kInitialBalance;

// ---------------------------------------------------------------------------
// Certification pass: small, recorded, sentinel on, offline checkers.

void run_certify(benchmark::State& state, CCMode mode) {
  for (auto _ : state) {
    Runtime rt(/*record_history=*/true);
    rt.set_cc_mode(mode);
    auto bank = BankScenario::create(rt, to_protocol(mode), /*n=*/3,
                                     kInitialBalance);
    rt.set_wait_timeout_all(std::chrono::milliseconds(500));
    AtomicitySentinel& sentinel = rt.start_sentinel();

    // Update transactions only: the read-only snapshot path is certified
    // by the property/dsched tiers; keeping perm(h) all-update keeps the
    // dynamic checker's linear-extension enumeration tractable.
    WorkloadOptions options;
    options.threads = 3;
    options.transactions_per_thread = 2;
    options.seed = 2026;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({bank.transfer_mix(5, 1)});

    sentinel.stop();
    const std::uint64_t violations = sentinel.violations();
    rt.stop_sentinel();

    const History h = rt.history();
    bool cert_ok = false;
    switch (mode) {
      case CCMode::kDynamic:
        cert_ok = check_well_formed(h).ok() &&
                  check_dynamic_atomic(rt.system(), h).ok;
        break;
      case CCMode::kStatic:
        cert_ok = check_well_formed_static(h).ok() &&
                  check_static_atomic(rt.system(), h).ok;
        break;
      case CCMode::kHybrid:
      case CCMode::kOcc:
      case CCMode::kMvcc:
        cert_ok = check_well_formed_hybrid(h, {}).ok() &&
                  check_hybrid_atomic(rt.system(), h).ok;
        break;
    }
    const bool conserved =
        bank.total_balance(rt, mode_supports_snapshot_reads(mode)) ==
        3 * kInitialBalance;

    const std::string key = "e15/certify/" + to_string(mode);
    std::map<std::string, double> counters;
    counters["cert_ok"] = cert_ok ? 1.0 : 0.0;
    counters["sentinel_violations"] = static_cast<double>(violations);
    counters["conserved"] = conserved ? 1.0 : 0.0;
    counters["committed"] = static_cast<double>(result.committed);
    for (const auto& [k, v] : counters) state.counters[k] = v;
    bench::JsonSink::instance().update(key, counters);
  }
}

// ---------------------------------------------------------------------------
// Measured pass: identical seeded workload, threads in {1,2,4,8}.

void run_mode(benchmark::State& state, CCMode mode) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    rt.set_cc_mode(mode);
    auto bank =
        BankScenario::create(rt, to_protocol(mode), kAccounts, kInitialBalance);
    rt.set_wait_timeout_all(std::chrono::milliseconds(200));

    // Same seed and task count for every (mode, threads) cell: the
    // submitted task list is a pure function of (seed, mix), so the modes
    // see byte-identical logical workloads and differ only in admission.
    WorkloadOptions options;
    options.threads = threads;
    options.transactions_per_thread = 600 / threads;  // fixed total work
    options.seed = 2026;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({
        bank.transfer_mix(5, 8, /*hold_us=*/5),
        bank.audit_mix(mode_supports_snapshot_reads(mode), 2, /*hold_us=*/10),
    });

    const std::string key =
        "e15/" + to_string(mode) + "/t" + std::to_string(threads);
    bench::report(state, result, key);
    bench::report_label(state, result, "transfer", key);
    bench::report_label(state, result, "audit", key);
    const bool conserved =
        bank.total_balance(rt, mode_supports_snapshot_reads(mode)) == kTotal;
    state.counters["conserved"] = conserved ? 1.0 : 0.0;
    bench::JsonSink::instance().update(key,
                                       {{"conserved", conserved ? 1.0 : 0.0}});
  }
}

void BM_E15_Certify_Dynamic(benchmark::State& state) {
  run_certify(state, CCMode::kDynamic);
}
void BM_E15_Certify_Static(benchmark::State& state) {
  run_certify(state, CCMode::kStatic);
}
void BM_E15_Certify_Hybrid(benchmark::State& state) {
  run_certify(state, CCMode::kHybrid);
}
void BM_E15_Certify_Occ(benchmark::State& state) {
  run_certify(state, CCMode::kOcc);
}
void BM_E15_Certify_Mvcc(benchmark::State& state) {
  run_certify(state, CCMode::kMvcc);
}

void BM_E15_Dynamic(benchmark::State& state) {
  run_mode(state, CCMode::kDynamic);
}
void BM_E15_Static(benchmark::State& state) {
  run_mode(state, CCMode::kStatic);
}
void BM_E15_Hybrid(benchmark::State& state) { run_mode(state, CCMode::kHybrid); }
void BM_E15_Occ(benchmark::State& state) { run_mode(state, CCMode::kOcc); }
void BM_E15_Mvcc(benchmark::State& state) { run_mode(state, CCMode::kMvcc); }

static void CertifyArgs(benchmark::internal::Benchmark* b) {
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}
static void ModeArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4)->Arg(8);
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_E15_Certify_Dynamic)->Apply(CertifyArgs);
BENCHMARK(BM_E15_Certify_Static)->Apply(CertifyArgs);
BENCHMARK(BM_E15_Certify_Hybrid)->Apply(CertifyArgs);
BENCHMARK(BM_E15_Certify_Occ)->Apply(CertifyArgs);
BENCHMARK(BM_E15_Certify_Mvcc)->Apply(CertifyArgs);

BENCHMARK(BM_E15_Dynamic)->Apply(ModeArgs);
BENCHMARK(BM_E15_Static)->Apply(ModeArgs);
BENCHMARK(BM_E15_Hybrid)->Apply(ModeArgs);
BENCHMARK(BM_E15_Occ)->Apply(ModeArgs);
BENCHMARK(BM_E15_Mvcc)->Apply(ModeArgs);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
