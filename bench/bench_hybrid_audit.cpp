// E4 — §4.3.3: the Lamport banking example under hybrid atomicity.
//
// Claims reproduced: "Hybrid atomicity solves the problem addressed by
// Lamport, namely the performance problems with read-only activities
// under dynamic atomicity. ... audits under the implementation of hybrid
// atomicity do not interfere with any updates." Expected shape, sweeping
// the audit fraction:
//   * transfer throughput under hybrid stays flat as audits increase
//     (audits take no locks);
//   * under dynamic, transfer throughput collapses and deadlock aborts
//     appear as audits scan more accounts;
//   * static handles the audits but pays timestamp-order aborts on the
//     transfers;
//   * audit latency under hybrid is low and abort-free.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sim/scenarios.h"

namespace argus {
namespace {

constexpr std::int64_t kInitialBalance = 1000;

void run_audit(benchmark::State& state, Protocol protocol) {
  const int accounts = static_cast<int>(state.range(0));
  const int audit_weight = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    auto bank = BankScenario::create(rt, protocol, accounts, kInitialBalance);
    rt.set_wait_timeout_all(std::chrono::milliseconds(200));

    WorkloadOptions options;
    options.threads = 6;
    options.transactions_per_thread = 60;
    options.seed = 7;
    WorkloadDriver driver(rt, options);
    // Long audits (100us of work per account scanned) against short
    // transfers (20us mid-transaction): the §4.3.3 regime.
    const auto result = driver.run({
        bank.transfer_mix(5, 10, /*hold_us=*/20),
        bank.audit_mix(supports_snapshot_reads(protocol), audit_weight,
                       /*hold_us=*/100),
    });
    const std::string key = "audit/" + to_string(protocol) + "/a" +
                            std::to_string(accounts) + "/w" +
                            std::to_string(audit_weight);
    bench::report(state, result, key);
    bench::report_label(state, result, "transfer", key);
    bench::report_label(state, result, "audit", key);
  }
}

void BM_Audit_Dynamic(benchmark::State& state) {
  run_audit(state, Protocol::kDynamic);
}
void BM_Audit_Static(benchmark::State& state) {
  run_audit(state, Protocol::kStatic);
}
void BM_Audit_Hybrid(benchmark::State& state) {
  run_audit(state, Protocol::kHybrid);
}
void BM_Audit_CommLock(benchmark::State& state) {
  run_audit(state, Protocol::kCommutativity);
}

// Args: {number of accounts each audit scans, audit weight vs 10}.
static void AuditArgs(benchmark::internal::Benchmark* b) {
  b->Args({8, 2})->Args({32, 2})->Args({32, 5});
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Audit_Dynamic)->Apply(AuditArgs);
BENCHMARK(BM_Audit_Static)->Apply(AuditArgs);
BENCHMARK(BM_Audit_Hybrid)->Apply(AuditArgs);
BENCHMARK(BM_Audit_CommLock)->Apply(AuditArgs);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
