// E6 — cost of the formal machinery.
//
// The paper's definitions are declarative; this harness measures what
// deciding them costs. Order-given serializability is linear in history
// length (Lemma 3 reduces it to per-object replay); existential
// serializability enumerates permutations of the committed activities
// (factorial); dynamic atomicity enumerates the linear extensions of
// precedes (between linear and factorial, depending on how constraining
// precedes is). The crossover justifies the runtime protocols: they pay
// small incremental admission checks instead of whole-history search.
#include <benchmark/benchmark.h>

#include "check/atomicity.h"
#include "check/random_history.h"
#include "hist/wellformed.h"

namespace argus {
namespace {

History make_history(const SystemSpec& sys, int activities, int ops) {
  RandomHistoryOptions options;
  options.activities = activities;
  options.ops_per_activity = ops;
  options.abort_percent = 10;
  options.seed = 12345;
  return random_atomic_history(sys, options);
}

void BM_Checker_SerializableInOrder(benchmark::State& state) {
  SystemSpec sys;
  sys.add_object(ObjectId{0}, "kv_store");
  const History h =
      make_history(sys, static_cast<int>(state.range(0)), 4);
  const auto order = h.perm().activities();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serializable_in_order(sys, h.perm(), order));
  }
  state.counters["events"] = static_cast<double>(h.size());
}

void BM_Checker_FindOrder(benchmark::State& state) {
  SystemSpec sys;
  sys.add_object(ObjectId{0}, "kv_store");
  const History h =
      make_history(sys, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_atomic(sys, h).ok);
  }
  state.counters["events"] = static_cast<double>(h.size());
}

void BM_Checker_DynamicAtomic(benchmark::State& state) {
  SystemSpec sys;
  sys.add_object(ObjectId{0}, "kv_store");
  const History h =
      make_history(sys, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_dynamic_atomic(sys, h).ok);
  }
  state.counters["events"] = static_cast<double>(h.size());
}

void BM_Checker_WellFormed(benchmark::State& state) {
  SystemSpec sys;
  sys.add_object(ObjectId{0}, "kv_store");
  const History h =
      make_history(sys, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_well_formed(h).ok());
  }
  state.counters["events"] = static_cast<double>(h.size());
}

// Arg: number of activities (the factorial dimension).
BENCHMARK(BM_Checker_WellFormed)->DenseRange(2, 7);
BENCHMARK(BM_Checker_SerializableInOrder)->DenseRange(2, 7);
BENCHMARK(BM_Checker_FindOrder)->DenseRange(2, 7);
BENCHMARK(BM_Checker_DynamicAtomic)->DenseRange(2, 7);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
