// E8 (ablation) — what the data-dependent admission test buys and costs.
//
// DESIGN.md calls out the central implementation choice: the dynamic
// object's admission is a state-dependent all-orders validation layered
// over a static-commutativity fast path. This ablation runs the same
// object with the exact test disabled (AdmissionMode::kConflictTableOnly,
// i.e. classical commutativity locking) and enabled, on two regimes:
//
//   * covered-withdraw contention (the §5.1 case the exact test admits):
//     exact should win throughput despite its CPU cost;
//   * commuting-only traffic (deposits): both modes take the fast path,
//     so the exact machinery must cost ~nothing.
//
// A second axis measures raw admission-test CPU: single-threaded
// invocations with N pending conflicting transactions staged.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/escrow_account.h"
#include "core/runtime.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"

namespace argus {
namespace {

std::shared_ptr<DynamicAtomicObject<BankAccountAdt>> make_account(
    Runtime& rt, AdmissionMode mode, std::int64_t initial) {
  auto obj = std::make_shared<DynamicAtomicObject<BankAccountAdt>>(
      rt.allocate_object_id(), "account", rt.tm(), rt.recorder(), mode);
  rt.adopt(obj, std::make_shared<AdtSpec<BankAccountAdt>>());
  if (initial > 0) {
    auto t = rt.begin();
    obj->invoke(*t, account::deposit(initial));
    rt.commit(t);
  }
  return obj;
}

void run_contended_on(benchmark::State& state,
                      const std::shared_ptr<ManagedObject>& acct, Runtime& rt,
                      bool commuting_only, int threads,
                      const std::string& key) {
  rt.set_wait_timeout_all(std::chrono::milliseconds(200));
  MixItem body{"op", TxnKind::kUpdate, 1,
               [acct, commuting_only](Transaction& txn, SplitMix64&) {
                 for (int i = 0; i < 4; ++i) {
                   if (commuting_only) {
                     acct->invoke(txn, account::deposit(1));
                   } else {
                     acct->invoke(txn, account::withdraw(1));
                   }
                   std::this_thread::sleep_for(std::chrono::microseconds(20));
                 }
               }};
  WorkloadOptions options;
  options.threads = threads;
  options.transactions_per_thread = 200 / threads + 1;
  options.seed = 5;
  WorkloadDriver driver(rt, options);
  bench::report(state, driver.run({body}), key);
}

void run_contended(benchmark::State& state, AdmissionMode mode,
                   bool commuting_only) {
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    auto acct = make_account(rt, mode, 1'000'000);
    run_contended_on(state, acct, rt, commuting_only, 4,
                     std::string("ablation/") +
                         (mode == AdmissionMode::kExact ? "exact" : "table") +
                         (commuting_only ? "/deposits" : "/withdraws"));
  }
}

// Type-specific escrow protocol on the same workload — O(1) admission and
// no concurrency cap; included to show what a type-specific object buys
// over the generic brute-force validation (third rung of the ablation).
void run_contended_escrow(benchmark::State& state, bool commuting_only,
                          int threads) {
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    auto acct = std::make_shared<EscrowAccount>(rt.allocate_object_id(),
                                                "escrow", rt.tm(), nullptr);
    rt.adopt(acct, std::make_shared<AdtSpec<BankAccountAdt>>());
    {
      auto t = rt.begin();
      acct->invoke(*t, account::deposit(1'000'000));
      rt.commit(t);
    }
    run_contended_on(state, acct, rt, commuting_only, threads,
                     std::string("ablation/escrow") +
                         (commuting_only ? "/deposits" : "/withdraws") + "/t" +
                         std::to_string(threads));
  }
}

void BM_Ablation_Withdraws_Escrow(benchmark::State& state) {
  run_contended_escrow(state, /*commuting_only=*/false, 4);
}
void BM_Ablation_Withdraws_Escrow8(benchmark::State& state) {
  run_contended_escrow(state, /*commuting_only=*/false, 8);
}

void BM_Ablation_Withdraws_Exact(benchmark::State& state) {
  run_contended(state, AdmissionMode::kExact, /*commuting_only=*/false);
}
void BM_Ablation_Withdraws_TableOnly(benchmark::State& state) {
  run_contended(state, AdmissionMode::kConflictTableOnly,
                /*commuting_only=*/false);
}
void BM_Ablation_Deposits_Exact(benchmark::State& state) {
  run_contended(state, AdmissionMode::kExact, /*commuting_only=*/true);
}
void BM_Ablation_Deposits_TableOnly(benchmark::State& state) {
  run_contended(state, AdmissionMode::kConflictTableOnly,
                /*commuting_only=*/true);
}

BENCHMARK(BM_Ablation_Withdraws_Exact)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Ablation_Withdraws_TableOnly)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Ablation_Withdraws_Escrow)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Ablation_Withdraws_Escrow8)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Ablation_Deposits_Exact)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Ablation_Deposits_TableOnly)->Unit(benchmark::kMillisecond)->Iterations(1);

// Raw admission CPU: the invoking transaction validates against N staged
// conflicting transactions (each holding one covered withdraw).
void BM_Ablation_AdmissionCpu(benchmark::State& state) {
  const int pending = static_cast<int>(state.range(0));
  Runtime rt(/*record_history=*/false);
  auto acct = make_account(rt, AdmissionMode::kExact, 1'000'000);

  std::vector<std::shared_ptr<Transaction>> stage;
  for (int i = 0; i < pending; ++i) {
    auto t = rt.begin();
    acct->invoke(*t, account::withdraw(1));
    stage.push_back(std::move(t));
  }
  for (auto _ : state) {
    auto t = rt.begin();
    benchmark::DoNotOptimize(acct->invoke(*t, account::withdraw(1)));
    rt.abort(t);
  }
  for (auto& t : stage) rt.abort(t);
}

BENCHMARK(BM_Ablation_AdmissionCpu)->DenseRange(0, 6);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
