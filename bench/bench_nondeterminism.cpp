// E9 — the nondeterminism dividend (§1, citing [Weihl & Liskov 83]:
// "non-determinism may be needed to achieve a reasonable level of
// concurrency among actions").
//
// Identical producer/consumer workload over two type-specific hybrid
// objects differing only in their consumer specification:
//
//   HybridFifoQueue — deterministic dequeue (the front): concurrent
//                     consumers serialize on the tentative front;
//   HybridBag       — nondeterministic remove (any element): concurrent
//                     consumers claim disjoint instances and never wait
//                     for each other.
//
// Expected shape: bag consumer throughput scales with consumer threads,
// queue throughput plateaus; the gap is bought purely by weakening the
// specification, with both histories fully hybrid atomic.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/runtime.h"
#include "sim/workload.h"
#include "spec/adts/bag.h"
#include "spec/adts/fifo_queue.h"

namespace argus {
namespace {

void run_consumers(benchmark::State& state, bool use_bag) {
  const int consumers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    std::shared_ptr<ManagedObject> obj;
    if (use_bag) {
      obj = rt.create_hybrid_bag("b");
    } else {
      obj = rt.create_hybrid_queue("q");
    }
    rt.set_wait_timeout_all(std::chrono::milliseconds(200));

    // Pre-fill with plenty of committed items.
    for (int batch = 0; batch < 20; ++batch) {
      auto t = rt.begin();
      for (int i = 0; i < 60; ++i) {
        obj->invoke(*t, use_bag ? bag::insert(batch * 60 + i)
                                : fifo::enqueue(batch * 60 + i));
      }
      rt.commit(t);
    }

    // Consumers take one item each, holding the claim across simulated
    // processing work — the window in which deterministic consumers
    // collide and nondeterministic ones do not.
    MixItem consume{"consume", TxnKind::kUpdate, 1,
                    [obj, use_bag](Transaction& txn, SplitMix64&) {
                      obj->invoke(txn,
                                  use_bag ? bag::remove() : fifo::dequeue());
                      std::this_thread::sleep_for(
                          std::chrono::microseconds(100));
                    }};

    WorkloadOptions options;
    options.threads = consumers;
    options.transactions_per_thread = 400 / consumers + 1;
    options.seed = 11;
    WorkloadDriver driver(rt, options);
    bench::report(state, driver.run({consume}),
                  std::string("consumers/") + (use_bag ? "bag" : "fifo") +
                      "/c" + std::to_string(consumers));
  }
}

void BM_Consumers_FifoQueue(benchmark::State& state) {
  run_consumers(state, /*use_bag=*/false);
}
void BM_Consumers_Bag(benchmark::State& state) {
  run_consumers(state, /*use_bag=*/true);
}

BENCHMARK(BM_Consumers_FifoQueue)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Consumers_Bag)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
