// E14 — deterministic scheduling overhead and explorer throughput.
//
// Claims measured:
//   1. SchedMode::kOs (the default) costs nothing: the wait-policy hook
//      is a null-pointer check on the blocking paths, so a contended
//      bank workload on the stock runtime runs at the same throughput it
//      did before the dsched layer existed. `os_txn_per_s` in the BENCH
//      json is the number to diff across PRs.
//   2. Deterministic exploration is fast enough to be a test tier: a
//      full {schedule x fault} case — build a runtime, run the lanes
//      under a seeded schedule source, crash, recover, run all three
//      certifiers — completes in single-digit milliseconds, and the
//      exhaustive DFS over the 2-lane dynamic-atomicity tree replays
//      hundreds of interleavings per second. `cases_per_s` /
//      `dfs_runs_per_s` quantify the budget a CI sweep buys.
//
// Workload: the same cross-account transfer mix the explorer uses, so
// the kOs and deterministic numbers describe the same program under the
// two scheduling modes.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_common.h"
#include "sim/sched_explore.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"

namespace argus {
namespace {

constexpr int kAccounts = 4;

/// The kOs baseline: stock runtime, OS threads, no wait policy. This is
/// the path every production-shaped workload takes; the dsched layer
/// must not show up here.
void BM_Dsched_OsBaseline(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime rt(Runtime::RecorderMode::kFlight);
    std::vector<std::shared_ptr<ManagedObject>> accounts;
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(
          rt.create_dynamic<BankAccountAdt>("a" + std::to_string(i)));
    }
    rt.set_wait_timeout_all(std::chrono::milliseconds(500));
    {  // seed balances so transfers have something to move
      auto txn = rt.begin();
      for (auto& account : accounts) {
        account->invoke(*txn, account::deposit(64));
      }
      rt.commit(txn);
    }

    WorkloadOptions options;
    options.threads = threads;
    options.transactions_per_thread = 300;
    options.seed = 11;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({MixItem{
        "transfer", TxnKind::kUpdate, 1,
        [&](Transaction& txn, SplitMix64& rng) {
          const std::size_t from = rng.below(accounts.size());
          const std::size_t to =
              (from + 1 + rng.below(accounts.size() - 1)) % accounts.size();
          auto got = accounts[from]->invoke(txn, account::withdraw(1));
          if (got.is_unit()) accounts[to]->invoke(txn, account::deposit(1));
        }}});

    const std::string key = "dsched/os_baseline/t" + std::to_string(threads);
    bench::report(state, result, key);
    bench::JsonSink::instance().update(
        key, {{"os_txn_per_s", result.throughput()}});
  }
}

/// Deterministic-mode cost per explored case: one full run_sched_case —
/// runtime build, scheduled lanes, crash/recover, certification — per
/// iteration. `state.range(0)` picks the schedule source.
void run_case_bench(benchmark::State& state, ScheduleKind kind) {
  SchedCase c;
  c.kind = kind;
  c.adt = "bank";
  c.protocol = Protocol::kDynamic;
  c.objects = 2;
  c.lanes = 3;
  c.txns_per_lane = 2;
  c.initial_balance = 3;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  std::uint64_t certified = 0;
  for (auto _ : state) {
    c.seed = seed++;
    const SchedCaseResult result = run_sched_case(c);
    steps += result.steps;
    certified += result.ok ? 1 : 0;
    benchmark::DoNotOptimize(result.trace.data());
  }
  state.counters["steps_per_case"] =
      benchmark::Counter(static_cast<double>(steps),
                         benchmark::Counter::kAvgIterations);
  state.counters["cases_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["certified"] = static_cast<double>(certified);
  bench::JsonSink::instance().update(
      std::string("dsched/case/") +
          (kind == ScheduleKind::kRandom ? "random" : "pct"),
      {{"steps_per_case",
        static_cast<double>(steps) /
            static_cast<double>(std::max<std::int64_t>(1, state.iterations()))},
       {"certified", static_cast<double>(certified)}});
}

void BM_Dsched_CaseRandom(benchmark::State& state) {
  run_case_bench(state, ScheduleKind::kRandom);
}
void BM_Dsched_CasePct(benchmark::State& state) {
  run_case_bench(state, ScheduleKind::kPct);
}

/// Exhaustive DFS throughput on the canonical 2-lane/1-object tree: how
/// many interleavings per second the model-checking tier replays.
void BM_Dsched_DfsExhaust(benchmark::State& state) {
  SchedCase base;
  base.adt = "bank";
  base.protocol = Protocol::kDynamic;
  base.objects = 1;
  base.lanes = 2;
  base.txns_per_lane = 1;
  base.initial_balance = 3;
  base.seed = 3;
  std::uint64_t runs = 0;
  std::uint64_t pruned = 0;
  for (auto _ : state) {
    const DfsExploreResult dfs = run_dfs_explore(base, /*max_runs=*/4096);
    runs += dfs.runs;
    pruned += dfs.pruned_branches;
  }
  state.counters["dfs_runs_per_s"] =
      benchmark::Counter(static_cast<double>(runs),
                         benchmark::Counter::kIsRate);
  state.counters["runs_per_tree"] =
      benchmark::Counter(static_cast<double>(runs),
                         benchmark::Counter::kAvgIterations);
  state.counters["pruned_per_tree"] =
      benchmark::Counter(static_cast<double>(pruned),
                         benchmark::Counter::kAvgIterations);
  bench::JsonSink::instance().update(
      "dsched/dfs/2lane",
      {{"runs_per_tree",
        static_cast<double>(runs) /
            static_cast<double>(std::max<std::int64_t>(1, state.iterations()))},
       {"pruned_per_tree",
        static_cast<double>(pruned) /
            static_cast<double>(
                std::max<std::int64_t>(1, state.iterations()))}});
}

BENCHMARK(BM_Dsched_OsBaseline)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Dsched_CaseRandom)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dsched_CasePct)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dsched_DfsExhaust)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
