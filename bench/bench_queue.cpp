// E1 — Fig 5-1 / §5.1 FIFO queue.
//
// Claim reproduced: scheduler-model conflict tables serialize enqueues of
// distinct values (enqueue(1) vs enqueue(2) never commute), while the
// commit-order hybrid queue lets producers run fully concurrently. 2PL is
// worse still (every operation is a writer). Expected shape:
//     hybrid >> comm-lock >= 2pl, dynamic ~ comm-lock on this workload
// (the generic dynamic object gains nothing on distinct-value enqueues —
// its extra power only shows on argument collisions, cf. E2).
//
// Workload: P producer threads (burst enqueues of random values) and
// consumer threads (burst dequeues) over one queue, pre-filled so
// consumers never starve.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sim/scenarios.h"

namespace argus {
namespace {

void run_queue(benchmark::State& state, Protocol protocol) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime rt(/*record_history=*/false);
    auto scenario = QueueScenario::create(rt, protocol);
    rt.set_wait_timeout_all(std::chrono::milliseconds(200));

    // Pre-fill in small transactions (a single huge one would make the
    // intentions-list replay quadratic and measure setup, not steady
    // state).
    for (int batch = 0; batch < 20; ++batch) {
      auto t = rt.begin();
      for (int i = 0; i < 50; ++i) {
        scenario.queue->invoke(*t, fifo::enqueue(batch * 50 + i));
      }
      rt.commit(t);
    }

    WorkloadOptions options;
    options.threads = threads;
    options.transactions_per_thread = 300 / threads + 1;
    options.seed = 42;
    WorkloadDriver driver(rt, options);
    const auto result =
        driver.run({scenario.producer_mix(4, 3), scenario.consumer_mix(2, 1)});
    const std::string key =
        "queue/" + to_string(protocol) + "/t" + std::to_string(threads);
    bench::report(state, result, key);
    bench::report_label(state, result, "producer", key);
    bench::report_label(state, result, "consumer", key);
  }
}

void BM_Queue_TwoPhase(benchmark::State& state) {
  run_queue(state, Protocol::kTwoPhase);
}
void BM_Queue_CommLock(benchmark::State& state) {
  run_queue(state, Protocol::kCommutativity);
}
void BM_Queue_Dynamic(benchmark::State& state) {
  run_queue(state, Protocol::kDynamic);
}
void BM_Queue_Hybrid(benchmark::State& state) {
  run_queue(state, Protocol::kHybrid);
}

BENCHMARK(BM_Queue_TwoPhase)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Queue_CommLock)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Queue_Dynamic)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Queue_Hybrid)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace argus

BENCHMARK_MAIN();
