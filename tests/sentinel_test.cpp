// AtomicitySentinel: clean traces and real workloads pass with zero
// violations; an injected non-serializable trace is flagged; the
// checkpointing (bounded-memory) path stays clean.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/vc_atomicity.h"
#include "core/dynamic_object.h"
#include "obs/sentinel.h"
#include "sim/scenarios.h"
#include "sim/workload.h"
#include "spec/adts/counter.h"
#include "test_util.h"
#include "txn/clock.h"

namespace argus {
namespace {

using namespace testutil;

SystemSpec one_set() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  return sys;
}

TEST(Sentinel, CleanTracePassesAndCountsActivities) {
  LamportClock clock;
  FlightRecorder rec(clock);
  const auto sys = one_set();
  // b inserts 3 and commits; a then observes it. Canonical order (first
  // commit sequence) is b before a — serializable.
  rec.record(invoke(X, B, op("insert", 3)));
  rec.record(respond(X, B, ok()));
  rec.record(commit(X, B));
  rec.record(invoke(X, A, op("member", 3)));
  rec.record(respond(X, A, Value{true}));
  rec.record(commit(X, A));

  AtomicitySentinel sentinel(rec, sys);
  sentinel.poll();
  EXPECT_EQ(sentinel.violations(), 0u);
  EXPECT_EQ(sentinel.activities_checked(), 2u);
  EXPECT_EQ(sentinel.events_seen(), 6u);
  EXPECT_EQ(sentinel.last_violation(), "");
}

TEST(Sentinel, InjectedNonSerializableTraceIsFlagged) {
  LamportClock clock;
  FlightRecorder rec(clock);
  const auto sys = one_set();
  // b's insert(3) commits *before* a commits, yet a observed
  // member(3)=false — in the canonical order (b, then a) there is no
  // acceptable replay: a genuine atomicity violation.
  rec.record(invoke(X, B, op("insert", 3)));
  rec.record(respond(X, B, ok()));
  rec.record(invoke(X, A, op("member", 3)));
  rec.record(respond(X, A, Value{false}));
  rec.record(commit(X, B));
  rec.record(commit(X, A));

  std::vector<std::string> hook_reports;
  SentinelOptions options;
  options.on_violation = [&hook_reports](const std::string& e) {
    hook_reports.push_back(e);
  };
  AtomicitySentinel sentinel(rec, sys, options);
  sentinel.poll();
  EXPECT_GE(sentinel.violations(), 1u);
  EXPECT_NE(sentinel.last_violation().find("not serializable"),
            std::string::npos);
  ASSERT_EQ(hook_reports.size(), sentinel.violations());
  // The offender is quarantined: further windows do not re-report it.
  sentinel.poll();
  EXPECT_EQ(hook_reports.size(), sentinel.violations());
}

TEST(Sentinel, AbortedActivityEffectsAreExcluded) {
  LamportClock clock;
  FlightRecorder rec(clock);
  const auto sys = one_set();
  // b's insert aborted, so a's member(3)=false is consistent.
  rec.record(invoke(X, B, op("insert", 3)));
  rec.record(respond(X, B, ok()));
  rec.record(abort(X, B));
  rec.record(invoke(X, A, op("member", 3)));
  rec.record(respond(X, A, Value{false}));
  rec.record(commit(X, A));

  AtomicitySentinel sentinel(rec, sys);
  sentinel.poll();
  EXPECT_EQ(sentinel.violations(), 0u);
  EXPECT_EQ(sentinel.activities_checked(), 1u);
}

TEST(Sentinel, WorkloadSweepAcrossProtocolsHasNoViolations) {
  for (const Protocol protocol :
       {Protocol::kDynamic, Protocol::kStatic, Protocol::kHybrid}) {
    Runtime rt;  // flight recording on
    auto bank = BankScenario::create(rt, protocol, 4, 10000);
    SentinelOptions options;
    options.window = std::chrono::milliseconds(2);
    auto& sentinel = rt.start_sentinel(options);

    WorkloadOptions wo;
    wo.threads = 4;
    wo.transactions_per_thread = 50;
    wo.seed = 11;
    WorkloadDriver driver(rt, wo);
    const bool read_only_audit = protocol == Protocol::kHybrid;
    (void)driver.run(
        {bank.transfer_mix(1, 3), bank.audit_mix(read_only_audit, 1)});

    sentinel.stop();  // final flush window runs before stop returns
    EXPECT_EQ(sentinel.violations(), 0u)
        << "protocol " << static_cast<int>(protocol) << ": "
        << sentinel.last_violation();
    EXPECT_GT(sentinel.activities_checked(), 0u);
    EXPECT_NE(rt.metrics().json().find("argus_sentinel_windows_total"),
              std::string::npos);
    rt.stop_sentinel();
  }
}

TEST(Sentinel, CheckpointingPathStaysCleanUnderBoundedMemory) {
  Runtime rt;
  auto bank = BankScenario::create(rt, Protocol::kHybrid, 4, 10000);
  SentinelOptions options;
  options.window = std::chrono::milliseconds(1);
  options.checkpoint_threshold = 64;  // fold aggressively
  auto& sentinel = rt.start_sentinel(options);

  WorkloadOptions wo;
  wo.threads = 2;
  wo.transactions_per_thread = 150;
  wo.seed = 23;
  WorkloadDriver driver(rt, wo);
  (void)driver.run({bank.transfer_mix(1, 3), bank.audit_mix(true, 1)});

  sentinel.stop();
  EXPECT_EQ(sentinel.violations(), 0u) << sentinel.last_violation();
  EXPECT_GT(sentinel.activities_checked(), 0u);
  rt.stop_sentinel();
}

TEST(Sentinel, RequiresFlightMode) {
  Runtime rt(false);
  EXPECT_THROW(rt.start_sentinel(), UsageError);
}

TEST(Sentinel, CheckModeSweepOnRealWorkloadStaysClean) {
  for (const CheckMode mode :
       {CheckMode::kExact, CheckMode::kVectorClock, CheckMode::kEscalating}) {
    Runtime rt;
    auto bank = BankScenario::create(rt, Protocol::kHybrid, 4, 10000);
    SentinelOptions options;
    options.window = std::chrono::milliseconds(2);
    options.mode = mode;
    auto& sentinel = rt.start_sentinel(options);
    EXPECT_EQ(sentinel.mode(), mode);

    WorkloadOptions wo;
    wo.threads = 4;
    wo.transactions_per_thread = 50;
    wo.seed = 29;
    WorkloadDriver driver(rt, wo);
    (void)driver.run({bank.transfer_mix(1, 3), bank.audit_mix(true, 1)});

    sentinel.stop();
    EXPECT_EQ(sentinel.violations(), 0u)
        << to_string(mode) << ": " << sentinel.last_violation();
    EXPECT_GT(sentinel.activities_checked(), 0u) << to_string(mode);
    if (mode == CheckMode::kExact) {
      EXPECT_EQ(sentinel.fastpath_windows(), 0u);
      EXPECT_EQ(sentinel.vc_ops(), 0u);
    } else {
      // The commuting transfer/audit mix must keep most windows on the
      // fast path; the new metrics ride the registry like the rest.
      EXPECT_GT(sentinel.fastpath_windows(), 0u) << to_string(mode);
      const std::string json = rt.metrics().json();
      EXPECT_NE(json.find("argus_sentinel_fastpath_windows_total"),
                std::string::npos);
      EXPECT_NE(json.find("argus_sentinel_escalations_total"),
                std::string::npos);
      EXPECT_NE(json.find("argus_sentinel_vc_ops_total"), std::string::npos);
    }
    rt.stop_sentinel();
  }
}

TEST(Sentinel, EscalatingModeFlagsTheInjectedTrace) {
  LamportClock clock;
  FlightRecorder rec(clock);
  const auto sys = one_set();
  rec.record(invoke(X, B, op("insert", 3)));
  rec.record(respond(X, B, ok()));
  rec.record(invoke(X, A, op("member", 3)));
  rec.record(respond(X, A, Value{false}));
  rec.record(commit(X, B));
  rec.record(commit(X, A));

  std::vector<std::string> hook_reports;
  SentinelOptions options;
  options.mode = CheckMode::kEscalating;
  options.on_violation = [&hook_reports](const std::string& e) {
    hook_reports.push_back(e);
  };
  AtomicitySentinel sentinel(rec, sys, options);
  sentinel.poll();
  sentinel.finalize();  // escalation resolves suspicion at the flush
  EXPECT_GE(sentinel.violations(), 1u);
  EXPECT_GE(sentinel.escalations(), 1u);
  EXPECT_NE(sentinel.last_violation().find("not serializable"),
            std::string::npos);
  EXPECT_EQ(hook_reports.size(), sentinel.violations());
}

TEST(Sentinel, VectorClockModeQuarantinesWithoutClaimingViolation) {
  LamportClock clock;
  FlightRecorder rec(clock);
  const auto sys = one_set();
  rec.record(invoke(X, B, op("insert", 3)));
  rec.record(respond(X, B, ok()));
  rec.record(invoke(X, A, op("member", 3)));
  rec.record(respond(X, A, Value{false}));
  rec.record(commit(X, B));
  rec.record(commit(X, A));

  SentinelOptions options;
  options.mode = CheckMode::kVectorClock;
  AtomicitySentinel sentinel(rec, sys, options);
  sentinel.poll();
  sentinel.finalize();
  // Monitoring-only: the suspect is quarantined and surfaced as
  // suspicious, but no violation is claimed without exact replay.
  EXPECT_EQ(sentinel.violations(), 0u) << sentinel.last_violation();
  EXPECT_GE(sentinel.suspicious(), 1u);
  EXPECT_EQ(sentinel.escalations(), 0u);
}

TEST(Sentinel, CleanTracePassesInVectorClockModes) {
  for (const CheckMode mode :
       {CheckMode::kVectorClock, CheckMode::kEscalating}) {
    LamportClock clock;
    FlightRecorder rec(clock);
    const auto sys = one_set();
    rec.record(invoke(X, B, op("insert", 3)));
    rec.record(respond(X, B, ok()));
    rec.record(commit(X, B));
    rec.record(invoke(X, A, op("member", 3)));
    rec.record(respond(X, A, Value{true}));
    rec.record(commit(X, A));

    SentinelOptions options;
    options.mode = mode;
    AtomicitySentinel sentinel(rec, sys, options);
    sentinel.poll();
    sentinel.finalize();
    EXPECT_EQ(sentinel.violations(), 0u) << to_string(mode);
    EXPECT_EQ(sentinel.suspicious(), 0u) << to_string(mode);
    EXPECT_EQ(sentinel.activities_checked(), 2u) << to_string(mode);
  }
}

std::shared_ptr<DynamicAtomicObject<CounterAdt>> chaos_counter(
    Runtime& rt, const std::string& name) {
  auto obj = std::make_shared<DynamicAtomicObject<CounterAdt>>(
      rt.allocate_object_id(), name, rt.tm(), rt.recorder(),
      AdmissionMode::kChaosAdmitAll);
  rt.adopt(obj, std::make_shared<AdtSpec<CounterAdt>>());
  return obj;
}

TEST(Sentinel, ChaosAdmissionViolationIsCaughtDeterministically) {
  // The adversarial injection path: kChaosAdmitAll admits every
  // operation without validation, so nothing blocks and one thread can
  // interleave two transactions by hand. Each transaction's view is the
  // committed state plus its own intentions only, so both increments
  // return 1 — and no serial order allows two increments to both return
  // 1. A genuinely non-atomic history, every run.
  Runtime rt;  // flight recording on
  auto counter = chaos_counter(rt, "c0");
  SentinelOptions options;
  options.mode = CheckMode::kEscalating;
  auto& sentinel = rt.start_sentinel(options);

  auto t1 = rt.begin();
  auto t2 = rt.begin();
  EXPECT_EQ(counter->invoke(*t1, counter::increment()).as_int(), 1);
  EXPECT_EQ(counter->invoke(*t2, counter::increment()).as_int(), 1);
  rt.commit(t2);
  rt.commit(t1);

  sentinel.stop();
  ASSERT_FALSE(check_canonical_atomic(rt.system(), rt.history()).ok);
  EXPECT_GE(sentinel.violations(), 1u);
  EXPECT_NE(sentinel.last_violation(), "");
  rt.stop_sentinel();

  // The monitoring-only mode must flag the same history — as suspicion,
  // never as a certified PASS.
  const VcReport vc =
      check_vc_atomic(rt.system(), rt.history(), {.escalate = false});
  EXPECT_NE(vc.verdict, VcVerdict::kPass);
}

TEST(Sentinel, ChaosWorkloadSweepAgreesWithOfflineJudgement) {
  // Concurrent chaos traffic: whatever histories the races produce, the
  // online escalating sentinel must agree with the offline exact
  // judgement of the recorded history (the deterministic test above
  // guarantees the violating side is exercised; here the interleaving —
  // and hence the verdict — is the scheduler's choice).
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Runtime rt;
    std::vector<std::shared_ptr<ManagedObject>> counters;
    counters.push_back(chaos_counter(rt, "c0"));
    counters.push_back(chaos_counter(rt, "c1"));
    SentinelOptions options;
    options.window = std::chrono::milliseconds(1);
    options.mode = CheckMode::kEscalating;
    auto& sentinel = rt.start_sentinel(options);

    WorkloadOptions wo;
    wo.threads = 4;
    wo.transactions_per_thread = 50;
    wo.seed = seed;
    WorkloadDriver driver(rt, wo);
    // Two increments per transaction: the window between the first
    // invocation and the commit is where unvalidated interleavings slip
    // in (a single-invoke transaction commits too fast to race).
    (void)driver.run({MixItem{
        "increment", TxnKind::kUpdate, 1,
        [&](Transaction& txn, SplitMix64& rng) {
          const std::size_t first = rng.below(counters.size());
          counters[first]->invoke(txn, counter::increment());
          counters[1 - first]->invoke(txn, counter::increment());
        }}});
    sentinel.stop();

    const CheckResult exact = check_canonical_atomic(rt.system(), rt.history());
    // A straggler (a shard stalling for two full windows) is quarantined
    // rather than judged, so the online verdict can legitimately diverge
    // from the offline one; only straggler-free runs are compared.
    if (sentinel.stragglers() == 0) {
      if (exact.ok) {
        EXPECT_EQ(sentinel.violations(), 0u) << "seed " << seed << ": "
                                             << sentinel.last_violation();
      } else {
        EXPECT_GE(sentinel.violations(), 1u)
            << "seed " << seed
            << ": offline check rejects but the sentinel stayed quiet: "
            << exact.explanation;
      }
    }
    rt.stop_sentinel();
  }
}

TEST(Sentinel, RuntimeDefaultsFillUnsetSentinelOptions) {
  Runtime rt;
  auto bank = BankScenario::create(rt, Protocol::kHybrid, 4, 10000);
  SentinelOptions defaults;
  defaults.mode = CheckMode::kEscalating;
  defaults.window = std::chrono::milliseconds(2);
  defaults.checkpoint_threshold = 128;
  rt.set_sentinel_defaults(defaults);
  EXPECT_EQ(rt.sentinel_defaults().checkpoint_threshold, 128u);

  auto& sentinel = rt.start_sentinel();  // all fields filled from defaults
  EXPECT_EQ(sentinel.mode(), CheckMode::kEscalating);

  WorkloadOptions wo;
  wo.threads = 2;
  wo.transactions_per_thread = 40;
  wo.seed = 31;
  WorkloadDriver driver(rt, wo);
  (void)driver.run({bank.transfer_mix(1, 3), bank.audit_mix(true, 1)});

  // Both knobs are adjustable while the sentinel runs.
  sentinel.set_window(std::chrono::milliseconds(5));
  sentinel.set_checkpoint_threshold(64);
  (void)driver.run({bank.transfer_mix(1, 3)});

  sentinel.stop();
  EXPECT_EQ(sentinel.violations(), 0u) << sentinel.last_violation();
  EXPECT_GT(sentinel.activities_checked(), 0u);
  rt.stop_sentinel();
}

TEST(Sentinel, EscalatingBoundedMemoryPathStaysClean) {
  Runtime rt;
  auto bank = BankScenario::create(rt, Protocol::kHybrid, 4, 10000);
  SentinelOptions options;
  options.window = std::chrono::milliseconds(1);
  options.checkpoint_threshold = 64;  // seal aggressively
  options.mode = CheckMode::kEscalating;
  auto& sentinel = rt.start_sentinel(options);

  WorkloadOptions wo;
  wo.threads = 2;
  wo.transactions_per_thread = 150;
  wo.seed = 37;
  WorkloadDriver driver(rt, wo);
  (void)driver.run({bank.transfer_mix(1, 3), bank.audit_mix(true, 1)});

  sentinel.stop();
  EXPECT_EQ(sentinel.violations(), 0u) << sentinel.last_violation();
  EXPECT_GT(sentinel.activities_checked(), 0u);
  rt.stop_sentinel();
}

}  // namespace
}  // namespace argus
