// AtomicitySentinel: clean traces and real workloads pass with zero
// violations; an injected non-serializable trace is flagged; the
// checkpointing (bounded-memory) path stays clean.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/sentinel.h"
#include "sim/scenarios.h"
#include "sim/workload.h"
#include "test_util.h"
#include "txn/clock.h"

namespace argus {
namespace {

using namespace testutil;

SystemSpec one_set() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  return sys;
}

TEST(Sentinel, CleanTracePassesAndCountsActivities) {
  LamportClock clock;
  FlightRecorder rec(clock);
  const auto sys = one_set();
  // b inserts 3 and commits; a then observes it. Canonical order (first
  // commit sequence) is b before a — serializable.
  rec.record(invoke(X, B, op("insert", 3)));
  rec.record(respond(X, B, ok()));
  rec.record(commit(X, B));
  rec.record(invoke(X, A, op("member", 3)));
  rec.record(respond(X, A, Value{true}));
  rec.record(commit(X, A));

  AtomicitySentinel sentinel(rec, sys);
  sentinel.poll();
  EXPECT_EQ(sentinel.violations(), 0u);
  EXPECT_EQ(sentinel.activities_checked(), 2u);
  EXPECT_EQ(sentinel.events_seen(), 6u);
  EXPECT_EQ(sentinel.last_violation(), "");
}

TEST(Sentinel, InjectedNonSerializableTraceIsFlagged) {
  LamportClock clock;
  FlightRecorder rec(clock);
  const auto sys = one_set();
  // b's insert(3) commits *before* a commits, yet a observed
  // member(3)=false — in the canonical order (b, then a) there is no
  // acceptable replay: a genuine atomicity violation.
  rec.record(invoke(X, B, op("insert", 3)));
  rec.record(respond(X, B, ok()));
  rec.record(invoke(X, A, op("member", 3)));
  rec.record(respond(X, A, Value{false}));
  rec.record(commit(X, B));
  rec.record(commit(X, A));

  std::vector<std::string> hook_reports;
  SentinelOptions options;
  options.on_violation = [&hook_reports](const std::string& e) {
    hook_reports.push_back(e);
  };
  AtomicitySentinel sentinel(rec, sys, options);
  sentinel.poll();
  EXPECT_GE(sentinel.violations(), 1u);
  EXPECT_NE(sentinel.last_violation().find("not serializable"),
            std::string::npos);
  ASSERT_EQ(hook_reports.size(), sentinel.violations());
  // The offender is quarantined: further windows do not re-report it.
  sentinel.poll();
  EXPECT_EQ(hook_reports.size(), sentinel.violations());
}

TEST(Sentinel, AbortedActivityEffectsAreExcluded) {
  LamportClock clock;
  FlightRecorder rec(clock);
  const auto sys = one_set();
  // b's insert aborted, so a's member(3)=false is consistent.
  rec.record(invoke(X, B, op("insert", 3)));
  rec.record(respond(X, B, ok()));
  rec.record(abort(X, B));
  rec.record(invoke(X, A, op("member", 3)));
  rec.record(respond(X, A, Value{false}));
  rec.record(commit(X, A));

  AtomicitySentinel sentinel(rec, sys);
  sentinel.poll();
  EXPECT_EQ(sentinel.violations(), 0u);
  EXPECT_EQ(sentinel.activities_checked(), 1u);
}

TEST(Sentinel, WorkloadSweepAcrossProtocolsHasNoViolations) {
  for (const Protocol protocol :
       {Protocol::kDynamic, Protocol::kStatic, Protocol::kHybrid}) {
    Runtime rt;  // flight recording on
    auto bank = BankScenario::create(rt, protocol, 4, 10000);
    SentinelOptions options;
    options.window = std::chrono::milliseconds(2);
    auto& sentinel = rt.start_sentinel(options);

    WorkloadOptions wo;
    wo.threads = 4;
    wo.transactions_per_thread = 50;
    wo.seed = 11;
    WorkloadDriver driver(rt, wo);
    const bool read_only_audit = protocol == Protocol::kHybrid;
    (void)driver.run(
        {bank.transfer_mix(1, 3), bank.audit_mix(read_only_audit, 1)});

    sentinel.stop();  // final flush window runs before stop returns
    EXPECT_EQ(sentinel.violations(), 0u)
        << "protocol " << static_cast<int>(protocol) << ": "
        << sentinel.last_violation();
    EXPECT_GT(sentinel.activities_checked(), 0u);
    EXPECT_NE(rt.metrics().json().find("argus_sentinel_windows_total"),
              std::string::npos);
    rt.stop_sentinel();
  }
}

TEST(Sentinel, CheckpointingPathStaysCleanUnderBoundedMemory) {
  Runtime rt;
  auto bank = BankScenario::create(rt, Protocol::kHybrid, 4, 10000);
  SentinelOptions options;
  options.window = std::chrono::milliseconds(1);
  options.checkpoint_threshold = 64;  // fold aggressively
  auto& sentinel = rt.start_sentinel(options);

  WorkloadOptions wo;
  wo.threads = 2;
  wo.transactions_per_thread = 150;
  wo.seed = 23;
  WorkloadDriver driver(rt, wo);
  (void)driver.run({bank.transfer_mix(1, 3), bank.audit_mix(true, 1)});

  sentinel.stop();
  EXPECT_EQ(sentinel.violations(), 0u) << sentinel.last_violation();
  EXPECT_GT(sentinel.activities_checked(), 0u);
  rt.stop_sentinel();
}

TEST(Sentinel, RequiresFlightMode) {
  Runtime rt(false);
  EXPECT_THROW(rt.start_sentinel(), UsageError);
}

}  // namespace
}  // namespace argus
