// Well-formedness tests for the three event alphabets (§2, §4.2.1,
// §4.3.1), including the paper's own ill-formed examples.
#include <gtest/gtest.h>

#include "hist/wellformed.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

TEST(WellFormedPlain, EmptyHistoryOk) {
  EXPECT_TRUE(check_well_formed(History{}).ok());
}

TEST(WellFormedPlain, SequentialActivityOk) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{1}),
      commit(X, A),
      commit(Y, A),
  });
  EXPECT_TRUE(check_well_formed(h).ok()) << check_well_formed(h).summary();
}

TEST(WellFormedPlain, OverlappingInvocationsRejected) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      invoke(Y, A, op("increment")),  // still waiting at x
  });
  const auto r = check_well_formed(h);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("pending"), std::string::npos);
}

TEST(WellFormedPlain, ResponseWithoutInvocationRejected) {
  const History h = hist({respond(X, A, ok())});
  EXPECT_FALSE(check_well_formed(h).ok());
}

TEST(WellFormedPlain, ResponseAtWrongObjectRejected) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(Y, A, ok()),
  });
  EXPECT_FALSE(check_well_formed(h).ok());
}

TEST(WellFormedPlain, CommitAndAbortRejected) {
  const History h = hist({commit(X, A), abort(Y, A)});
  EXPECT_FALSE(check_well_formed(h).ok());
}

TEST(WellFormedPlain, AbortThenCommitRejected) {
  const History h = hist({abort(X, A), commit(X, A)});
  EXPECT_FALSE(check_well_formed(h).ok());
}

TEST(WellFormedPlain, CommitWhileWaitingRejected) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      commit(X, A),
  });
  const auto r = check_well_formed(h);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("waiting"), std::string::npos);
}

TEST(WellFormedPlain, InvokeAfterCommitRejected) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, A, op("insert", 4)),
  });
  EXPECT_FALSE(check_well_formed(h).ok());
}

TEST(WellFormedPlain, CommitAtMultipleObjectsOk) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{1}),
      commit(X, A),
      commit(Y, A),
  });
  EXPECT_TRUE(check_well_formed(h).ok());
}

TEST(WellFormedPlain, AbortWhileWaitingOk) {
  // The system may abort a blocked activity (e.g. a deadlock victim).
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      abort(X, A),
  });
  EXPECT_TRUE(check_well_formed(h).ok()) << check_well_formed(h).summary();
}

TEST(WellFormedPlain, InitiateNotInAlphabet) {
  const History h = hist({initiate(X, A, 1)});
  EXPECT_FALSE(check_well_formed(h).ok());
}

TEST(WellFormedPlain, TimestampedCommitNotInAlphabet) {
  const History h = hist({commit_at(X, A, 1)});
  EXPECT_FALSE(check_well_formed(h).ok());
}

// §4.2.1's well-formed example.
TEST(WellFormedStatic, PaperExampleAccepted) {
  const History h = hist({
      initiate(X, A, 1),
      invoke(X, A, op("member", 2)),
      respond(X, A, Value{false}),
      commit(X, A),
  });
  EXPECT_TRUE(check_well_formed_static(h).ok())
      << check_well_formed_static(h).summary();
}

// §4.2.1's ill-formed example, which the paper rejects for three reasons:
// a initiates with two timestamps, b reuses a's timestamp, and a invokes
// at y before initiating there.
TEST(WellFormedStatic, PaperCounterexampleRejectedForThreeReasons) {
  const History h = hist({
      initiate(X, A, 1),
      invoke(Y, A, op("member", 2)),
      respond(Y, A, Value{false}),
      initiate(Y, A, 2),
      initiate(Y, B, 1),
      commit(X, A),
  });
  const auto r = check_well_formed_static(h);
  ASSERT_FALSE(r.ok());
  EXPECT_GE(r.violations.size(), 3u) << r.summary();
}

TEST(WellFormedStatic, InvokeBeforeInitiateRejected) {
  const History h = hist({
      invoke(X, A, op("member", 2)),
      respond(X, A, Value{false}),
  });
  EXPECT_FALSE(check_well_formed_static(h).ok());
}

TEST(WellFormedStatic, PerObjectInitiationRequired) {
  const History h = hist({
      initiate(X, A, 1),
      invoke(Y, A, op("member", 2)),  // initiated at x, not y
      respond(Y, A, Value{false}),
  });
  EXPECT_FALSE(check_well_formed_static(h).ok());
}

TEST(WellFormedStatic, DuplicateTimestampRejected) {
  const History h = hist({
      initiate(X, A, 5),
      initiate(X, B, 5),
  });
  EXPECT_FALSE(check_well_formed_static(h).ok());
}

TEST(WellFormedStatic, SameActivityConsistentTimestampOk) {
  const History h = hist({
      initiate(X, A, 5),
      initiate(Y, A, 5),
  });
  EXPECT_TRUE(check_well_formed_static(h).ok());
}

// §4.3.1's well-formed hybrid example.
TEST(WellFormedHybrid, PaperExampleAccepted) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit_at(X, A, 2),
      initiate(X, R, 1),
      invoke(X, R, op("member", 3)),
      respond(X, R, Value{false}),
      commit(X, R),
  });
  EXPECT_TRUE(check_well_formed_hybrid(h, {R}).ok())
      << check_well_formed_hybrid(h, {R}).summary();
}

// §4.3.1's ill-formed hybrid example: commit timestamps contradict
// precedes(h), and r reuses a's timestamp.
TEST(WellFormedHybrid, PaperCounterexampleRejected) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit_at(X, A, 2),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),  // terminates after a's commit: <a,b>
      commit_at(X, B, 1),          // but b's timestamp is below a's
      initiate(X, R, 2),           // r reuses a's timestamp
  });
  const auto r = check_well_formed_hybrid(h, {R});
  ASSERT_FALSE(r.ok());
  EXPECT_GE(r.violations.size(), 2u) << r.summary();
}

TEST(WellFormedHybrid, UpdateMustCommitWithTimestamp) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),  // update committing plainly
  });
  EXPECT_FALSE(check_well_formed_hybrid(h, {}).ok());
}

TEST(WellFormedHybrid, ReadOnlyMustCommitPlainly) {
  const History h = hist({
      initiate(X, R, 1),
      invoke(X, R, op("member", 3)),
      respond(X, R, Value{false}),
      commit_at(X, R, 1),
  });
  EXPECT_FALSE(check_well_formed_hybrid(h, {R}).ok());
}

TEST(WellFormedHybrid, UpdateMustNotInitiate) {
  const History h = hist({initiate(X, A, 1)});
  EXPECT_FALSE(check_well_formed_hybrid(h, {}).ok());
}

TEST(WellFormedHybrid, ReadOnlyMustInitiateBeforeInvoking) {
  const History h = hist({
      invoke(X, R, op("member", 3)),
      respond(X, R, Value{false}),
  });
  EXPECT_FALSE(check_well_formed_hybrid(h, {R}).ok());
}

TEST(WellFormedHybrid, TimestampConsistentWithPrecedesAccepted) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit_at(X, A, 1),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit_at(X, B, 2),
  });
  EXPECT_TRUE(check_well_formed_hybrid(h, {}).ok())
      << check_well_formed_hybrid(h, {}).summary();
}

TEST(WellFormedness, SummaryFormatting) {
  WellFormedness ok_result;
  EXPECT_EQ(ok_result.summary(), "well-formed");
  WellFormedness bad;
  bad.violations.push_back("boom");
  EXPECT_NE(bad.summary().find("boom"), std::string::npos);
}

}  // namespace
}  // namespace argus
