// Every event sequence printed in the paper, encoded verbatim and checked
// to have exactly the classification the paper asserts. Section numbers
// refer to Weihl, "Data-dependent Concurrency Control and Recovery",
// PODC 1983. Two traces in §4.3.2 were lost by the source scan; they are
// reconstructed to match the paper's surrounding prose (marked below).
#include <gtest/gtest.h>

#include "check/admission.h"
#include "check/atomicity.h"
#include "hist/wellformed.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;
using intseq = std::vector<ActivityId>;

SystemSpec set_system() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  return sys;
}

SystemSpec account_system() {
  SystemSpec sys;
  sys.add_object(Y, "bank_account");
  return sys;
}

SystemSpec queue_system() {
  SystemSpec sys;
  sys.add_object(X, "fifo_queue");
  return sys;
}

// ---------------------------------------------------------------- §2 ----

// The example computation of §2: activities a and b interleaving insert
// and member on the set x.
TEST(Section2, ExampleComputationWellFormedAndAcceptable) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      invoke(X, B, op("member", 3)),
      respond(X, A, ok()),
      respond(X, B, Value{false}),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_TRUE(check_well_formed(h).ok());
  // It is atomic: serializable with b (who saw false) before a.
  const auto r = check_atomic(set_system(), h);
  EXPECT_TRUE(r.ok) << r.explanation;
}

// ---------------------------------------------------------------- §3 ----

// §3's worked example: h with committed a and b, and c's delete aborted.
// perm(h) drops c; the result is equivalent to the serial sequence
// b-then-a the paper prints, so h is atomic.
TEST(Section3, PermExampleIsAtomic) {
  const History h = hist({
      invoke(X, A, op("member", 3)),
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      respond(X, A, Value{true}),
      commit(X, B),
      invoke(X, C, op("delete", 3)),
      respond(X, C, ok()),
      commit(X, A),
      abort(X, C),
  });
  EXPECT_TRUE(check_well_formed(h).ok()) << check_well_formed(h).summary();

  // perm(h) contains exactly a's and b's events, in order.
  const History permed = h.perm();
  EXPECT_EQ(permed.activities(), (intseq{A, B}));
  EXPECT_EQ(permed.size(), 6u);

  // The paper exhibits the equivalent acceptable serial sequence b-a.
  const auto sys = set_system();
  EXPECT_TRUE(serializable_in_order(sys, permed, {B, A}));
  EXPECT_FALSE(serializable_in_order(sys, permed, {A, B}));

  const auto r = check_atomic(sys, h);
  EXPECT_TRUE(r.ok) << r.explanation;
}

// §3's non-atomic example: member(2) returns true on the initially empty
// set — "the member operation cannot return true in a serial sequence
// unless the queried element was inserted by a previous operation".
TEST(Section3, MemberTrueOnEmptySetNotAtomic) {
  const History h = hist({
      invoke(X, A, op("member", 2)),
      respond(X, A, Value{true}),
      commit(X, A),
  });
  EXPECT_FALSE(check_atomic(set_system(), h).ok);
}

// -------------------------------------------------------------- §4.1 ----

// §4.1's first precedes example: empty relation.
TEST(Section41, PrecedesEmptyExample) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      invoke(X, B, op("member", 3)),
      respond(X, A, ok()),
      respond(X, B, Value{false}),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_TRUE(h.precedes().empty());
}

// §4.1's second precedes example: <a,b> once b's response follows a's
// commit.
TEST(Section41, PrecedesPairExample) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, B),
  });
  const auto rel = h.precedes();
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.contains(A, B));
}

// §4.1's central example: atomic but NOT dynamic atomic. a reads false
// concurrently with b's insert; c reads true after b commits. precedes
// contains only <b,c>, so perm(h) must also be serializable in b-a-c and
// b-c-a — and it is not (a's false after b's insert).
TEST(Section41, AtomicButNotDynamicAtomic) {
  const History h = hist({
      invoke(X, A, op("member", 3)),
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      respond(X, A, Value{false}),
      invoke(X, C, op("member", 3)),
      commit(X, B),
      respond(X, C, Value{true}),
      commit(X, A),
      commit(X, C),
  });
  const auto sys = set_system();

  // The paper: precedes(h) contains only <b,c>.
  const auto rel = h.precedes();
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.contains(B, C));

  // Serializable in a-b-c (the paper's exhibited order)...
  EXPECT_TRUE(serializable_in_order(sys, h.perm(), {A, B, C}));
  // ...but not in b-a-c (the paper's counterexample order).
  EXPECT_FALSE(serializable_in_order(sys, h.perm(), {B, A, C}));

  EXPECT_TRUE(check_atomic(sys, h).ok);
  EXPECT_FALSE(check_dynamic_atomic(sys, h).ok);
}

// §4.1's contrasting example (member(2) instead of member(3)): dynamic
// atomic, serializable in a-b-c, b-a-c and b-c-a.
TEST(Section41, DynamicAtomicVariant) {
  const History h = hist({
      invoke(X, A, op("member", 2)),
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      respond(X, A, Value{false}),
      invoke(X, C, op("member", 3)),
      commit(X, B),
      respond(X, C, Value{true}),
      commit(X, A),
      commit(X, C),
  });
  const auto sys = set_system();
  for (const auto& order :
       {intseq{A, B, C}, intseq{B, A, C}, intseq{B, C, A}}) {
    EXPECT_TRUE(serializable_in_order(sys, h.perm(), order));
  }
  EXPECT_TRUE(check_dynamic_atomic(sys, h).ok)
      << check_dynamic_atomic(sys, h).explanation;
}

// §4.1's optimality construction: the counter object y whose serial
// sequences expose the serialization order exactly.
TEST(Section41, CounterSerialSequencesMatchPaper) {
  SystemSpec sys;
  sys.add_object(Y, "counter");
  const History serial = hist({
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{1}),
      commit(Y, A),
      invoke(Y, B, op("increment")),
      respond(Y, B, Value{2}),
      commit(Y, B),
      invoke(Y, C, op("increment")),
      respond(Y, C, Value{3}),
      commit(Y, C),
  });
  EXPECT_TRUE(check_atomic(sys, serial).ok);
  // Serializable in exactly one order: the construction's key property.
  EXPECT_EQ(all_serialization_orders(sys, serial).size(), 1u);
}

// ------------------------------------------------------------ §4.2.2 ----

// Atomic but not static atomic: a (timestamp 2) reads false before b
// (timestamp 1) inserts; timestamp order is b-a, in which member(3)
// cannot return false.
TEST(Section422, AtomicButNotStaticAtomic) {
  const History h = hist({
      initiate(X, A, 2),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{false}),
      commit(X, A),
      initiate(X, B, 1),
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      commit(X, B),
  });
  EXPECT_TRUE(check_well_formed_static(h).ok());
  const auto sys = set_system();
  EXPECT_TRUE(check_atomic(sys, h).ok);          // serializable a-b
  EXPECT_FALSE(check_static_atomic(sys, h).ok);  // but not in ts order b-a
}

// The paper's static-atomic variant: a (timestamp 2) inserts, b
// (timestamp 1) reads false afterwards — fine in timestamp order b-a.
TEST(Section422, StaticAtomicExample) {
  const History h = hist({
      initiate(X, A, 2),
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      initiate(X, B, 1),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{false}),
      commit(X, B),
  });
  EXPECT_TRUE(check_well_formed_static(h).ok());
  EXPECT_TRUE(check_static_atomic(set_system(), h).ok);
}

// ------------------------------------------------------------ §4.3.1 ----

// §4.3.1's well-formed hybrid sequence.
TEST(Section431, WellFormedHybridExample) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit_at(X, A, 2),
      initiate(X, R, 1),
      invoke(X, R, op("member", 3)),
      respond(X, R, Value{false}),
      commit(X, R),
  });
  EXPECT_TRUE(check_well_formed_hybrid(h, {R}).ok());
  // And it is hybrid atomic: timestamp order r-a, where member(3)=false
  // precedes the insert.
  EXPECT_TRUE(check_hybrid_atomic(set_system(), h).ok);
}

// ------------------------------------------------------------ §4.3.2 ----

// [Reconstructed: the source scan lost the §4.3.2 event listings; these
// match the prose — "atomic, since it is serializable in the order a-b-r.
// However ... perm(h) in timestamp order is ... not an acceptable serial
// sequence."]
TEST(Section432, AtomicButNotHybridAtomic_Reconstructed) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit_at(X, A, 2),
      invoke(X, B, op("insert", 4)),
      respond(X, B, ok()),
      commit_at(X, B, 3),
      initiate(X, R, 1),
      invoke(X, R, op("member", 3)),
      respond(X, R, Value{true}),  // r (ts 1) saw a (ts 2): too early
      commit(X, R),
  });
  const auto sys = set_system();
  EXPECT_TRUE(check_atomic(sys, h).ok);  // a-b-r is acceptable
  EXPECT_FALSE(check_hybrid_atomic(sys, h).ok);
}

TEST(Section432, HybridAtomicExample_Reconstructed) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit_at(X, A, 1),
      initiate(X, R, 2),
      invoke(X, R, op("member", 3)),
      respond(X, R, Value{true}),
      commit(X, R),
  });
  EXPECT_TRUE(check_hybrid_atomic(set_system(), h).ok);
}

// -------------------------------------------------------------- §5.1 ----

// Concurrent withdraws covered by the balance: dynamic atomic
// (serializable in a-b-c and a-c-b), but "not allowed by any of the
// locking protocols".
TEST(Section51, ConcurrentWithdrawsDynamicAtomicButLockingRejects) {
  const History h = hist({
      invoke(Y, A, op("deposit", 10)),
      respond(Y, A, ok()),
      commit(Y, A),
      invoke(Y, B, op("withdraw", 4)),
      invoke(Y, C, op("withdraw", 3)),
      respond(Y, C, ok()),
      respond(Y, B, ok()),
      commit(Y, C),
      commit(Y, B),
  });
  const auto sys = account_system();
  EXPECT_TRUE(serializable_in_order(sys, h.perm(), {A, B, C}));
  EXPECT_TRUE(serializable_in_order(sys, h.perm(), {A, C, B}));
  EXPECT_TRUE(check_dynamic_atomic(sys, h).ok)
      << check_dynamic_atomic(sys, h).explanation;
  EXPECT_FALSE(admitted_by_commutativity_locking(sys, h));
  EXPECT_FALSE(admitted_by_two_phase_locking(sys, h));
  EXPECT_TRUE(admitted_by_dynamic_atomicity(sys, h));
}

// Withdraw concurrent with deposit when the deposit is not needed to
// cover it: same classification.
TEST(Section51, WithdrawDepositConcurrentDynamicAtomic) {
  const History h = hist({
      invoke(Y, A, op("deposit", 10)),
      respond(Y, A, ok()),
      commit(Y, A),
      invoke(Y, B, op("withdraw", 3)),
      invoke(Y, C, op("deposit", 5)),
      respond(Y, C, ok()),
      respond(Y, B, ok()),
      commit(Y, C),
      commit(Y, B),
  });
  const auto sys = account_system();
  EXPECT_TRUE(serializable_in_order(sys, h.perm(), {A, B, C}));
  EXPECT_TRUE(serializable_in_order(sys, h.perm(), {A, C, B}));
  EXPECT_TRUE(check_dynamic_atomic(sys, h).ok);
  EXPECT_FALSE(admitted_by_commutativity_locking(sys, h));
}

// The FIFO-queue execution of §5.1: a and b interleave enqueues of equal
// values; c dequeues 1,2,1,2 after both commit. Permitted by dynamic
// atomicity (both serial orders a-b-c and b-a-c are acceptable), not
// permitted by the locking protocols, and impossible in the scheduler
// model (the storage state would be 1122, forcing c to receive 1,1,2,2).
TEST(Section51, QueueInterleavingDynamicAtomicButSchedulerModelCannot) {
  const History h = hist({
      invoke(X, A, op("enqueue", 1)),
      respond(X, A, ok()),
      invoke(X, B, op("enqueue", 1)),
      respond(X, B, ok()),
      invoke(X, A, op("enqueue", 2)),
      respond(X, A, ok()),
      invoke(X, B, op("enqueue", 2)),
      respond(X, B, ok()),
      commit(X, A),
      commit(X, B),
      invoke(X, C, op("dequeue")),
      respond(X, C, Value{1}),
      invoke(X, C, op("dequeue")),
      respond(X, C, Value{2}),
      invoke(X, C, op("dequeue")),
      respond(X, C, Value{1}),
      invoke(X, C, op("dequeue")),
      respond(X, C, Value{2}),
      commit(X, C),
  });
  const auto sys = queue_system();
  EXPECT_TRUE(serializable_in_order(sys, h.perm(), {A, B, C}));
  EXPECT_TRUE(serializable_in_order(sys, h.perm(), {B, A, C}));
  EXPECT_TRUE(check_dynamic_atomic(sys, h).ok)
      << check_dynamic_atomic(sys, h).explanation;
  // "this execution would not be permitted by the locking protocols,
  // since the operations executed by a do not commute with the
  // operations executed by b."
  EXPECT_FALSE(admitted_by_commutativity_locking(sys, h));
  EXPECT_FALSE(admitted_by_two_phase_locking(sys, h));
}

// The scheduler-model consequence spelled out: with single-version
// storage in arrival order, c must receive 1,1,2,2 — which is NOT
// serializable (neither a-b-c nor b-a-c yields it)... it is, in fact,
// 1122 = the interleaved order, matching neither serial execution.
TEST(Section51, SchedulerModelOutcomeNotSerializable) {
  const History h = hist({
      invoke(X, A, op("enqueue", 1)),
      respond(X, A, ok()),
      invoke(X, B, op("enqueue", 1)),
      respond(X, B, ok()),
      invoke(X, A, op("enqueue", 2)),
      respond(X, A, ok()),
      invoke(X, B, op("enqueue", 2)),
      respond(X, B, ok()),
      commit(X, A),
      commit(X, B),
      invoke(X, C, op("dequeue")),
      respond(X, C, Value{1}),
      invoke(X, C, op("dequeue")),
      respond(X, C, Value{1}),  // 1,1,2,2: the storage-order outcome
      invoke(X, C, op("dequeue")),
      respond(X, C, Value{2}),
      invoke(X, C, op("dequeue")),
      respond(X, C, Value{2}),
      commit(X, C),
  });
  const auto sys = queue_system();
  EXPECT_FALSE(check_atomic(sys, h).ok);
}

}  // namespace
}  // namespace argus
