// RemoteObject (simulated remote residency) tests: latency injection,
// partition behaviour, and atomicity preservation across "remote"
// objects.
#include <gtest/gtest.h>

#include <chrono>

#include "check/atomicity.h"
#include "core/runtime.h"
#include "dist/remote_object.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

using Clock = std::chrono::steady_clock;

std::shared_ptr<RemoteObject> make_remote(
    Runtime& rt, std::chrono::microseconds min_delay,
    std::chrono::microseconds max_delay) {
  auto inner = rt.create_dynamic<IntSetAdt>("s");
  NetworkProfile profile;
  profile.min_delay = min_delay;
  profile.max_delay = max_delay;
  return std::make_shared<RemoteObject>(inner, profile);
}

TEST(RemoteObject, ForwardsSemantics) {
  Runtime rt;
  auto remote = make_remote(rt, std::chrono::microseconds(0),
                            std::chrono::microseconds(0));
  auto t1 = rt.begin();
  EXPECT_EQ(remote->invoke(*t1, intset::insert(3)), ok());
  rt.commit(t1);
  auto t2 = rt.begin();
  EXPECT_EQ(remote->invoke(*t2, intset::member(3)), Value{true});
  rt.commit(t2);
  EXPECT_EQ(remote->round_trips(), 2u);
  EXPECT_EQ(remote->name(), "s@remote");
}

TEST(RemoteObject, InjectsLatency) {
  Runtime rt;
  auto remote = make_remote(rt, std::chrono::microseconds(2000),
                            std::chrono::microseconds(2000));
  auto t = rt.begin();
  const auto start = Clock::now();
  remote->invoke(*t, intset::insert(1));
  const auto elapsed = Clock::now() - start;
  rt.commit(t);
  // Two one-way delays of 2ms each.
  EXPECT_GE(elapsed, std::chrono::microseconds(3500));
}

TEST(RemoteObject, PartitionDoomsCaller) {
  Runtime rt;
  auto remote = make_remote(rt, std::chrono::microseconds(0),
                            std::chrono::microseconds(0));
  remote->set_partitioned(true);
  auto t = rt.begin();
  EXPECT_THROW(remote->invoke(*t, intset::insert(1)), TransactionAborted);
  EXPECT_TRUE(t->doomed());
  rt.abort(t);

  remote->set_partitioned(false);
  auto t2 = rt.begin();
  EXPECT_EQ(remote->invoke(*t2, intset::member(1)), Value{false});
  rt.commit(t2);
}

TEST(RemoteObject, AtomicityAcrossLocalAndRemote) {
  // A transfer between a local and a "remote" account stays atomic; the
  // recorded history (captured by the inner objects) passes the checker.
  Runtime rt;
  auto local = rt.create_dynamic<BankAccountAdt>("local");
  auto remote_inner = rt.create_dynamic<BankAccountAdt>("far");
  NetworkProfile profile;
  profile.min_delay = std::chrono::microseconds(100);
  profile.max_delay = std::chrono::microseconds(300);
  RemoteObject remote(remote_inner, profile);

  auto setup = rt.begin();
  local->invoke(*setup, account::deposit(100));
  rt.commit(setup);

  auto transfer = rt.begin();
  local->invoke(*transfer, account::withdraw(40));
  remote.invoke(*transfer, account::deposit(40));
  rt.commit(transfer);

  auto failed = rt.begin();
  local->invoke(*failed, account::withdraw(10));
  remote.invoke(*failed, account::withdraw(10));
  rt.abort(failed);

  EXPECT_EQ(local->committed_state(), 60);
  EXPECT_EQ(remote_inner->committed_state(), 40);

  const auto verdict = check_dynamic_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(RemoteObject, RecoveryReachesInnerObject) {
  Runtime rt;
  auto inner = rt.create_dynamic<IntSetAdt>("s");
  NetworkProfile profile;
  profile.min_delay = std::chrono::microseconds(0);
  profile.max_delay = std::chrono::microseconds(0);
  RemoteObject remote(inner, profile);

  auto t = rt.begin();
  remote.invoke(*t, intset::insert(7));
  rt.commit(t);
  rt.crash();
  rt.recover();
  EXPECT_TRUE(inner->committed_state().contains(7));
}

TEST(RemoteObject, PartitionDuringInFlightTransaction) {
  Runtime rt;
  auto inner = rt.create_dynamic<BankAccountAdt>("a");
  NetworkProfile profile;
  profile.min_delay = std::chrono::microseconds(0);
  profile.max_delay = std::chrono::microseconds(0);
  RemoteObject remote(inner, profile);

  auto setup = rt.begin();
  remote.invoke(*setup, account::deposit(10));
  rt.commit(setup);

  auto t = rt.begin();
  remote.invoke(*t, account::withdraw(5));
  remote.set_partitioned(true);
  EXPECT_THROW(remote.invoke(*t, account::withdraw(1)), TransactionAborted);
  rt.abort(t);
  remote.set_partitioned(false);

  // The partial withdraw rolled back.
  auto check = rt.begin();
  EXPECT_EQ(remote.invoke(*check, account::balance()), Value{10});
  rt.commit(check);
}

}  // namespace
}  // namespace argus
