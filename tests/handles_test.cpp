// Typed-handle and TransactionScope API tests.
#include <gtest/gtest.h>

#include "core/handles.h"
#include "sched/factory.h"
#include "test_util.h"

namespace argus {
namespace {

TEST(TransactionScope, CommitsExplicitly) {
  Runtime rt;
  AtomicAccount acct(rt.create_dynamic<BankAccountAdt>("a"));
  {
    TransactionScope tx(rt);
    acct.deposit(tx, 50);
    tx.commit();
    EXPECT_TRUE(tx.committed());
  }
  TransactionScope check(rt);
  EXPECT_EQ(acct.balance(check), 50);
}

TEST(TransactionScope, AbortsOnScopeExit) {
  Runtime rt;
  AtomicAccount acct(rt.create_dynamic<BankAccountAdt>("a"));
  {
    TransactionScope tx(rt);
    acct.deposit(tx, 50);
    // no commit: destructor aborts
  }
  TransactionScope check(rt);
  EXPECT_EQ(acct.balance(check), 0);
}

TEST(TransactionScope, AbortsOnException) {
  Runtime rt;
  AtomicAccount acct(rt.create_dynamic<BankAccountAdt>("a"));
  try {
    TransactionScope tx(rt);
    acct.deposit(tx, 50);
    throw std::runtime_error("application failure");
  } catch (const std::runtime_error&) {
  }
  TransactionScope check(rt);
  EXPECT_EQ(acct.balance(check), 0);
}

TEST(TransactionScope, ExplicitAbort) {
  Runtime rt;
  AtomicIntSet set(rt.create_dynamic<IntSetAdt>("s"));
  TransactionScope tx(rt);
  set.insert(tx, 3);
  tx.abort();
  EXPECT_FALSE(tx.committed());
  TransactionScope check(rt);
  EXPECT_FALSE(set.contains(check, 3));
}

TEST(TransactionScope, ReadOnlyKind) {
  Runtime rt;
  AtomicAccount acct(rt.create_hybrid<BankAccountAdt>("a"));
  {
    TransactionScope setup(rt);
    acct.deposit(setup, 10);
    setup.commit();
  }
  TransactionScope tx(rt, TxnKind::kReadOnly);
  EXPECT_TRUE(tx.txn().read_only());
  EXPECT_EQ(acct.balance(tx), 10);
  tx.commit();
}

TEST(Handles, AccountWithdrawResult) {
  Runtime rt;
  AtomicAccount acct(rt.create_dynamic<BankAccountAdt>("a"));
  TransactionScope tx(rt);
  acct.deposit(tx, 5);
  EXPECT_TRUE(acct.withdraw(tx, 3));
  EXPECT_FALSE(acct.withdraw(tx, 3));  // only 2 left
  EXPECT_EQ(acct.balance(tx), 2);
  tx.commit();
}

TEST(Handles, KVStoreOptionalGet) {
  Runtime rt;
  AtomicKVStore store(rt.create_dynamic<KVStoreAdt>("kv"));
  TransactionScope tx(rt);
  EXPECT_EQ(store.get(tx, 1), std::nullopt);
  store.put(tx, 1, 99);
  EXPECT_EQ(store.get(tx, 1), std::optional<std::int64_t>(99));
  EXPECT_TRUE(store.contains(tx, 1));
  store.erase(tx, 1);
  EXPECT_FALSE(store.contains(tx, 1));
  tx.commit();
}

TEST(Handles, QueueRoundTrip) {
  Runtime rt;
  AtomicQueue q(rt.create_hybrid_queue("q"));
  {
    TransactionScope tx(rt);
    q.enqueue(tx, 4);
    q.enqueue(tx, 5);
    tx.commit();
  }
  TransactionScope tx(rt);
  EXPECT_EQ(q.dequeue(tx), 4);
  EXPECT_EQ(q.dequeue(tx), 5);
  tx.commit();
}

TEST(Handles, CounterIncrement) {
  Runtime rt;
  AtomicCounter c(rt.create_dynamic<CounterAdt>("c"));
  TransactionScope tx(rt);
  EXPECT_EQ(c.increment(tx), 1);
  EXPECT_EQ(c.increment(tx), 2);
  tx.commit();
}

TEST(Handles, BagNondeterministicRemove) {
  Runtime rt;
  AtomicBag b(rt.create_dynamic<BagAdt>("b"));
  TransactionScope tx(rt);
  b.insert(tx, 7);
  b.insert(tx, 7);
  EXPECT_EQ(b.size(tx), 2);
  EXPECT_EQ(b.remove_any(tx), 7);
  EXPECT_EQ(b.size(tx), 1);
  tx.commit();
}

TEST(Handles, WorkAcrossProtocols) {
  // The same application code runs against any protocol's objects.
  for (Protocol p : {Protocol::kDynamic, Protocol::kStatic, Protocol::kHybrid,
                     Protocol::kTwoPhase, Protocol::kCommutativity,
                     Protocol::kTimestamp}) {
    Runtime rt;
    AtomicAccount acct(make_object<BankAccountAdt>(rt, p, "a"));
    TransactionScope tx(rt);
    acct.deposit(tx, 7);
    EXPECT_EQ(acct.balance(tx), 7) << to_string(p);
    tx.commit();
  }
}

TEST(Handles, RawTransactionOverloads) {
  // Handles also accept a bare Transaction& (driver-style code).
  Runtime rt;
  AtomicAccount acct(rt.create_dynamic<BankAccountAdt>("a"));
  auto txn = rt.begin();
  acct.deposit(*txn, 3);
  EXPECT_EQ(acct.balance(*txn), 3);
  rt.commit(txn);
}

TEST(TransactionScope, DoomedCommitThrowsButFinishes) {
  Runtime rt;
  AtomicAccount acct(rt.create_dynamic<BankAccountAdt>("a"));
  TransactionScope tx(rt);
  acct.deposit(tx, 5);
  tx.txn().doom(AbortReason::kUser);
  EXPECT_THROW(tx.commit(), TransactionAborted);
  EXPECT_FALSE(tx.committed());
  // Destructor must not double-abort (covered by not crashing here).
}

}  // namespace
}  // namespace argus
